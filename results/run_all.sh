#!/bin/sh
# Regenerates every figure/table of the paper at full scale.
set -x
cd /root/repo
cargo run --release -q -p csj-bench --bin figure4 -- --scale 1.0 > results/figure4.txt 2> results/figure4.log
cargo run --release -q -p csj-bench --bin figure5 -- --iters 3 > results/figure5.tsv 2> results/figure5.log
cargo run --release -q -p csj-bench --bin figure6 -- --iters 3 > results/figure6.tsv 2> results/figure6.log
cargo run --release -q -p csj-bench --bin figure7 -- --iters 3 > results/figure7.tsv 2> results/figure7.log
cargo run --release -q -p csj-bench --bin figure8 -- --iters 3 > results/figure8.tsv 2> results/figure8.log
cargo run --release -q -p csj-bench --bin experiment4 -- --iters 3 > results/experiment4.tsv 2> results/experiment4.log
cargo run --release -q -p csj-bench --bin ablation_shapes -- --iters 3 > results/ablation_shapes.tsv 2> results/ablation_shapes.log
cargo run --release -q -p csj-bench --bin ablation_ordering > results/ablation_ordering.txt 2> results/ablation_ordering.log
cargo run --release -q -p csj-bench --bin ablation_egrid -- --iters 3 > results/ablation_egrid.tsv 2> results/ablation_egrid.log
cargo run --release -q -p csj-bench --bin ablation_fractal -- --iters 3 > results/ablation_fractal.tsv 2> results/ablation_fractal.log
cargo run --release -q -p csj-bench --bin ablation_sweep -- --iters 3 > results/ablation_sweep.tsv 2> results/ablation_sweep.log
echo ALL_EXPERIMENTS_DONE
