//! Cross-crate property tests: random data through the whole pipeline.

use csj_core::brute::{brute_force_cross_links, brute_force_links_metric};
use csj_core::csj::{CsjJoin, GroupShapeKind};
use csj_core::egrid::GridJoin;
use csj_core::ncsj::NcsjJoin;
use csj_core::spatial::{SpatialJoin, SpatialMode};
use csj_core::ssj::SsjJoin;
use csj_core::verify::verify_lossless;
use csj_geom::{Metric, Point};
use csj_index::mtree::{MTree, MTreeConfig};
use csj_index::{rstar::RStarTree, rtree::RTree, RTreeConfig, SplitStrategy};
use proptest::prelude::*;

fn arb_points_2d(max: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 0..max)
        .prop_map(|v| v.into_iter().map(Point::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every (algorithm, index, shape) combination is lossless and every
    /// group respects the diameter bound — Theorems 1 & 2, full stack.
    #[test]
    fn every_combination_is_lossless(
        pts in arb_points_2d(120),
        eps in 0.0f64..0.6,
        g in 0usize..15,
        fanout in 4usize..10,
        metric_idx in 0usize..3,
    ) {
        let metric = [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev][metric_idx];
        let cfg = RTreeConfig::with_max_fanout(fanout);
        let rstar = RStarTree::from_points(&pts, cfg);
        let rtree = RTree::from_points(&pts, cfg.with_split(SplitStrategy::Linear));
        let mtree = MTree::from_points(&pts, MTreeConfig::with_max_fanout(fanout).with_metric(metric));

        macro_rules! verify_all {
            ($tree:expr) => {
                for out in [
                    SsjJoin::new(eps).with_metric(metric).run($tree),
                    NcsjJoin::new(eps).with_metric(metric).run($tree),
                    CsjJoin::new(eps).with_metric(metric).with_window(g).run($tree),
                    CsjJoin::new(eps).with_metric(metric).with_window(g)
                        .with_shape(GroupShapeKind::Ball).run($tree),
                ] {
                    prop_assert!(verify_lossless(&out, &pts, eps, metric).is_ok());
                }
            };
        }
        verify_all!(&rstar);
        verify_all!(&rtree);
        verify_all!(&mtree);
    }

    /// The grid join agrees with the tree joins for arbitrary inputs.
    #[test]
    fn grid_equals_tree(
        pts in arb_points_2d(150),
        eps in 0.001f64..0.5,
    ) {
        let truth = brute_force_links_metric(&pts, eps, Metric::Euclidean);
        let grid = GridJoin::new(eps).with_window(10).run(&pts);
        prop_assert_eq!(grid.expanded_link_set(), truth.clone());
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(6));
        let out = CsjJoin::new(eps).with_window(10).run(&tree);
        prop_assert_eq!(out.expanded_link_set(), truth);
    }

    /// Spatial joins across mixed index types are lossless.
    #[test]
    fn spatial_mixed_indexes_lossless(
        lp in arb_points_2d(80),
        rp in arb_points_2d(80),
        eps in 0.0f64..0.4,
    ) {
        let lt = RStarTree::from_points(&lp, RTreeConfig::with_max_fanout(5));
        let rt = MTree::from_points(&rp, MTreeConfig::with_max_fanout(5));
        let truth = brute_force_cross_links(&lp, &rp, eps, Metric::Euclidean);
        for mode in [SpatialMode::Standard, SpatialMode::Compact, SpatialMode::CompactWindowed(6)] {
            let out = SpatialJoin::new(eps, mode).run(&lt, &rt);
            prop_assert_eq!(out.expanded_link_set(), truth.clone());
        }
    }

    /// Byte accounting is internally consistent: total_bytes equals the
    /// sum over rows, and CSJ output is never larger than SSJ's.
    #[test]
    fn byte_accounting_consistent(
        pts in arb_points_2d(100),
        eps in 0.01f64..0.5,
    ) {
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(6));
        let ssj = SsjJoin::new(eps).run(&tree);
        let csj = CsjJoin::new(eps).with_window(10).run(&tree);
        let width = 3;
        let per_item: u64 = csj.items.iter().map(|i| i.format_bytes(width)).sum();
        prop_assert_eq!(csj.total_bytes(width), per_item);
        prop_assert!(csj.total_bytes(width) <= ssj.total_bytes(width));
    }
}
