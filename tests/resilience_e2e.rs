//! Acceptance test for fault-tolerant join execution: a run whose pager
//! fails every 3rd page read (absorbed by bounded retries) under a
//! 10 000-link budget completes without panicking, reports the retries,
//! stops as `Partial` with extrapolated totals, and its output is
//! lossless over the processed region.

use csj_core::brute::brute_force_links;
use csj_core::paged::FaultPagedTree;
use csj_core::parallel::ParallelAlgo;
use csj_core::{Completion, ResilientJoin, RunBudget, StopReason};
use csj_geom::Point;
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{FaultPolicy, RetryPolicy};

/// Seven tight, well-separated clusters: ~285 points each, so the true
/// link set (~285k links at eps = 0.05) dwarfs the 10k budget.
fn clustered(n: usize) -> Vec<Point<2>> {
    (0..n)
        .map(|i| {
            let c = (i % 7) as f64 * 0.13;
            Point::new([c + ((i * 31) % 97) as f64 * 2e-4, c + ((i * 57) % 89) as f64 * 2e-4])
        })
        .collect()
}

#[test]
fn faulty_budgeted_join_survives_and_degrades_gracefully() {
    let pts = clustered(2_000);
    let eps = 0.05;
    let truth = brute_force_links(&pts, eps);
    assert!(truth.len() > 10_000, "need more true links than budget, got {}", truth.len());

    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
    let faulty =
        FaultPagedTree::new(&tree, FaultPolicy::fail_every_read(3), RetryPolicy::no_backoff(4));
    let out = ResilientJoin::new(eps, ParallelAlgo::Csj(10))
        .with_budget(RunBudget::unlimited().with_max_links(10_000))
        .run_probed(&faulty, &faulty)
        .expect("transient faults are retried away; a budget stop is not an error");

    // Every 3rd page read failed once; the pager's retries absorbed them
    // and the count surfaces in the run's stats.
    assert!(out.stats.io_retries > 0, "io_retries must be reported in JoinStats");
    assert!(faulty.faults_injected() > 0);

    match out.completion {
        Completion::Partial { reason, completed_fraction, estimated_links, estimated_bytes } => {
            assert_eq!(reason, StopReason::LinkBudget);
            assert!(
                completed_fraction > 0.0 && completed_fraction < 1.0,
                "fraction {completed_fraction}"
            );
            assert!(estimated_links > 0.0, "extrapolated link total must be populated");
            assert!(estimated_bytes > 0.0, "extrapolated byte total must be populated");
        }
        Completion::Complete => panic!("a 10k-link budget must trip on ~285k true links"),
    }

    // Lossless over the processed region: expanding the emitted links and
    // groups yields only true links (so every group is a valid ≤ eps set).
    let emitted = out.expanded_link_set();
    assert!(!emitted.is_empty());
    for link in &emitted {
        assert!(truth.contains(link), "emitted link {link:?} is not a true link");
    }
}

/// Sharded-supervisor acceptance: a worker killed on every attempt
/// exhausts its shard's retry budget; the run must degrade to
/// `Completion::Partial` with `StopReason::ShardsLost` and a completed
/// fraction matching the surviving shards — and stay lossless (only
/// true links) over the region they own. Workers whose pager also
/// fails every 3rd read still succeed via the storage retry loop,
/// composing the two fault-tolerance layers.
#[test]
fn sharded_kill_beyond_retries_degrades_to_partial() {
    use csj_shard::{InProcessTransport, ShardFaultPlan, ShardJoin};

    let pts = clustered(1_400);
    let eps = 0.05;
    let truth = brute_force_links(&pts, eps);

    let plan = ShardFaultPlan::none().kill(&[1], 1).kill(&[1], 2).kill(&[1], 3);
    let run = ShardJoin::new(eps, ParallelAlgo::Csj(10))
        .with_shards(4)
        .with_max_attempts(3)
        .with_fault_plan(plan)
        .with_pager_faults(3, 4) // every worker's pager fails every 3rd read
        .run(&pts, &InProcessTransport::new())
        .expect("a lost shard degrades the run, it does not error");

    match run.output.completion {
        Completion::Partial { reason, completed_fraction, estimated_links, estimated_bytes } => {
            assert_eq!(reason, StopReason::ShardsLost);
            assert!(
                completed_fraction > 0.5 && completed_fraction < 1.0,
                "3 of 4 roughly equal shards survived, got fraction {completed_fraction}"
            );
            assert!(estimated_links > 0.0 && estimated_bytes > 0.0);
        }
        Completion::Complete => {
            panic!("shard 1 died on all 3 attempts; the run cannot be complete")
        }
    }
    assert_eq!(run.output.stats.shard_retries, 2, "attempts 2 and 3 are retries");
    assert!(run.output.stats.io_retries > 0, "worker pager retries must surface in merged stats");
    let lost: Vec<_> = run.reports.iter().filter(|r| !r.completed).collect();
    assert_eq!(lost.len(), 1, "exactly one shard lost: {:?}", run.reports);
    assert_eq!(lost[0].key, "1");

    // Lossless over the surviving shards: nothing emitted is false.
    let emitted = run.output.expanded_link_set();
    assert!(!emitted.is_empty());
    for link in &emitted {
        assert!(truth.contains(link), "emitted link {link:?} is not a true link");
    }
}
