//! Acceptance test for fault-tolerant join execution: a run whose pager
//! fails every 3rd page read (absorbed by bounded retries) under a
//! 10 000-link budget completes without panicking, reports the retries,
//! stops as `Partial` with extrapolated totals, and its output is
//! lossless over the processed region.

use csj_core::brute::brute_force_links;
use csj_core::paged::FaultPagedTree;
use csj_core::parallel::ParallelAlgo;
use csj_core::{Completion, ResilientJoin, RunBudget, StopReason};
use csj_geom::Point;
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{FaultPolicy, RetryPolicy};

/// Seven tight, well-separated clusters: ~285 points each, so the true
/// link set (~285k links at eps = 0.05) dwarfs the 10k budget.
fn clustered(n: usize) -> Vec<Point<2>> {
    (0..n)
        .map(|i| {
            let c = (i % 7) as f64 * 0.13;
            Point::new([c + ((i * 31) % 97) as f64 * 2e-4, c + ((i * 57) % 89) as f64 * 2e-4])
        })
        .collect()
}

#[test]
fn faulty_budgeted_join_survives_and_degrades_gracefully() {
    let pts = clustered(2_000);
    let eps = 0.05;
    let truth = brute_force_links(&pts, eps);
    assert!(truth.len() > 10_000, "need more true links than budget, got {}", truth.len());

    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
    let faulty =
        FaultPagedTree::new(&tree, FaultPolicy::fail_every_read(3), RetryPolicy::no_backoff(4));
    let out = ResilientJoin::new(eps, ParallelAlgo::Csj(10))
        .with_budget(RunBudget::unlimited().with_max_links(10_000))
        .run_probed(&faulty, &faulty)
        .expect("transient faults are retried away; a budget stop is not an error");

    // Every 3rd page read failed once; the pager's retries absorbed them
    // and the count surfaces in the run's stats.
    assert!(out.stats.io_retries > 0, "io_retries must be reported in JoinStats");
    assert!(faulty.faults_injected() > 0);

    match out.completion {
        Completion::Partial { reason, completed_fraction, estimated_links, estimated_bytes } => {
            assert_eq!(reason, StopReason::LinkBudget);
            assert!(
                completed_fraction > 0.0 && completed_fraction < 1.0,
                "fraction {completed_fraction}"
            );
            assert!(estimated_links > 0.0, "extrapolated link total must be populated");
            assert!(estimated_bytes > 0.0, "extrapolated byte total must be populated");
        }
        Completion::Complete => panic!("a 10k-link budget must trip on ~285k true links"),
    }

    // Lossless over the processed region: expanding the emitted links and
    // groups yields only true links (so every group is a valid ≤ eps set).
    let emitted = out.expanded_link_set();
    assert!(!emitted.is_empty());
    for link in &emitted {
        assert!(truth.contains(link), "emitted link {link:?} is not a true link");
    }
}
