//! Byte-exact output format through the full stack: join → text file →
//! parse back → expand → compare against brute force.

use std::collections::BTreeSet;

use csj_core::brute::brute_force_links;
use csj_core::csj::CsjJoin;
use csj_core::ncsj::NcsjJoin;
use csj_core::ssj::SsjJoin;
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{FileSink, OutputSink, OutputWriter, VecSink};

fn sample_points() -> Vec<csj_geom::Point<2>> {
    csj_data::clusters::gaussian_mixture(
        600,
        csj_data::clusters::ClusterConfig { clusters: 5, sigma: 0.02 },
        3,
    )
}

/// Parses the paper's text format back into a link set: each line is a
/// row; a 2-id line could be a link or a 2-group (identical bytes — the
/// formats coincide by design), longer lines are groups.
fn parse_link_set(text: &str) -> BTreeSet<(u32, u32)> {
    let mut set = BTreeSet::new();
    for line in text.lines() {
        let ids: Vec<u32> = line.split(' ').map(|t| t.parse().unwrap()).collect();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let (a, b) = (ids[i].min(ids[j]), ids[i].max(ids[j]));
                if a != b {
                    set.insert((a, b));
                }
            }
        }
    }
    set
}

#[test]
fn text_roundtrip_all_algorithms() {
    let pts = sample_points();
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(12));
    let eps = 0.05;
    let truth = brute_force_links(&pts, eps);
    let width = 3;

    let mut w = OutputWriter::new(VecSink::new(), width);
    SsjJoin::new(eps).run_streaming(&tree, &mut w).expect("vec sink cannot fail");
    assert_eq!(parse_link_set(w.sink().as_str()), truth, "ssj");

    let mut w = OutputWriter::new(VecSink::new(), width);
    NcsjJoin::new(eps).run_streaming(&tree, &mut w).expect("vec sink cannot fail");
    assert_eq!(parse_link_set(w.sink().as_str()), truth, "ncsj");

    let mut w = OutputWriter::new(VecSink::new(), width);
    CsjJoin::new(eps).with_window(10).run_streaming(&tree, &mut w).expect("vec sink cannot fail");
    assert_eq!(parse_link_set(w.sink().as_str()), truth, "csj");
}

#[test]
fn file_bytes_equal_counted_bytes() {
    let pts = sample_points();
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(12));
    let eps = 0.04;
    let width = 3;
    let join = CsjJoin::new(eps).with_window(10);

    // Collected accounting.
    let collected = join.run(&tree);
    let expected_bytes = collected.total_bytes(width);

    // Real file.
    let path = std::env::temp_dir().join(format!("csj_fmt_{}.txt", std::process::id()));
    let mut w = OutputWriter::new(FileSink::create(&path).unwrap(), width);
    join.run_streaming(&tree, &mut w).expect("file sink write failed");
    let sink = w.finish().expect("flush failed");
    assert_eq!(sink.bytes_written(), expected_bytes);
    let on_disk = std::fs::metadata(&path).unwrap().len();
    assert_eq!(on_disk, expected_bytes, "file size equals the byte accounting");
    std::fs::remove_file(&path).ok();
}

#[test]
fn streamed_and_collected_rows_are_identical() {
    let pts = sample_points();
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(12));
    let eps = 0.06;
    let width = 3;
    let join = CsjJoin::new(eps).with_window(7);

    let collected = join.run(&tree);
    let mut from_collected = OutputWriter::new(VecSink::new(), width);
    collected.write_to(&mut from_collected).expect("vec sink cannot fail");

    let mut streamed = OutputWriter::new(VecSink::new(), width);
    join.run_streaming(&tree, &mut streamed).expect("vec sink cannot fail");

    assert_eq!(
        from_collected.sink().as_str(),
        streamed.sink().as_str(),
        "stream and collect must produce byte-identical output"
    );
}

#[test]
fn dataset_export_import_roundtrip() {
    let pts = sample_points();
    let path = std::env::temp_dir().join(format!("csj_pts_{}.txt", std::process::id()));
    csj_data::io::write_points(&path, &pts).unwrap();
    let back: Vec<csj_geom::Point<2>> = csj_data::io::read_points(&path).unwrap();
    assert_eq!(back, pts);
    std::fs::remove_file(&path).ok();

    // Joins over the re-imported data give identical results.
    let t1 = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
    let t2 = RStarTree::bulk_load_str(&back, RTreeConfig::default());
    let o1 = CsjJoin::new(0.03).run(&t1);
    let o2 = CsjJoin::new(0.03).run(&t2);
    assert_eq!(o1.expanded_link_set(), o2.expanded_link_set());
}
