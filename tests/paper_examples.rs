//! The paper's worked examples, reproduced exactly.

use csj_core::csj::CsjJoin;
use csj_core::output::OutputItem;
use csj_core::ssj::SsjJoin;
use csj_geom::Point;
use csj_index::{rstar::RStarTree, RTreeConfig};

/// §III, Figure 2: integers 1..5 on the real line with ε = 3. The
/// standard join returns 9 links; an optimal compact representation has
/// 3 groups — a 50% row savings. CSJ must be lossless and no worse than
/// the standard output.
#[test]
fn figure2_integer_line() {
    let pts: Vec<Point<1>> = (1..=5).map(|i| Point::new([i as f64])).collect();
    let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(4));
    let eps = 3.0;

    let ssj = SsjJoin::new(eps).run(&tree);
    assert_eq!(ssj.num_links(), 9, "standard join returns 9 pairs");

    let csj = CsjJoin::new(eps).with_window(10).run(&tree);
    assert_eq!(csj.expanded_link_set(), ssj.expanded_link_set());
    assert!(
        csj.items.len() <= 5,
        "compact output should be a handful of groups, got {:?}",
        csj.items
    );
    // Every emitted group's members span at most eps (ids are 0-based
    // here; values are id+1, so spread in ids == spread in values).
    for item in &csj.items {
        if let OutputItem::Group(ids) = item {
            let lo = *ids.iter().min().unwrap();
            let hi = *ids.iter().max().unwrap();
            assert!(hi - lo <= 3, "group {ids:?} violates eps");
        }
    }
}

/// §III, Figure 1's headline claim, generalized: for a group of k
/// co-located points, SSJ reports C(k, 2) links while the compact joins
/// report one k-member group.
#[test]
fn figure1_dense_clique_collapses() {
    let k = 30;
    let pts: Vec<Point<2>> = (0..k)
        .map(|i| Point::new([0.5 + (i % 6) as f64 * 1e-4, 0.5 + (i / 6) as f64 * 1e-4]))
        .collect();
    let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(32));
    let eps = 0.01;
    let ssj = SsjJoin::new(eps).run(&tree);
    assert_eq!(ssj.num_links() as u32, k * (k - 1) / 2);
    let csj = CsjJoin::new(eps).run(&tree);
    assert_eq!(csj.items.len(), 1, "one group for the clique");
    match &csj.items[0] {
        OutputItem::Group(ids) => assert_eq!(ids.len() as u32, k),
        other => panic!("expected a group, got {other:?}"),
    }
}

/// §V-B's ordering example: 10 points on a line, ε = 7, links inserted
/// in sorted order produce 3 groups with ~30 total members — about 50%
/// more than the optimal 20. We pin the exact greedy outcome.
#[test]
fn section5b_ordering_example() {
    use csj_core::group::{GroupWindow, LinkProbe, MbrShape, OpenGroup};
    use csj_geom::Metric;

    let metric = Metric::Euclidean;
    let eps = 7.0;
    let points: Vec<Point<1>> = (1..=10).map(|i| Point::new([i as f64])).collect();
    let mut window: GroupWindow<MbrShape<1>, 1> = GroupWindow::new(usize::MAX);
    let mut attempts = 0u64;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            if metric.distance(&points[i], &points[j]) <= eps {
                let (a, b) = (i as u32 + 1, j as u32 + 1);
                let link = LinkProbe::new(a, &points[i], b, &points[j]);
                if !window.try_merge_link(&link, eps, metric, &mut attempts) {
                    let g = OpenGroup::from_link(a, &points[i], b, &points[j], metric);
                    assert!(window.push(g).is_none(), "unbounded window never evicts");
                }
            }
        }
    }
    let groups: Vec<Vec<u32>> = window.drain().map(|g| g.into_sorted_members()).collect();
    // The paper's greedy outcome: {1..8}, {2..9}, {3..10}.
    assert_eq!(
        groups,
        vec![
            (1..=8).collect::<Vec<u32>>(),
            (2..=9).collect::<Vec<u32>>(),
            (3..=10).collect::<Vec<u32>>(),
        ]
    );
    let total: usize = groups.iter().map(Vec::len).sum();
    assert_eq!(total, 24);
    // All 33 qualifying links are covered (lossless despite redundancy).
    let mut covered = std::collections::BTreeSet::new();
    for g in &groups {
        for (x, &a) in g.iter().enumerate() {
            for &b in &g[(x + 1)..] {
                covered.insert((a.min(b), a.max(b)));
            }
        }
    }
    let mut expected = std::collections::BTreeSet::new();
    for a in 1u32..=10 {
        for b in (a + 1)..=10 {
            if b - a <= 7 {
                expected.insert((a, b));
            }
        }
    }
    assert_eq!(covered, expected);
}

/// The paper's Theorem 1 & 2 statement on a targeted adversarial layout:
/// a chain where greedy grouping is maximally tempted to over-extend.
#[test]
fn chain_at_exact_epsilon_boundaries() {
    // Points spaced exactly eps apart: each point links only to its
    // direct neighbours; no 3 points fit in one group (diameter 2*eps).
    let eps = 0.1;
    let pts: Vec<Point<2>> = (0..20).map(|i| Point::new([i as f64 * eps, 0.0])).collect();
    let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(4));
    let out = CsjJoin::new(eps).with_window(10).run(&tree);
    let expanded = out.expanded_link_set();
    // Floating point makes some adjacent gaps land a hair above 0.1, so
    // compare against the exact fp ground truth rather than "all 19" —
    // the point of the test is that nothing two steps apart sneaks in.
    assert_eq!(expanded, csj_core::brute::brute_force_links(&pts, eps));
    for (a, b) in expanded {
        assert_eq!(b - a, 1, "non-adjacent pair ({a}, {b}) grouped");
    }
}
