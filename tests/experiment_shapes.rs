//! The paper's evaluation *shapes*, asserted as integration tests at
//! reduced scale: who wins, in which regime, and by how much — the same
//! trends the full-scale binaries print.

use csj_core::csj::CsjJoin;
use csj_core::ncsj::NcsjJoin;
use csj_core::ssj::SsjJoin;
use csj_index::{rstar::RStarTree, JoinIndex, RTreeConfig};
use csj_storage::{BufferPool, PageId};

fn mg_profile(n: usize) -> Vec<csj_geom::Point<2>> {
    csj_data::roads::road_network(&csj_data::roads::RoadConfig {
        n_points: n,
        cores: 3,
        core_sigma: 0.08,
        rural_fraction: 0.35,
        grid_snap_prob: 0.75,
        step: 0.004,
        mean_road_len: 0.05,
        seed: 0x4D47,
    })
}

/// Figure 5 trend 1: N-CSJ output ≤ SSJ everywhere; strictly smaller at
/// large ε; equal at small ε.
#[test]
fn trend_ncsj_dominates_ssj() {
    let pts = mg_profile(4_000);
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
    let width = 4;
    let mut strictly_better_somewhere = false;
    for i in 0..9 {
        let eps = (2.0_f64).powi(-9 + i);
        let ssj = SsjJoin::new(eps).run(&tree).total_bytes(width);
        let ncsj = NcsjJoin::new(eps).run(&tree).total_bytes(width);
        assert!(ncsj <= ssj, "eps={eps}: N-CSJ larger than SSJ");
        if ncsj < ssj {
            strictly_better_somewhere = true;
        }
    }
    assert!(strictly_better_somewhere, "N-CSJ never beat SSJ across the sweep");
}

/// Figure 5 trend 2: CSJ(10) ≤ N-CSJ everywhere, with significant
/// additional savings at large ε (the paper observes roughly a factor
/// of two from cross-node links).
#[test]
fn trend_csj_beats_ncsj_at_large_eps() {
    let pts = mg_profile(4_000);
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
    let width = 4;
    for i in 0..9 {
        let eps = (2.0_f64).powi(-9 + i);
        let ncsj = NcsjJoin::new(eps).run(&tree).total_bytes(width);
        let csj = CsjJoin::new(eps).with_window(10).run(&tree).total_bytes(width);
        assert!(csj <= ncsj, "eps={eps}");
    }
    // At ε = 0.25 the savings must be at least 2x over SSJ.
    let eps = 0.25;
    let ssj = SsjJoin::new(eps).run(&tree).total_bytes(width);
    let csj = CsjJoin::new(eps).with_window(10).run(&tree).total_bytes(width);
    assert!(
        ssj as f64 / csj as f64 > 2.0,
        "expected >2x savings at eps=0.25, got {:.2}x",
        ssj as f64 / csj as f64
    );
}

/// Figure 7 trend: doubling N roughly quadruples SSJ's output but grows
/// the compact outputs far more slowly.
#[test]
fn trend_scalability_output_explosion() {
    let eps = 0.125;
    let width = 5;
    let sizes = [4_000usize, 8_000, 16_000];
    let mut ssj_bytes = Vec::new();
    let mut csj_bytes = Vec::new();
    for &n in &sizes {
        let pts = csj_data::sierpinski::pyramid_3d(n, 0x53);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
        ssj_bytes.push(SsjJoin::new(eps).run(&tree).total_bytes(width) as f64);
        csj_bytes.push(CsjJoin::new(eps).with_window(10).run(&tree).total_bytes(width) as f64);
    }
    let ssj_growth = ssj_bytes[2] / ssj_bytes[0];
    let csj_growth = csj_bytes[2] / csj_bytes[0];
    // 4x the points: SSJ should grow ~16x (quadratic); CSJ more slowly.
    // (At these reduced sizes CSJ is still pre-asymptotic — the full
    // Figure 7 run in the `figure7` binary shows the near-linear regime —
    // so assert the robust ordering, not the asymptote.)
    assert!(ssj_growth > 8.0, "SSJ growth {ssj_growth:.1} not explosive");
    assert!(
        csj_growth < ssj_growth,
        "CSJ growth {csj_growth:.1} vs SSJ {ssj_growth:.1}: explosion not controlled"
    );
    // The SSJ/CSJ advantage must widen monotonically with N.
    let ratios: Vec<f64> = ssj_bytes.iter().zip(&csj_bytes).map(|(s, c)| s / c).collect();
    assert!(
        ratios[0] < ratios[1] && ratios[1] < ratios[2],
        "compact advantage must grow with N: {ratios:?}"
    );
}

/// Figure 6 trend: output shrinks from g = 1 to g = 10, and g = 100 adds
/// (almost) nothing beyond g = 10.
#[test]
fn trend_window_size_sweet_spot() {
    let pts = mg_profile(4_000);
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
    let width = 4;
    let eps = 0.1;
    let bytes = |g: usize| CsjJoin::new(eps).with_window(g).run(&tree).total_bytes(width) as f64;
    let (b1, b10, b100) = (bytes(1), bytes(10), bytes(100));
    assert!(b10 < b1, "g=10 must improve on g=1 ({b10} vs {b1})");
    let gain_1_to_10 = b1 - b10;
    let gain_10_to_100 = b10 - b100;
    assert!(
        gain_10_to_100 < gain_1_to_10 * 0.5,
        "savings must flatten after g=10 (1→10: {gain_1_to_10:.0}, 10→100: {gain_10_to_100:.0})"
    );
}

/// Experiment 3 claim: node/page access counts are essentially identical
/// across the algorithms — the savings come from computation and output
/// volume, not from reading fewer pages.
#[test]
fn trend_page_accesses_similar_across_algorithms() {
    let pts = mg_profile(4_000);
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
    let eps = 0.1;
    let logs: Vec<Vec<u32>> = [
        SsjJoin::new(eps).with_access_log().run(&tree).stats.access_log.unwrap(),
        NcsjJoin::new(eps).with_access_log().run(&tree).stats.access_log.unwrap(),
        CsjJoin::new(eps).with_window(10).with_access_log().run(&tree).stats.access_log.unwrap(),
    ]
    .into_iter()
    .collect();

    for cap in [16usize, 128] {
        let misses: Vec<u64> = logs
            .iter()
            .map(|log| {
                let mut pool = BufferPool::new(cap);
                pool.replay(log.iter().map(|&n| PageId(n as u64))).misses
            })
            .collect();
        // The compact joins may read *fewer* pages (early stops skip
        // subtree re-descents) but never dramatically more.
        let ssj = misses[0] as f64;
        for (i, &m) in misses.iter().enumerate() {
            assert!((m as f64) <= ssj * 1.25, "cap={cap}: algorithm {i} misses {m} vs SSJ {ssj}");
        }
    }
}

/// Experiment 4 claim: the gains persist across index structures — the
/// CSJ/SSJ byte ratio is within a small factor across all trees.
#[test]
fn trend_index_independence() {
    use csj_index::mtree::{MTree, MTreeConfig};
    use csj_index::rtree::RTree;
    use csj_index::SplitStrategy;

    let pts = mg_profile(2_500);
    let width = 4;
    let eps = 0.125;

    let ratio = |ssj_bytes: u64, csj_bytes: u64| ssj_bytes as f64 / csj_bytes as f64;
    let mut ratios = Vec::new();

    let t = RTree::from_points(&pts, RTreeConfig::default().with_split(SplitStrategy::Linear));
    ratios.push(ratio(
        SsjJoin::new(eps).run(&t).total_bytes(width),
        CsjJoin::new(eps).with_window(10).run(&t).total_bytes(width),
    ));
    let t = RStarTree::from_points(&pts, RTreeConfig::default());
    ratios.push(ratio(
        SsjJoin::new(eps).run(&t).total_bytes(width),
        CsjJoin::new(eps).with_window(10).run(&t).total_bytes(width),
    ));
    let t = MTree::from_points(&pts, MTreeConfig::default());
    ratios.push(ratio(
        SsjJoin::new(eps).run(&t).total_bytes(width),
        CsjJoin::new(eps).with_window(10).run(&t).total_bytes(width),
    ));

    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    assert!(min > 1.5, "compact join must win on every index: {ratios:?}");
    assert!(max / min < 3.0, "gains should be comparable across indexes: {ratios:?}");
}

/// The compact joins never do more distance computations than SSJ (the
/// early-stopping rule only removes work).
#[test]
fn trend_distance_computations_ordered() {
    let pts = mg_profile(3_000);
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
    for i in [0, 3, 6, 8] {
        let eps = (2.0_f64).powi(-9 + i);
        let ssj = SsjJoin::new(eps).run(&tree).stats.distance_computations;
        let ncsj = NcsjJoin::new(eps).run(&tree).stats.distance_computations;
        let csj = CsjJoin::new(eps).with_window(10).run(&tree).stats.distance_computations;
        assert!(ncsj <= ssj, "eps exponent {i}");
        assert!(csj <= ssj, "eps exponent {i}");
    }
    // Sanity: trees must be identical runs.
    assert_eq!(tree.num_records(), 3_000);
}
