//! End-to-end lossless-ness: every algorithm × every index × the paper's
//! dataset profiles (scaled down) × an ε sweep must represent exactly the
//! brute-force link set, with every group obeying the diameter bound.

use csj_core::csj::{CsjJoin, GroupShapeKind};
use csj_core::egrid::GridJoin;
use csj_core::ncsj::NcsjJoin;
use csj_core::ssj::SsjJoin;
use csj_core::verify::verify_lossless;
use csj_geom::{Metric, Point};
use csj_index::mtree::{MTree, MTreeConfig};
use csj_index::quadtree::{QuadTree, QuadTreeConfig};
use csj_index::{rstar::RStarTree, rtree::RTree, RTreeConfig, SplitStrategy};

fn mg_profile(n: usize) -> Vec<Point<2>> {
    csj_data::roads::road_network(&csj_data::roads::RoadConfig {
        n_points: n,
        cores: 3,
        core_sigma: 0.08,
        rural_fraction: 0.35,
        grid_snap_prob: 0.75,
        step: 0.004,
        mean_road_len: 0.05,
        seed: 0x4D47,
    })
}

#[test]
fn all_algorithms_all_rect_indexes_2d() {
    let pts = mg_profile(1_500);
    let cfg = RTreeConfig::with_max_fanout(16);
    let rstar_dyn = RStarTree::from_points(&pts, cfg);
    let rstar_str = RStarTree::bulk_load_str(&pts, cfg);
    let rstar_hil = RStarTree::bulk_load_hilbert(&pts, cfg);
    let rstar_omt = RStarTree::bulk_load_omt(&pts, cfg);
    let rtree_lin = RTree::from_points(&pts, cfg.with_split(SplitStrategy::Linear));
    let rtree_quad = RTree::from_points(&pts, cfg.with_split(SplitStrategy::Quadratic));

    for eps in [0.001953125, 0.03125, 0.25] {
        macro_rules! check {
            ($tree:expr, $label:literal) => {
                for out in [
                    SsjJoin::new(eps).run($tree),
                    NcsjJoin::new(eps).run($tree),
                    CsjJoin::new(eps).with_window(10).run($tree),
                    CsjJoin::new(eps).with_window(1).run($tree),
                ] {
                    verify_lossless(&out, &pts, eps, Metric::Euclidean)
                        .unwrap_or_else(|e| panic!("{} eps={eps}: {e}", $label));
                }
            };
        }
        check!(&rstar_dyn, "r*-dynamic");
        check!(&rstar_str, "r*-str");
        check!(&rstar_hil, "r*-hilbert");
        check!(&rstar_omt, "r*-omt");
        check!(&rtree_lin, "r-linear");
        check!(&rtree_quad, "r-quadratic");
    }
}

#[test]
fn all_algorithms_mtree_2d() {
    let pts = mg_profile(1_000);
    let tree = MTree::from_points(&pts, MTreeConfig::with_max_fanout(12));
    for eps in [0.01, 0.1] {
        for out in [
            SsjJoin::new(eps).run(&tree),
            NcsjJoin::new(eps).run(&tree),
            CsjJoin::new(eps).with_window(10).run(&tree),
        ] {
            verify_lossless(&out, &pts, eps, Metric::Euclidean)
                .unwrap_or_else(|e| panic!("m-tree eps={eps}: {e}"));
        }
    }
}

#[test]
fn all_algorithms_quadtree_2d() {
    let pts = mg_profile(1_000);
    let tree = QuadTree::build(&pts, QuadTreeConfig { capacity: 12, max_depth: 16 });
    for eps in [0.01, 0.1] {
        for out in [
            SsjJoin::new(eps).run(&tree),
            NcsjJoin::new(eps).run(&tree),
            CsjJoin::new(eps).with_window(10).run(&tree),
        ] {
            verify_lossless(&out, &pts, eps, Metric::Euclidean)
                .unwrap_or_else(|e| panic!("quadtree eps={eps}: {e}"));
        }
    }
}

#[test]
fn sierpinski_3d_lossless() {
    let pts = csj_data::sierpinski::pyramid_3d(1_200, 0x53);
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(16));
    for eps in [0.03125, 0.125, 0.5] {
        for out in [
            SsjJoin::new(eps).run(&tree),
            NcsjJoin::new(eps).run(&tree),
            CsjJoin::new(eps).with_window(10).run(&tree),
        ] {
            verify_lossless(&out, &pts, eps, Metric::Euclidean)
                .unwrap_or_else(|e| panic!("sierpinski eps={eps}: {e}"));
        }
    }
}

#[test]
fn grid_join_and_tree_join_agree() {
    let pts = mg_profile(1_200);
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(16));
    for eps in [0.01, 0.05] {
        let tree_out = CsjJoin::new(eps).with_window(10).run(&tree);
        let grid_out = GridJoin::new(eps).with_window(10).run(&pts);
        assert_eq!(tree_out.expanded_link_set(), grid_out.expanded_link_set(), "eps={eps}");
    }
}

#[test]
fn ball_groups_lossless_under_all_metrics() {
    let pts = mg_profile(800);
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(12));
    for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
        let eps = 0.05;
        let out = CsjJoin::new(eps).with_metric(metric).with_shape(GroupShapeKind::Ball).run(&tree);
        verify_lossless(&out, &pts, eps, metric).unwrap_or_else(|e| panic!("{metric:?}: {e}"));
    }
}

#[test]
fn non_euclidean_metrics_lossless() {
    let pts = mg_profile(900);
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(12));
    for metric in [Metric::Manhattan, Metric::Chebyshev, Metric::Minkowski(3.0)] {
        for eps in [0.02, 0.2] {
            for out in [
                SsjJoin::new(eps).with_metric(metric).run(&tree),
                NcsjJoin::new(eps).with_metric(metric).run(&tree),
                CsjJoin::new(eps).with_metric(metric).with_window(10).run(&tree),
            ] {
                verify_lossless(&out, &pts, eps, metric)
                    .unwrap_or_else(|e| panic!("{metric:?} eps={eps}: {e}"));
            }
        }
    }
}

#[test]
fn high_dimensional_join_is_lossless() {
    // The entire stack is generic over the dimension; exercise it at
    // D = 6 (the high-dimensional regime the paper's related work —
    // GESS, ε-grid-order — targets).
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    let pts: Vec<Point<6>> = (0..400)
        .map(|_| {
            let mut c = [0.0; 6];
            for v in c.iter_mut() {
                *v = rng.random::<f64>();
            }
            Point::new(c)
        })
        .collect();
    let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(8));
    // In 6-D, eps must be sizable for any pairs to qualify.
    for eps in [0.4, 0.8] {
        for out in [
            SsjJoin::new(eps).run(&tree),
            NcsjJoin::new(eps).run(&tree),
            CsjJoin::new(eps).with_window(10).run(&tree),
        ] {
            verify_lossless(&out, &pts, eps, Metric::Euclidean)
                .unwrap_or_else(|e| panic!("6-d eps={eps}: {e}"));
        }
    }
    // The grid join handles 6-D too (3^6 − 1)/2 = 364 neighbour offsets.
    let grid = GridJoin::new(0.4).with_window(10).run(&pts);
    verify_lossless(&grid, &pts, 0.4, Metric::Euclidean).unwrap();
}
