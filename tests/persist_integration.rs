//! Persistence end-to-end: a join over a saved-and-reloaded index is
//! byte-identical to a join over the original.

use csj_core::csj::CsjJoin;
use csj_core::ssj::SsjJoin;
use csj_index::{rstar::RStarTree, JoinIndex, RTreeConfig};
use csj_storage::{OutputWriter, VecSink};

fn dataset() -> Vec<csj_geom::Point<2>> {
    csj_data::roads::road_network(&csj_data::roads::RoadConfig {
        n_points: 3_000,
        cores: 3,
        core_sigma: 0.07,
        rural_fraction: 0.3,
        grid_snap_prob: 0.8,
        step: 0.003,
        mean_road_len: 0.05,
        seed: 0xBEEF,
    })
}

#[test]
fn join_over_reloaded_index_is_byte_identical() {
    let pts = dataset();
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
    let loaded = RStarTree::<2>::from_bytes(&tree.to_bytes()).expect("roundtrip");
    assert_eq!(loaded.num_records(), tree.num_records());

    for eps in [0.005, 0.05] {
        let mut a = OutputWriter::new(VecSink::new(), 4);
        let mut b = OutputWriter::new(VecSink::new(), 4);
        CsjJoin::new(eps)
            .with_window(10)
            .run_streaming(&tree, &mut a)
            .expect("vec sink cannot fail");
        CsjJoin::new(eps)
            .with_window(10)
            .run_streaming(&loaded, &mut b)
            .expect("vec sink cannot fail");
        assert_eq!(
            a.sink().as_str(),
            b.sink().as_str(),
            "eps={eps}: joins over original and reloaded trees must match"
        );
        let mut a = OutputWriter::new(VecSink::new(), 4);
        let mut b = OutputWriter::new(VecSink::new(), 4);
        SsjJoin::new(eps).run_streaming(&tree, &mut a).expect("vec sink cannot fail");
        SsjJoin::new(eps).run_streaming(&loaded, &mut b).expect("vec sink cannot fail");
        assert_eq!(a.sink().as_str(), b.sink().as_str(), "eps={eps} (ssj)");
    }
}

#[test]
fn file_roundtrip_through_disk() {
    let pts = dataset();
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
    let path = std::env::temp_dir().join(format!("csj_persist_{}.idx", std::process::id()));
    std::fs::write(&path, tree.to_bytes()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let loaded = RStarTree::<2>::from_bytes(&bytes).unwrap();
    assert_eq!(loaded.num_records(), 3_000);
    csj_index::validate::validate_rect_tree(loaded.core()).unwrap();
    std::fs::remove_file(&path).ok();
}

/// Satellite of the robustness PR: file-level corruption is detected
/// (typed error, no panic) and a restore-then-retry succeeds.
#[test]
fn corrupted_index_file_is_rejected_then_recovers_after_restore() {
    let pts = dataset();
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
    let path = std::env::temp_dir().join(format!("csj_corrupt_{}.idx", std::process::id()));
    tree.save_to_file(&path).expect("save_to_file");
    let good = std::fs::read(&path).expect("read back saved index");

    // Bit rot: flip one payload byte in the middle of the file.
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0xFF;
    std::fs::write(&path, &bad).expect("write corrupted bytes");
    let err =
        RStarTree::<2>::load_from_file(&path).expect_err("a flipped payload byte must be detected");
    assert_eq!(err, csj_index::persist::PersistError::ChecksumMismatch);

    // Restoring the original bytes makes the retry succeed.
    std::fs::write(&path, &good).expect("restore good bytes");
    let loaded = RStarTree::<2>::load_from_file(&path).expect("restored file loads");
    assert_eq!(loaded.num_records(), tree.num_records());
    std::fs::remove_file(&path).ok();
}
