//! Quickstart: run a standard and a compact similarity join on the same
//! data, verify they carry the same information, and compare sizes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use compact_similarity_joins::prelude::*;
use csj_core::ncsj::NcsjJoin;
use csj_core::verify::verify_lossless;

fn main() {
    // 20,000 points on a 2-D Sierpinski triangle: fractal data with very
    // uneven local density — exactly where the output explosion bites.
    let points = csj_data::sierpinski::triangle_2d(20_000, 42);

    // Index them (bulk-loaded R*-tree, the paper's default structure).
    let tree = RStarTree::bulk_load_str(&points, RTreeConfig::default());

    let eps = 0.05;
    let width = 5; // 5-digit zero-padded ids in the output format

    let ssj = SsjJoin::new(eps).run(&tree);
    let ncsj = NcsjJoin::new(eps).run(&tree);
    let csj = CsjJoin::new(eps).with_window(10).run(&tree);

    println!("epsilon = {eps}, n = {}", points.len());
    println!("SSJ     : {:>9} rows  {:>12} bytes", ssj.items.len(), ssj.total_bytes(width));
    println!(
        "N-CSJ   : {:>9} rows  {:>12} bytes ({:.1}x smaller)",
        ncsj.items.len(),
        ncsj.total_bytes(width),
        ssj.total_bytes(width) as f64 / ncsj.total_bytes(width) as f64
    );
    println!(
        "CSJ(10) : {:>9} rows  {:>12} bytes ({:.1}x smaller)",
        csj.items.len(),
        csj.total_bytes(width),
        ssj.total_bytes(width) as f64 / csj.total_bytes(width) as f64
    );

    // The compact output is provably lossless (Theorems 1 & 2); check it.
    let report = verify_lossless(&csj, &points, eps, Metric::Euclidean)
        .expect("CSJ output must be lossless");
    println!(
        "verified: {} true links represented exactly, {} groups checked",
        report.true_links, report.groups_checked
    );

    // And it really is the same link set.
    assert_eq!(csj.expanded_link_set(), brute_force_links(&points, eps));
    assert_eq!(ncsj.expanded_link_set(), ssj.expanded_link_set());
    println!("all three algorithms report identical link sets ✓");
}
