//! Predicting the output explosion from intrinsic dimensionality — the
//! paper's §VIII future-work question, as an API tour.
//!
//! The correlation dimension D2 of the data determines how the join
//! output grows with ε (`links(ε) ∝ ε^D2`), so measuring D2 once tells
//! you *in advance* at which range a standard join will explode — and
//! therefore when you need the compact join.
//!
//! ```sh
//! cargo run --release --example fractal_scaling
//! ```

use compact_similarity_joins::prelude::*;
use csj_data::fractal::{box_counting_dimension, correlation_dimension, lsq_slope};

fn main() {
    let n = 15_000;
    let datasets: Vec<(&str, f64, Vec<Point<2>>)> = vec![
        ("line", 1.0, (0..n).map(|i| Point::new([i as f64 / n as f64, 0.5])).collect()),
        ("sierpinski", 1.585, csj_data::sierpinski::triangle_2d(n, 7)),
        ("uniform", 2.0, csj_data::uniform::uniform::<2>(n, 7)),
    ];

    println!("{:<12} {:>8} {:>8} {:>8} {:>10}", "dataset", "theory", "D0", "D2", "slope(SSJ)");
    for (name, theory, pts) in datasets {
        let d0 = box_counting_dimension(&pts, &[2, 3, 4, 5]);
        let d2 = correlation_dimension(&pts, &[0.01, 0.02, 0.04, 0.08]);

        // Measure the join output across an eps sweep and fit the
        // power-law exponent.
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
        let mut ln_eps = Vec::new();
        let mut ln_links = Vec::new();
        for i in 0..5 {
            let eps = 0.01 * 2f64.powi(i);
            let links = SsjJoin::new(eps).run(&tree).num_links();
            if links > 0 {
                ln_eps.push(eps.ln());
                ln_links.push((links as f64).ln());
            }
        }
        let slope = lsq_slope(&ln_eps, &ln_links);
        println!("{name:<12} {theory:>8.3} {d0:>8.3} {d2:>8.3} {slope:>10.3}");
        assert!(
            (slope - d2).abs() < 0.35,
            "{name}: output exponent {slope:.2} should track D2 {d2:.2}"
        );
    }
    println!("\nthe SSJ output exponent tracks the correlation dimension D2 ✓");
    println!("(lower intrinsic dimension ⇒ explosion starts at smaller ε)");
}
