//! The NVO batch-storage scenario (§I of the paper).
//!
//! An observatory service answers similarity-join queries
//! asynchronously: results must be *stored* until the astronomer fetches
//! them, possibly days later. The compact representation keeps those
//! staged result files small, and individual links are recovered by
//! expanding the groups on retrieval.
//!
//! ```sh
//! cargo run --release --example nvo_batch_storage
//! ```

use compact_similarity_joins::prelude::*;
use csj_core::ncsj::NcsjJoin;
use csj_storage::{CostModel, FileSink, OutputSink, OutputWriter};

fn main() {
    // A mock sky catalog: clustered sources (galaxy clusters + field).
    let points = csj_data::clusters::gaussian_mixture::<2>(
        50_000,
        csj_data::clusters::ClusterConfig { clusters: 12, sigma: 0.015 },
        11,
    );
    let tree = RStarTree::bulk_load_str(&points, RTreeConfig::default());
    let eps = 0.01;
    let width = 5;

    let dir = std::env::temp_dir();
    let standard_path = dir.join("nvo_standard_result.txt");
    let compact_path = dir.join("nvo_compact_result.txt");

    // Stage the standard join result to disk.
    let mut w = OutputWriter::new(FileSink::create(&standard_path).unwrap(), width);
    let _ = SsjJoin::new(eps).run_streaming(&tree, &mut w);
    let standard_bytes = w.finish().expect("flush failed").bytes_written();

    // Stage the compact result.
    let mut w = OutputWriter::new(FileSink::create(&compact_path).unwrap(), width);
    let _ = CsjJoin::new(eps).with_window(10).run_streaming(&tree, &mut w);
    let compact_bytes = w.finish().expect("flush failed").bytes_written();

    println!("staged standard result : {standard_bytes:>12} bytes");
    println!(
        "staged compact result  : {compact_bytes:>12} bytes ({:.1}x smaller)",
        standard_bytes as f64 / compact_bytes as f64
    );
    let model = CostModel::hdd_2008();
    println!(
        "modeled 2008-HDD write : {:.0} ms vs {:.0} ms",
        model.write_time_ms(standard_bytes),
        model.write_time_ms(compact_bytes)
    );

    // On retrieval the astronomer expands groups back into links — no
    // information was lost.
    let compact = CsjJoin::new(eps).with_window(10).run(&tree);
    let ncsj = NcsjJoin::new(eps).run(&tree);
    assert_eq!(compact.expanded_link_set(), ncsj.expanded_link_set());
    println!(
        "retrieval check: {} links recovered exactly from {} compact rows ✓",
        compact.expanded_link_set().len(),
        compact.items.len()
    );

    std::fs::remove_file(&standard_path).ok();
    std::fs::remove_file(&compact_path).ok();
}
