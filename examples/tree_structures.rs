//! Index independence (the paper's Experiment 4, as an API tour).
//!
//! The join algorithms only require that node-pair distance bounds are
//! computable — so the same `CsjJoin` value runs on a Guttman R-tree, an
//! R*-tree (dynamic or bulk-loaded three ways) and an M-tree, and always
//! represents the same link set.
//!
//! ```sh
//! cargo run --release --example tree_structures
//! ```

use compact_similarity_joins::prelude::*;
use csj_index::mtree::{MTree, MTreeConfig};
use csj_index::quadtree::{QuadTree, QuadTreeConfig};
use csj_index::SplitStrategy;

fn main() {
    let points = csj_data::roads::road_network(&csj_data::roads::RoadConfig {
        n_points: 8_000,
        cores: 3,
        core_sigma: 0.07,
        rural_fraction: 0.3,
        grid_snap_prob: 0.8,
        step: 0.003,
        mean_road_len: 0.05,
        seed: 99,
    });
    let eps = 0.02;
    let join = CsjJoin::new(eps).with_window(10);
    let truth = brute_force_links(&points, eps);
    let width = 4;

    println!("{} points, eps = {eps}, {} true links", points.len(), truth.len());
    println!("{:<22} {:>8} {:>12}", "index", "rows", "bytes");

    let cfg = RTreeConfig::default();

    let tree = RTree::from_points(&points, cfg.with_split(SplitStrategy::Linear));
    report("R-tree (linear)", &join.run(&tree), &truth, width);

    let tree = RTree::from_points(&points, cfg.with_split(SplitStrategy::Quadratic));
    report("R-tree (quadratic)", &join.run(&tree), &truth, width);

    let tree = RStarTree::from_points(&points, cfg);
    report("R*-tree (dynamic)", &join.run(&tree), &truth, width);

    let tree = RStarTree::bulk_load_str(&points, cfg);
    report("R*-tree (STR)", &join.run(&tree), &truth, width);

    let tree = RStarTree::bulk_load_hilbert(&points, cfg);
    report("R*-tree (Hilbert)", &join.run(&tree), &truth, width);

    let tree = RStarTree::bulk_load_omt(&points, cfg);
    report("R*-tree (OMT)", &join.run(&tree), &truth, width);

    let tree = MTree::from_points(&points, MTreeConfig::default());
    report("M-tree", &join.run(&tree), &truth, width);

    let tree = QuadTree::build(&points, QuadTreeConfig::default());
    report("PR-quadtree", &join.run(&tree), &truth, width);

    println!("every index produced the same link set ✓");
}

fn report(
    name: &str,
    out: &csj_core::JoinOutput,
    truth: &std::collections::BTreeSet<(u32, u32)>,
    width: usize,
) {
    assert_eq!(&out.expanded_link_set(), truth, "{name} lost information");
    println!("{:<22} {:>8} {:>12}", name, out.items.len(), out.total_bytes(width));
}
