//! Outlier mining via small groups (§I / §IV-D of the paper).
//!
//! Scenario from the paper's introduction: correlating trades / objects
//! to find the *unusual pairs*. The compact join's small groups are a
//! pre-sort for this — big groups are the bulk, small groups and isolated
//! records are the anomalies.
//!
//! ```sh
//! cargo run --release --example outlier_detection
//! ```

use compact_similarity_joins::prelude::*;
use csj_core::outlier::{small_rows, CohesionScores};
use csj_geom::Point;

fn main() {
    // A synthetic "catalog": three dense populations plus a handful of
    // planted anomalies — an isolated close pair (think: two galaxies
    // unusually near each other, far from any cluster) and a loner.
    let mut points = csj_data::clusters::gaussian_mixture::<2>(
        30_000,
        csj_data::clusters::ClusterConfig { clusters: 3, sigma: 0.03 },
        7,
    );
    let planted_pair = (points.len() as u32, points.len() as u32 + 1);
    points.push(Point::new([0.95, 0.05]));
    points.push(Point::new([0.951, 0.052]));
    let loner = points.len() as u32;
    points.push(Point::new([0.05, 0.95]));

    let eps = 0.02;
    let tree = RStarTree::bulk_load_str(&points, RTreeConfig::default());
    let output = CsjJoin::new(eps).with_window(10).run(&tree);

    println!(
        "join produced {} rows ({} groups); largest groups: {:?}",
        output.items.len(),
        output.num_groups(),
        &output.group_sizes()[..output.group_sizes().len().min(5)]
    );

    // 1. Rows of size <= 2: candidate unusual pairs.
    let suspicious = small_rows(&output, 2);
    println!("{} rows of size <= 2 (candidate unusual pairs)", suspicious.len());

    // 2. Cohesion scores: the isolated pair and the loner must rank at
    // the bottom.
    let scores = CohesionScores::from_output(&output);
    let outliers = scores.outliers(points.len(), 2);
    println!("lowest-cohesion records (id, score): {:?}", &outliers[..outliers.len().min(8)]);

    let flagged: Vec<u32> = outliers.iter().map(|&(id, _)| id).collect();
    assert!(flagged.contains(&loner), "the loner must be flagged");
    assert!(
        flagged.contains(&planted_pair.0) && flagged.contains(&planted_pair.1),
        "the planted pair must be flagged"
    );
    println!(
        "planted anomalies recovered: pair ({}, {}) and loner {} ✓",
        planted_pair.0, planted_pair.1, loner
    );
}
