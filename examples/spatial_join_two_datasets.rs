//! Spatial join of two datasets (§IV-D "Algorithm Extensions").
//!
//! Joins two different road networks — e.g. "which road endpoints of
//! network A are within ε of network B?" — using the dual-tree variants,
//! including across *different* index types (R*-tree vs M-tree).
//!
//! ```sh
//! cargo run --release --example spatial_join_two_datasets
//! ```

use compact_similarity_joins::prelude::*;
use csj_core::spatial::{SpatialJoin, SpatialMode};
use csj_data::roads::{road_network, RoadConfig};
use csj_index::mtree::{MTree, MTreeConfig};

fn main() {
    let make = |seed: u64| {
        road_network(&RoadConfig {
            n_points: 10_000,
            cores: 3,
            core_sigma: 0.07,
            rural_fraction: 0.3,
            grid_snap_prob: 0.8,
            step: 0.003,
            mean_road_len: 0.05,
            seed,
        })
    };
    let left_pts = make(1);
    let right_pts = make(2);

    let left = RStarTree::bulk_load_str(&left_pts, RTreeConfig::default());
    let right = RStarTree::bulk_load_str(&right_pts, RTreeConfig::default());

    let eps = 0.01;
    let width = 5;

    let standard = SpatialJoin::new(eps, SpatialMode::Standard).run(&left, &right);
    let compact = SpatialJoin::new(eps, SpatialMode::CompactWindowed(10)).run(&left, &right);

    println!("cross links: {}", standard.expanded_link_set().len());
    println!(
        "standard: {:>8} rows {:>12} bytes",
        standard.items.len(),
        standard.total_bytes(width)
    );
    println!(
        "compact : {:>8} rows {:>12} bytes ({:.1}x smaller)",
        compact.items.len(),
        compact.total_bytes(width),
        standard.total_bytes(width) as f64 / compact.total_bytes(width) as f64
    );
    assert_eq!(standard.expanded_link_set(), compact.expanded_link_set());
    println!("compact spatial join is lossless ✓");

    // The trait-based design joins across index *types* too: R*-tree on
    // the left, metric tree on the right.
    let right_mtree = MTree::from_points(&right_pts, MTreeConfig::default());
    let mixed = SpatialJoin::new(eps, SpatialMode::CompactWindowed(10)).run(&left, &right_mtree);
    assert_eq!(mixed.expanded_link_set(), standard.expanded_link_set());
    println!("R*-tree ⋈ M-tree join agrees ✓");
}
