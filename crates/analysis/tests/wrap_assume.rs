use csj_analysis::dataflow::probe_intervals;

#[test]
fn assume_wrap_soundness_check() {
    // Concretely (wrapping u64): x0 = 0 -> x0 - 15 wraps to 2^64-15,
    // guard (x0 - 15) >= v0 is TRUE for v0 = 5, and p = x0 = 0.
    let src = "fn f(v0: u64) { let x0 = 0; if (x0 - 15) >= v0 { let p = x0; probe(p); } }";
    let v = probe_intervals(src);
    println!("probe results: {v:?}");
    if let Some((_, av)) = v.first() {
        assert!(av.lo <= 0, "UNSOUND: abstract lo {} excludes concrete value 0", av.lo);
    } else {
        println!("branch judged unreachable (also unsound if concretely reachable)");
        panic!("probe abstractly unreachable but concretely reachable");
    }
}
