//! The linter's strongest fixture is the workspace itself: this test
//! keeps `csj-lint` at zero unsuppressed findings on the live tree, so a
//! new unjustified `unwrap`/`Relaxed`/`Instant::now` fails `cargo test`
//! even before CI runs the dedicated lint job.

use csj_analysis::{all_rules, analyze_workspace};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/analysis/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().and_then(Path::parent).expect("workspace root")
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let report = analyze_workspace(workspace_root()).expect("workspace walk");
    let bad: Vec<String> = report
        .files
        .iter()
        .flat_map(|f| f.report.diagnostics.iter())
        .map(|d| format!("  {}:{}:{}: [{}] {}", d.file, d.line, d.col, d.rule, d.message))
        .collect();
    assert!(
        bad.is_empty(),
        "csj-lint found {} unsuppressed finding(s):\n{}",
        bad.len(),
        bad.join("\n")
    );
}

#[test]
fn workspace_scan_covers_every_crate() {
    let report = analyze_workspace(workspace_root()).expect("workspace walk");
    for needle in [
        "crates/core/",
        "crates/geom/",
        "crates/index/",
        "crates/storage/",
        "crates/analysis/",
        "crates/model/",
    ] {
        assert!(
            report.files.iter().any(|f| f.rel_path.starts_with(needle)),
            "scan must include {needle}",
        );
    }
}

#[test]
fn every_suppression_names_a_real_rule() {
    // Guards against typo'd allows rotting silently: an unknown rule is a
    // meta finding, so this is implied by zero-findings — but assert the
    // rule registry itself is intact too.
    let names: Vec<&str> = all_rules().iter().map(|r| r.name).collect();
    assert_eq!(
        names,
        [
            "panic-safety",
            "atomics-discipline",
            "float-discipline",
            "determinism",
            "error-hygiene",
            "sync-facade",
            "unsafe-discipline",
            "guard-discipline",
            "lock-order",
            "io-under-lock",
            "unsafe-bounds",
            "padding-invariant"
        ]
    );
}
