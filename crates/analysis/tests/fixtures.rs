//! Golden tests: each rule fires on its bad fixture at the expected
//! lines and stays silent on its good fixture.

use csj_analysis::{analyze_source, CrateKind, FileRole, META_RULE};

/// Runs a fixture as library source under the given workspace-relative
/// path and returns `(unsuppressed (rule, line), suppressed count)`.
fn run(rel_path: &str, source: &str) -> (Vec<(String, u32)>, usize) {
    let report = analyze_source(rel_path, source, CrateKind::Library, FileRole::Src);
    let fired = report.diagnostics.iter().map(|d| (d.rule.to_string(), d.line)).collect::<Vec<_>>();
    (fired, report.suppressed)
}

fn lines_of(fired: &[(String, u32)], rule: &str) -> Vec<u32> {
    fired.iter().filter(|(r, _)| r == rule).map(|&(_, l)| l).collect()
}

#[test]
fn panic_safety_bad_fires_on_every_forbidden_form() {
    let (fired, _) =
        run("crates/core/src/fixture.rs", include_str!("fixtures/panic_safety_bad.rs"));
    assert_eq!(lines_of(&fired, "panic-safety"), vec![4, 8, 12, 16, 20], "fired: {fired:?}");
    assert_eq!(fired.len(), 5, "no other rule may fire: {fired:?}");
}

#[test]
fn panic_safety_good_is_silent() {
    let (fired, suppressed) =
        run("crates/core/src/fixture.rs", include_str!("fixtures/panic_safety_good.rs"));
    assert!(fired.is_empty(), "fired: {fired:?}");
    assert_eq!(suppressed, 1, "the justified lock-poisoning unwrap is suppressed");
}

#[test]
fn panic_safety_ignores_harness_and_bench_code() {
    let src = include_str!("fixtures/panic_safety_bad.rs");
    for (kind, role) in [
        (CrateKind::Library, FileRole::Harness),
        (CrateKind::Bench, FileRole::Src),
        (CrateKind::Shim, FileRole::Src),
    ] {
        let report = analyze_source("crates/x/src/f.rs", src, kind, role);
        let panics = report.diagnostics.iter().filter(|d| d.rule == "panic-safety").count();
        assert_eq!(panics, 0, "{kind:?}/{role:?} must be exempt");
    }
}

#[test]
fn atomics_bad_fires_per_bare_ordering() {
    let (fired, _) = run("crates/core/src/fixture.rs", include_str!("fixtures/atomics_bad.rs"));
    assert_eq!(lines_of(&fired, "atomics-discipline"), vec![6, 7, 8], "fired: {fired:?}");
}

#[test]
fn atomics_good_is_silent() {
    let (fired, _) = run("crates/core/src/fixture.rs", include_str!("fixtures/atomics_good.rs"));
    assert!(fired.is_empty(), "fired: {fired:?}");
}

#[test]
fn float_eq_bad_fires_in_geom_scope_only() {
    let src = include_str!("fixtures/float_eq_bad.rs");
    let (fired, _) = run("crates/geom/src/fixture.rs", src);
    assert_eq!(lines_of(&fired, "float-discipline"), vec![4, 8, 12], "fired: {fired:?}");
    // The same text outside the numeric-kernel crates is not in scope.
    let (elsewhere, _) = run("crates/data/src/fixture.rs", src);
    assert!(lines_of(&elsewhere, "float-discipline").is_empty(), "fired: {elsewhere:?}");
}

#[test]
fn float_eq_good_is_silent() {
    let (fired, _) = run("crates/geom/src/fixture.rs", include_str!("fixtures/float_eq_good.rs"));
    assert!(fired.is_empty(), "fired: {fired:?}");
}

#[test]
fn determinism_bad_fires_in_parallel_scope_only() {
    let src = include_str!("fixtures/determinism_bad.rs");
    let (fired, _) = run("crates/core/src/parallel/fixture.rs", src);
    assert_eq!(lines_of(&fired, "determinism"), vec![4, 5, 10, 11], "fired: {fired:?}");
    // Outside the replay-sensitive modules the same code is fine.
    let (elsewhere, _) = run("crates/core/src/output.rs", src);
    assert!(lines_of(&elsewhere, "determinism").is_empty(), "fired: {elsewhere:?}");
}

#[test]
fn determinism_good_is_silent() {
    let (fired, suppressed) =
        run("crates/core/src/parallel/fixture.rs", include_str!("fixtures/determinism_good.rs"));
    assert!(fired.is_empty(), "fired: {fired:?}");
    assert_eq!(suppressed, 1, "the justified deadline read is suppressed");
}

#[test]
fn error_hygiene_bad_fires_with_and_without_docs() {
    let (fired, _) =
        run("crates/core/src/fixture.rs", include_str!("fixtures/error_hygiene_bad.rs"));
    assert_eq!(lines_of(&fired, "error-hygiene"), vec![4, 8], "fired: {fired:?}");
}

#[test]
fn error_hygiene_good_is_silent() {
    let (fired, _) =
        run("crates/core/src/fixture.rs", include_str!("fixtures/error_hygiene_good.rs"));
    assert!(fired.is_empty(), "fired: {fired:?}");
}

#[test]
fn sync_facade_bad_fires_in_core_only() {
    let src = include_str!("fixtures/sync_facade_bad.rs");
    let (fired, _) = run("crates/core/src/fixture.rs", src);
    assert_eq!(lines_of(&fired, "sync-facade"), vec![4, 7, 8], "fired: {fired:?}");
    // Other crates are out of scope — only csj-core is model-checked.
    let (elsewhere, _) = run("crates/geom/src/fixture.rs", src);
    assert!(lines_of(&elsewhere, "sync-facade").is_empty(), "fired: {elsewhere:?}");
    // The facade module itself is the one legitimate `std::sync` site.
    let (facade, _) = run("crates/core/src/sync.rs", src);
    assert!(lines_of(&facade, "sync-facade").is_empty(), "fired: {facade:?}");
}

#[test]
fn sync_facade_good_is_silent() {
    let (fired, suppressed) =
        run("crates/core/src/fixture.rs", include_str!("fixtures/sync_facade_good.rs"));
    assert!(fired.is_empty(), "fired: {fired:?}");
    assert_eq!(suppressed, 1, "the justified PoisonError import is suppressed");
}

#[test]
fn unsafe_bad_fires_per_bare_block() {
    let (fired, _) = run("crates/geom/src/fixture.rs", include_str!("fixtures/unsafe_bad.rs"));
    assert_eq!(lines_of(&fired, "unsafe-discipline"), vec![4, 6, 8], "fired: {fired:?}");
    assert_eq!(fired.len(), 3, "no other rule may fire: {fired:?}");
}

#[test]
fn unsafe_good_is_silent() {
    let (fired, _) = run("crates/geom/src/fixture.rs", include_str!("fixtures/unsafe_good.rs"));
    assert!(fired.is_empty(), "fired: {fired:?}");
}

#[test]
fn unsafe_discipline_ignores_harness_code() {
    let src = include_str!("fixtures/unsafe_bad.rs");
    let report = analyze_source("crates/geom/src/f.rs", src, CrateKind::Library, FileRole::Harness);
    let hits = report.diagnostics.iter().filter(|d| d.rule == "unsafe-discipline").count();
    assert_eq!(hits, 0, "harness files are exempt");
}

#[test]
fn guard_discipline_bad_fires_on_leak_double_unpin_and_blocking() {
    let (fired, _) =
        run("crates/index/src/fixture.rs", include_str!("fixtures/guard_discipline_bad.rs"));
    // `?`-path leak, early-return leak, double unpin, guard across lock.
    assert_eq!(lines_of(&fired, "guard-discipline"), vec![8, 17, 25, 30], "fired: {fired:?}");
    assert_eq!(fired.len(), 4, "no other rule may fire: {fired:?}");
}

#[test]
fn guard_discipline_good_is_silent() {
    let (fired, _) =
        run("crates/index/src/fixture.rs", include_str!("fixtures/guard_discipline_good.rs"));
    assert!(fired.is_empty(), "fired: {fired:?}");
}

#[test]
fn guard_discipline_is_scoped_to_the_out_of_core_layer() {
    let src = include_str!("fixtures/guard_discipline_bad.rs");
    let (elsewhere, _) = run("crates/geom/src/fixture.rs", src);
    assert!(lines_of(&elsewhere, "guard-discipline").is_empty(), "fired: {elsewhere:?}");
}

#[test]
fn lock_order_bad_reports_the_cycle_once() {
    let (fired, _) =
        run("crates/storage/src/fixture.rs", include_str!("fixtures/lock_order_bad.rs"));
    // One cycle, anchored at the deterministic representative edge.
    assert_eq!(lines_of(&fired, "lock-order"), vec![8], "fired: {fired:?}");
    assert_eq!(fired.len(), 1, "no other rule may fire: {fired:?}");
}

#[test]
fn lock_order_good_is_silent() {
    let (fired, _) =
        run("crates/storage/src/fixture.rs", include_str!("fixtures/lock_order_good.rs"));
    assert!(fired.is_empty(), "fired: {fired:?}");
}

#[test]
fn io_under_lock_bad_fires_direct_and_interprocedural() {
    let (fired, _) =
        run("crates/storage/src/fixture.rs", include_str!("fixtures/io_under_lock_bad.rs"));
    // Under a RefCell borrow, under a mutex, and via a callee summary.
    assert_eq!(lines_of(&fired, "io-under-lock"), vec![8, 15, 25], "fired: {fired:?}");
    assert_eq!(fired.len(), 3, "no other rule may fire: {fired:?}");
}

#[test]
fn io_under_lock_good_is_silent() {
    let (fired, _) =
        run("crates/storage/src/fixture.rs", include_str!("fixtures/io_under_lock_good.rs"));
    assert!(fired.is_empty(), "fired: {fired:?}");
}

#[test]
fn suppression_mechanics() {
    let (fired, suppressed) =
        run("crates/core/src/fixture.rs", include_str!("fixtures/suppression_mechanics.rs"));
    // A reasonless allow and an unknown-rule allow are themselves findings,
    // and the original diagnostics they failed to suppress survive.
    assert_eq!(lines_of(&fired, META_RULE), vec![9, 14], "fired: {fired:?}");
    assert_eq!(lines_of(&fired, "panic-safety"), vec![10, 15, 21], "fired: {fired:?}");
    // The reasoned allow and the multi-rule allow suppress one unwrap each.
    assert_eq!(suppressed, 2);
}

#[test]
fn unsafe_bounds_bad_fires_on_every_undischarged_claim() {
    let (fired, _) =
        run("crates/geom/src/fixture.rs", include_str!("fixtures/unsafe_bounds_bad.rs"));
    // Unguarded pointer deref, 2-lane guard vs 4-lane load, unguarded
    // get_unchecked, unestablished BOUNDS obligation, missing alignment.
    assert_eq!(lines_of(&fired, "unsafe-bounds"), vec![5, 11, 16, 21, 27], "fired: {fired:?}");
    assert_eq!(fired.len(), 5, "no other rule may fire: {fired:?}");
}

#[test]
fn unsafe_bounds_good_discharges_every_claim_with_pass_notes() {
    let report = analyze_source(
        "crates/geom/src/fixture.rs",
        include_str!("fixtures/unsafe_bounds_good.rs"),
        CrateKind::Library,
        FileRole::Src,
    );
    assert!(report.diagnostics.is_empty(), "diagnostics: {:?}", report.diagnostics);
    let notes: Vec<(u32, Vec<u32>)> = report
        .notes
        .iter()
        .filter(|n| n.rule == "unsafe-bounds")
        .map(|n| (n.line, n.related.iter().map(|r| r.line).collect()))
        .collect();
    // Each machine-discharged site gets a pass note pointing at the
    // discharging guard line; the chunks_exact case is discharged by the
    // iterator's length fact, which has no guard line to point at.
    assert_eq!(
        notes,
        vec![(7, vec![5]), (16, vec![14]), (23, vec![]), (32, vec![30]), (39, vec![36]),],
        "notes: {notes:?}"
    );
}

#[test]
fn unsafe_bounds_is_scoped_to_simd_and_paging_crates() {
    // The same bad fixture analyzed outside geom/index/storage stays quiet:
    // the rule is scoped to where raw SIMD loads and paged I/O live.
    let (fired, _) =
        run("crates/shard/src/fixture.rs", include_str!("fixtures/unsafe_bounds_bad.rs"));
    assert!(lines_of(&fired, "unsafe-bounds").is_empty(), "fired: {fired:?}");
}

#[test]
fn padding_invariant_bad_fires_on_every_contract_breach() {
    let (fired, _) =
        run("crates/core/src/fixture.rs", include_str!("fixtures/padding_invariant_bad.rs"));
    // Zero-filled construction, zero-filled resize, non-4-multiple
    // slab_len, silent mutation, unguarded fit-mask probe.
    assert_eq!(lines_of(&fired, "padding-invariant"), vec![4, 9, 13, 17, 21], "fired: {fired:?}");
    assert_eq!(fired.len(), 5, "no other rule may fire: {fired:?}");
}

#[test]
fn padding_invariant_good_is_silent() {
    let (fired, _) =
        run("crates/core/src/fixture.rs", include_str!("fixtures/padding_invariant_good.rs"));
    assert!(fired.is_empty(), "fired: {fired:?}");
}

#[test]
fn flow_rules_cover_the_shard_crate() {
    // Satellite scope extension: the dataflow rules now run over
    // crates/shard as well, with identical verdicts.
    let (fired, _) =
        run("crates/shard/src/fixture.rs", include_str!("fixtures/guard_discipline_bad.rs"));
    assert_eq!(lines_of(&fired, "guard-discipline"), vec![8, 17, 25, 30], "fired: {fired:?}");
}
