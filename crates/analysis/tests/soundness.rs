//! Soundness property test for the value-range abstract interpreter.
//!
//! Random mini-programs over `u64` variables — straight-line arithmetic,
//! branches, `for` ranges and widened `while` counters — are rendered to
//! source and pushed through `dataflow::probe_intervals`. The same
//! program AST is then executed concretely with Rust's wrapping `u64`
//! semantics. Every concretely observed probe value must fall inside the
//! abstract interval and respect the congruence: the abstraction may
//! lose precision, never truth.

use std::collections::HashMap;

use csj_analysis::dataflow::probe_intervals;
use csj_analysis::domain::AbsVal;
use proptest::prelude::*;

const N_PARAMS: usize = 3;
const N_VARS: usize = 4;

#[derive(Clone, Debug)]
enum Expr {
    Const(u64),
    Param(usize),
    Var(usize),
    /// Infix binary operator, fully parenthesised on render.
    Bin(&'static str, Box<Expr>, Box<Expr>),
    /// Interpreted method call (`min`/`max`/`saturating_*`).
    Method(&'static str, Box<Expr>, Box<Expr>),
}

#[derive(Clone, Debug)]
enum Stmt {
    /// `x<v> = e;`
    Assign(usize, Expr),
    /// `let p<k> = x<v>; probe(p<k>);`
    Probe(usize, usize),
    /// `if x<v> <op> <rhs> { .. } else { .. }`
    If(usize, &'static str, Expr, Vec<Stmt>, Vec<Stmt>),
    /// `for i<id> in lo..hi { x<w> = i<id>; .. }`
    For(usize, u64, u64, usize, Vec<Stmt>),
    /// `x<v> = start; while x<v> < bound { ..; x<v> = x<v> + step; }`
    WhileInc(usize, u64, u64, u64, Vec<Stmt>),
}

const INFIX: &[&str] = &["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"];
const METHODS: &[&str] = &["min", "max", "saturating_add", "saturating_sub"];
const CMPS: &[&str] = &["<", "<=", ">", ">=", "==", "!="];

/// Tiny deterministic generator over a caller-supplied seed stream.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen { state: seed | 1 }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*: cheap, deterministic, good enough to vary shapes.
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn expr(&mut self, depth: u32) -> Expr {
        let leaf = |g: &mut Gen| match g.below(3) {
            0 => Expr::Const(g.below(21)),
            1 => Expr::Param(g.below(N_PARAMS as u64) as usize),
            _ => Expr::Var(g.below(N_VARS as u64) as usize),
        };
        if depth == 0 || self.below(3) == 0 {
            return leaf(self);
        }
        if self.below(4) == 0 {
            let op = METHODS[self.below(METHODS.len() as u64) as usize];
            return Expr::Method(
                op,
                Box::new(self.expr(depth - 1)),
                Box::new(self.expr(depth - 1)),
            );
        }
        let op = INFIX[self.below(INFIX.len() as u64) as usize];
        let rhs = match op {
            // Constant divisors and shift counts: division by zero would
            // panic concretely before the probe, and the abstract shift
            // only refines on exact counts.
            "/" | "%" => Expr::Const(1 + self.below(8)),
            "<<" | ">>" => Expr::Const(self.below(9)),
            _ => self.expr(depth - 1),
        };
        Expr::Bin(op, Box::new(self.expr(depth - 1)), Box::new(rhs))
    }

    /// A statement block. `forbidden` lists loop counters that the body
    /// must not reassign (that would break concrete termination).
    fn block(
        &mut self,
        depth: u32,
        len: u64,
        forbidden: &[usize],
        probes: &mut usize,
    ) -> Vec<Stmt> {
        let mut out = Vec::new();
        let assignable = |g: &mut Gen, forbidden: &[usize]| -> Option<usize> {
            let free: Vec<usize> = (0..N_VARS).filter(|v| !forbidden.contains(v)).collect();
            if free.is_empty() {
                None
            } else {
                Some(free[g.below(free.len() as u64) as usize])
            }
        };
        for _ in 0..len {
            match self.below(if depth == 0 { 3 } else { 6 }) {
                0 | 1 => {
                    if let Some(v) = assignable(self, forbidden) {
                        let e = self.expr(2);
                        out.push(Stmt::Assign(v, e));
                    }
                }
                2 => {
                    let v = self.below(N_VARS as u64) as usize;
                    out.push(Stmt::Probe(*probes, v));
                    *probes += 1;
                }
                3 => {
                    let v = self.below(N_VARS as u64) as usize;
                    let op = CMPS[self.below(CMPS.len() as u64) as usize];
                    let rhs = if self.below(2) == 0 {
                        Expr::Const(self.below(33))
                    } else {
                        Expr::Var(self.below(N_VARS as u64) as usize)
                    };
                    let (tn, en) = (1 + self.below(3), self.below(3));
                    let then = self.block(depth - 1, tn, forbidden, probes);
                    let els = self.block(depth - 1, en, forbidden, probes);
                    out.push(Stmt::If(v, op, rhs, then, els));
                }
                4 => {
                    let lo = self.below(9);
                    let hi = lo + self.below(17);
                    if let Some(w) = assignable(self, forbidden) {
                        let id = *probes; // unique enough for a loop-var name
                        let bn = 1 + self.below(3);
                        let body = self.block(depth - 1, bn, forbidden, probes);
                        out.push(Stmt::For(id, lo, hi, w, body));
                    }
                }
                _ => {
                    if let Some(v) = assignable(self, forbidden) {
                        let start = self.below(5);
                        let bound = self.below(33);
                        let step = 1 + self.below(4);
                        let mut inner = forbidden.to_vec();
                        inner.push(v);
                        let bn = 1 + self.below(2);
                        let body = self.block(depth - 1, bn, &inner, probes);
                        out.push(Stmt::WhileInc(v, start, bound, step, body));
                    }
                }
            }
        }
        out
    }
}

// ---- rendering -------------------------------------------------------------

fn render_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Const(c) => out.push_str(&c.to_string()),
        Expr::Param(p) => out.push_str(&format!("v{p}")),
        Expr::Var(v) => out.push_str(&format!("x{v}")),
        Expr::Bin(op, a, b) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(&format!(" {op} "));
            render_expr(b, out);
            out.push(')');
        }
        Expr::Method(m, a, b) => {
            render_expr(a, out);
            out.push_str(&format!(".{m}("));
            render_expr(b, out);
            out.push(')');
        }
    }
}

fn render_block(stmts: &[Stmt], out: &mut String) {
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                out.push_str(&format!("x{v} = "));
                render_expr(e, out);
                out.push_str(";\n");
            }
            Stmt::Probe(k, v) => {
                out.push_str(&format!("let p{k} = x{v};\nprobe(p{k});\n"));
            }
            Stmt::If(v, op, rhs, then, els) => {
                out.push_str(&format!("if x{v} {op} "));
                render_expr(rhs, out);
                out.push_str(" {\n");
                render_block(then, out);
                out.push_str("} else {\n");
                render_block(els, out);
                out.push_str("}\n");
            }
            Stmt::For(id, lo, hi, w, body) => {
                out.push_str(&format!("for i{id} in {lo}..{hi} {{\nx{w} = i{id};\n"));
                render_block(body, out);
                out.push_str("}\n");
            }
            Stmt::WhileInc(v, start, bound, step, body) => {
                out.push_str(&format!("x{v} = {start};\nwhile x{v} < {bound} {{\n"));
                render_block(body, out);
                out.push_str(&format!("x{v} = x{v} + {step};\n}}\n"));
            }
        }
    }
}

fn render_program(stmts: &[Stmt]) -> String {
    let mut src = String::from("fn f(v0: u64, v1: u64, v2: u64) {\n");
    for v in 0..N_VARS {
        src.push_str(&format!("let mut x{v} = 0;\n"));
    }
    render_block(stmts, &mut src);
    src.push_str("}\n");
    src
}

// ---- concrete interpreter --------------------------------------------------

fn eval(e: &Expr, params: &[u64; N_PARAMS], vars: &[u64; N_VARS]) -> u64 {
    match e {
        Expr::Const(c) => *c,
        Expr::Param(p) => params[*p],
        Expr::Var(v) => vars[*v],
        Expr::Bin(op, a, b) => {
            let (a, b) = (eval(a, params, vars), eval(b, params, vars));
            match *op {
                "+" => a.wrapping_add(b),
                "-" => a.wrapping_sub(b),
                "*" => a.wrapping_mul(b),
                "/" => a / b, // divisor is a generated constant ≥ 1
                "%" => a % b,
                "&" => a & b,
                "|" => a | b,
                "^" => a ^ b,
                "<<" => a << (b & 63),
                ">>" => a >> (b & 63),
                other => unreachable!("op {other}"),
            }
        }
        Expr::Method(m, a, b) => {
            let (a, b) = (eval(a, params, vars), eval(b, params, vars));
            match *m {
                "min" => a.min(b),
                "max" => a.max(b),
                "saturating_add" => a.saturating_add(b),
                "saturating_sub" => a.saturating_sub(b),
                other => unreachable!("method {other}"),
            }
        }
    }
}

fn cmp(op: &str, a: u64, b: u64) -> bool {
    match op {
        "<" => a < b,
        "<=" => a <= b,
        ">" => a > b,
        ">=" => a >= b,
        "==" => a == b,
        _ => a != b,
    }
}

fn run_block(
    stmts: &[Stmt],
    params: &[u64; N_PARAMS],
    vars: &mut [u64; N_VARS],
    observed: &mut Vec<(usize, u64)>,
) {
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => vars[*v] = eval(e, params, vars),
            Stmt::Probe(k, v) => observed.push((*k, vars[*v])),
            Stmt::If(v, op, rhs, then, els) => {
                let r = eval(rhs, params, vars);
                if cmp(op, vars[*v], r) {
                    run_block(then, params, vars, observed);
                } else {
                    run_block(els, params, vars, observed);
                }
            }
            Stmt::For(_, lo, hi, w, body) => {
                for i in *lo..*hi {
                    vars[*w] = i;
                    run_block(body, params, vars, observed);
                }
            }
            Stmt::WhileInc(v, start, bound, step, body) => {
                vars[*v] = *start;
                while vars[*v] < *bound {
                    run_block(body, params, vars, observed);
                    vars[*v] += step; // bound ≤ 32, step ≤ 4: no overflow
                }
            }
        }
    }
}

// ---- the property ----------------------------------------------------------

fn check_soundness(seed: u64, inputs: &[[u64; N_PARAMS]]) {
    let mut gen = Gen::new(seed);
    let mut probes = 0usize;
    let depth = 1 + gen.below(2) as u32;
    let top_len = 3 + gen.below(4);
    let program = gen.block(depth, top_len, &[], &mut probes);
    if probes == 0 {
        return; // nothing to observe
    }
    let src = render_program(&program);

    let abstract_vals: HashMap<String, AbsVal> = probe_intervals(&src).into_iter().collect();

    for params in inputs {
        let mut vars = [0u64; N_VARS];
        let mut observed = Vec::new();
        run_block(&program, params, &mut vars, &mut observed);
        for (k, value) in observed {
            let name = format!("p{k}");
            let Some(av) = abstract_vals.get(&name) else {
                panic!("probe {name} fired concretely but was abstractly unreachable\n{src}");
            };
            let v = i128::from(value);
            assert!(v >= av.lo, "{name}={value} below lo {av:?}\n{src}");
            if let Some(hi) = av.hi {
                assert!(v <= hi, "{name}={value} above hi {av:?}\n{src}");
            }
            if av.mult == 0 {
                assert_eq!(value, 0, "{name}: mult 0 claims the constant 0 {av:?}\n{src}");
            } else if av.mult > 1 {
                assert_eq!(value % av.mult, 0, "{name}={value} breaks congruence {av:?}\n{src}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For random programs and random inputs, the abstract verdict
    /// contains every concrete observation.
    #[test]
    fn abstract_interpretation_over_approximates_concrete_runs(
        seed in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
    ) {
        // Each program runs on the raw inputs and on small ones (small
        // values actually take the guarded branches and enter loops).
        check_soundness(seed, &[[a, b, c], [a % 40, b % 40, c % 40], [0, 1, 4]]);
    }
}
