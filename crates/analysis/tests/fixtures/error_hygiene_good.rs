//! Fixture: error-hygiene-clean public API.

/// Parses a config string.
///
/// # Errors
///
/// Returns a message when `s` is not a decimal integer.
pub fn parse(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "bad".to_string())
}

/// Infallible functions need no section.
pub fn double(x: u32) -> u32 {
    x * 2
}

/// Crate-private fallible functions are not public API.
pub(crate) fn internal(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "bad".to_string())
}

fn private(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "bad".to_string())
}

/// Result-free return types that merely *mention* Result in a generic
/// parameter are still flagged conservatively, so this one documents.
///
/// # Errors
///
/// Returns the callback's error unchanged.
pub fn run<E>(f: impl FnOnce() -> Result<(), E>) -> Result<(), E> {
    f()
}
