//! Fixture: determinism-adjacent code the rule must NOT flag.

/// A deterministic splitmix-style hash: mentions no forbidden source.
pub fn mix(seed: u64, i: u64) -> u64 {
    let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
    x ^= x >> 29;
    x.wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

/// A justified wall-clock read carries a reasoned suppression.
pub fn deadline_check() -> std::time::Duration {
    // csj-lint: allow(determinism) — wall clock feeds deadline accounting
    // only; it never influences which pairs the join emits.
    std::time::Instant::now().elapsed()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_things() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 1);
    }
}
