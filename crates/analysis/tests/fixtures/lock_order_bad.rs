//! Seeded lock-order cycle: one function takes `alpha` before `beta`,
//! another takes `beta` before `alpha`. Two threads running one each
//! can deadlock.

impl Scheduler {
    fn forward(&self) -> usize {
        let a = lock(&self.alpha);
        let b = lock(&self.beta);
        a.len() + b.len()
    }

    fn backward(&self) -> usize {
        let b = lock(&self.beta);
        let a = lock(&self.alpha);
        a.len() + b.len()
    }
}
