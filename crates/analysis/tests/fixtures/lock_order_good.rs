//! Consistent acquisition order: every function that needs both locks
//! takes `alpha` strictly before `beta`, and the short path drops the
//! first lock before taking the second.

impl Scheduler {
    fn forward(&self) -> usize {
        let a = lock(&self.alpha);
        let b = lock(&self.beta);
        a.len() + b.len()
    }

    fn also_forward(&self) -> usize {
        let a = lock(&self.alpha);
        let b = lock(&self.beta);
        b.len() - a.len()
    }

    fn sequential(&self) -> usize {
        let hint = {
            let b = lock(&self.beta);
            b.len()
        };
        let a = lock(&self.alpha);
        a.len() + hint
    }
}
