//! Fixture: float-comparison code the rule must NOT flag.

/// Integer equality is fine.
pub fn int_eq(x: u64) -> bool {
    x == 0
}

/// Epsilon comparison — the recommended pattern — has no `==` on floats.
pub fn near(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

/// An annotated exact comparison is allowed.
pub fn dedup_key(a: &[f64; 2], b: &[f64; 2]) -> bool {
    // FLOAT-EQ: exact duplicate collapse after a total_cmp sort; an
    // epsilon here would merge distinct vertices.
    a[0] == b[0] && a[1] == b[1]
}
