//! Fixture: non-SeqCst atomics without ORDERING justifications.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn unjustified(flag: &AtomicBool, n: &AtomicU64) -> u64 {
    flag.store(true, Ordering::Relaxed); // line 6: bare Relaxed
    n.fetch_add(1, Ordering::Release); // line 7: bare Release
    n.load(Ordering::Acquire) // line 8: bare Acquire
}
