//! Fixture: atomics the rule must NOT flag.

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// SeqCst is the conservative default; the rule audits departures from it.
pub fn seqcst(n: &AtomicU64) -> u64 {
    n.load(Ordering::SeqCst)
}

/// A justified relaxed access, annotated on its own line.
pub fn advisory(flag: &AtomicBool) -> bool {
    // ORDERING: advisory early-exit flag; a stale read only delays the
    // stop by one polling interval, and no data is published through it.
    flag.load(Ordering::Relaxed)
}

/// A justification trailing on the same line also counts.
pub fn counter(n: &AtomicU64) {
    n.fetch_add(1, Ordering::Relaxed); // ORDERING: monotone stat counter
}

/// `cmp::Ordering` variants are not atomics.
pub fn compare(a: u32, b: u32) -> std::cmp::Ordering {
    a.cmp(&b)
}
