//! Fixture: the SoA slab contract held correctly.

pub fn build_padded(n: usize) -> Vec<f64> {
    let slab_lo = vec![f64::INFINITY; n];
    slab_lo
}

pub fn refill_padded(slab_hi: &mut Vec<f64>, n: usize) {
    slab_hi.resize(n, f64::INFINITY);
}

fn slab_len_padded(cap: usize) -> usize {
    if cap == 0 {
        0
    } else {
        (cap + 3) & !3
    }
}

pub fn shrink_with_opt_out(slab_lo: &mut Vec<f64>, slab_ok: &mut bool) {
    *slab_ok = false;
    slab_lo.clear();
}

pub fn pick_guarded(lo: &[f64], hi: &[f64], eps_sq: f64) -> usize {
    if eps_sq < f64::INFINITY {
        mbr_fit_pick(lo, hi)
    } else {
        0
    }
}
