//! Fixture: raw loads whose bounds claims are machine-discharged (or
//! carried by an established BOUNDS obligation).

pub fn deref_guarded(xs: &[f64], i: usize) -> f64 {
    if i < xs.len() {
        // SAFETY: in bounds by the branch above.
        unsafe { *xs.as_ptr().add(i) }
    } else {
        0.0
    }
}

pub fn lane_load_asserted(xs: &[f64], i: usize) -> f64 {
    debug_assert!(i + 4 <= xs.len());
    // SAFETY: the assert above covers the full lane span.
    unsafe { _mm256_loadu_pd(xs.as_ptr().add(i)) }
}

pub fn chunked(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for c in xs.chunks_exact(4) {
        // SAFETY: chunks_exact(4) yields exactly-4-long slices.
        unsafe { acc += _mm256_loadu_pd(c.as_ptr().add(0)) };
    }
    acc
}

pub fn aligned_after_rounding(xs: &[f64], i: usize) -> f64 {
    let k = (i + 3) & !3;
    debug_assert!(k + 4 <= xs.len());
    // SAFETY: span asserted above; `k` is rounded to a whole lane.
    unsafe { _mm256_load_pd(xs.as_ptr().add(k)) }
}

pub fn obligation_established(xs: &[f64]) -> &[f64] {
    let n = xs.len();
    if n >= 8 {
        // SAFETY: BOUNDS(8 <= xs.len())
        unsafe { std::slice::from_raw_parts(xs.as_ptr(), 8) }
    } else {
        xs
    }
}
