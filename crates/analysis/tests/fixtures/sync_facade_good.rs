//! Fixture: csj-core code that respects the `crate::sync` facade.

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex};

/// Native scope spawning is not a facade concern: the model harness
/// mirrors the protocol instead of intercepting thread creation.
fn tally(n: &AtomicUsize) -> usize {
    std::thread::scope(|_| n.load(Ordering::SeqCst))
}

// csj-lint: allow(sync-facade) — PoisonError itself, not a primitive;
// carries no scheduling point to instrument.
use std::sync::PoisonError;

fn recover<T>(e: PoisonError<T>) -> T {
    e.into_inner()
}

fn share(v: u32) -> Arc<Mutex<u32>> {
    Arc::new(Mutex::new(v))
}

#[cfg(test)]
mod tests {
    // Test code executes natively, never under the model.
    use std::sync::Barrier;

    fn meet(b: &Barrier) {
        b.wait();
    }
}
