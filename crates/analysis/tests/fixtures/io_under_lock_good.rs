//! Clean I/O discipline: borrows end (or are dropped) before the disk
//! is touched, and borrows of the cell that owns the I/O object are
//! exempt — serializing the device behind its own cell is the point.

impl Pool {
    fn read_after_borrow(&self, page: u32) -> Vec<u8> {
        let staged = {
            let state = self.inner.borrow_mut();
            state.take_staged(page)
        };
        match staged {
            Some(bytes) => bytes,
            None => self.disk.read(page),
        }
    }

    fn write_after_drop(&self, page: u32, bytes: &[u8]) {
        let queue = lock(&self.queue);
        queue.push_back(page);
        drop(queue);
        self.disk.write(page, bytes);
    }

    fn io_cell_is_exempt(&self, page: u32) -> Vec<u8> {
        let pager = self.io.borrow_mut();
        pager.read(page)
    }
}
