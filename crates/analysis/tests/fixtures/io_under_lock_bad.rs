//! Seeded io-under-lock bugs: direct disk I/O inside a `RefCell`
//! borrow of the pool state, inside a mutex critical section, and
//! reached through a callee whose summary performs I/O.

impl Pool {
    fn read_under_borrow(&self, page: u32) -> Vec<u8> {
        let state = self.inner.borrow_mut();
        let bytes = self.disk.read(page);
        state.admit(page);
        bytes
    }

    fn write_under_mutex(&self, page: u32, bytes: &[u8]) {
        let queue = lock(&self.queue);
        self.disk.write(page, bytes);
        queue.push_back(page);
    }

    fn spill_pages(&self, page: u32) {
        self.disk.write(page, 0);
    }

    fn spill_under_borrow(&self, page: u32) {
        let state = self.inner.borrow_mut();
        self.spill_pages(page);
        state.admit(page);
    }
}
