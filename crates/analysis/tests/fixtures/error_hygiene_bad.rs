//! Fixture: fallible public API without `# Errors` documentation.

/// Parses a config string.
pub fn parse(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "bad".to_string())
}

pub fn undocumented(path: &str) -> std::io::Result<String> {
    std::fs::read_to_string(path)
}
