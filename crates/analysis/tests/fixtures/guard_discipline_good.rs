//! Clean pin/guard usage: every pin is unpinned on every path, RAII
//! transfer into a `*Guard` struct absorbs the pin, and guards are
//! dropped before anything that can block.

impl Store {
    fn balanced_paths(&self, page: u32) -> Result<(), Error> {
        self.pool.pin(page);
        match self.decode(page) {
            Ok(node) => {
                self.index.insert(page, node);
                self.pool.unpin(page);
                Ok(())
            }
            Err(e) => {
                self.pool.unpin(page);
                Err(e)
            }
        }
    }

    fn raii_transfer(&self, page: u32) -> NodeGuard<'_> {
        self.pool.pin(page);
        NodeGuard { store: self, page }
    }

    fn drop_before_blocking(&self, page: u32) -> Result<usize, Error> {
        let guard = self.store.node(page)?;
        let width = guard.len();
        drop(guard);
        let queue = lock(&self.queue);
        queue.push_back(width);
        Ok(width)
    }

    fn scoped_guard(&self, page: u32) -> Result<usize, Error> {
        let width = {
            let guard = self.store.node(page)?;
            guard.len()
        };
        let queue = lock(&self.queue);
        queue.push_back(width);
        Ok(width)
    }
}
