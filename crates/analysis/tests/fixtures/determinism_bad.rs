//! Fixture: nondeterminism sources (linted under crates/core/src/parallel/).

pub fn timed() -> u64 {
    let t0 = std::time::Instant::now(); // line 4: wall clock
    let _wall = std::time::SystemTime::now(); // line 5: system time
    t0.elapsed().as_nanos() as u64
}

pub fn seeded() -> u64 {
    let mut _rng = rand::thread_rng(); // line 10: ambient RNG
    rand::random() // line 11: ambient RNG
}
