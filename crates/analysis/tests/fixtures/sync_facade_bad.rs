//! Fixture: direct `std::sync` references inside csj-core.

// An import is the common leak.
use std::sync::atomic::{AtomicUsize, Ordering};

// A fully qualified inline path leaks just the same.
fn fresh() -> std::sync::Mutex<u32> {
    std::sync::Mutex::new(0)
}

fn count(n: &AtomicUsize) -> usize {
    n.load(Ordering::SeqCst)
}
