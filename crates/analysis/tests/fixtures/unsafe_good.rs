//! Fixture: the forms unsafe-discipline accepts.

/// Reads through a raw pointer.
///
/// # Safety
///
/// `p` must be valid for reads (declaration side: no block to flag —
/// callers' `unsafe {}` sites carry their own SAFETY comments).
pub unsafe fn read_raw(p: *const u64) -> u64 {
    // SAFETY: `p` is valid for reads per this function's own contract.
    unsafe { *p }
}

pub fn justified(p: *const u64) -> u64 {
    let a = unsafe { *p }; // SAFETY: trailing form — `p` is valid per caller contract.
    // SAFETY: the comment-above form, possibly spanning several
    // lines, covers the next code line.
    let b = unsafe { *p };
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let x = 7u64;
        let y = unsafe { *(&x as *const u64) };
        assert_eq!(y, 7);
    }
}
