//! Fixture: raw loads whose bounds claims are not discharged.

pub fn deref_unguarded(xs: &[f64], i: usize) -> f64 {
    // SAFETY: caller keeps `i` in bounds (prose only — not checkable).
    unsafe { *xs.as_ptr().add(i) }
}

pub fn lane_guard_too_weak(xs: &[f64], i: usize) -> f64 {
    debug_assert!(i + 2 <= xs.len());
    // SAFETY: the assert above covers two lanes; the load reads four.
    unsafe { _mm256_loadu_pd(xs.as_ptr().add(i)) }
}

pub fn unchecked_unguarded(xs: &[u32], i: usize) -> u32 {
    // SAFETY: callers index within bounds.
    unsafe { *xs.get_unchecked(i) }
}

pub fn obligation_not_established(xs: &[f64], n: usize) -> &[f64] {
    // SAFETY: BOUNDS(n <= xs.len())
    unsafe { std::slice::from_raw_parts(xs.as_ptr(), n) }
}

pub fn aligned_load_without_congruence(xs: &[f64], i: usize) -> f64 {
    debug_assert!(i + 4 <= xs.len());
    // SAFETY: the span is asserted above; the alignment is not.
    unsafe { _mm256_load_pd(xs.as_ptr().add(i)) }
}
