//! Fixture: panic-adjacent code the rule must NOT flag.

/// `?` instead of unwrap.
pub fn first(v: &[u32]) -> Option<u32> {
    Some(*v.first()?)
}

/// `unreachable!`/`assert!` are deliberate invariants, not error handling.
pub fn checked(x: u32) -> u32 {
    assert!(x < 10, "caller contract");
    match x {
        0..=9 => x * 2,
        _ => unreachable!("guarded by the assert above"),
    }
}

/// The word "unwrap" inside strings and comments is not a call.
pub fn describe() -> &'static str {
    // unwrap() in a comment
    "call .unwrap() at your peril"
}

/// A justified call carries a reasoned suppression.
pub fn poisoned(m: &crate::sync::Mutex<u32>) -> u32 {
    // csj-lint: allow(panic-safety) — lock poisoning means a worker already
    // panicked; propagating is the correct response.
    *m.lock().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
