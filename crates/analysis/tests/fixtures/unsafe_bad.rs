//! Fixture: unsafe blocks without SAFETY justifications.

pub fn unjustified(p: *const u64) -> u64 {
    let a = unsafe { *p }; // line 4: bare unsafe block
    // An unrelated comment does not count as a justification.
    let b = unsafe { *p.add(0) }; // line 6: bare unsafe block
    // SAFETY:
    let c = unsafe { *p }; // line 8: empty justification does not count
    a + b + c
}
