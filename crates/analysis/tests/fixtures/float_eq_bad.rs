//! Fixture: unannotated float comparisons (linted under a geom/core path).

pub fn literal_eq(x: f64) -> bool {
    x == 0.0 // line 4: float literal operand
}

pub fn typed_ne(a: f32, b: f32) -> bool {
    (a as f64) != (b as f64) // line 8: f64 in operand window
}

pub fn subscript_pair(a: &[f64], b: &[f64]) -> bool {
    a[0] == b[0] // line 12: subscript-vs-subscript compare
}
