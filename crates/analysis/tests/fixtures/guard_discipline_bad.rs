//! Seeded guard-discipline bugs: a pin leaked on the `?` error path,
//! a pin leaked on an early return, a double unpin, and a pool guard
//! held across a blocking mutex acquisition.

impl Store {
    fn leak_on_question(&self, page: u32) -> Result<(), Error> {
        self.pool.pin(page);
        let node = self.decode(page)?;
        self.index.insert(page, node);
        self.pool.unpin(page);
        Ok(())
    }

    fn leak_on_return(&self, page: u32, skip: bool) {
        self.pool.pin(page);
        if skip {
            return;
        }
        self.pool.unpin(page);
    }

    fn double_unpin(&self, page: u32) {
        self.pool.pin(page);
        self.pool.unpin(page);
        self.pool.unpin(page);
    }

    fn block_while_guarded(&self, page: u32) -> Result<usize, Error> {
        let guard = self.store.node(page)?;
        let queue = lock(&self.queue);
        queue.push_back(guard.len());
        Ok(guard.len())
    }
}
