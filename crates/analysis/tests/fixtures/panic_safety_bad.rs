//! Fixture: every forbidden panic path in non-test library code.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap() // line 4: unwrap
}

pub fn named(v: Option<u32>) -> u32 {
    v.expect("present") // line 8: expect
}

pub fn giving_up() {
    panic!("boom"); // line 12: panic!
}

pub fn later() {
    todo!() // line 16: todo!
}

pub fn never() {
    unimplemented!() // line 20: unimplemented!
}
