//! Fixture: the suppression grammar itself.

pub fn suppressed_with_reason(v: &[u32]) -> u32 {
    // csj-lint: allow(panic-safety) — fixture demonstrates a valid reason.
    *v.first().unwrap()
}

pub fn missing_reason(v: &[u32]) -> u32 {
    // csj-lint: allow(panic-safety)
    *v.first().unwrap() // line 10: allow without reason -> meta + original
}

pub fn unknown_rule(v: &[u32]) -> u32 {
    // csj-lint: allow(made-up-rule) — no such rule exists.
    *v.first().unwrap() // line 15: unknown rule -> meta + original
}

pub fn wrong_rule(x: f64) -> u64 {
    // csj-lint: allow(float-discipline) — suppresses a rule that did not
    // fire here, so the panic finding below survives.
    x.to_bits().checked_add(1).unwrap() // line 21: survives
}

pub fn multi_rule(v: &[u32]) -> u32 {
    // csj-lint: allow(panic-safety, determinism) — one comment may name
    // several rules.
    *v.first().unwrap()
}
