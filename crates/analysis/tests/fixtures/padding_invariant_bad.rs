//! Fixture: SoA slab-contract violations.

pub fn build_zeroed(n: usize) -> Vec<f64> {
    let slab_lo = vec![0.0; n];
    slab_lo
}

pub fn refill_zeroed(slab_hi: &mut Vec<f64>, n: usize) {
    slab_hi.resize(n, 0.0);
}

fn slab_len_unpadded(cap: usize) -> usize {
    cap + 1
}

pub fn shrink_silently(slab_lo: &mut Vec<f64>) {
    slab_lo.clear();
}

pub fn pick_unguarded(lo: &[f64], hi: &[f64]) -> usize {
    mbr_fit_pick(lo, hi)
}
