//! Parser self-check: every `.rs` file in the workspace must parse
//! with zero recoveries, and the spans the parser hands out must agree
//! with the lexer's token stream. This is the contract that lets the
//! CFG/dataflow rules (guard-discipline, lock-order, io-under-lock)
//! trust the AST: grammar the engine starts using must be taught to
//! the parser in the same PR that introduces it.

use std::fs;
use std::path::Path;

use csj_analysis::ast::{self, Block, Item, ItemKind, ParsedFile, Stmt};
use csj_analysis::workspace::{classify, find_workspace_root, role_of};
use csj_analysis::{lexer, FileCtx};

fn workspace_files() -> Vec<(String, String)> {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let mut files = Vec::new();
    collect(&root, &root, &mut files);
    files.sort();
    files
        .into_iter()
        .map(|rel| {
            let src = fs::read_to_string(root.join(&rel)).expect("readable source");
            (rel, src)
        })
        .collect()
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) {
    for entry in fs::read_dir(dir).expect("readable dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().to_string();
        if path.is_dir() {
            // Unlike the lint walk we descend into `fixtures` too: the
            // seeded-bug corpus must stay parseable so golden tests
            // exercise the dataflow engine, not parser recovery.
            if matches!(name.as_str(), "target" | ".git" | ".github" | "results")
                || name.starts_with('.')
            {
                continue;
            }
            collect(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

#[test]
fn every_workspace_file_parses_with_zero_recoveries() {
    let files = workspace_files();
    assert!(files.len() > 50, "workspace walk found only {} files", files.len());
    let mut bad = Vec::new();
    for (rel, src) in &files {
        let tokens = lexer::lex(src);
        let kind = classify(rel).unwrap_or(csj_analysis::CrateKind::Library);
        let ctx = FileCtx::new(rel, kind, role_of(rel), &tokens);
        let parsed = ast::parse(&ctx);
        for e in &parsed.errors {
            let (line, col) = ctx
                .code
                .get(e.at as usize)
                .map(|&i| (tokens[i].line, tokens[i].col))
                .unwrap_or((0, 0));
            bad.push(format!("{rel}:{line}:{col}: {}", e.what));
        }
    }
    assert!(bad.is_empty(), "parser recoveries in {} place(s):\n{}", bad.len(), bad.join("\n"));
}

#[test]
fn parser_spans_agree_with_lexer_tokens() {
    for (rel, src) in workspace_files() {
        let tokens = lexer::lex(&src);
        let kind = classify(&rel).unwrap_or(csj_analysis::CrateKind::Library);
        let ctx = FileCtx::new(&rel, kind, role_of(&rel), &tokens);
        let parsed = ast::parse(&ctx);
        check_items(&rel, &ctx, &parsed);
    }
}

fn check_items(rel: &str, ctx: &FileCtx, parsed: &ParsedFile) {
    let n = ctx.code.len() as u32;
    // Sibling items tile the file in order; together with the parser
    // consuming every token this pins spans to real lexer positions.
    let mut prev_hi = 0u32;
    for item in &parsed.items {
        assert!(item.span.lo >= prev_hi, "{rel}: overlapping top-level item spans");
        prev_hi = item.span.hi;
        walk_item(rel, ctx, item, n);
    }
    if let Some(last) = parsed.items.last() {
        assert_eq!(last.span.hi, n, "{rel}: parser did not consume the whole file");
    }
}

fn walk_item(rel: &str, ctx: &FileCtx, item: &Item, n: u32) {
    assert!(item.span.lo <= item.span.hi && item.span.hi <= n, "{rel}: span out of range");
    // Every span endpoint resolves to a real token with a real
    // line/col — the property the diagnostics pipeline depends on.
    if item.span.lo < item.span.hi {
        let t = ctx.code_tok(item.span.lo as usize);
        assert!(t.line >= 1 && t.col >= 1, "{rel}: span lo resolves to no position");
    }
    match &item.kind {
        ItemKind::Fn(f) => {
            assert!(
                f.span.lo >= item.span.lo && f.span.hi <= item.span.hi,
                "{rel}: fn span escapes item span"
            );
            if let Some(body) = &f.body {
                assert_eq!(
                    ctx.code_text(body.span.lo as isize),
                    "{",
                    "{rel}: fn body span does not start at its opening brace"
                );
                assert_eq!(
                    ctx.code_text(body.span.hi as isize - 1),
                    "}",
                    "{rel}: fn body span does not end at its closing brace"
                );
                walk_block(rel, ctx, body, n);
            }
        }
        ItemKind::Mod(children) | ItemKind::Impl(children) | ItemKind::Trait(children) => {
            for child in children {
                assert!(
                    child.span.lo >= item.span.lo && child.span.hi <= item.span.hi,
                    "{rel}: child item span escapes parent"
                );
                walk_item(rel, ctx, child, n);
            }
        }
        ItemKind::Other(_) => {}
    }
}

fn walk_block(rel: &str, ctx: &FileCtx, block: &Block, n: u32) {
    assert!(block.span.hi <= n, "{rel}: block span out of range");
    for stmt in &block.stmts {
        if let Stmt::Item(item) = stmt {
            walk_item(rel, ctx, item, n);
        }
    }
}
