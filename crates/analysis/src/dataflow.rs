//! A small forward dataflow framework over [`crate::cfg`] graphs.
//!
//! May-analysis with set-union join: an analysis contributes a
//! gen/kill-style transfer function over an ordered fact set, the
//! framework runs a worklist to a fixpoint over block in-states, then
//! makes one emission pass per reachable block where the transfer
//! function may report findings against the converged states.
//! Transfer functions must be monotone in the usual gen/kill sense
//! (facts generated or killed per step, independent of unrelated
//! facts); a fuel bound guards termination against accidental
//! oscillation.

use std::collections::BTreeSet;

use crate::cfg::{FnCfg, Step};

/// One finding, anchored at a code-token index.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub ci: u32,
    pub message: String,
}

/// A forward may-analysis.
pub trait Analysis {
    type Fact: Clone + Ord;

    /// Applies one step to `state`. When `sink` is `Some`, the pass is
    /// the emission pass and findings may be reported; the state
    /// mutation must be identical either way.
    fn transfer(
        &self,
        step: &Step,
        state: &mut BTreeSet<Self::Fact>,
        sink: Option<&mut Vec<Finding>>,
    );
}

/// Runs `analysis` over `cfg` to fixpoint, then emits findings from
/// the converged in-states. Unreachable blocks are never visited.
pub fn analyze<A: Analysis>(cfg: &FnCfg, analysis: &A) -> Vec<Finding> {
    let n = cfg.blocks.len();
    let mut in_states: Vec<Option<BTreeSet<A::Fact>>> = vec![None; n];
    in_states[cfg.entry] = Some(BTreeSet::new());
    let mut work = vec![cfg.entry];
    // Fuel: generous multiple of block count × observed fact churn;
    // gen/kill transfers converge far earlier.
    let mut fuel = 64 * (n + 1) * (n + 1);
    while let Some(b) = work.pop() {
        if fuel == 0 {
            break;
        }
        fuel -= 1;
        let mut state = match &in_states[b] {
            Some(s) => s.clone(),
            None => continue,
        };
        for step in &cfg.blocks[b].steps {
            analysis.transfer(step, &mut state, None);
        }
        for &succ in &cfg.blocks[b].succs {
            let changed = match &mut in_states[succ] {
                Some(existing) => {
                    let before = existing.len();
                    existing.extend(state.iter().cloned());
                    existing.len() != before
                }
                slot @ None => {
                    *slot = Some(state.clone());
                    true
                }
            };
            if changed && !work.contains(&succ) {
                work.push(succ);
            }
        }
    }

    let mut findings = Vec::new();
    for (b, in_state) in in_states.iter().enumerate() {
        let Some(in_state) = in_state else { continue };
        let mut state = in_state.clone();
        for step in &cfg.blocks[b].steps {
            analysis.transfer(step, &mut state, Some(&mut findings));
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::cfg::{lower_file, ExitKind};
    use crate::context::{CrateKind, FileCtx, FileRole};
    use crate::lexer::lex;

    /// Toy analysis: track `open()` results; report a leak when a fact
    /// is live at any exit.
    struct OpenClose;
    impl Analysis for OpenClose {
        type Fact = String;
        fn transfer(
            &self,
            step: &Step,
            state: &mut BTreeSet<String>,
            sink: Option<&mut Vec<Finding>>,
        ) {
            match step {
                Step::Call(c) if c.name == "open" => {
                    state.insert(c.args.first().cloned().unwrap_or_default());
                }
                Step::Call(c) if c.name == "close" => {
                    if let Some(a) = c.args.first() {
                        state.remove(a);
                    }
                }
                Step::Exit { kind, ci } => {
                    if let Some(sink) = sink {
                        for f in state.iter() {
                            sink.push(Finding {
                                ci: *ci,
                                message: format!("{f} leaks on {kind:?} path"),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn run(src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let ctx = FileCtx::new("t.rs", CrateKind::Library, FileRole::Src, &toks);
        let parsed = ast::parse(&ctx);
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let cfgs = lower_file(&parsed);
        assert_eq!(cfgs.len(), 1);
        analyze(&cfgs[0], &OpenClose)
    }

    #[test]
    fn balanced_paths_are_clean() {
        let f = run("fn f() { open(a); work(); close(a); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn leak_on_question_path_only() {
        let f = run("fn f() -> Result<(), E> { open(a); fallible()?; close(a); Ok(()) }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Question"), "{f:?}");
    }

    #[test]
    fn leak_on_one_branch_is_reported_at_exit() {
        let f = run("fn f(x: bool) { open(a); if x { close(a); } }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("End"), "{f:?}");
    }

    #[test]
    fn loop_back_edges_converge() {
        let f = run("fn f(xs: &[u32]) { for x in xs { open(x); close(x); } }");
        assert!(f.is_empty(), "{f:?}");
        let _ = ExitKind::End;
    }
}
