//! A small forward dataflow framework over [`crate::cfg`] graphs.
//!
//! May-analysis with set-union join: an analysis contributes a
//! gen/kill-style transfer function over an ordered fact set, the
//! framework runs a worklist to a fixpoint over block in-states, then
//! makes one emission pass per reachable block where the transfer
//! function may report findings against the converged states.
//! Transfer functions must be monotone in the usual gen/kill sense
//! (facts generated or killed per step, independent of unrelated
//! facts); a fuel bound guards termination against accidental
//! oscillation.

use std::collections::BTreeSet;

use crate::cfg::{FnCfg, Step};
use crate::domain::{Atom, Env};

/// One finding, anchored at a code-token index.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub ci: u32,
    pub message: String,
}

/// A forward may-analysis.
pub trait Analysis {
    type Fact: Clone + Ord;

    /// Applies one step to `state`. When `sink` is `Some`, the pass is
    /// the emission pass and findings may be reported; the state
    /// mutation must be identical either way.
    fn transfer(
        &self,
        step: &Step,
        state: &mut BTreeSet<Self::Fact>,
        sink: Option<&mut Vec<Finding>>,
    );
}

/// Runs `analysis` over `cfg` to fixpoint, then emits findings from
/// the converged in-states. Unreachable blocks are never visited.
pub fn analyze<A: Analysis>(cfg: &FnCfg, analysis: &A) -> Vec<Finding> {
    let n = cfg.blocks.len();
    let mut in_states: Vec<Option<BTreeSet<A::Fact>>> = vec![None; n];
    in_states[cfg.entry] = Some(BTreeSet::new());
    let mut work = vec![cfg.entry];
    // Fuel: generous multiple of block count × observed fact churn;
    // gen/kill transfers converge far earlier.
    let mut fuel = 64 * (n + 1) * (n + 1);
    while let Some(b) = work.pop() {
        if fuel == 0 {
            break;
        }
        fuel -= 1;
        let mut state = match &in_states[b] {
            Some(s) => s.clone(),
            None => continue,
        };
        for step in &cfg.blocks[b].steps {
            analysis.transfer(step, &mut state, None);
        }
        for &succ in &cfg.blocks[b].succs {
            let changed = match &mut in_states[succ] {
                Some(existing) => {
                    let before = existing.len();
                    existing.extend(state.iter().cloned());
                    existing.len() != before
                }
                slot @ None => {
                    *slot = Some(state.clone());
                    true
                }
            };
            if changed && !work.contains(&succ) {
                work.push(succ);
            }
        }
    }

    let mut findings = Vec::new();
    for (b, in_state) in in_states.iter().enumerate() {
        let Some(in_state) = in_state else { continue };
        let mut state = in_state.clone();
        for step in &cfg.blocks[b].steps {
            analysis.transfer(step, &mut state, Some(&mut findings));
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

// ---- value-range engine ---------------------------------------------------
//
// A second, richer interpretation of the same CFGs: instead of an
// ordered fact set, each program point carries a [`Env`] mapping
// variables and symbolic lengths to interval + congruence values plus
// relational facts from dominating guards. This is a *must*-analysis
// (join intersects facts), with widening at frequently re-joined
// blocks so loop fixpoints terminate.

/// Methods that read but never structurally mutate their receiver —
/// calls to anything else invalidate everything rooted at the
/// receiver's head segment (`xs.push(v)` kills `xs.len()` facts).
const PURE_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "capacity",
    "as_ptr",
    "as_mut_ptr",
    "as_slice",
    "as_mut_slice",
    "as_bytes",
    "get",
    "first",
    "last",
    "contains",
    "iter",
    "iter_mut",
    "enumerate",
    "chunks",
    "chunks_exact",
    "windows",
    "step_by",
    "rev",
    "take",
    "skip",
    "zip",
    "copied",
    "cloned",
    "map",
    "filter",
    "all",
    "any",
    "fold",
    "sum",
    "count",
    "min",
    "max",
    "saturating_sub",
    "saturating_add",
    "wrapping_add",
    "checked_sub",
    "checked_add",
    "add",
    "offset",
    "get_unchecked",
    "get_unchecked_mut",
    "clone",
    "to_vec",
    "unwrap",
    "expect",
    "unwrap_or",
    "sqrt",
    "abs",
    "powi",
    "mul_add",
    "to_bits",
    "is_finite",
    "is_nan",
];

/// Head segment of a flattened path (`self.buf.as_ptr()` → `self`).
fn root_of(path: &str) -> &str {
    path.split('.').next().unwrap_or(path).trim_end_matches("()")
}

/// Invalidates every atom rooted at `root` (the variable itself, its
/// symbolic length, and any flattened field under it).
fn havoc_root(env: &mut Env, root: &str) {
    if root.is_empty() || root == "?" {
        return;
    }
    let prefix = format!("{root}.");
    let hit = |n: &str| n == root || n.starts_with(&prefix);
    env.vars.retain(|a, _| match a {
        Atom::Var(v) | Atom::Len(v) => !hit(v),
    });
    env.facts.retain(|l, _| {
        !l.terms.keys().any(|a| match a {
            Atom::Var(v) | Atom::Len(v) => hit(v),
        })
    });
    env.guards.retain(|g| !g.contains(root));
}

/// Applies one CFG step to a value-range environment. Public so rules
/// can replay blocks step-by-step and inspect the state at claim
/// sites.
pub fn env_transfer(step: &Step, env: &mut Env) {
    match step {
        Step::Assign { name, rhs, ci } => env.assign(name, rhs, *ci),
        Step::Assume(c) => env.assume(c),
        // A bare bind (pattern, `if let`, loop header) introduces an
        // unknown value under a possibly-reused name.
        Step::Bind { name } => env.kill(name),
        Step::Call(c) => {
            if c.is_method {
                if !PURE_METHODS.contains(&c.name.as_str()) {
                    if let Some(recv) = &c.recv {
                        havoc_root(env, root_of(recv));
                    }
                }
            } else {
                // Free functions may mutate through `&mut` arguments.
                for a in &c.args {
                    havoc_root(env, root_of(a));
                }
            }
        }
        Step::StructLit { .. }
        | Step::DropName(_)
        | Step::StmtEnd
        | Step::Exit { .. }
        | Step::PtrAdd { .. }
        | Step::UncheckedIndex { .. } => {}
    }
}

/// Runs the value-range analysis to fixpoint and returns the per-block
/// in-state (`None` = unreachable). Joins are exact for the first two
/// re-joins of a block, then widen, so loops converge.
pub fn env_in_states(cfg: &FnCfg) -> Vec<Option<Env>> {
    let n = cfg.blocks.len();
    let mut in_states: Vec<Option<Env>> = vec![None; n];
    let mut joins = vec![0u32; n];
    in_states[cfg.entry] = Some(Env::default());
    let mut work = vec![cfg.entry];
    let mut fuel = 64 * (n + 1) * (n + 1);
    while let Some(b) = work.pop() {
        if fuel == 0 {
            // Convergence failure: a partial fixpoint under-approximates
            // the reachable values and would let rules discharge claims
            // unsoundly, so degrade every block to ⊤ (reachable, nothing
            // known) instead of returning the half-propagated states.
            return vec![Some(Env::default()); n];
        }
        fuel -= 1;
        let Some(mut state) = in_states[b].clone() else { continue };
        for step in &cfg.blocks[b].steps {
            env_transfer(step, &mut state);
        }
        for &succ in &cfg.blocks[b].succs {
            let updated = match &in_states[succ] {
                None => Some(state.clone()),
                Some(existing) => {
                    let joined = existing.join(&state);
                    if joined == *existing {
                        None
                    } else if joins[succ] >= 2 {
                        Some(existing.widen(&joined))
                    } else {
                        Some(joined)
                    }
                }
            };
            if let Some(u) = updated {
                joins[succ] = joins[succ].saturating_add(1);
                in_states[succ] = Some(u);
                if !work.contains(&succ) {
                    work.push(succ);
                }
            }
        }
    }
    in_states
}

/// Test/soundness harness hook: analyzes `src` and reports, for every
/// `probe(x)` call, the abstract value of `x` at that point. Not part
/// of the stable API.
#[doc(hidden)]
pub fn probe_intervals(src: &str) -> Vec<(String, crate::domain::AbsVal)> {
    use crate::context::{CrateKind, FileCtx, FileRole};
    let toks = crate::lexer::lex(src);
    let ctx = FileCtx::new("probe.rs", CrateKind::Library, FileRole::Src, &toks);
    let parsed = crate::ast::parse(&ctx);
    let mut out = Vec::new();
    for cfg in crate::cfg::lower_file(&parsed) {
        for (b, st) in env_in_states(&cfg).iter().enumerate() {
            let Some(st) = st else { continue };
            let mut env = st.clone();
            for step in &cfg.blocks[b].steps {
                if let Step::Call(c) = step {
                    if !c.is_method && c.name == "probe" {
                        if let Some(a) = c.args.first() {
                            out.push((a.clone(), env.value(&Atom::Var(a.clone()))));
                        }
                    }
                }
                env_transfer(step, &mut env);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::cfg::{lower_file, ExitKind};
    use crate::context::{CrateKind, FileCtx, FileRole};
    use crate::lexer::lex;

    /// Toy analysis: track `open()` results; report a leak when a fact
    /// is live at any exit.
    struct OpenClose;
    impl Analysis for OpenClose {
        type Fact = String;
        fn transfer(
            &self,
            step: &Step,
            state: &mut BTreeSet<String>,
            sink: Option<&mut Vec<Finding>>,
        ) {
            match step {
                Step::Call(c) if c.name == "open" => {
                    state.insert(c.args.first().cloned().unwrap_or_default());
                }
                Step::Call(c) if c.name == "close" => {
                    if let Some(a) = c.args.first() {
                        state.remove(a);
                    }
                }
                Step::Exit { kind, ci } => {
                    if let Some(sink) = sink {
                        for f in state.iter() {
                            sink.push(Finding {
                                ci: *ci,
                                message: format!("{f} leaks on {kind:?} path"),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn run(src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let ctx = FileCtx::new("t.rs", CrateKind::Library, FileRole::Src, &toks);
        let parsed = ast::parse(&ctx);
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let cfgs = lower_file(&parsed);
        assert_eq!(cfgs.len(), 1);
        analyze(&cfgs[0], &OpenClose)
    }

    #[test]
    fn balanced_paths_are_clean() {
        let f = run("fn f() { open(a); work(); close(a); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn leak_on_question_path_only() {
        let f = run("fn f() -> Result<(), E> { open(a); fallible()?; close(a); Ok(()) }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Question"), "{f:?}");
    }

    #[test]
    fn leak_on_one_branch_is_reported_at_exit() {
        let f = run("fn f(x: bool) { open(a); if x { close(a); } }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("End"), "{f:?}");
    }

    #[test]
    fn loop_back_edges_converge() {
        let f = run("fn f(xs: &[u32]) { for x in xs { open(x); close(x); } }");
        assert!(f.is_empty(), "{f:?}");
        let _ = ExitKind::End;
    }

    // ---- value-range engine ------------------------------------------------

    fn probe1(src: &str) -> crate::domain::AbsVal {
        let v = probe_intervals(src);
        assert_eq!(v.len(), 1, "{v:?}");
        v[0].1
    }

    #[test]
    fn range_loop_bounds_the_index() {
        let v = probe1("fn f() { for i in 0..16 { let p = i; probe(p); } }");
        assert_eq!(v.lo, 0);
        assert_eq!(v.hi, Some(15));
    }

    #[test]
    fn widening_terminates_unbounded_counter() {
        let v = probe1(
            "fn f(n: u64) { let mut j = 0; while j < n { j = j + 4; } let p = j; probe(p); }",
        );
        // The interval widens; the multiple-of-4 congruence survives.
        assert_eq!(v.lo, 0);
        assert!(v.multiple_of(4), "{v:?}");
    }

    #[test]
    fn branch_condition_refines_then_joins_away() {
        let src = "fn f(x: u64) { if x < 8 { let p = x; probe(p); } let q = x; probe(q); }";
        let v = probe_intervals(src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].1.hi, Some(7));
        assert_eq!(v[1].1.hi, None);
    }

    #[test]
    fn mutation_havocs_length_facts() {
        // Before push, i < xs.len() is known; after, everything rooted
        // at xs is gone (probed indirectly via the env fact count).
        let src = "fn f(xs: &mut Vec<u64>, i: usize) { if i < xs.len() { xs.push(1); let p = i; probe(p); } }";
        let v = probe1(src);
        assert_eq!(v.hi, None, "i's bound came only from xs.len(), which push invalidated");
    }

    #[test]
    fn padding_round_up_is_multiple_of_four() {
        let v = probe1("fn f(c: usize) { let p = (c + 3) & !3; probe(p); }");
        assert!(v.multiple_of(4), "{v:?}");
    }

    #[test]
    fn dead_branch_inside_loop_does_not_starve_the_fixpoint() {
        // Regression (found by the soundness proptest): the `else`
        // branch is contradictory, and before dead environments were
        // collapsed to a canonical bottom, distinct dead states churned
        // around the inner loop's back edge until the fuel ran out —
        // leaving the exit block with the unsound verdict `x2 == 0`
        // (concretely the loop exits with `x2 == 4`).
        let v = probe1(
            "fn f(v0: u64) { let mut x2 = 0; for i0 in 7..15 { let x0 = i0; \
             if x0 != 18 { let q = 1; } else { } x2 = 2; \
             while x2 < 4 { x2 = x2 + 1; } } let p = x2; probe(p); }",
        );
        assert_eq!(v.lo, 0, "{v:?}");
        assert!(v.hi.is_none_or(|h| h >= 4), "must admit the concrete exit value 4: {v:?}");
    }
}
