//! Diagnostic aggregation and rendering: human-readable text and
//! machine-readable JSON (hand-rolled — the build environment is
//! offline, so no serde).

use std::collections::BTreeMap;

use crate::rules::{all_rules, META_RULE};
use crate::workspace::WorkspaceReport;

/// Per-rule counts over a workspace report, in registry order with the
/// meta-rule last. Rules with zero findings are included so the JSON
/// shape is stable.
pub fn rule_counts(report: &WorkspaceReport) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for rule in all_rules() {
        counts.insert(rule.name, 0);
    }
    counts.insert(META_RULE, 0);
    for file in &report.files {
        for d in &file.report.diagnostics {
            *counts.entry(d.rule).or_insert(0) += 1;
        }
    }
    counts
}

/// Text rendering: one `file:line:col: [rule] message` per finding,
/// then a summary block.
pub fn render_text(report: &WorkspaceReport) -> String {
    let mut out = String::new();
    for file in &report.files {
        for d in &file.report.diagnostics {
            out.push_str(&format!("{}:{}:{}: [{}] {}\n", d.file, d.line, d.col, d.rule, d.message));
        }
    }
    let unsuppressed = report.unsuppressed();
    out.push_str(&format!(
        "csj-lint: {} unsuppressed finding(s) across {} file(s); {} suppressed inline\n",
        unsuppressed,
        report.files.len(),
        report.suppressed(),
    ));
    if unsuppressed > 0 {
        for (rule, n) in rule_counts(report) {
            if n > 0 {
                out.push_str(&format!("  {rule}: {n}\n"));
            }
        }
    }
    out
}

/// JSON rendering. Schema:
///
/// ```json
/// {
///   "version": 1,
///   "files_scanned": 93,
///   "unsuppressed": 0,
///   "suppressed": 41,
///   "counts": {"panic-safety": 0, …},
///   "diagnostics": [
///     {"rule": "…", "file": "…", "line": 7, "col": 9, "message": "…"}
///   ]
/// }
/// ```
pub fn render_json(report: &WorkspaceReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files.len()));
    out.push_str(&format!("  \"unsuppressed\": {},\n", report.unsuppressed()));
    out.push_str(&format!("  \"suppressed\": {},\n", report.suppressed()));
    out.push_str("  \"counts\": {");
    let counts = rule_counts(report);
    let body: Vec<String> = counts.iter().map(|(rule, n)| format!("\"{rule}\": {n}")).collect();
    out.push_str(&body.join(", "));
    out.push_str("},\n");
    out.push_str("  \"diagnostics\": [");
    let mut first = true;
    for file in &report.files {
        for d in &file.report.diagnostics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
                 \"message\": \"{}\"}}",
                escape_json(d.rule),
                escape_json(&d.file),
                d.line,
                d.col,
                escape_json(&d.message)
            ));
        }
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
