//! Diagnostic aggregation and rendering: human-readable text and
//! machine-readable JSON (hand-rolled — the build environment is
//! offline, so no serde).

use std::collections::BTreeMap;

use crate::rules::{all_rules, META_RULE};
use crate::workspace::WorkspaceReport;

/// Per-rule counts over a workspace report, in registry order with the
/// meta-rule last. Rules with zero findings are included so the JSON
/// shape is stable.
pub fn rule_counts(report: &WorkspaceReport) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for rule in all_rules() {
        counts.insert(rule.name, 0);
    }
    counts.insert(META_RULE, 0);
    for file in &report.files {
        for d in &file.report.diagnostics {
            *counts.entry(d.rule).or_insert(0) += 1;
        }
    }
    counts
}

/// Text rendering: one `file:line:col: [rule] message` per finding,
/// then a summary block.
pub fn render_text(report: &WorkspaceReport) -> String {
    let mut out = String::new();
    for file in &report.files {
        for d in &file.report.diagnostics {
            out.push_str(&format!("{}:{}:{}: [{}] {}\n", d.file, d.line, d.col, d.rule, d.message));
        }
    }
    let unsuppressed = report.unsuppressed();
    out.push_str(&format!(
        "csj-lint: {} unsuppressed finding(s) across {} file(s); {} suppressed inline\n",
        unsuppressed,
        report.files.len(),
        report.suppressed(),
    ));
    if unsuppressed > 0 {
        for (rule, n) in rule_counts(report) {
            if n > 0 {
                out.push_str(&format!("  {rule}: {n}\n"));
            }
        }
    }
    out
}

/// JSON rendering. Schema:
///
/// ```json
/// {
///   "version": 1,
///   "files_scanned": 93,
///   "unsuppressed": 0,
///   "suppressed": 41,
///   "counts": {"panic-safety": 0, …},
///   "diagnostics": [
///     {"rule": "…", "file": "…", "line": 7, "col": 9, "message": "…"}
///   ]
/// }
/// ```
pub fn render_json(report: &WorkspaceReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files.len()));
    out.push_str(&format!("  \"unsuppressed\": {},\n", report.unsuppressed()));
    out.push_str(&format!("  \"suppressed\": {},\n", report.suppressed()));
    out.push_str("  \"counts\": {");
    let counts = rule_counts(report);
    let body: Vec<String> = counts.iter().map(|(rule, n)| format!("\"{rule}\": {n}")).collect();
    out.push_str(&body.join(", "));
    out.push_str("},\n");
    out.push_str("  \"diagnostics\": [");
    let mut first = true;
    for file in &report.files {
        for d in &file.report.diagnostics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
                 \"message\": \"{}\"}}",
                escape_json(d.rule),
                escape_json(&d.file),
                d.line,
                d.col,
                escape_json(&d.message)
            ));
        }
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// SARIF 2.1.0 rendering — the interchange format GitHub code scanning
/// ingests, so lint findings surface as PR annotations. One run, one
/// `tool.driver` listing every rule (`--explain` summaries become rule
/// `shortDescription`s), one `result` per unsuppressed diagnostic with
/// a physical location. Suppressed findings are by design absent: an
/// inline `csj-lint: allow` with a reason is a reviewed decision, not
/// something to re-litigate on every PR.
///
/// Discharged bounds claims additionally surface as `kind: "pass"`
/// results (level `none`) whose `relatedLocations` point at the guard
/// that discharged them — the machine-readable audit trail linking
/// every unsafe site to its proof.
pub fn render_sarif(report: &WorkspaceReport) -> String {
    let mut out = String::from(
        "{\n  \"version\": \"2.1.0\",\n  \"$schema\": \
         \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n      \
         \"tool\": {\n        \"driver\": {\n          \"name\": \"csj-lint\",\n          \
         \"informationUri\": \"https://example.invalid/csj-lint\",\n          \"rules\": [",
    );
    let mut rules: Vec<&'static str> = all_rules().iter().map(|r| r.name).collect();
    rules.push(META_RULE);
    for (k, rule) in all_rules().iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            escape_json(rule.name),
            escape_json(rule.summary)
        ));
    }
    out.push_str(&format!(
        ",\n            {{\"id\": \"{META_RULE}\", \"shortDescription\": \
         {{\"text\": \"suppression hygiene: allow(...) needs a known rule and a reason\"}}}}"
    ));
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    let mut first = true;
    for file in &report.files {
        for d in file.report.diagnostics.iter().chain(file.report.notes.iter()) {
            if !first {
                out.push(',');
            }
            first = false;
            // Stable index into the driver's rule array (meta-rule last).
            let rule_index = rules.iter().position(|r| *r == d.rule).unwrap_or(rules.len() - 1);
            let (kind, level) = if d.pass { ("pass", "none") } else { ("fail", "error") };
            out.push_str(&format!(
                "\n        {{\n          \"ruleId\": \"{}\",\n          \"ruleIndex\": {},\n          \
                 \"kind\": \"{kind}\",\n          \
                 \"level\": \"{level}\",\n          \"message\": {{\"text\": \"{}\"}},\n          \
                 \"locations\": [\n            {{\n              \"physicalLocation\": {{\n                \
                 \"artifactLocation\": {{\"uri\": \"{}\"}},\n                \
                 \"region\": {{\"startLine\": {}, \"startColumn\": {}}}\n              }}\n            \
                 }}\n          ]",
                escape_json(d.rule),
                rule_index,
                escape_json(&d.message),
                escape_json(&d.file),
                d.line,
                d.col
            ));
            if !d.related.is_empty() {
                out.push_str(",\n          \"relatedLocations\": [");
                for (k, r) in d.related.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\n            {{\n              \"physicalLocation\": {{\n                \
                         \"artifactLocation\": {{\"uri\": \"{}\"}},\n                \
                         \"region\": {{\"startLine\": {}, \"startColumn\": {}}}\n              }},\n              \
                         \"message\": {{\"text\": \"{}\"}}\n            }}",
                        escape_json(&d.file),
                        r.line,
                        r.col,
                        escape_json(&r.message)
                    ));
                }
                out.push_str("\n          ]");
            }
            out.push_str("\n        }");
        }
    }
    if !first {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn sarif_shape() {
        use crate::rules::{Diagnostic, FileReport};
        use crate::workspace::AnalyzedFile;

        let mut report = WorkspaceReport::default();
        report.files.push(AnalyzedFile {
            rel_path: "crates/core/src/x.rs".into(),
            report: FileReport {
                diagnostics: vec![Diagnostic::new(
                    "sync-facade",
                    "crates/core/src/x.rs".into(),
                    7,
                    5,
                    "a \"quoted\" message".into(),
                )],
                notes: vec![Diagnostic::new(
                    "unsafe-bounds",
                    "crates/core/src/x.rs".into(),
                    11,
                    9,
                    "claim discharged".into(),
                )
                .with_related(9, 13, "discharging guard".into())
                .passed()],
                suppressed: 3,
            },
        });
        let sarif = render_sarif(&report);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"csj-lint\""));
        assert!(sarif.contains("\"ruleId\": \"sync-facade\""));
        assert!(sarif.contains("\"startLine\": 7, \"startColumn\": 5"));
        assert!(sarif.contains("a \\\"quoted\\\" message"));
        // Pass notes render as kind pass / level none with the guard
        // attached as a relatedLocation.
        assert!(sarif.contains("\"kind\": \"pass\""));
        assert!(sarif.contains("\"level\": \"none\""));
        assert!(sarif.contains("\"relatedLocations\""));
        assert!(sarif.contains("\"startLine\": 9, \"startColumn\": 13"));
        assert!(sarif.contains("discharging guard"));
        // Every shipped rule plus the meta-rule is declared in the driver.
        for rule in all_rules() {
            assert!(sarif.contains(&format!("\"id\": \"{}\"", rule.name)), "{}", rule.name);
        }
        assert!(sarif.contains(&format!("\"id\": \"{META_RULE}\"")));
        // Balanced braces/brackets — cheap structural sanity without serde.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = sarif.matches(open).count();
            let closes = sarif.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close}");
        }
    }

    #[test]
    fn sarif_empty_results_array_is_well_formed() {
        let sarif = render_sarif(&WorkspaceReport::default());
        assert!(sarif.contains("\"results\": []"));
    }
}
