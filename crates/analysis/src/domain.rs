//! The value-range abstract domain behind the `unsafe-bounds` and
//! `padding-invariant` rules (DESIGN.md §13).
//!
//! Values are modelled over ℕ (the workspace indexes with `usize`; the
//! analyzer's verdicts are claims about `usize` arithmetic). Each
//! tracked quantity — a local variable or the symbolic length
//! `x.len()` of a collection — carries an [`AbsVal`]: an interval
//! `[lo, hi]` (`hi = None` ⇒ unbounded) plus a congruence witness
//! `mult` ("the value is a multiple of `mult`"; `mult = 0` encodes the
//! constant 0, `mult = 1` is ⊤). Arithmetic is wrap-sound: any
//! operation that may overflow or underflow `u64` widens the interval
//! to `[0, ∞)` and keeps the congruence only when `mult` is a power of
//! two (wrapping shifts the value by a multiple of 2⁶⁴, which only
//! power-of-two moduli divide).
//!
//! On top of the per-atom intervals, an [`Env`] keeps *relational*
//! facts as linear forms: each [`Lin`] `k + Σ cᵢ·atomᵢ` in
//! `Env::facts` is known `≤ 0` on every path reaching the program
//! point, tagged with the code-token index of the guard that
//! established it (comparisons in `if`/`while` heads, `assert!` /
//! `debug_assert!` conditions, `let`-equalities). Joins intersect the
//! fact sets (must-analysis); widening at loop heads additionally
//! relaxes intervals to `[0, ∞)` on the unstable side.
//!
//! A bounds *claim* `c ≤ 0` is discharged when for some facts
//! `f₁, f₂ ∈ {0} ∪ facts` the interval evaluation of `c − f₁ − f₂`
//! has a non-positive upper bound — this subsumes a direct fact match,
//! a fact with slack, and one step of substitution through a
//! `let n = xs.len()`-style equality.

use std::collections::{BTreeMap, BTreeSet};

/// `u64::MAX`, the ceiling of the concrete value model.
const U64_MAX: i128 = u64::MAX as i128;

// ---- expressions ----------------------------------------------------------

/// An arithmetic expression lowered from the AST for abstract
/// evaluation (see `cfg::lower_aexpr`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AExpr {
    Const(i128),
    /// A simple local (or flattened field path like `self.head`).
    Var(String),
    /// `base.len()` with `base` flattened (index-transparent:
    /// `dims[d].len()` is `Len("dims")` — sound for the workspace's
    /// padded column arrays, which share one length per family).
    Len(String),
    /// Binary arithmetic: `+ - * / % & | ^ << >>`.
    Bin(String, Box<AExpr>, Box<AExpr>),
    /// Unary `!` (bitwise not) or `-`.
    Un(String, Box<AExpr>),
    /// Interpreted method calls (`min`, `max`, `saturating_sub`,
    /// `saturating_add`); the receiver is the first argument.
    Call(String, Vec<AExpr>),
    /// Anything the analyzer does not interpret (kept for rendering).
    Other(String),
}

impl AExpr {
    /// Human-readable rendering for diagnostics.
    pub fn render(&self) -> String {
        match self {
            AExpr::Const(c) => c.to_string(),
            AExpr::Var(v) => v.clone(),
            AExpr::Len(b) => format!("{b}.len()"),
            AExpr::Bin(op, a, b) => format!("{} {op} {}", a.render(), b.render()),
            AExpr::Un(op, a) => format!("{op}{}", a.render()),
            AExpr::Call(name, args) => match args.split_first() {
                Some((recv, rest)) => format!(
                    "{}.{name}({})",
                    recv.render(),
                    rest.iter().map(AExpr::render).collect::<Vec<_>>().join(", ")
                ),
                None => format!("{name}()"),
            },
            AExpr::Other(s) => s.clone(),
        }
    }
}

/// Comparison operators the analyzer turns into assumptions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    pub fn parse(op: &str) -> Option<CmpOp> {
        Some(match op {
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            "==" => CmpOp::Eq,
            "!=" => CmpOp::Ne,
            _ => return None,
        })
    }

    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    fn render(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

/// One comparison used as an assumption, tagged with the code-token
/// index of the guard it came from.
#[derive(Clone, Debug)]
pub struct Cmp {
    pub lhs: AExpr,
    pub op: CmpOp,
    pub rhs: AExpr,
    pub ci: u32,
}

impl Cmp {
    pub fn render(&self) -> String {
        format!("{} {} {}", self.lhs.render(), self.op.render(), self.rhs.render())
    }
}

// ---- linear forms ---------------------------------------------------------

/// A tracked quantity: a variable or a symbolic collection length.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Atom {
    Var(String),
    Len(String),
}

impl Atom {
    fn render(&self) -> String {
        match self {
            Atom::Var(v) => v.clone(),
            Atom::Len(b) => format!("{b}.len()"),
        }
    }

    /// True when this atom is named by (rooted at) `name` — the
    /// invalidation key for assignments and mutating calls.
    fn named(&self, name: &str) -> bool {
        match self {
            Atom::Var(v) | Atom::Len(v) => v == name,
        }
    }
}

/// A linear form `k + Σ cᵢ·atomᵢ` (coefficients non-zero).
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Lin {
    pub k: i128,
    pub terms: BTreeMap<Atom, i128>,
}

impl Lin {
    pub fn constant(k: i128) -> Lin {
        Lin { k, terms: BTreeMap::new() }
    }

    pub fn atom(a: Atom) -> Lin {
        let mut terms = BTreeMap::new();
        terms.insert(a, 1);
        Lin { k: 0, terms }
    }

    pub fn add(&self, other: &Lin) -> Lin {
        let mut out = self.clone();
        out.k = out.k.saturating_add(other.k);
        for (a, c) in &other.terms {
            let e = out.terms.entry(a.clone()).or_insert(0);
            *e = e.saturating_add(*c);
            if *e == 0 {
                out.terms.remove(a);
            }
        }
        out
    }

    pub fn scale(&self, c: i128) -> Lin {
        if c == 0 {
            return Lin::constant(0);
        }
        Lin {
            k: self.k.saturating_mul(c),
            terms: self.terms.iter().map(|(a, v)| (a.clone(), v.saturating_mul(c))).collect(),
        }
    }

    pub fn sub(&self, other: &Lin) -> Lin {
        self.add(&other.scale(-1))
    }

    pub fn mentions(&self, name: &str) -> bool {
        self.terms.keys().any(|a| a.named(name))
    }

    /// Renders the fact `self ≤ 0` back as a comparison for messages.
    pub fn render_le(&self) -> String {
        let mut lhs: Vec<String> = Vec::new();
        let mut rhs: Vec<String> = Vec::new();
        for (a, &c) in &self.terms {
            let side = if c > 0 { &mut lhs } else { &mut rhs };
            let mag = c.unsigned_abs();
            if mag == 1 {
                side.push(a.render());
            } else {
                side.push(format!("{mag}*{}", a.render()));
            }
        }
        if self.k > 0 {
            lhs.push(self.k.to_string());
        } else if self.k < 0 {
            rhs.push((-self.k).to_string());
        }
        let fmt = |v: Vec<String>| if v.is_empty() { "0".to_string() } else { v.join(" + ") };
        format!("{} <= {}", fmt(lhs), fmt(rhs))
    }
}

/// Lowers an [`AExpr`] to a linear form when it is linear (sums,
/// differences, multiplication by a constant).
pub fn linearize(e: &AExpr) -> Option<Lin> {
    match e {
        AExpr::Const(c) => Some(Lin::constant(*c)),
        AExpr::Var(v) => Some(Lin::atom(Atom::Var(v.clone()))),
        AExpr::Len(b) => Some(Lin::atom(Atom::Len(b.clone()))),
        AExpr::Bin(op, a, b) => {
            let (la, lb) = (linearize(a), linearize(b));
            match op.as_str() {
                "+" => Some(la?.add(&lb?)),
                "-" => Some(la?.sub(&lb?)),
                "*" => {
                    let (la, lb) = (la?, lb?);
                    if la.terms.is_empty() {
                        Some(lb.scale(la.k))
                    } else if lb.terms.is_empty() {
                        Some(la.scale(lb.k))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

// ---- abstract values ------------------------------------------------------

/// Interval + congruence abstraction of one ℕ value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbsVal {
    /// Inclusive lower bound (always ≥ 0 in the ℕ model).
    pub lo: i128,
    /// Inclusive upper bound; `None` = unbounded (may be `u64::MAX`).
    pub hi: Option<i128>,
    /// The value is a multiple of `mult`. `0` ⇒ the value is exactly
    /// 0; `1` ⇒ no congruence information.
    pub mult: u64,
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The congruence that survives `u64` wrapping: wrapping adds a
/// multiple of 2⁶⁴, so only power-of-two moduli are preserved.
fn wrap_mult(m: u64) -> u64 {
    if m != 0 && m.is_power_of_two() {
        m
    } else {
        1
    }
}

/// Largest power of two dividing `m` (alignment component), 1 for 0.
fn pow2_part(m: u64) -> u64 {
    if m == 0 {
        1
    } else {
        1 << m.trailing_zeros()
    }
}

impl AbsVal {
    pub fn top() -> AbsVal {
        AbsVal { lo: 0, hi: None, mult: 1 }
    }

    pub fn constant(c: i128) -> AbsVal {
        if !(0..=U64_MAX).contains(&c) {
            return AbsVal::top();
        }
        AbsVal { lo: c, hi: Some(c), mult: c as u64 }
    }

    fn exact(&self) -> Option<i128> {
        self.hi.filter(|&h| h == self.lo)
    }

    /// Join (least upper bound).
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            lo: self.lo.min(other.lo),
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
            mult: gcd(self.mult, other.mult),
        }
    }

    /// Widening: unstable bounds jump straight to the extreme; the
    /// congruence uses `gcd`, whose divisor chains are finite.
    pub fn widen(&self, next: &AbsVal) -> AbsVal {
        AbsVal {
            lo: if next.lo < self.lo { 0 } else { self.lo },
            hi: match (self.hi, next.hi) {
                (Some(a), Some(b)) if b <= a => Some(a),
                _ => None,
            },
            mult: gcd(self.mult, next.mult),
        }
    }

    /// Abstract binary operation over ℕ with `u64` wrap-soundness.
    pub fn bin(op: &str, a: AbsVal, b: AbsVal) -> AbsVal {
        let wrap = |mult: u64| AbsVal { lo: 0, hi: None, mult: wrap_mult(mult) };
        match op {
            "+" => match (a.hi, b.hi) {
                (Some(x), Some(y)) if x + y <= U64_MAX => {
                    AbsVal { lo: a.lo + b.lo, hi: Some(x + y), mult: gcd(a.mult, b.mult) }
                }
                _ => wrap(gcd(a.mult, b.mult)),
            },
            "-" => match b.hi {
                // Underflow impossible only when every lhs ≥ every rhs.
                Some(bh) if a.lo >= bh => AbsVal {
                    lo: a.lo - bh,
                    hi: a.hi.map(|ah| ah - b.lo),
                    mult: gcd(a.mult, b.mult),
                },
                _ => wrap(gcd(a.mult, b.mult)),
            },
            "*" => {
                let mult = a.mult.saturating_mul(b.mult);
                match (a.hi, b.hi) {
                    (Some(x), Some(y)) if x.checked_mul(y).is_some_and(|p| p <= U64_MAX) => {
                        AbsVal { lo: a.lo * b.lo, hi: Some(x * y), mult }
                    }
                    _ => wrap(mult),
                }
            }
            "/" => {
                // Division by zero panics before any claim is reached,
                // so the divisor may be clamped to ≥ 1.
                let lo = match b.hi {
                    Some(bh) if bh >= 1 => a.lo / bh,
                    _ => 0,
                };
                AbsVal { lo, hi: a.hi.map(|ah| ah / b.lo.max(1)), mult: 1 }
            }
            "%" => match b.exact() {
                Some(m) if m >= 1 => {
                    if a.mult != 0 && m >= 1 && (a.mult as i128 % m == 0) && a.mult as i128 >= m {
                        // a is a multiple of m ⇒ remainder exactly 0.
                        AbsVal { lo: 0, hi: Some(0), mult: 0 }
                    } else if a.hi.is_some_and(|ah| ah < m) {
                        a // already reduced
                    } else {
                        AbsVal { lo: 0, hi: Some(m - 1), mult: 1 }
                    }
                }
                _ => AbsVal { lo: 0, hi: b.hi.map(|bh| (bh - 1).max(0)), mult: 1 },
            },
            "&" => {
                // `x & k` clears bits: bounded by both operands, and
                // low-bit alignment from either side survives.
                let hi = match (a.hi, b.hi) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (Some(x), None) => Some(x),
                    (None, y) => y,
                };
                let align = |v: &AbsVal| match v.exact() {
                    Some(0) => u64::MAX, // x & 0 == 0
                    Some(c) => 1u64 << (c as u64).trailing_zeros(),
                    None => pow2_part(v.mult),
                };
                let mult = align(&a).max(align(&b));
                if mult == u64::MAX {
                    AbsVal { lo: 0, hi: Some(0), mult: 0 }
                } else {
                    AbsVal { lo: 0, hi, mult }
                }
            }
            "|" | "^" => {
                // a|b ≤ a+b and a^b ≤ a+b; shared low-zero bits survive.
                let hi = match (a.hi, b.hi) {
                    (Some(x), Some(y)) if x + y <= U64_MAX => Some(x + y),
                    _ => None,
                };
                AbsVal { lo: 0, hi, mult: pow2_part(gcd(a.mult, b.mult)) }
            }
            "<<" => match b.exact() {
                Some(k) if (0..64).contains(&k) => {
                    let mult = a.mult.checked_shl(k as u32).unwrap_or(0);
                    let mult = if mult == 0 { 1 << 63 } else { mult };
                    match a.hi {
                        Some(ah) if ah.checked_shl(k as u32).is_some_and(|s| s <= U64_MAX) => {
                            AbsVal { lo: a.lo << k, hi: Some(ah << k), mult }
                        }
                        _ => AbsVal { lo: 0, hi: None, mult: wrap_mult(mult) },
                    }
                }
                _ => AbsVal::top(),
            },
            ">>" => match b.exact() {
                Some(k) if (0..64).contains(&k) => {
                    AbsVal { lo: a.lo >> k, hi: a.hi.map(|ah| ah >> k), mult: 1 }
                }
                _ => AbsVal { lo: 0, hi: a.hi, mult: 1 },
            },
            _ => AbsVal::top(),
        }
    }

    /// Abstract interpreted-call semantics (`min`/`max`/`saturating_*`).
    pub fn call(name: &str, a: AbsVal, b: AbsVal) -> AbsVal {
        match name {
            "min" => AbsVal {
                lo: a.lo.min(b.lo),
                hi: match (a.hi, b.hi) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (Some(x), None) => Some(x),
                    (None, y) => y,
                },
                mult: gcd(a.mult, b.mult),
            },
            "max" => AbsVal {
                lo: a.lo.max(b.lo),
                hi: match (a.hi, b.hi) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    _ => None,
                },
                mult: gcd(a.mult, b.mult),
            },
            // Saturation at 0 yields 0 — a multiple of everything — so
            // the gcd congruence survives either way.
            "saturating_sub" => AbsVal {
                lo: match b.hi {
                    Some(bh) => (a.lo - bh).max(0),
                    None => 0,
                },
                hi: a.hi.map(|ah| (ah - b.lo).max(0)),
                mult: gcd(a.mult, b.mult),
            },
            "saturating_add" => match (a.hi, b.hi) {
                (Some(x), Some(y)) if x + y <= U64_MAX => {
                    AbsVal { lo: a.lo + b.lo, hi: Some(x + y), mult: gcd(a.mult, b.mult) }
                }
                _ => AbsVal { lo: a.lo.saturating_add(b.lo).min(U64_MAX), hi: None, mult: 1 },
            },
            _ => AbsVal::top(),
        }
    }

    /// True when every concrete value of `self` is a multiple of `m`.
    pub fn multiple_of(&self, m: u64) -> bool {
        m != 0 && (self.mult == 0 || self.mult.is_multiple_of(m))
    }
}

// ---- environment ----------------------------------------------------------

/// Proof that a claim was discharged: the code-token indices of the
/// guards it leaned on (empty for a pure interval proof).
#[derive(Clone, Debug, Default)]
pub struct Proof {
    pub guards: Vec<u32>,
}

/// The per-program-point abstract state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Env {
    /// Interval + congruence per atom; absent ⇒ ⊤ (`[0, ∞)`).
    pub vars: BTreeMap<Atom, AbsVal>,
    /// Linear facts `lin ≤ 0`, each tagged with the guard's code-token
    /// index (minimum across joined paths).
    pub facts: BTreeMap<Lin, u32>,
    /// Rendered non-linear dominating conditions (e.g.
    /// `eps_sq < f64::INFINITY`) for textual contract checks.
    pub guards: BTreeSet<String>,
    /// True when contradictory assumptions make this point unreachable
    /// (claims are then vacuously discharged).
    pub dead: bool,
}

impl Env {
    pub fn value(&self, atom: &Atom) -> AbsVal {
        self.vars.get(atom).copied().unwrap_or_else(AbsVal::top)
    }

    /// Interval of a linear form under this environment:
    /// `(lower, upper)`, `None` = unbounded on that side.
    pub fn lin_range(&self, lin: &Lin) -> (Option<i128>, Option<i128>) {
        let (mut lo, mut hi) = (Some(lin.k), Some(lin.k));
        for (atom, &c) in &lin.terms {
            let v = self.value(atom);
            if c > 0 {
                lo = lo.map(|l| l + c * v.lo);
                hi = match (hi, v.hi) {
                    (Some(h), Some(vh)) => Some(h + c * vh),
                    _ => None,
                };
            } else {
                lo = match (lo, v.hi) {
                    (Some(l), Some(vh)) => Some(l + c * vh),
                    _ => None,
                };
                hi = hi.map(|h| h + c * v.lo);
            }
        }
        (lo, hi)
    }

    /// Discharges the claim `claim ≤ 0`, returning the guards used.
    pub fn check_le(&self, claim: &Lin) -> Option<Proof> {
        if self.dead {
            return Some(Proof::default());
        }
        let holds = |l: &Lin| matches!(self.lin_range(l).1, Some(h) if h <= 0);
        if holds(claim) {
            return Some(Proof::default());
        }
        let facts: Vec<(&Lin, u32)> = self.facts.iter().map(|(l, &ci)| (l, ci)).collect();
        for (f, ci) in &facts {
            if holds(&claim.sub(f)) {
                return Some(Proof { guards: vec![*ci] });
            }
        }
        // Two-fact combination: one substitution step through a
        // `let n = xs.len()`-style equality plus the guard proper.
        for (i, (f1, c1)) in facts.iter().enumerate() {
            for (f2, c2) in facts.iter().skip(i + 1) {
                if holds(&claim.sub(f1).sub(f2)) {
                    let mut guards = vec![*c1, *c2];
                    guards.sort_unstable();
                    guards.dedup();
                    return Some(Proof { guards });
                }
            }
        }
        None
    }

    /// Collapses a contradictory environment to the canonical bottom.
    /// Dead environments must all compare equal: the fixpoint engine
    /// detects convergence by `Env` equality, and a dead state that
    /// kept mutating its (meaningless) intervals around a loop back
    /// edge would register as endless progress and starve live paths.
    fn collapse_dead(&mut self) {
        self.vars.clear();
        self.facts.clear();
        self.guards.clear();
        self.dead = true;
    }

    /// Records `lin ≤ 0` and propagates it into atom intervals.
    fn add_fact(&mut self, lin: Lin, ci: u32) {
        if self.dead {
            return;
        }
        if lin.terms.is_empty() {
            if lin.k > 0 {
                self.collapse_dead(); // contradictory: k ≤ 0 with k > 0
            }
            return;
        }
        // Interval refinement: isolate each atom in turn.
        for (atom, &c) in &lin.terms {
            let mut rest = lin.clone();
            rest.terms.remove(atom);
            let (rlo, _rhi) = self.lin_range(&rest);
            let Some(rlo) = rlo else { continue };
            let mut v = self.value(atom);
            if c > 0 {
                // c·a ≤ −rest ≤ −rlo ⇒ a ≤ ⌊−rlo / c⌋
                let bound = (-rlo).div_euclid(c);
                if v.hi.is_none_or(|h| bound < h) {
                    v.hi = Some(bound);
                }
                if v.hi.is_some_and(|h| h < v.lo) {
                    self.dead = true;
                }
            } else {
                // (−c)·a ≥ rest ≥ rlo ⇒ a ≥ ⌈rlo / −c⌉
                let bound = rlo.div_euclid(-c) + i128::from(rlo.rem_euclid(-c) != 0);
                if bound > v.lo {
                    v.lo = bound.min(U64_MAX);
                }
                if v.hi.is_some_and(|h| h < v.lo) {
                    self.dead = true;
                }
            }
            self.vars.insert(atom.clone(), v);
        }
        if self.dead {
            self.collapse_dead();
            return;
        }
        let e = self.facts.entry(lin).or_insert(ci);
        *e = (*e).min(ci);
    }

    /// Assumes a comparison: linear comparisons become facts and
    /// interval refinements, non-linear ones are kept as rendered
    /// guard strings for textual contract checks.
    pub fn assume(&mut self, cmp: &Cmp) {
        if self.dead {
            return;
        }
        let (ll, lr) = (linearize(&cmp.lhs), linearize(&cmp.rhs));
        if let (Some(l), Some(r)) = (ll, lr) {
            match cmp.op {
                CmpOp::Le => self.add_fact(l.sub(&r), cmp.ci),
                CmpOp::Lt => self.add_fact(l.sub(&r).add(&Lin::constant(1)), cmp.ci),
                CmpOp::Ge => self.add_fact(r.sub(&l), cmp.ci),
                CmpOp::Gt => self.add_fact(r.sub(&l).add(&Lin::constant(1)), cmp.ci),
                CmpOp::Eq => {
                    self.add_fact(l.sub(&r), cmp.ci);
                    self.add_fact(r.sub(&l), cmp.ci);
                }
                CmpOp::Ne => {}
            }
        } else {
            self.guards.insert(cmp.render());
        }
    }

    /// Evaluates an [`AExpr`] under this environment.
    pub fn eval(&self, e: &AExpr) -> AbsVal {
        match e {
            AExpr::Const(c) => AbsVal::constant(*c),
            AExpr::Var(v) => self.value(&Atom::Var(v.clone())),
            AExpr::Len(b) => self.value(&Atom::Len(b.clone())),
            AExpr::Bin(op, a, b) => AbsVal::bin(op, self.eval(a), self.eval(b)),
            AExpr::Un(op, a) => match (op.as_str(), self.eval(a)) {
                ("!", v) => match v.hi {
                    Some(h) if h == v.lo && (0..=U64_MAX).contains(&h) => {
                        AbsVal::constant(U64_MAX - h)
                    }
                    _ => AbsVal::top(),
                },
                _ => AbsVal::top(),
            },
            AExpr::Call(name, args) => match args.as_slice() {
                [a, b] => AbsVal::call(name, self.eval(a), self.eval(b)),
                _ => AbsVal::top(),
            },
            AExpr::Other(_) => AbsVal::top(),
        }
    }

    /// Invalidates everything rooted at `name`: its interval, every
    /// fact mentioning it, every guard string containing it.
    pub fn kill(&mut self, name: &str) {
        self.vars.retain(|a, _| !a.named(name));
        self.facts.retain(|l, _| !l.mentions(name));
        self.guards.retain(|g| !g.contains(name));
    }

    /// Assignment transfer: evaluate, invalidate, bind — and when the
    /// right-hand side is linear (and not self-referential), keep the
    /// equality as a pair of facts so lengths substitute through
    /// `let n = xs.len()`.
    pub fn assign(&mut self, name: &str, rhs: &AExpr, ci: u32) {
        if self.dead {
            return;
        }
        let v = self.eval(rhs);
        let rhs_lin = linearize(rhs).filter(|l| !l.mentions(name));
        self.kill(name);
        self.vars.insert(Atom::Var(name.to_string()), v);
        if let Some(l) = rhs_lin {
            // The equality is a ℤ-fact, but the concrete machine computes
            // the rhs mod 2⁶⁴. Since +, − and ·const are exact ring ops
            // mod 2⁶⁴, the wrapped result equals the ℤ-value whenever
            // that value provably lies in [0, u64::MAX] — and a bare
            // atom copy (`let n = xs.len()`) is a u64, always in range.
            // Anything else (`x2 - 15` with x2 == 0 wraps to 2⁶⁴ − 15)
            // must not become a fact: it would poison the intervals
            // into a false contradiction.
            let pure_copy = l.k == 0 && l.terms.len() == 1 && l.terms.values().all(|&c| c == 1);
            let no_wrap = || {
                let (rlo, rhi) = self.lin_range(&l);
                rlo.is_some_and(|lo| lo >= 0) && rhi.is_some_and(|hi| hi <= U64_MAX)
            };
            if pure_copy || no_wrap() {
                let me = Lin::atom(Atom::Var(name.to_string()));
                self.add_fact(me.sub(&l), ci);
                self.add_fact(l.sub(&me), ci);
            }
        }
    }

    /// Join for the dataflow engine (set-intersection on facts and
    /// guards, interval join per atom).
    pub fn join(&self, other: &Env) -> Env {
        if self.dead {
            return other.clone();
        }
        if other.dead {
            return self.clone();
        }
        let mut vars = BTreeMap::new();
        for (a, v) in &self.vars {
            if let Some(w) = other.vars.get(a) {
                vars.insert(a.clone(), v.join(w));
            }
        }
        let mut facts = BTreeMap::new();
        for (l, &ci) in &self.facts {
            if let Some(&cj) = other.facts.get(l) {
                facts.insert(l.clone(), ci.min(cj));
            }
        }
        let guards = self.guards.intersection(&other.guards).cloned().collect();
        Env { vars, facts, guards, dead: false }
    }

    /// Widening: like join, but unstable intervals are relaxed with
    /// [`AbsVal::widen`] so loop fixpoints terminate.
    pub fn widen(&self, next: &Env) -> Env {
        if self.dead {
            return next.clone();
        }
        if next.dead {
            return self.clone();
        }
        let mut vars = BTreeMap::new();
        for (a, v) in &self.vars {
            if let Some(w) = next.vars.get(a) {
                vars.insert(a.clone(), v.widen(w));
            }
        }
        let mut facts = BTreeMap::new();
        for (l, &ci) in &self.facts {
            if let Some(&cj) = next.facts.get(l) {
                facts.insert(l.clone(), ci.min(cj));
            }
        }
        let guards = self.guards.intersection(&next.guards).cloned().collect();
        Env { vars, facts, guards, dead: false }
    }
}

/// Discharges a comparison claim under an environment: both sides are
/// linearized and the implied `lin ≤ 0` claim(s) handed to
/// [`Env::check_le`] (`==` claims both directions, `!=` is never
/// dischargeable). Non-linear claims fall back to an exact textual
/// match against the rendered dominating guards.
pub fn established(env: &Env, cmp: &Cmp) -> Option<Proof> {
    if env.dead {
        return Some(Proof::default());
    }
    match (linearize(&cmp.lhs), linearize(&cmp.rhs)) {
        (Some(l), Some(r)) => {
            let claims: Vec<Lin> = match cmp.op {
                CmpOp::Le => vec![l.sub(&r)],
                CmpOp::Lt => vec![l.sub(&r).add(&Lin::constant(1))],
                CmpOp::Ge => vec![r.sub(&l)],
                CmpOp::Gt => vec![r.sub(&l).add(&Lin::constant(1))],
                CmpOp::Eq => vec![l.sub(&r), r.sub(&l)],
                CmpOp::Ne => return None,
            };
            let mut proof = Proof::default();
            for c in claims {
                let p = env.check_le(&c)?;
                proof.guards.extend(p.guards);
            }
            proof.guards.sort_unstable();
            proof.guards.dedup();
            Some(proof)
        }
        _ if env.guards.contains(&cmp.render()) => Some(Proof::default()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: &str) -> AExpr {
        AExpr::Var(n.to_string())
    }

    fn cmp(lhs: AExpr, op: CmpOp, rhs: AExpr) -> Cmp {
        Cmp { lhs, op, rhs, ci: 7 }
    }

    #[test]
    fn constant_folding_and_masking() {
        let env = Env::default();
        // (x + 3) & !3 is a multiple of 4 whatever x is.
        let e = AExpr::Bin(
            "&".into(),
            Box::new(AExpr::Bin("+".into(), Box::new(var("x")), Box::new(AExpr::Const(3)))),
            Box::new(AExpr::Un("!".into(), Box::new(AExpr::Const(3)))),
        );
        let v = env.eval(&e);
        assert!(v.multiple_of(4), "{v:?}");
    }

    #[test]
    fn assume_refines_interval_and_discharges() {
        let mut env = Env::default();
        env.assume(&cmp(var("i"), CmpOp::Lt, AExpr::Const(10)));
        let v = env.value(&Atom::Var("i".into()));
        assert_eq!(v.hi, Some(9));
        // claim: i + 1 − 10 ≤ 0
        let claim = Lin::atom(Atom::Var("i".into())).add(&Lin::constant(1 - 10));
        assert!(env.check_le(&claim).is_some());
    }

    #[test]
    fn symbolic_length_fact_discharges_lane_claim() {
        let mut env = Env::default();
        // debug_assert!(j + 4 <= dims.len())
        env.assume(&cmp(
            AExpr::Bin("+".into(), Box::new(var("j")), Box::new(AExpr::Const(4))),
            CmpOp::Le,
            AExpr::Len("dims".into()),
        ));
        // claim: j + 4 − dims.len() ≤ 0
        let claim = Lin::atom(Atom::Var("j".into()))
            .add(&Lin::constant(4))
            .sub(&Lin::atom(Atom::Len("dims".into())));
        let proof = env.check_le(&claim).expect("discharged");
        assert_eq!(proof.guards, vec![7]);
        // claim: j + 8 − dims.len() ≤ 0 must NOT discharge.
        let too_far = claim.add(&Lin::constant(4));
        assert!(env.check_le(&too_far).is_none());
    }

    #[test]
    fn equality_substitution_through_let() {
        let mut env = Env::default();
        env.assign("n", &AExpr::Len("xs".into()), 3);
        env.assume(&cmp(var("i"), CmpOp::Lt, var("n")));
        // claim: i + 1 − xs.len() ≤ 0 (needs i < n and n == xs.len()).
        let claim = Lin::atom(Atom::Var("i".into()))
            .add(&Lin::constant(1))
            .sub(&Lin::atom(Atom::Len("xs".into())));
        assert!(env.check_le(&claim).is_some());
    }

    #[test]
    fn kill_invalidates_facts() {
        let mut env = Env::default();
        env.assume(&cmp(var("i"), CmpOp::Lt, AExpr::Len("xs".into())));
        env.kill("xs");
        let claim = Lin::atom(Atom::Var("i".into()))
            .add(&Lin::constant(1))
            .sub(&Lin::atom(Atom::Len("xs".into())));
        assert!(env.check_le(&claim).is_none());
    }

    #[test]
    fn join_intersects_widen_terminates() {
        let mut a = Env::default();
        a.assume(&cmp(var("i"), CmpOp::Lt, AExpr::Const(4)));
        let mut b = Env::default();
        b.assume(&cmp(var("i"), CmpOp::Lt, AExpr::Const(8)));
        let j = a.join(&b);
        // Only the weaker interval survives; the i<4 fact does not.
        assert_eq!(j.value(&Atom::Var("i".into())).hi, Some(7));
        let w = a.widen(&b);
        assert_eq!(w.value(&Atom::Var("i".into())).hi, None);
    }

    #[test]
    fn wrapping_add_loses_interval_keeps_pow2() {
        let a = AbsVal { lo: 0, hi: None, mult: 4 };
        let b = AbsVal::constant(4);
        let s = AbsVal::bin("+", a, b);
        assert_eq!(s.hi, None);
        assert!(s.multiple_of(4));
        let c = AbsVal { lo: 0, hi: None, mult: 6 };
        let t = AbsVal::bin("+", c, AbsVal::constant(6));
        assert_eq!(t.mult, 1, "non-pow2 congruence must not survive potential wrap");
    }

    #[test]
    fn wrapping_assignment_keeps_no_z_fact() {
        // Regression (found by the soundness proptest): `x0 = x2 - 15`
        // with x2 == 0 wraps to 2⁶⁴ − 15 concretely, so the ℤ-equality
        // `x0 == x2 − 15` is false — recording it refined x0 to the
        // empty interval and killed the whole branch as unreachable.
        let mut env = Env::default();
        env.assign("x2", &AExpr::Const(0), 1);
        env.assign(
            "x0",
            &AExpr::Bin("-".into(), Box::new(var("x2")), Box::new(AExpr::Const(15))),
            2,
        );
        assert!(!env.dead, "wrapping rhs must not create a contradiction");
        let v = env.value(&Atom::Var("x0".into()));
        assert_eq!(v.hi, None, "wrapped value is unknown, not negative: {v:?}");
        // The pure-copy form stays exact: it is a u64-to-u64 move.
        let mut env2 = Env::default();
        env2.assign("n", &AExpr::Len("xs".into()), 3);
        let fact = Lin::atom(Atom::Var("n".into())).sub(&Lin::atom(Atom::Len("xs".into())));
        assert!(env2.facts.contains_key(&fact), "copy equality must survive");
    }

    #[test]
    fn established_discharges_comparison_claims() {
        let mut env = Env::default();
        env.assume(&cmp(
            AExpr::Bin("+".into(), Box::new(var("j")), Box::new(AExpr::Const(4))),
            CmpOp::Le,
            AExpr::Len("dims".into()),
        ));
        let claim = cmp(
            AExpr::Bin("+".into(), Box::new(var("j")), Box::new(AExpr::Const(4))),
            CmpOp::Le,
            AExpr::Len("dims".into()),
        );
        assert_eq!(established(&env, &claim).expect("discharged").guards, vec![7]);
        // Non-linear claims fall back to a textual guard match.
        let mut env2 = Env::default();
        env2.guards.insert("eps_sq < f64::INFINITY".into());
        let nl = cmp(var("eps_sq"), CmpOp::Lt, AExpr::Other("f64::INFINITY".into()));
        assert!(established(&env2, &nl).is_some());
        assert!(established(&Env::default(), &nl).is_none());
    }

    #[test]
    fn contradiction_marks_dead() {
        let mut env = Env::default();
        env.assume(&cmp(AExpr::Const(5), CmpOp::Le, AExpr::Const(3)));
        assert!(env.dead);
        assert!(env.check_le(&Lin::constant(99)).is_some(), "vacuous discharge when dead");
    }
}
