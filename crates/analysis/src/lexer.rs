//! A hand-rolled Rust lexer: just enough of the language to support
//! line-accurate static analysis with zero external dependencies.
//!
//! The lexer understands the token classes that matter for discipline
//! rules — identifiers, numeric literals (with int/float
//! classification), string/char/lifetime literals in all their raw and
//! byte-prefixed forms, nested block comments, and multi-character
//! operators — and attaches a 1-based line/column span to every token.
//! It does **not** build a syntax tree; rules pattern-match over the
//! token stream (see [`crate::rules`]).
//!
//! Robustness stance: the lexer must never panic on arbitrary input
//! (it runs over every file in the workspace, including work in
//! progress). Unterminated strings/comments simply extend to the end
//! of the file.

/// Token classification. Comments are real tokens here — annotation
/// and suppression parsing needs them — and rules filter them out when
/// matching code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// `'a` in `&'a str` (disambiguated from char literals).
    Lifetime,
    /// Integer literal, including hex/octal/binary forms.
    Int,
    /// Float literal: has a fractional part, an exponent, or an
    /// `f32`/`f64` suffix.
    Float,
    /// String-ish literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` (doc comments `///` and `//!` included).
    LineComment,
    /// `/* … */`, nesting-aware (doc form `/** … */` included).
    BlockComment,
    /// Operator or delimiter; multi-char operators like `::`, `==`,
    /// `->` come out as a single token.
    Punct,
}

/// One lexed token with its text and 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// True for the two comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the list in order.
const MULTI_PUNCT: &[&str] = &[
    "..=", "<<=", ">>=", "...", "::", "==", "!=", "<=", ">=", "->", "=>", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

/// Lexes `src` into a token vector. Never panics; malformed input
/// degrades to best-effort tokens rather than errors.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    while let Some(tok) = lx.next_token() {
        out.push(tok);
    }
    out
}

impl<'a> Lexer<'a> {
    fn at(&self, offset: usize) -> u8 {
        *self.src.get(self.pos + offset).unwrap_or(&0)
    }

    /// Advances one byte, maintaining the line/col counters. Column is
    /// a byte column; multi-byte UTF-8 only occurs inside comments and
    /// strings where rules never need sub-token precision.
    fn bump(&mut self) {
        if self.at(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn text_from(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn next_token(&mut self) -> Option<Token> {
        while self.pos < self.src.len() && self.at(0).is_ascii_whitespace() {
            self.bump();
        }
        if self.pos >= self.src.len() {
            return None;
        }
        let (line, col, start) = (self.line, self.col, self.pos);
        let c = self.at(0);

        let kind = if c == b'/' && self.at(1) == b'/' {
            self.lex_line_comment()
        } else if c == b'/' && self.at(1) == b'*' {
            self.lex_block_comment()
        } else if self.lex_string_prefix() {
            TokKind::Str
        } else if (c == b'b' && self.at(1) == b'\'') || c == b'\'' {
            self.lex_quote()
        } else if c == b'_' || c.is_ascii_alphabetic() {
            self.lex_ident()
        } else if c.is_ascii_digit() {
            self.lex_number()
        } else {
            self.lex_punct()
        };
        Some(Token { kind, text: self.text_from(start), line, col })
    }

    fn lex_line_comment(&mut self) -> TokKind {
        while self.pos < self.src.len() && self.at(0) != b'\n' {
            self.bump();
        }
        TokKind::LineComment
    }

    fn lex_block_comment(&mut self) -> TokKind {
        self.bump_n(2);
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.at(0) == b'/' && self.at(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.at(0) == b'*' && self.at(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        TokKind::BlockComment
    }

    /// Tries the string-literal prefixes (`"`, `r"`, `r#"`, `b"`,
    /// `br"`, `c"`, …). Returns false without consuming anything when
    /// the cursor is not at a string, so `r`/`b`/`c` identifiers and
    /// raw identifiers (`r#match`) fall through to ident lexing.
    fn lex_string_prefix(&mut self) -> bool {
        let c = self.at(0);
        if c == b'"' {
            self.bump();
            self.lex_escaped_until(b'"');
            return true;
        }
        if !(c == b'r' || c == b'b' || c == b'c') {
            return false;
        }
        // One or two prefix letters (`br`, `cr`), then the quote shape.
        let mut p = 1usize;
        if (c == b'b' || c == b'c') && self.at(1) == b'r' {
            p = 2;
        }
        let raw = self.at(p - 1) == b'r' && (c == b'r' || p == 2);
        if raw {
            let mut hashes = 0usize;
            while self.at(p + hashes) == b'#' {
                hashes += 1;
            }
            if self.at(p + hashes) != b'"' {
                return false; // raw identifier like `r#fn`, or plain ident
            }
            self.bump_n(p + hashes + 1);
            self.lex_raw_until(hashes);
            return true;
        }
        if self.at(p) == b'"' {
            self.bump_n(p + 1);
            self.lex_escaped_until(b'"');
            return true;
        }
        false
    }

    fn lex_escaped_until(&mut self, close: u8) {
        while self.pos < self.src.len() {
            let c = self.at(0);
            if c == b'\\' {
                self.bump_n(2);
            } else if c == close {
                self.bump();
                return;
            } else {
                self.bump();
            }
        }
    }

    /// Consumes until `"` followed by `hashes` `#` characters.
    fn lex_raw_until(&mut self, hashes: usize) {
        while self.pos < self.src.len() {
            if self.at(0) == b'"' && (1..=hashes).all(|k| self.at(k) == b'#') {
                self.bump_n(1 + hashes);
                return;
            }
            self.bump();
        }
    }

    /// At a `'` (or `b'`): lifetime or char literal. A lifetime is `'`
    /// followed by an identifier NOT closed by another `'` (so `'a'` is
    /// a char but `'a,` is a lifetime).
    fn lex_quote(&mut self) -> TokKind {
        if self.at(0) == b'b' {
            self.bump(); // byte literal prefix; always a char-like
            self.bump(); // opening '
            self.lex_escaped_until(b'\'');
            return TokKind::Char;
        }
        let c1 = self.at(1);
        if (c1 == b'_' || c1.is_ascii_alphabetic()) && self.at(2) != b'\'' {
            self.bump(); // '
            while self.at(0) == b'_' || self.at(0).is_ascii_alphanumeric() {
                self.bump();
            }
            return TokKind::Lifetime;
        }
        self.bump();
        self.lex_escaped_until(b'\'');
        TokKind::Char
    }

    fn lex_ident(&mut self) -> TokKind {
        while self.at(0) == b'_' || self.at(0).is_ascii_alphanumeric() {
            self.bump();
        }
        TokKind::Ident
    }

    fn lex_number(&mut self) -> TokKind {
        // Radix-prefixed forms are always integers.
        if self.at(0) == b'0' && matches!(self.at(1), b'x' | b'o' | b'b') {
            self.bump_n(2);
            while self.at(0).is_ascii_alphanumeric() || self.at(0) == b'_' {
                self.bump();
            }
            return TokKind::Int;
        }
        let mut float = false;
        while self.at(0).is_ascii_digit() || self.at(0) == b'_' {
            self.bump();
        }
        // A decimal point only if followed by a digit or by a non-ident,
        // non-dot char: `1.0` and `1.` are floats, `1..2` is a range and
        // `1.max(2)` is a method call on an integer.
        if self.at(0) == b'.' {
            let next = self.at(1);
            if next.is_ascii_digit() {
                float = true;
                self.bump();
                while self.at(0).is_ascii_digit() || self.at(0) == b'_' {
                    self.bump();
                }
            } else if next != b'.' && next != b'_' && !next.is_ascii_alphabetic() {
                float = true;
                self.bump();
            }
        }
        if matches!(self.at(0), b'e' | b'E')
            && (self.at(1).is_ascii_digit()
                || (matches!(self.at(1), b'+' | b'-') && self.at(2).is_ascii_digit()))
        {
            float = true;
            self.bump_n(2);
            while self.at(0).is_ascii_digit() || self.at(0) == b'_' {
                self.bump();
            }
        }
        // Type suffix (`u32`, `f64`, …) decides floatness when present.
        let suffix_start = self.pos;
        while self.at(0) == b'_' || self.at(0).is_ascii_alphanumeric() {
            self.bump();
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix == b"f32" || suffix == b"f64" {
            float = true;
        }
        if float {
            TokKind::Float
        } else {
            TokKind::Int
        }
    }

    fn lex_punct(&mut self) -> TokKind {
        for op in MULTI_PUNCT {
            if self.src[self.pos..].starts_with(op.as_bytes()) {
                self.bump_n(op.len());
                return TokKind::Punct;
            }
        }
        self.bump();
        TokKind::Punct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("a.unwrap()");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["a", ".", "unwrap", "(", ")"]);
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let texts: Vec<String> =
            kinds("a == b != c -> d :: e ..= f").into_iter().map(|(_, t)| t).collect();
        assert!(texts.contains(&"==".to_string()));
        assert!(texts.contains(&"!=".to_string()));
        assert!(texts.contains(&"->".to_string()));
        assert!(texts.contains(&"::".to_string()));
        assert!(texts.contains(&"..=".to_string()));
    }

    #[test]
    fn float_vs_int_classification() {
        for (src, kind) in [
            ("1.0", TokKind::Float),
            ("1.", TokKind::Float),
            ("1e-9", TokKind::Float),
            ("2.5e10", TokKind::Float),
            ("1f64", TokKind::Float),
            ("3f32", TokKind::Float),
            ("42", TokKind::Int),
            ("0xff", TokKind::Int),
            ("1_000", TokKind::Int),
            ("7u32", TokKind::Int),
        ] {
            assert_eq!(kinds(src)[0].0, kind, "{src}");
        }
    }

    #[test]
    fn ranges_and_method_calls_are_not_floats() {
        let toks = kinds("0..10");
        assert_eq!(toks[0], (TokKind::Int, "0".into()));
        assert_eq!(toks[1], (TokKind::Punct, "..".into()));
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokKind::Int, "1".into()));
        assert_eq!(toks[1].1, ".");
    }

    #[test]
    fn strings_with_escapes_and_raw_forms() {
        assert_eq!(kinds(r#""a \" b""#)[0].0, TokKind::Str);
        assert_eq!(kinds(r###"r#"raw " inner"#"###)[0].0, TokKind::Str);
        assert_eq!(kinds(r#"b"bytes""#)[0].0, TokKind::Str);
        // A string containing `unwrap()` must not produce an ident.
        let toks = kinds(r#"let s = "x.unwrap()";"#);
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(kinds("&'a str")[1].0, TokKind::Lifetime);
        assert_eq!(kinds("'x'")[0].0, TokKind::Char);
        assert_eq!(kinds(r"'\n'")[0].0, TokKind::Char);
        assert_eq!(kinds("b'z'")[0].0, TokKind::Char);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ after");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "after".into()));
    }

    #[test]
    fn line_and_column_positions() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        // `r#` without a quote is a raw identifier, not a raw string;
        // it lexes as `r`, `#`, `match` — crude but string-free.
        let toks = kinds("r#match");
        assert_eq!(toks[0], (TokKind::Ident, "r".into()));
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn never_panics_on_unterminated_input() {
        for src in ["\"unterminated", "/* open", "r#\"open", "'", "b'"] {
            let _ = lex(src);
        }
    }
}
