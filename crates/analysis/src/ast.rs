//! A dependency-free recursive-descent Rust parser over the
//! [`crate::lexer`] token stream.
//!
//! Coverage target is *this workspace*, not the language: items, fns,
//! blocks, the full expression grammar the engine uses (method chains,
//! `?`, `return`/`break`/`continue`, `if`/`match`/loops, closures,
//! struct literals, ranges, casts), with types, generics, patterns and
//! macro interiors consumed as balanced token runs rather than parsed
//! structurally. The parser is *lenient* — it never panics and always
//! returns a [`ParsedFile`] — but it is honest about gaps: every
//! recovery records a [`ParseError`], and the workspace self-check
//! (`tests/parser_check.rs`) pins the error count at zero for every
//! `.rs` file in the tree, so grammar the engine starts using must be
//! taught to the parser in the same PR.
//!
//! Spans are ranges of *code-token indices* (indices into
//! [`FileCtx::code`]), so every AST node resolves to the exact
//! line/col the lexer assigned — nothing is re-tokenized.

use crate::context::FileCtx;

/// A `[lo, hi)` range of code-token indices (see [`FileCtx::code`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub lo: u32,
    pub hi: u32,
}

/// A point the parser had to recover at. The workspace self-check
/// keeps this list empty for every file in the tree.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// Code-token index where recovery started.
    pub at: u32,
    pub what: String,
}

/// One parsed source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub items: Vec<Item>,
    pub errors: Vec<ParseError>,
}

impl ParsedFile {
    /// Every fn in the file, recursing through mods, impls and traits.
    /// The accompanying string is the name of the enclosing impl/trait
    /// type ("" at top level or inside plain mods).
    pub fn fns(&self) -> Vec<(&str, &FnItem)> {
        let mut out = Vec::new();
        fn walk<'x>(items: &'x [Item], owner: &'x str, out: &mut Vec<(&'x str, &'x FnItem)>) {
            for item in items {
                match &item.kind {
                    ItemKind::Fn(f) => out.push((owner, f)),
                    ItemKind::Mod(children) => walk(children, owner, out),
                    ItemKind::Impl(children) | ItemKind::Trait(children) => {
                        walk(children, &item.name, out);
                    }
                    ItemKind::Other(_) => {}
                }
            }
        }
        walk(&self.items, "", &mut out);
        out
    }
}

#[derive(Debug)]
pub enum ItemKind {
    Fn(FnItem),
    Mod(Vec<Item>),
    /// Impl block; `Item::name` is the (last segment of the) self type.
    Impl(Vec<Item>),
    Trait(Vec<Item>),
    /// Structurally skipped item; the tag says what it was.
    Other(&'static str),
}

#[derive(Debug)]
pub struct Item {
    pub kind: ItemKind,
    pub name: String,
    pub span: Span,
}

#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// `None` for bodiless trait-method declarations.
    pub body: Option<Block>,
    pub span: Span,
}

#[derive(Debug)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub span: Span,
}

#[derive(Debug)]
pub enum Stmt {
    Let {
        /// Simple `let name` / `let mut name` binding, if the pattern
        /// is that simple; `None` for tuple/struct/enum patterns.
        name: Option<String>,
        init: Option<Expr>,
        /// `let … else { … }` diverging block.
        els: Option<Block>,
        span: Span,
    },
    Expr {
        expr: Expr,
        #[allow(dead_code)]
        semi: bool,
    },
    Item(Item),
    Empty,
}

#[derive(Debug)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

#[derive(Debug)]
pub struct Arm {
    /// Lowercase identifiers bound by the arm's pattern.
    pub binds: Vec<String>,
    pub body: Expr,
}

#[derive(Debug)]
pub enum ExprKind {
    /// `a::b::c` (turbofish generics elided). Qualified `<T as X>::m`
    /// paths keep a literal `<…>` head segment.
    Path(String),
    /// Literal; integer literals carry their value so the value-range
    /// analysis can fold constants (`None` for strings/floats/chars).
    Lit(Option<i128>),
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
    },
    MethodCall {
        recv: Box<Expr>,
        name: String,
        name_ci: u32,
        args: Vec<Expr>,
    },
    Field {
        recv: Box<Expr>,
        name: String,
    },
    Index {
        recv: Box<Expr>,
        index: Box<Expr>,
    },
    Unary {
        op: String,
        expr: Box<Expr>,
    },
    Cast {
        expr: Box<Expr>,
    },
    Try {
        expr: Box<Expr>,
    },
    Binary {
        lhs: Box<Expr>,
        op: String,
        rhs: Box<Expr>,
    },
    Assign {
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        /// The arithmetic part of a compound assignment: `"+"` for
        /// `+=`, `"<<"` for `<<=`, … and `""` for plain `=`.
        op: String,
    },
    Range {
        lhs: Option<Box<Expr>>,
        rhs: Option<Box<Expr>>,
        /// `..=` (upper bound included).
        inclusive: bool,
    },
    Return(Option<Box<Expr>>),
    Break(Option<Box<Expr>>),
    Continue,
    If {
        cond: Box<Expr>,
        binds: Vec<String>,
        then: Block,
        els: Option<Box<Expr>>,
    },
    Match {
        scrut: Box<Expr>,
        arms: Vec<Arm>,
    },
    While {
        cond: Box<Expr>,
        body: Block,
    },
    Loop {
        body: Block,
    },
    For {
        binds: Vec<String>,
        iter: Box<Expr>,
        body: Block,
    },
    BlockExpr(Block),
    Closure {
        body: Box<Expr>,
    },
    /// `name!(…)`; args are the comma-split interior when it parses as
    /// expressions, empty when the interior is pattern/format grammar.
    Macro {
        path: String,
        args: Vec<Expr>,
    },
    StructLit {
        path: String,
        path_ci: u32,
        fields: Vec<Expr>,
    },
    Tuple(Vec<Expr>),
    Array(Vec<Expr>),
}

/// Parses one file's code-token stream.
pub fn parse(ctx: &FileCtx) -> ParsedFile {
    let mut p = Parser { ctx, pos: 0, n: ctx.code.len(), errors: Vec::new() };
    let mut items = Vec::new();
    // Leading inner attributes (`#![…]`) belong to no item.
    while p.at("#") && p.txt(1) == "!" {
        p.skip_attr();
    }
    while p.pos < p.n {
        items.push(p.item());
    }
    ParsedFile { items, errors: p.errors }
}

struct Parser<'c, 'a> {
    ctx: &'c FileCtx<'a>,
    pos: usize,
    n: usize,
    errors: Vec<ParseError>,
}

const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "union",
    "trait",
    "impl",
    "mod",
    "use",
    "const",
    "static",
    "type",
    "extern",
    "macro_rules",
    "pub",
];

impl Parser<'_, '_> {
    fn txt(&self, ahead: usize) -> &str {
        self.ctx.code_text((self.pos + ahead) as isize)
    }
    fn peek(&self) -> &str {
        self.txt(0)
    }
    fn at(&self, s: &str) -> bool {
        self.peek() == s
    }
    fn bump(&mut self) {
        self.pos += 1;
    }
    fn eat(&mut self, s: &str) -> bool {
        if self.at(s) {
            self.bump();
            true
        } else {
            false
        }
    }
    fn err(&mut self, what: &str) {
        self.errors.push(ParseError { at: self.pos as u32, what: what.to_string() });
    }
    fn span_from(&self, lo: usize) -> Span {
        Span { lo: lo as u32, hi: self.pos as u32 }
    }
    fn is_ident(&self, ahead: usize) -> bool {
        let t = self.txt(ahead);
        !t.is_empty()
            && t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
            && self.ctx.code_kind((self.pos + ahead) as isize) == crate::lexer::TokKind::Ident
    }

    // ---- balanced skipping ------------------------------------------------

    /// Skips a `#[…]` / `#![…]` attribute.
    fn skip_attr(&mut self) {
        self.eat("#");
        self.eat("!");
        if self.eat("[") {
            let mut depth = 1usize;
            while self.pos < self.n && depth > 0 {
                match self.peek() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                self.bump();
            }
        }
    }

    fn skip_attrs(&mut self) {
        while self.at("#") {
            self.skip_attr();
        }
    }

    /// Skips a balanced `<…>` generic-argument / parameter group,
    /// honouring nested `()`/`[]`/`{}` and `>>` closing two levels.
    fn skip_angles(&mut self) {
        if !self.eat("<") && !self.eat("<<") {
            return;
        }
        let mut angle: isize =
            if self.ctx.code_text(self.pos as isize - 1) == "<<" { 2 } else { 1 };
        let mut other = 0usize;
        while self.pos < self.n && angle > 0 {
            match self.peek() {
                "(" | "[" | "{" => other += 1,
                ")" | "]" | "}" => other = other.saturating_sub(1),
                "<" if other == 0 => angle += 1,
                "<<" if other == 0 => angle += 2,
                ">" if other == 0 => angle -= 1,
                ">>" if other == 0 => angle -= 2,
                "->" | "=>" => {}
                _ => {}
            }
            self.bump();
        }
    }

    /// Skips a type (or pattern) until one of `stops` appears outside
    /// every bracket/angle nesting level.
    fn skip_until(&mut self, stops: &[&str]) {
        let mut angle: isize = 0;
        let mut other = 0usize;
        while self.pos < self.n {
            let t = self.peek();
            if other == 0 && angle == 0 && stops.contains(&t) {
                return;
            }
            match t {
                "(" | "[" | "{" => other += 1,
                ")" | "]" | "}" => {
                    if other == 0 {
                        return; // closing a group we did not open
                    }
                    other -= 1;
                }
                "<" if other == 0 => angle += 1,
                "<<" if other == 0 => angle += 2,
                ">" if other == 0 => angle -= 1,
                ">>" if other == 0 => angle -= 2,
                _ => {}
            }
            if angle < 0 {
                return; // closing an angle group we did not open
            }
            self.bump();
        }
    }

    /// Skips a pattern (or a pattern plus match guard) until one of
    /// `stops` outside `()`/`[]`/`{}` nesting. Unlike [`Self::skip_until`]
    /// this does NOT track `<`/`>` — match guards contain comparison
    /// operators, and patterns in this workspace carry no generics.
    fn skip_pattern(&mut self, stops: &[&str]) {
        let mut other = 0usize;
        while self.pos < self.n {
            let t = self.peek();
            if other == 0 && stops.contains(&t) {
                return;
            }
            match t {
                "(" | "[" | "{" => other += 1,
                ")" | "]" | "}" => {
                    if other == 0 {
                        return;
                    }
                    other -= 1;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skips one balanced `(…)` / `[…]` / `{…}` group.
    fn skip_group(&mut self) {
        let (open, close) = match self.peek() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return,
        };
        self.bump();
        let mut depth = 1usize;
        while self.pos < self.n && depth > 0 {
            let t = self.peek();
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
            }
            self.bump();
        }
    }

    // ---- items ------------------------------------------------------------

    fn item(&mut self) -> Item {
        let lo = self.pos;
        self.skip_attrs();
        // Visibility.
        if self.eat("pub") && self.at("(") {
            self.skip_group();
        }
        // `unsafe impl` / `unsafe trait`.
        if self.at("unsafe") && matches!(self.txt(1), "impl" | "trait") {
            self.bump();
        }
        // Fn qualifiers.
        let mut probe = 0usize;
        while matches!(self.txt(probe), "const" | "unsafe" | "async" | "extern") {
            if self.txt(probe) == "extern" && self.txt(probe + 1).starts_with('"') {
                probe += 2;
            } else if self.txt(probe) == "const" && self.txt(probe + 1) != "fn" {
                break; // a `const NAME: …` item, not a qualifier
            } else {
                probe += 1;
            }
        }
        if self.txt(probe) == "fn" {
            for _ in 0..probe {
                self.bump();
            }
            return self.fn_item(lo);
        }
        match self.peek() {
            "use" => {
                self.skip_until(&[";"]);
                self.eat(";");
                Item { kind: ItemKind::Other("use"), name: String::new(), span: self.span_from(lo) }
            }
            "mod" => {
                self.bump();
                let name = self.peek().to_string();
                self.bump();
                if self.eat(";") {
                    return Item { kind: ItemKind::Other("mod"), name, span: self.span_from(lo) };
                }
                let mut children = Vec::new();
                self.eat("{");
                while self.pos < self.n && !self.at("}") {
                    children.push(self.item());
                }
                self.eat("}");
                Item { kind: ItemKind::Mod(children), name, span: self.span_from(lo) }
            }
            "struct" | "enum" | "union" => {
                self.bump();
                let name = self.peek().to_string();
                self.bump();
                self.skip_angles();
                self.skip_until(&[";", "{", "("]);
                if self.at("(") {
                    self.skip_group(); // tuple struct fields
                    self.skip_until(&[";"]);
                }
                if self.at("{") {
                    self.skip_group();
                } else {
                    self.eat(";");
                }
                Item { kind: ItemKind::Other("type-def"), name, span: self.span_from(lo) }
            }
            "trait" => {
                self.bump();
                let name = self.peek().to_string();
                self.bump();
                self.skip_angles();
                self.skip_until(&["{"]);
                let children = self.assoc_items();
                Item { kind: ItemKind::Trait(children), name, span: self.span_from(lo) }
            }
            "impl" => {
                self.bump();
                self.skip_angles();
                // Name the impl after the self type: the last path
                // segment before `{` / `for`, generics elided.
                let mut name = String::new();
                let mut seen_for = false;
                let scan_lo = self.pos;
                self.skip_until(&["{"]);
                let hi = self.pos;
                let mut k = scan_lo;
                let mut depth: isize = 0;
                while k < hi {
                    let t = self.ctx.code_text(k as isize);
                    match t {
                        "<" | "(" | "[" => depth += 1,
                        ">" | ")" | "]" => depth -= 1,
                        "<<" => depth += 2,
                        ">>" => depth -= 2,
                        "for" if depth == 0 => {
                            seen_for = true;
                            name.clear();
                        }
                        "where" if depth == 0 => break,
                        _ if depth == 0 && (!seen_for || name.is_empty()) => {
                            let ident_like =
                                t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_');
                            if ident_like && !matches!(t, "dyn" | "mut" | "const") {
                                name = t.to_string();
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                let children = self.assoc_items();
                Item { kind: ItemKind::Impl(children), name, span: self.span_from(lo) }
            }
            "type" | "static" | "const" => {
                let tag = if self.peek() == "type" { "type-alias" } else { "const" };
                self.bump();
                self.skip_until(&[";"]);
                self.eat(";");
                Item { kind: ItemKind::Other(tag), name: String::new(), span: self.span_from(lo) }
            }
            "macro_rules" => {
                self.bump();
                self.eat("!");
                let name = self.peek().to_string();
                self.bump();
                self.skip_group();
                Item { kind: ItemKind::Other("macro-def"), name, span: self.span_from(lo) }
            }
            "extern" => {
                // `extern crate …;` or an `extern "C" { … }` block.
                self.skip_until(&[";", "{"]);
                if self.at("{") {
                    self.skip_group();
                } else {
                    self.eat(";");
                }
                Item {
                    kind: ItemKind::Other("extern"),
                    name: String::new(),
                    span: self.span_from(lo),
                }
            }
            _ if self.is_ident(0) && self.txt(1) == "!" => {
                // Item-position macro invocation (`thread_local! { … }`).
                let name = self.peek().to_string();
                self.bump();
                self.eat("!");
                let paren = self.at("(") || self.at("[");
                self.skip_group();
                if paren {
                    self.eat(";");
                }
                Item { kind: ItemKind::Other("macro-call"), name, span: self.span_from(lo) }
            }
            _ => {
                self.err("unrecognized item");
                self.skip_until(&[";", "{"]);
                if self.at("{") {
                    self.skip_group();
                } else {
                    self.eat(";");
                }
                if self.pos == lo {
                    self.bump(); // guarantee progress
                }
                Item {
                    kind: ItemKind::Other("error"),
                    name: String::new(),
                    span: self.span_from(lo),
                }
            }
        }
    }

    /// Items inside a trait or impl `{ … }`.
    fn assoc_items(&mut self) -> Vec<Item> {
        let mut children = Vec::new();
        self.eat("{");
        while self.pos < self.n && !self.at("}") {
            children.push(self.item());
        }
        self.eat("}");
        children
    }

    fn fn_item(&mut self, lo: usize) -> Item {
        self.eat("fn");
        let name = self.peek().to_string();
        self.bump();
        self.skip_angles();
        if self.at("(") {
            self.skip_group();
        } else {
            self.err("fn without parameter list");
        }
        if self.eat("->") {
            self.skip_until(&["{", ";", "where"]);
        }
        if self.eat("where") {
            self.skip_until(&["{", ";"]);
        }
        let body = if self.at("{") { Some(self.block()) } else { None };
        if body.is_none() {
            self.eat(";");
        }
        let span = self.span_from(lo);
        Item { kind: ItemKind::Fn(FnItem { name: name.clone(), body, span }), name, span }
    }

    // ---- statements -------------------------------------------------------

    fn block(&mut self) -> Block {
        let lo = self.pos;
        self.eat("{");
        let mut stmts = Vec::new();
        while self.pos < self.n && !self.at("}") {
            let before = self.pos;
            stmts.push(self.stmt());
            if self.pos == before {
                self.bump(); // guarantee progress on pathological input
            }
        }
        self.eat("}");
        Block { stmts, span: self.span_from(lo) }
    }

    fn stmt(&mut self) -> Stmt {
        self.skip_attrs();
        if self.eat(";") {
            return Stmt::Empty;
        }
        if self.at("let") {
            return self.let_stmt();
        }
        // Nested items. `const` only counts when it is not a
        // qualifier on `fn` handled by `item`, which it handles too.
        let t = self.peek();
        let nested_item = ITEM_KEYWORDS.contains(&t)
            && !(t == "unsafe" && self.txt(1) == "{")
            && !(self.is_ident(0) && self.txt(1) == "!" && t != "macro_rules");
        if nested_item {
            return Stmt::Item(self.item());
        }
        let expr = self.expr();
        let semi = self.eat(";");
        Stmt::Expr { expr, semi }
    }

    fn let_stmt(&mut self) -> Stmt {
        let lo = self.pos;
        self.eat("let");
        // Pattern: capture a simple binding name when the pattern is
        // `[mut|ref] ident`, otherwise skip it structurally.
        let pat_lo = self.pos;
        self.skip_pattern(&[":", "=", ";", "else"]);
        let name = self.simple_binding(pat_lo, self.pos);
        if self.eat(":") {
            self.skip_until(&["=", ";", "else"]);
        }
        let init = if self.eat("=") { Some(self.expr()) } else { None };
        let els = if self.eat("else") { Some(self.block()) } else { None };
        if !self.eat(";") {
            self.err("let statement missing `;`");
            self.skip_until(&[";"]);
            self.eat(";");
        }
        Stmt::Let { name, init, els, span: self.span_from(lo) }
    }

    /// `[mut|ref] ident` over the code range `[lo, hi)` → the ident.
    fn simple_binding(&self, lo: usize, hi: usize) -> Option<String> {
        let mut idents: Vec<&str> = Vec::new();
        for k in lo..hi {
            let t = self.ctx.code_text(k as isize);
            if matches!(t, "mut" | "ref") {
                continue;
            }
            idents.push(t);
        }
        match idents.as_slice() {
            [one]
                if one.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
                    && *one != "_" =>
            {
                Some((*one).to_string())
            }
            _ => None,
        }
    }

    /// Lowercase identifiers bound by a pattern in `[lo, hi)` —
    /// heuristic: idents starting lowercase that are not path segments
    /// (`a::b`), keywords, or field names before `:`.
    fn pattern_binds(&self, lo: usize, hi: usize) -> Vec<String> {
        let mut out = Vec::new();
        for k in lo..hi {
            let t = self.ctx.code_text(k as isize);
            if !t.chars().next().is_some_and(|c| c.is_lowercase() || c == '_') || t == "_" {
                continue;
            }
            if matches!(t, "mut" | "ref" | "box" | "if" | "true" | "false") {
                continue;
            }
            if self.ctx.code_kind(k as isize) != crate::lexer::TokKind::Ident {
                continue;
            }
            let prev = self.ctx.code_text(k as isize - 1);
            let next = self.ctx.code_text(k as isize + 1);
            if prev == "::" || next == "::" || next == ":" || next == "(" || next == "!" {
                continue;
            }
            out.push(t.to_string());
        }
        out
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> Expr {
        self.expr_bp(0, true)
    }

    fn expr_no_struct(&mut self) -> Expr {
        self.expr_bp(0, false)
    }

    /// Pratt parser. `min_bp` is the minimum binding power; `structs`
    /// gates struct-literal parsing (off in `if`/`while`/`match`/`for`
    /// heads).
    fn expr_bp(&mut self, min_bp: u8, structs: bool) -> Expr {
        let lo = self.pos;
        let mut lhs = self.unary(structs);
        loop {
            let op = self.peek().to_string();
            // Assignment (right-assoc, lowest).
            if matches!(
                op.as_str(),
                "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
            ) {
                if min_bp > 1 {
                    break;
                }
                self.bump();
                let rhs = self.expr_bp(1, structs);
                let aop = op.trim_end_matches('=').to_string();
                lhs = Expr {
                    kind: ExprKind::Assign { lhs: Box::new(lhs), rhs: Box::new(rhs), op: aop },
                    span: self.span_from(lo),
                };
                continue;
            }
            // Ranges.
            if op == ".." || op == "..=" {
                if min_bp > 2 {
                    break;
                }
                let inclusive = op == "..=";
                self.bump();
                let rhs = if self.starts_expr(structs) {
                    Some(Box::new(self.expr_bp(3, structs)))
                } else {
                    None
                };
                lhs = Expr {
                    kind: ExprKind::Range { lhs: Some(Box::new(lhs)), rhs, inclusive },
                    span: self.span_from(lo),
                };
                continue;
            }
            let bp = match op.as_str() {
                "||" => 3,
                "&&" => 4,
                "==" | "!=" | "<" | ">" | "<=" | ">=" => 5,
                "|" => 6,
                "^" => 7,
                "&" => 8,
                "<<" | ">>" => 9,
                "+" | "-" => 10,
                "*" | "/" | "%" => 11,
                _ => break,
            };
            if bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.expr_bp(bp + 1, structs);
            lhs = Expr {
                kind: ExprKind::Binary { lhs: Box::new(lhs), op, rhs: Box::new(rhs) },
                span: self.span_from(lo),
            };
        }
        lhs
    }

    /// Can the current token start an expression? Used for open ranges
    /// and bare `return` / `break`.
    fn starts_expr(&self, _structs: bool) -> bool {
        let t = self.peek();
        if t.is_empty() {
            return false;
        }
        !matches!(t, "]" | ")" | "}" | "," | ";" | "=>" | "{")
    }

    fn unary(&mut self, structs: bool) -> Expr {
        let lo = self.pos;
        match self.peek() {
            "&" | "&&" | "*" | "!" | "-" => {
                let mut op = self.peek().to_string();
                self.bump();
                if op == "&" || op == "&&" {
                    self.eat("mut");
                } else if op == "*" && (self.at("const") || self.at("mut")) {
                    // raw-pointer sigil in expr position does not occur;
                    // treat as deref of a path starting with const/mut
                }
                if op == "&&" {
                    op = "&".to_string(); // double-reference
                }
                let inner = self.unary(structs);
                Expr {
                    kind: ExprKind::Unary { op, expr: Box::new(inner) },
                    span: self.span_from(lo),
                }
            }
            ".." | "..=" => {
                let inclusive = self.peek() == "..=";
                self.bump();
                let rhs = if self.starts_expr(structs) {
                    Some(Box::new(self.expr_bp(3, structs)))
                } else {
                    None
                };
                Expr {
                    kind: ExprKind::Range { lhs: None, rhs, inclusive },
                    span: self.span_from(lo),
                }
            }
            _ => {
                let atom = self.atom(structs);
                self.postfix(atom, lo, structs)
            }
        }
    }

    fn postfix(&mut self, mut e: Expr, lo: usize, structs: bool) -> Expr {
        loop {
            if self.at("?") {
                self.bump();
                e = Expr { kind: ExprKind::Try { expr: Box::new(e) }, span: self.span_from(lo) };
            } else if self.at(".") {
                self.bump();
                let name_ci = self.pos as u32;
                let name = self.peek().to_string();
                self.bump();
                if self.at("::") {
                    // method turbofish `.collect::<…>()`
                    self.bump();
                    self.skip_angles();
                }
                if self.at("(") {
                    let args = self.paren_args();
                    e = Expr {
                        kind: ExprKind::MethodCall { recv: Box::new(e), name, name_ci, args },
                        span: self.span_from(lo),
                    };
                } else {
                    e = Expr {
                        kind: ExprKind::Field { recv: Box::new(e), name },
                        span: self.span_from(lo),
                    };
                }
            } else if self.at("(") {
                let args = self.paren_args();
                e = Expr {
                    kind: ExprKind::Call { callee: Box::new(e), args },
                    span: self.span_from(lo),
                };
            } else if self.at("[") {
                self.bump();
                let index = self.expr();
                self.eat("]");
                e = Expr {
                    kind: ExprKind::Index { recv: Box::new(e), index: Box::new(index) },
                    span: self.span_from(lo),
                };
            } else if self.at("as") {
                self.bump();
                self.skip_cast_type();
                e = Expr { kind: ExprKind::Cast { expr: Box::new(e) }, span: self.span_from(lo) };
            } else if self.at("{") {
                // Struct literal `Path { … }` (only for path heads,
                // and only where the grammar allows it).
                let (is_path, path, path_ci) = match &e.kind {
                    ExprKind::Path(p) => (true, p.clone(), e.span.lo),
                    _ => (false, String::new(), 0),
                };
                if !structs || !is_path {
                    break;
                }
                let fields = self.struct_lit_fields();
                e = Expr {
                    kind: ExprKind::StructLit { path, path_ci, fields },
                    span: self.span_from(lo),
                };
            } else {
                break;
            }
        }
        e
    }

    /// Cast target: `[&|*const|*mut] path[<…>]` — the shapes `as` is
    /// used with in this workspace (primitives, pointers, paths).
    fn skip_cast_type(&mut self) {
        if self.eat("*") {
            self.eat("const");
            self.eat("mut");
        }
        while self.eat("&") {
            self.eat("mut");
        }
        if self.at("fn") {
            // Function-pointer type: `fn(…) -> Ret`.
            self.bump();
            self.skip_group();
            if self.eat("->") {
                self.skip_cast_type();
            }
            return;
        }
        while self.is_ident(0) {
            self.bump();
            if self.at("<") || self.at("<<") {
                self.skip_angles();
            }
            if !self.eat("::") {
                break;
            }
        }
    }

    fn paren_args(&mut self) -> Vec<Expr> {
        self.eat("(");
        let mut args = Vec::new();
        while self.pos < self.n && !self.at(")") {
            args.push(self.expr());
            if !self.eat(",") {
                break;
            }
        }
        self.eat(")");
        args
    }

    fn struct_lit_fields(&mut self) -> Vec<Expr> {
        self.eat("{");
        let mut fields = Vec::new();
        while self.pos < self.n && !self.at("}") {
            if self.eat("..") {
                fields.push(self.expr()); // struct-update base
                break;
            }
            // `name: expr` or shorthand `name`.
            if self.is_ident(0) && self.txt(1) == ":" {
                self.bump();
                self.bump();
                fields.push(self.expr());
            } else {
                fields.push(self.expr());
            }
            if !self.eat(",") {
                break;
            }
        }
        self.eat("}");
        fields
    }

    fn atom(&mut self, structs: bool) -> Expr {
        let lo = self.pos;
        use crate::lexer::TokKind;
        match self.ctx.code_kind(self.pos as isize) {
            TokKind::Int => {
                let value = int_value(self.peek());
                self.bump();
                return Expr { kind: ExprKind::Lit(value), span: self.span_from(lo) };
            }
            TokKind::Float | TokKind::Str | TokKind::Char => {
                self.bump();
                return Expr { kind: ExprKind::Lit(None), span: self.span_from(lo) };
            }
            TokKind::Lifetime => return self.labelled(),
            _ => {}
        }
        match self.peek() {
            "(" => {
                self.bump();
                let mut parts = Vec::new();
                let mut tuple = false;
                while self.pos < self.n && !self.at(")") {
                    parts.push(self.expr());
                    if self.eat(",") {
                        tuple = true;
                    } else {
                        break;
                    }
                }
                self.eat(")");
                let kind = if parts.is_empty() {
                    ExprKind::Lit(None) // unit
                } else if tuple {
                    ExprKind::Tuple(parts)
                } else {
                    // Parenthesized expr: transparent.
                    return Expr {
                        kind: parts.pop().map(|e| e.kind).unwrap_or(ExprKind::Lit(None)),
                        span: self.span_from(lo),
                    };
                };
                Expr { kind, span: self.span_from(lo) }
            }
            "[" => {
                self.bump();
                let mut parts = Vec::new();
                while self.pos < self.n && !self.at("]") {
                    parts.push(self.expr());
                    if !self.eat(",") && !self.eat(";") {
                        break;
                    }
                }
                self.eat("]");
                Expr { kind: ExprKind::Array(parts), span: self.span_from(lo) }
            }
            "{" => {
                let b = self.block();
                Expr { kind: ExprKind::BlockExpr(b), span: self.span_from(lo) }
            }
            "unsafe" if self.txt(1) == "{" => {
                self.bump();
                let b = self.block();
                Expr { kind: ExprKind::BlockExpr(b), span: self.span_from(lo) }
            }
            "if" => self.if_expr(),
            "match" => self.match_expr(),
            "while" => self.while_expr(),
            "loop" => {
                self.bump();
                let body = self.block();
                Expr { kind: ExprKind::Loop { body }, span: self.span_from(lo) }
            }
            "for" => self.for_expr(),
            "return" => {
                self.bump();
                let inner = if self.starts_expr(structs) {
                    Some(Box::new(self.expr_bp(0, structs)))
                } else {
                    None
                };
                Expr { kind: ExprKind::Return(inner), span: self.span_from(lo) }
            }
            "break" => {
                self.bump();
                if self.ctx.code_kind(self.pos as isize) == crate::lexer::TokKind::Lifetime {
                    self.bump(); // label
                }
                let inner = if self.starts_expr(structs) {
                    Some(Box::new(self.expr_bp(0, structs)))
                } else {
                    None
                };
                Expr { kind: ExprKind::Break(inner), span: self.span_from(lo) }
            }
            "continue" => {
                self.bump();
                if self.ctx.code_kind(self.pos as isize) == crate::lexer::TokKind::Lifetime {
                    self.bump();
                }
                Expr { kind: ExprKind::Continue, span: self.span_from(lo) }
            }
            "move" | "|" | "||" => self.closure(),
            "<" | "<<" => {
                // Qualified path `<T as Trait>::seg…` in expr position.
                self.skip_angles();
                let mut path = String::from("<qualified>");
                while self.eat("::") {
                    path.push_str("::");
                    path.push_str(self.peek());
                    if self.at("<") || self.at("<<") {
                        self.skip_angles();
                    } else {
                        self.bump();
                    }
                }
                Expr { kind: ExprKind::Path(path), span: self.span_from(lo) }
            }
            t if !t.is_empty()
                && (self.is_ident(0)
                    || t == "crate"
                    || t == "self"
                    || t == "Self"
                    || t == "super") =>
            {
                self.path_atom()
            }
            _ => {
                self.err("unrecognized expression");
                if self.pos < self.n {
                    self.bump();
                }
                Expr { kind: ExprKind::Lit(None), span: self.span_from(lo) }
            }
        }
    }

    /// `'label: loop|while|for|{…}` — or a stray lifetime (error).
    fn labelled(&mut self) -> Expr {
        let lo = self.pos;
        self.bump(); // the lifetime
        if self.eat(":") {
            return match self.peek() {
                "loop" => {
                    self.bump();
                    let body = self.block();
                    Expr { kind: ExprKind::Loop { body }, span: self.span_from(lo) }
                }
                "while" => self.while_expr(),
                "for" => self.for_expr(),
                "{" => {
                    let b = self.block();
                    Expr { kind: ExprKind::BlockExpr(b), span: self.span_from(lo) }
                }
                _ => {
                    self.err("label without loop");
                    Expr { kind: ExprKind::Lit(None), span: self.span_from(lo) }
                }
            };
        }
        self.err("stray lifetime in expression");
        Expr { kind: ExprKind::Lit(None), span: self.span_from(lo) }
    }

    fn closure(&mut self) -> Expr {
        let lo = self.pos;
        self.eat("move");
        if self.eat("||") {
            // no params
        } else if self.eat("|") {
            self.skip_until(&["|"]);
            self.eat("|");
        }
        if self.eat("->") {
            self.skip_until(&["{"]);
        }
        let body = self.expr();
        Expr { kind: ExprKind::Closure { body: Box::new(body) }, span: self.span_from(lo) }
    }

    /// `if [let pat =] cond { … } [else …]`.
    fn if_expr(&mut self) -> Expr {
        let lo = self.pos;
        self.eat("if");
        let binds = self.opt_let_head();
        let cond = self.expr_no_struct();
        let then = self.block();
        let els = if self.eat("else") {
            let e = if self.at("if") {
                self.if_expr()
            } else {
                let b = self.block();
                Expr { kind: ExprKind::BlockExpr(b), span: self.span_from(lo) }
            };
            Some(Box::new(e))
        } else {
            None
        };
        Expr {
            kind: ExprKind::If { cond: Box::new(cond), binds, then, els },
            span: self.span_from(lo),
        }
    }

    /// Consumes `let pat =` if present; returns the pattern's binds.
    fn opt_let_head(&mut self) -> Vec<String> {
        if !self.eat("let") {
            return Vec::new();
        }
        let pat_lo = self.pos;
        self.skip_pattern(&["="]);
        let binds = self.pattern_binds(pat_lo, self.pos);
        self.eat("=");
        binds
    }

    fn while_expr(&mut self) -> Expr {
        let lo = self.pos;
        self.eat("while");
        let _binds = self.opt_let_head();
        let cond = self.expr_no_struct();
        let body = self.block();
        Expr { kind: ExprKind::While { cond: Box::new(cond), body }, span: self.span_from(lo) }
    }

    fn for_expr(&mut self) -> Expr {
        let lo = self.pos;
        self.eat("for");
        let pat_lo = self.pos;
        self.skip_pattern(&["in"]);
        let binds = self.pattern_binds(pat_lo, self.pos);
        self.eat("in");
        let iter = self.expr_no_struct();
        let body = self.block();
        Expr { kind: ExprKind::For { binds, iter: Box::new(iter), body }, span: self.span_from(lo) }
    }

    fn match_expr(&mut self) -> Expr {
        let lo = self.pos;
        self.eat("match");
        let scrut = self.expr_no_struct();
        self.eat("{");
        let mut arms = Vec::new();
        while self.pos < self.n && !self.at("}") {
            self.skip_attrs();
            let pat_lo = self.pos;
            self.skip_pattern(&["=>"]);
            let binds = self.pattern_binds(pat_lo, self.pos);
            self.eat("=>");
            let body = self.expr();
            arms.push(Arm { binds, body });
            self.eat(",");
        }
        self.eat("}");
        Expr { kind: ExprKind::Match { scrut: Box::new(scrut), arms }, span: self.span_from(lo) }
    }

    /// Path atom: `seg(::seg|::<…>)*`, possibly a macro call.
    fn path_atom(&mut self) -> Expr {
        let lo = self.pos;
        let mut path = String::new();
        loop {
            path.push_str(self.peek());
            self.bump();
            if self.at("!") && (self.txt(1) == "(" || self.txt(1) == "[" || self.txt(1) == "{") {
                self.bump();
                let args = self.macro_args();
                return Expr { kind: ExprKind::Macro { path, args }, span: self.span_from(lo) };
            }
            if self.at("::") {
                self.bump();
                if self.at("<") || self.at("<<") {
                    self.skip_angles();
                    if self.at("::") {
                        self.bump();
                        continue;
                    }
                    break;
                }
                path.push_str("::");
                continue;
            }
            break;
        }
        Expr { kind: ExprKind::Path(path), span: self.span_from(lo) }
    }

    /// Best-effort parse of a macro interior as comma-separated exprs.
    /// Interiors that are pattern or format grammar (`matches!`,
    /// `write!` braces, `macro_rules!`) come back empty — the group is
    /// consumed either way, and failures inside the attempt are not
    /// file-level parse errors.
    fn macro_args(&mut self) -> Vec<Expr> {
        let (open, close) = match self.peek() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return Vec::new(),
        };
        // Find the end of the balanced group first.
        let start = self.pos;
        self.skip_group();
        let end = self.pos; // one past the closing delimiter
        let _ = (open, close);

        // Speculative sub-parse of the interior.
        let save_errors = self.errors.len();
        self.pos = start + 1;
        let mut args = Vec::new();
        let mut ok = true;
        while self.pos < end - 1 {
            args.push(self.expr());
            if self.pos >= end - 1 {
                break;
            }
            if !self.eat(",") {
                ok = false;
                break;
            }
        }
        if self.pos != end - 1 || self.errors.len() > save_errors {
            ok = false;
        }
        self.errors.truncate(save_errors);
        self.pos = end;
        if ok {
            args
        } else {
            Vec::new()
        }
    }
}

/// Value of an integer-literal token: underscores elided, `0x`/`0o`/
/// `0b` radix prefixes honoured, any type suffix (`usize`, `u64`, …)
/// ignored. `None` when the digits do not fit in `i128`.
fn int_value(text: &str) -> Option<i128> {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    let lower = t.to_ascii_lowercase();
    let (radix, digits) = if let Some(d) = lower.strip_prefix("0x") {
        (16, d)
    } else if let Some(d) = lower.strip_prefix("0o") {
        (8, d)
    } else if let Some(d) = lower.strip_prefix("0b") {
        (2, d)
    } else {
        (10, lower.as_str())
    };
    let end = digits.find(|c: char| !c.is_digit(radix)).unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    i128::from_str_radix(&digits[..end], radix).ok()
}

/// Flattens an expression to a compact receiver/argument string:
/// `self.inner.borrow_mut().pool` style. References and try-ops are
/// transparent; anything non-path-like renders as `?`.
pub fn flatten(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Path(p) => p.clone(),
        ExprKind::Field { recv, name } => format!("{}.{}", flatten(recv), name),
        ExprKind::MethodCall { recv, name, .. } => format!("{}.{}()", flatten(recv), name),
        ExprKind::Call { callee, .. } => format!("{}()", flatten(callee)),
        ExprKind::Unary { expr, .. } | ExprKind::Try { expr } | ExprKind::Cast { expr } => {
            flatten(expr)
        }
        ExprKind::Index { recv, .. } => flatten(recv),
        _ => "?".to_string(),
    }
}

/// Last `.`/`::`-separated segment of a flattened receiver, with any
/// trailing `()` stripped: `self.shared.queue` → `queue`.
pub fn last_segment(flat: &str) -> &str {
    let seg = flat.rsplit(['.']).next().unwrap_or(flat);
    let seg = seg.rsplit("::").next().unwrap_or(seg);
    seg.trim_end_matches("()")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{CrateKind, FileRole};
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        let toks = lex(src);
        let ctx = FileCtx::new("t.rs", CrateKind::Library, FileRole::Src, &toks);
        parse(&ctx)
    }

    #[test]
    fn simple_fn_parses_clean() {
        let f = parse_src("pub fn add(a: u32, b: u32) -> u32 { a + b }");
        assert!(f.errors.is_empty(), "{:?}", f.errors);
        let fns = f.fns();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].1.name, "add");
        assert!(fns[0].1.body.is_some());
    }

    #[test]
    fn impl_methods_and_generics() {
        let src = r#"
            impl<D: Disk, const N: usize> Store<D, N> {
                fn node(&self, page: PageId) -> Result<NodeGuard<'_, D>, StorageError> {
                    let mut inner = self.inner.borrow_mut();
                    let bytes = inner.pager.read(page)?;
                    drop(inner);
                    Ok(NodeGuard { store: self, page })
                }
            }
        "#;
        let f = parse_src(src);
        assert!(f.errors.is_empty(), "{:?}", f.errors);
        let fns = f.fns();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].0, "Store");
        assert_eq!(fns[0].1.name, "node");
    }

    #[test]
    fn control_flow_and_closures() {
        let src = r#"
            fn run(xs: &[u32]) -> Option<u32> {
                let mut total = 0;
                'outer: for (i, x) in xs.iter().enumerate() {
                    if let Some(v) = check(*x) {
                        total += v;
                    } else if *x > 3 {
                        break 'outer;
                    }
                    match i {
                        0 => continue,
                        n if n > 10 => return None,
                        _ => {}
                    }
                }
                while total < 100 {
                    total += xs.iter().map(|v| v + 1).sum::<u32>();
                }
                Some(total)
            }
        "#;
        let f = parse_src(src);
        assert!(f.errors.is_empty(), "{:?}", f.errors);
    }

    #[test]
    fn macros_ranges_casts_struct_lits() {
        let src = r#"
            fn mix(n: usize) -> Vec<u8> {
                let v = vec![0u8; n * 2];
                let s = format!("{}:{}", n, v.len());
                let cfg = Config { threads: n as u32, ..Config::default() };
                assert!(matches!(cfg.threads, 0..=64));
                let _ = &v[1..n];
                let q = <usize as TryFrom<u64>>::try_from(9u64);
                s.into_bytes()
            }
        "#;
        let f = parse_src(src);
        assert!(f.errors.is_empty(), "{:?}", f.errors);
    }

    #[test]
    fn flatten_and_segments() {
        let src = "fn f(&self) { self.inner.borrow_mut().pool.unpin(self.page); }";
        let f = parse_src(src);
        assert!(f.errors.is_empty(), "{:?}", f.errors);
        let fns = f.fns();
        let body = fns[0].1.body.as_ref().expect("body");
        let Stmt::Expr { expr, .. } = &body.stmts[0] else { panic!("expr stmt") };
        let ExprKind::MethodCall { recv, name, .. } = &expr.kind else { panic!("method") };
        assert_eq!(name, "unpin");
        assert_eq!(flatten(recv), "self.inner.borrow_mut().pool");
        assert_eq!(last_segment(&flatten(recv)), "pool");
    }

    #[test]
    fn bodiless_trait_fns_and_let_else() {
        let src = r#"
            trait Disk {
                fn read(&mut self, page: u64) -> Result<Vec<u8>, Error>;
                fn write(&mut self, page: u64, data: &[u8]) -> Result<(), Error> {
                    let Some(slot) = self.slot(page) else {
                        return Err(Error::Bounds);
                    };
                    Ok(())
                }
            }
        "#;
        let f = parse_src(src);
        assert!(f.errors.is_empty(), "{:?}", f.errors);
        let fns = f.fns();
        assert_eq!(fns.len(), 2);
        assert!(fns[0].1.body.is_none());
        assert!(fns[1].1.body.is_some());
    }
}
