//! `unsafe-bounds`: value-range machine-checking of the bounds
//! contracts behind the workspace's raw loads.
//!
//! Every `get_unchecked*`, `as_ptr().add(..)`-shaped pointer offset,
//! SIMD lane load/store intrinsic, and `from_raw_parts*` in the SIMD
//! and paged-I/O crates carries an implicit claim — the index is in
//! bounds, the lane span fits, the length matches the allocation. This
//! rule discharges those claims with the interval + symbolic-length
//! abstract interpretation in [`crate::domain`]:
//!
//! 1. **Machine discharge.** The claim (`offset + LANES ≤ base.len()`,
//!    `index < base.len()`, …) is checked against the dominating
//!    guards — `if`/`while` conditions, `assert!`/`debug_assert!`
//!    bodies, loop-iteration facts, `let`-equalities — collected by
//!    the dataflow engine. A discharged claim emits a SARIF *pass*
//!    note whose `relatedLocations` point at the guard(s) used.
//! 2. **Obligation cross-check.** Claims the analyzer cannot express
//!    (e.g. the length argument of `from_raw_parts`) may be written
//!    down as `// SAFETY: … BOUNDS(<expr>)` on the enclosing `unsafe`
//!    block. The `<expr>` is parsed as a real boolean expression and
//!    every conjunct must itself be established by the dominating
//!    guards — an obligation is a claim, not an excuse.
//! 3. **Residue.** Anything else is a finding; allocation-invariant
//!    cases (a pointer valid by struct invariant) take a reasoned
//!    `csj-lint: allow(unsafe-bounds)`.

use crate::ast;
use crate::cfg::{self, FnCfg, Step};
use crate::context::{CrateKind, FileCtx, FileRole};
use crate::dataflow::{env_in_states, env_transfer};
use crate::domain::{established, AExpr, Cmp, CmpOp, Env, Proof};
use crate::lexer;
use crate::rules::{flow, Diagnostic};

pub const EXPLAIN: &str = "\
unsafe-bounds: machine-checked bounds contracts for raw loads.

Scope: crates/geom, crates/index, crates/storage (non-test code).

Claim sites and their claims:
  base.as_ptr().add(i)          i <= base.len()   (provenance: one past
                                the end is the last valid offset)
  *base.as_ptr().add(i)         i + 1 <= base.len()
  _mm256_loadu_pd(p)/vld1q_f64  i + LANES <= base.len() for the pointer
                                offset feeding the intrinsic (LANES = 4
                                for AVX2 f64, 2 for NEON f64)
  _mm256_load_pd(p)             additionally: i is a multiple of LANES
                                (aligned loads)
  base.get_unchecked(i)         i + 1 <= base.len()
  slice::from_raw_parts(p, n)   no machine claim — obligation required

A claim is DISCHARGED when the value-range analysis proves it from the
dominating guards: if/while conditions, assert!/debug_assert! bodies,
for-loop iteration facts (`for i in 0..n` gives i < n), chunks_exact
lane facts, and let-equalities (`let n = xs.len()`). Discharged claims
appear in the SARIF report as kind \"pass\" results whose
relatedLocations identify the discharging guard — the audit trail from
every unsafe site to its proof.

When the analysis cannot see the claim (allocation sizes, FFI
contracts), annotate the enclosing unsafe block:

    // SAFETY: <prose>. BOUNDS(i + 4 <= xs.len())
    unsafe { ... }

The BOUNDS(<expr>) group is parsed as a boolean expression; every
conjunct must itself be established by the dominating guards, or the
obligation is reported as not established. debug_assert! counts as a
guard: the workspace's tier-1 suite runs debug builds, so a violated
assert fails CI before the unchecked load can be reached in release.

Residual sites that rest on a struct invariant (e.g. a pointer that is
valid for PAGE_SIZE bytes by construction) take a reasoned
`// csj-lint: allow(unsafe-bounds) — <why>`.

False-negative classes (documented, accepted): pointer arithmetic on
plain pointer locals (only `as_ptr()`/`as_mut_ptr()` chains are
tracked), claims flowing through function boundaries, and value-flow
guards (a bool computed from a comparison and branched on later).";

/// Crates whose unsafe sites carry machine-checked contracts.
const SCOPE: &[&str] = &["crates/geom/src/", "crates/index/src/", "crates/storage/src/"];

/// SIMD lane load/store intrinsics: name, f64 lanes, alignment
/// required. The unaligned variants still claim the full lane span.
const LANE_OPS: &[(&str, u64, bool)] = &[
    ("_mm256_loadu_pd", 4, false),
    ("_mm256_load_pd", 4, true),
    ("_mm256_storeu_pd", 4, false),
    ("_mm256_store_pd", 4, true),
    ("_mm_loadu_pd", 2, false),
    ("_mm_load_pd", 2, true),
    ("vld1q_f64", 2, false),
    ("vst1q_f64", 2, false),
];

const RULE: &str = "unsafe-bounds";

pub fn check(ctxs: &[FileCtx]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for ctx in ctxs {
        if ctx.role != FileRole::Src || !SCOPE.iter().any(|p| ctx.rel_path.starts_with(p)) {
            continue;
        }
        let parsed = ast::parse(ctx);
        let spans = unsafe_spans(ctx);
        for fncfg in cfg::lower_file(&parsed) {
            if flow::in_test(ctx, &fncfg) {
                continue;
            }
            check_fn(ctx, &fncfg, &spans, &mut out);
        }
    }
    out
}

/// An `unsafe` region (code-token index range) with the BOUNDS
/// obligations its `// SAFETY:` comment declared. Sites inside the
/// region inherit the obligations.
struct UnsafeSpan {
    lo: usize,
    hi: usize,
    obls: Vec<String>,
}

fn unsafe_spans(ctx: &FileCtx) -> Vec<UnsafeSpan> {
    let mut out = Vec::new();
    for i in 0..ctx.code.len() {
        if ctx.code_text(i as isize) != "unsafe" {
            continue;
        }
        // Find the block this `unsafe` opens (skipping an `unsafe fn`
        // signature); bail at `;` (unsafe trait/impl declarations).
        let mut j = i + 1;
        let open = loop {
            match ctx.code_text(j as isize) {
                "{" => break Some(j),
                ";" | "" => break None,
                _ => j += 1,
            }
        };
        let Some(open) = open else { continue };
        let mut depth = 0usize;
        let mut close = open;
        for k in open..ctx.code.len() {
            match ctx.code_text(k as isize) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        let line = ctx.code_tok(i).line;
        let obls = ctx.bounds.get(&line).cloned().unwrap_or_default();
        out.push(UnsafeSpan { lo: i, hi: close, obls });
    }
    out
}

/// BOUNDS obligations visible at a site: any declared on the site's
/// own line plus those of every enclosing unsafe region.
fn obligations_at(ctx: &FileCtx, spans: &[UnsafeSpan], ci: u32) -> Vec<String> {
    let line = ctx.code_tok(ci as usize).line;
    let mut out: Vec<String> = ctx.bounds.get(&line).cloned().unwrap_or_default();
    for s in spans {
        if (s.lo as u32) <= ci && ci <= s.hi as u32 {
            out.extend(s.obls.iter().cloned());
        }
    }
    out.dedup();
    out
}

/// A tracked `as_ptr().add(..)` awaiting its consumer (a lane
/// intrinsic strengthens the claim to the full lane span; a deref to
/// one element; otherwise the provenance claim `offset ≤ len` stands).
struct PendingPtr {
    base: String,
    offset: AExpr,
    ci: u32,
    deref: bool,
}

fn check_fn(ctx: &FileCtx, fncfg: &FnCfg, spans: &[UnsafeSpan], out: &mut Vec<Diagnostic>) {
    let states = env_in_states(fncfg);
    for (b, block) in fncfg.blocks.iter().enumerate() {
        let Some(state) = states.get(b).and_then(|s| s.as_ref()) else { continue };
        let mut env = state.clone();
        let mut pending: Vec<PendingPtr> = Vec::new();
        for step in &block.steps {
            match step {
                Step::PtrAdd { base, offset, ci, deref } => {
                    pending.push(PendingPtr {
                        base: base.clone(),
                        offset: offset.clone(),
                        ci: *ci,
                        deref: *deref,
                    });
                }
                Step::UncheckedIndex { base, index, ci } => {
                    let claim = span_claim(base, index, 1);
                    let what = format!("`{}.get_unchecked({})`", base, index.render());
                    site(ctx, spans, &env, *ci, Some(&claim), None, &what, out);
                }
                Step::Call(c) => {
                    if let Some(&(_, lanes, aligned)) =
                        LANE_OPS.iter().find(|(n, _, _)| *n == c.name)
                    {
                        let what = format!("`{}` lane span", c.name);
                        if pending.is_empty() {
                            // Intrinsic on a pointer the analyzer does
                            // not track: obligation or finding.
                            site(ctx, spans, &env, c.ci, None, None, &what, out);
                        } else {
                            let p = pending.remove(0);
                            let claim = span_claim(&p.base, &p.offset, lanes as i128);
                            let align = aligned.then_some((p.offset.clone(), lanes));
                            let what = format!("`{}` lane span from `{}`", c.name, p.base);
                            site(ctx, spans, &env, c.ci, Some(&claim), align, &what, out);
                        }
                    } else if !c.is_method
                        && matches!(c.name.as_str(), "from_raw_parts" | "from_raw_parts_mut")
                    {
                        // The pointer/length contract is about the
                        // allocation, which the domain does not model:
                        // any embedded pointer offset is covered by the
                        // same site's obligation.
                        pending.clear();
                        let what = format!("`{}` length contract", c.name);
                        site(ctx, spans, &env, c.ci, None, None, &what, out);
                    }
                    env_transfer(step, &mut env);
                }
                Step::StmtEnd => {
                    flush(ctx, spans, &env, &mut pending, out);
                    env_transfer(step, &mut env);
                }
                _ => env_transfer(step, &mut env),
            }
        }
        flush(ctx, spans, &env, &mut pending, out);
    }
}

/// The claim `offset + width ≤ base.len()` (plain `offset ≤ len` for
/// the width-0 provenance claim).
fn span_claim(base: &str, offset: &AExpr, width: i128) -> Cmp {
    let lhs = if width == 0 {
        offset.clone()
    } else {
        AExpr::Bin("+".into(), Box::new(offset.clone()), Box::new(AExpr::Const(width)))
    };
    Cmp { lhs, op: CmpOp::Le, rhs: AExpr::Len(base.to_string()), ci: 0 }
}

/// Reports unconsumed pointer offsets: a deref claims one element, a
/// bare offset claims provenance (`offset ≤ len`).
fn flush(
    ctx: &FileCtx,
    spans: &[UnsafeSpan],
    env: &Env,
    pending: &mut Vec<PendingPtr>,
    out: &mut Vec<Diagnostic>,
) {
    for p in pending.drain(..) {
        let (width, what) = if p.deref {
            (1, format!("`*{}.as_ptr().add({})`", p.base, p.offset.render()))
        } else {
            (0, format!("`{}.as_ptr().add({})` provenance", p.base, p.offset.render()))
        };
        let claim = span_claim(&p.base, &p.offset, width);
        site(ctx, spans, env, p.ci, Some(&claim), None, &what, out);
    }
}

/// Discharges one claim site: machine proof first, then the SAFETY
/// BOUNDS obligation cross-check, then a finding.
#[allow(clippy::too_many_arguments)]
fn site(
    ctx: &FileCtx,
    spans: &[UnsafeSpan],
    env: &Env,
    ci: u32,
    claim: Option<&Cmp>,
    align: Option<(AExpr, u64)>,
    what: &str,
    out: &mut Vec<Diagnostic>,
) {
    if ctx.code_in_test(ci as usize) {
        return;
    }
    let aligned_ok =
        align.as_ref().is_none_or(|(off, lanes)| env.eval(off).multiple_of(*lanes) || env.dead);
    if let Some(c) = claim {
        if let Some(proof) = established(env, c) {
            if aligned_ok {
                let msg = format!(
                    "bounds claim `{}` for {what} discharged by dominating guards",
                    c.render()
                );
                out.push(note(ctx, ci, msg, &proof, c));
                return;
            }
        }
    }
    // Machine discharge failed (or there is no machine-expressible
    // claim): fall back to the site's declared obligations.
    let obls = obligations_at(ctx, spans, ci);
    if !obls.is_empty() {
        for obl in obls {
            match obligation_cmps(&obl) {
                Some(cmps) => {
                    let mut proof = Proof::default();
                    let mut ok = true;
                    for c in &cmps {
                        match established(env, c) {
                            Some(p) => proof.guards.extend(p.guards),
                            None => {
                                ok = false;
                                out.push(fail(
                                    ctx,
                                    ci,
                                    format!(
                                        "{what}: SAFETY BOUNDS obligation `{}` is not \
                                         established by the dominating guards",
                                        c.render()
                                    ),
                                ));
                            }
                        }
                    }
                    if ok {
                        proof.guards.sort_unstable();
                        proof.guards.dedup();
                        let msg = format!(
                            "SAFETY BOUNDS obligation `{obl}` for {what} established by \
                             dominating guards"
                        );
                        let c = claim.cloned().unwrap_or_else(|| Cmp {
                            lhs: AExpr::Other(obl.clone()),
                            op: CmpOp::Le,
                            rhs: AExpr::Const(0),
                            ci,
                        });
                        out.push(note(ctx, ci, msg, &proof, &c));
                    }
                }
                None => out.push(fail(
                    ctx,
                    ci,
                    format!(
                        "{what}: SAFETY BOUNDS obligation `{obl}` does not parse as a \
                             boolean expression"
                    ),
                )),
            }
        }
        return;
    }
    let msg = match claim {
        Some(c) if !aligned_ok && established(env, c).is_some() => format!(
            "{what}: alignment claim (offset a multiple of {} lanes) is not established — \
             guard it, prove it, or annotate `// SAFETY: BOUNDS(<expr>)`",
            align.map(|(_, l)| l).unwrap_or(0)
        ),
        Some(c) => format!(
            "{what}: bounds claim `{}` is not discharged by any dominating guard — guard \
             it, annotate `// SAFETY: BOUNDS(<expr>)`, or add a reasoned allow",
            c.render()
        ),
        None => format!(
            "{what} cannot be machine-checked — annotate the unsafe block with \
             `// SAFETY: BOUNDS(<expr>)` or add a reasoned allow"
        ),
    };
    out.push(fail(ctx, ci, msg));
}

fn fail(ctx: &FileCtx, ci: u32, msg: String) -> Diagnostic {
    let t = ctx.code_tok(ci as usize);
    Diagnostic::new(RULE, ctx.rel_path.to_string(), t.line, t.col, msg)
}

/// A pass note carrying the discharging guards as related locations.
fn note(ctx: &FileCtx, ci: u32, msg: String, proof: &Proof, claim: &Cmp) -> Diagnostic {
    let t = ctx.code_tok(ci as usize);
    let mut d = Diagnostic::new(RULE, ctx.rel_path.to_string(), t.line, t.col, msg);
    for &g in &proof.guards {
        let gt = ctx.code_tok(g as usize);
        d = d.with_related(gt.line, gt.col, format!("guard discharging `{}`", claim.render()));
    }
    d.passed()
}

/// Parses a BOUNDS(<expr>) obligation into its conjunct comparisons by
/// wrapping it in a one-statement function and reusing the real lexer,
/// parser, and `&&`-splitter — the obligation grammar IS the
/// expression grammar.
fn obligation_cmps(expr: &str) -> Option<Vec<Cmp>> {
    let src = format!("fn __obligation() {{ __claim({expr}); }}");
    let toks = lexer::lex(&src);
    let octx = FileCtx::new("obligation.rs", CrateKind::Library, FileRole::Src, &toks);
    let parsed = ast::parse(&octx);
    if !parsed.errors.is_empty() {
        return None;
    }
    let fns = parsed.fns();
    let (_, f) = fns.first()?;
    let body = f.body.as_ref()?;
    let Some(ast::Stmt::Expr { expr: e, .. }) = body.stmts.first() else { return None };
    let ast::ExprKind::Call { args, .. } = &e.kind else { return None };
    let arg = args.first()?;
    let cmps = cfg::cmps_of(arg);
    if cmps.is_empty() {
        return None;
    }
    Some(cmps)
}
