//! Rule `sync-facade`: csj-core reaches synchronization primitives
//! through its `crate::sync` facade, never `std::sync` directly.

use crate::context::{FileCtx, FileRole};
use crate::rules::{diag_at, Diagnostic};

pub const EXPLAIN: &str = "\
sync-facade — csj-core synchronizes through `crate::sync` only.

Flags any `std::sync` path — import or inline — in csj-core shipped
source outside the facade module itself (`crates/core/src/sync.rs`)
and outside test regions. Other crates are not in scope: only csj-core
is model-checked, and only what flows through the facade is visible to
the checker.

The model checker (csj-model, DESIGN.md §9) verifies the work-stealing
scheduler by swapping the facade's re-exports for instrumented shims
under `--cfg csj_model`. A direct `std::sync::atomic::AtomicUsize` or
`std::sync::Mutex` bypasses that swap: the code still compiles, still
runs, and silently falls out of every interleaving the checker
explores — the worst kind of coverage hole, one that looks green.
Route the primitive through the facade instead:

    use crate::sync::atomic::{AtomicUsize, Ordering};
    use crate::sync::{Arc, Mutex};

`std::thread` scope/spawn primitives are not flagged: the model
mirrors the protocol in its own harness rather than intercepting
thread creation, so native spawning carries no coverage hole. Test
regions are exempt — tests execute natively, never under the model.
Where shipped code genuinely needs a std-only item the facade does not
re-export (e.g. `PoisonError` in a recovery path), justify it:

    // csj-lint: allow(sync-facade) — PoisonError itself, not a
    // primitive; carries no scheduling point to instrument
    use std::sync::PoisonError;";

/// The one module allowed to name `std::sync`: the facade itself.
const FACADE: &str = "crates/core/src/sync.rs";

pub fn check(ctx: &FileCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ctx.role != FileRole::Src
        || !ctx.rel_path.starts_with("crates/core/")
        || ctx.rel_path == FACADE
    {
        return out;
    }
    for ci in 0..ctx.code.len() {
        if ctx.code_in_test(ci) {
            continue;
        }
        let i = ci as isize;
        if ctx.code_text(i) == "std"
            && ctx.code_text(i + 1) == "::"
            && ctx.code_text(i + 2) == "sync"
        {
            out.push(diag_at(
                ctx,
                "sync-facade",
                ci,
                "`std::sync` bypasses the `crate::sync` facade — the model checker \
                 cannot see this primitive; import from `crate::sync` instead"
                    .to_string(),
            ));
        }
    }
    out
}
