//! Rule `lock-order`: all threads must acquire sync-facade mutexes and
//! `RefCell` borrows in one consistent global order.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::Step;
use crate::context::FileCtx;
use crate::dataflow::{self, Analysis, Finding};
use crate::rules::flow::{self, Held, Summaries};
use crate::rules::{diag_at, Diagnostic};

pub const EXPLAIN: &str = "\
lock-order — one global acquisition order across the workspace.

Builds a workspace-wide acquisition graph: an edge A → B is recorded
whenever some function acquires lock B (a sync-facade mutex via
`.lock()`/`lock(&m)` or a `RefCell` borrow) while lock A is held on
that path — directly, or by calling a function whose transitive
summary acquires B. Lock identities are crate-qualified
(`core:mutex:queue`, `index:cell:inner`) so same-named fields in
different crates do not alias.

A cycle in that graph is a potential deadlock (for mutexes) or a
guaranteed runtime borrow panic (for RefCells) the moment two threads
interleave: thread 1 holds A and wants B, thread 2 holds B and wants
A. The prefetcher's queue/ready mutexes, the buffer pool's interior
cell and the scheduler all participate, so the graph spans crates.

Each cycle is reported once, anchored at one acquisition with the
conflicting acquisition's location in the message. Fix by hoisting one
acquisition (always take A before B everywhere) or by shrinking a
critical section so the second lock is taken after the first is
dropped. Suppress intentional cases with
`// csj-lint: allow(lock-order) — <reason>`.";

/// Edge findings are encoded in the message as
/// `from_id \t from_ci \t to_id \t via` and decoded by [`check`].
struct OrderAnalysis<'s> {
    rel_path: &'s str,
    /// Enclosing fn name: self-named calls never consult summaries
    /// (mirrors the summarizer's own recursion guard).
    current_fn: &'s str,
    summaries: &'s Summaries,
}

impl Analysis for OrderAnalysis<'_> {
    type Fact = Held;

    fn transfer(&self, step: &Step, state: &mut BTreeSet<Held>, sink: Option<&mut Vec<Finding>>) {
        match step {
            Step::Call(c) => {
                if flow::consumes_guard_temp(c) {
                    flow::mark_chained(state);
                }
                if let Some(ev) = flow::lock_event(self.rel_path, c) {
                    if let Some(sink) = sink {
                        for h in state.iter() {
                            if h.id != ev.id {
                                sink.push(Finding {
                                    ci: c.ci,
                                    message: format!("{}\t{}\t{}\t", h.id, h.ci, ev.id),
                                });
                            }
                        }
                    }
                    state.insert(Held { id: ev.id, ci: c.ci, name: String::new() });
                } else if c.name == "drop" && !c.is_method && c.args.len() == 1 {
                    flow::drop_named(state, &c.args[0]);
                } else if c.name != self.current_fn {
                    let Some(s) = self.summaries.get(&c.name) else { return };
                    if let Some(sink) = sink {
                        for h in state.iter() {
                            for to in &s.locks {
                                if *to != h.id {
                                    sink.push(Finding {
                                        ci: c.ci,
                                        message: format!("{}\t{}\t{}\t{}", h.id, h.ci, to, c.name),
                                    });
                                }
                            }
                        }
                    }
                }
            }
            Step::Bind { name } => flow::bind_pending(state, name),
            Step::StmtEnd => flow::end_statement(state),
            Step::DropName(name) => flow::drop_named(state, name),
            _ => {}
        }
    }
}

/// One acquisition-graph edge, located in a file.
struct Edge {
    from: String,
    to: String,
    /// Callee carrying the edge interprocedurally, or empty for a
    /// direct acquisition.
    via: String,
    file: usize,
    /// Token of the `to` acquisition (direct) or the carrying call.
    ci: u32,
    /// Token of the `from` acquisition, same file.
    from_ci: u32,
}

pub fn check(ctxs: &[FileCtx]) -> Vec<Diagnostic> {
    let files = flow::lower_scoped(ctxs);
    let summaries = flow::summarize(&files);

    let mut edges: Vec<Edge> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for cfg in &f.cfgs {
            if flow::in_test(f.ctx, cfg) {
                continue;
            }
            let analysis = OrderAnalysis {
                rel_path: f.ctx.rel_path,
                current_fn: &cfg.fn_name,
                summaries: &summaries,
            };
            for finding in dataflow::analyze(cfg, &analysis) {
                let mut parts = finding.message.split('\t');
                let (Some(from), Some(from_ci), Some(to), Some(via)) =
                    (parts.next(), parts.next(), parts.next(), parts.next())
                else {
                    continue;
                };
                edges.push(Edge {
                    from: from.to_string(),
                    to: to.to_string(),
                    via: via.to_string(),
                    file: fi,
                    ci: finding.ci,
                    from_ci: from_ci.parse().unwrap_or(finding.ci),
                });
            }
        }
    }

    // Reachability over the acquisition graph.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut work = vec![from];
        while let Some(n) = work.pop() {
            let Some(succs) = adj.get(n) else { continue };
            for &s in succs {
                if s == to {
                    return true;
                }
                if seen.insert(s) {
                    work.push(s);
                }
            }
        }
        false
    };

    // Sort for deterministic representative selection, then report each
    // cycle (keyed by its node set) exactly once.
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by(|&a, &b| {
        let (ea, eb) = (&edges[a], &edges[b]);
        (&ea.from, &ea.to, ea.file, ea.ci).cmp(&(&eb.from, &eb.to, eb.file, eb.ci))
    });

    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    let mut out = Vec::new();
    for &i in &order {
        let e = &edges[i];
        if e.from == e.to || !reaches(&e.to, &e.from) {
            continue;
        }
        // Node set of the cycle through this edge: nodes on some
        // to → … → from path, plus the edge's endpoints.
        let mut nodes: BTreeSet<String> = BTreeSet::new();
        nodes.insert(e.from.clone());
        nodes.insert(e.to.clone());
        for n in adj.keys() {
            if reaches(&e.to, n) && reaches(n, &e.from) {
                nodes.insert((*n).to_string());
            }
        }
        if !reported.insert(nodes.clone()) {
            continue;
        }
        // A conflicting edge on the return path, for the message.
        let counter = order
            .iter()
            .map(|&j| &edges[j])
            .find(|c| c.from == e.to && nodes.contains(&c.to) && (c.file, c.ci) != (e.file, e.ci));
        let f = &files[e.file];
        let here = if e.via.is_empty() {
            format!("{} is acquired here", flow::display_lock(&e.to))
        } else {
            format!("`{}` acquires {} from here", e.via, flow::display_lock(&e.to))
        };
        let held = format!(
            "while {} is held (acquired at {}:{})",
            flow::display_lock(&e.from),
            f.ctx.rel_path,
            f.ctx.code_tok(e.from_ci as usize).line,
        );
        let opposite = match counter {
            Some(c) => {
                let cf = &files[c.file];
                format!(
                    "; the opposite order is taken at {}:{}",
                    cf.ctx.rel_path,
                    cf.ctx.code_tok(c.ci as usize).line
                )
            }
            None => String::new(),
        };
        let cycle: Vec<String> = nodes.iter().map(|n| flow::display_lock(n)).collect();
        out.push(diag_at(
            f.ctx,
            "lock-order",
            e.ci as usize,
            format!(
                "acquisition-order cycle between {} — {here} {held}{opposite}; pick one \
                 global order or drop the first lock before taking the second",
                cycle.join(" and "),
            ),
        ));
    }
    out
}
