//! Rule `atomics-discipline`: non-SeqCst memory orderings must carry a
//! written justification.

use crate::context::{Annotation, FileCtx, FileRole};
use crate::rules::{diag_at, Diagnostic};

pub const EXPLAIN: &str = "\
atomics-discipline — every relaxed ordering must carry its proof.

Flags `Ordering::Relaxed`, `Ordering::Acquire`, `Ordering::Release`
and `Ordering::AcqRel` in non-test code unless the use site carries an
`// ORDERING: <why>` comment (trailing on the same line, or on the
comment line(s) directly above). `Ordering::SeqCst` needs no
annotation: it is the conservative default, and the rule exists to
make *departures* from it auditable. `std::cmp::Ordering` variants
(Less/Equal/Greater) never match.

The work-stealing scheduler's correctness argument (DESIGN.md §7a)
distinguishes advisory atomics (starvation and pool-length hints,
where staleness only delays a heuristic) from load-bearing ones
(pending-task counts that gate termination). The annotation states
which side of that line a use sits on:

    // ORDERING: advisory starvation hint; a stale read only delays a
    // re-split, termination is gated by `pending` (SeqCst)
    let starving = shared.starving.load(Ordering::Relaxed);

An empty justification (`// ORDERING:` with nothing after it) does not
count.";

const RELAXED_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel"];

pub fn check(ctx: &FileCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ctx.role != FileRole::Src {
        return out;
    }
    for ci in 0..ctx.code.len() {
        if ctx.code_in_test(ci) {
            continue;
        }
        let i = ci as isize;
        let text = ctx.code_text(i);
        if RELAXED_VARIANTS.contains(&text)
            && ctx.code_text(i - 1) == "::"
            && ctx.code_text(i - 2) == "Ordering"
        {
            let line = ctx.code_tok(ci).line;
            if !ctx.annotated(line, Annotation::Ordering) {
                out.push(diag_at(
                    ctx,
                    "atomics-discipline",
                    ci,
                    format!(
                        "`Ordering::{text}` without an `// ORDERING:` justification — \
                         state why this ordering is sufficient (or use SeqCst)"
                    ),
                ));
            }
        }
    }
    out
}
