//! Rule `io-under-lock`: no disk I/O while a pool borrow or facade
//! lock is held.

use std::collections::BTreeSet;

use crate::cfg::Step;
use crate::context::FileCtx;
use crate::dataflow::{self, Analysis, Finding};
use crate::rules::flow::{self, Held, Summaries};
use crate::rules::{diag_at, Diagnostic};

pub const EXPLAIN: &str = "\
io-under-lock — disk I/O must not be reachable inside a critical section.

Tracks, along every control-flow path in crates/storage, crates/index
and crates/core, which sync-facade mutexes and `RefCell` borrows are
live, and flags any point where disk I/O happens before they are
released — either a direct `read`/`write`/`sync`/`flush` on a
disk/pager-shaped receiver, or a call into a function whose transitive
summary reaches one.

Why it matters: a millisecond-scale disk access inside a borrow of the
pool's interior cell serializes every concurrent page access behind
the platter, and inside a mutex it extends the critical section from
nanoseconds to milliseconds — the classic out-of-core scalability
bug. For `RefCell`s it is also a correctness trap: re-entering the
pool from an I/O completion path while the borrow is live panics.

Borrows of the cell that *owns* the I/O handle (pager/disk-shaped
names) are exempt — serializing the device behind its own cell is the
point. Intentional exceptions take a reasoned escape hatch:
`// csj-lint: allow(io-under-lock) — <reason>` on the offending line,
e.g. for a cold superblock write during shutdown where simplicity
beats overlap. Test code is not checked.";

struct IoAnalysis<'s> {
    rel_path: &'s str,
    /// Enclosing fn name: self-named calls never consult summaries.
    current_fn: &'s str,
    summaries: &'s Summaries,
}

/// Lock identities whose critical sections may perform I/O: the cell
/// or mutex guards the I/O object itself.
fn io_exempt(id: &str) -> bool {
    flow::io_shaped(id.rsplit(':').next().unwrap_or(""))
}

impl Analysis for IoAnalysis<'_> {
    type Fact = Held;

    fn transfer(&self, step: &Step, state: &mut BTreeSet<Held>, sink: Option<&mut Vec<Finding>>) {
        match step {
            Step::Call(c) => {
                if flow::consumes_guard_temp(c) {
                    flow::mark_chained(state);
                }
                let io_here = if flow::direct_io(c) {
                    Some(format!("disk I/O `.{}()`", c.name))
                } else if c.name != self.current_fn
                    && self.summaries.get(&c.name).is_some_and(|s| s.io)
                {
                    Some(format!("`{}` (which performs disk I/O)", c.name))
                } else {
                    None
                };
                if let (Some(what), Some(sink)) = (io_here, sink) {
                    for h in state.iter() {
                        sink.push(Finding {
                            ci: c.ci,
                            message: format!(
                                "{what} is reached while {} is held — release the \
                                 lock/borrow before touching the disk",
                                flow::display_lock(&h.id)
                            ),
                        });
                    }
                }
                if let Some(ev) = flow::lock_event(self.rel_path, c) {
                    if !io_exempt(&ev.id) {
                        state.insert(Held { id: ev.id, ci: c.ci, name: String::new() });
                    }
                } else if c.name == "drop" && !c.is_method && c.args.len() == 1 {
                    flow::drop_named(state, &c.args[0]);
                }
            }
            Step::Bind { name } => flow::bind_pending(state, name),
            Step::StmtEnd => flow::end_statement(state),
            Step::DropName(name) => flow::drop_named(state, name),
            _ => {}
        }
    }
}

pub fn check(ctxs: &[FileCtx]) -> Vec<Diagnostic> {
    let files = flow::lower_scoped(ctxs);
    let summaries = flow::summarize(&files);
    let mut out = Vec::new();
    for f in &files {
        for cfg in &f.cfgs {
            if flow::in_test(f.ctx, cfg) {
                continue;
            }
            let analysis = IoAnalysis {
                rel_path: f.ctx.rel_path,
                current_fn: &cfg.fn_name,
                summaries: &summaries,
            };
            for finding in dataflow::analyze(cfg, &analysis) {
                out.push(diag_at(f.ctx, "io-under-lock", finding.ci as usize, finding.message));
            }
        }
    }
    out
}
