//! `padding-invariant`: the SoA bound-slab contract.
//!
//! The merge window's bound slabs (`slab_lo`/`slab_hi` column arrays)
//! carry a three-part contract the SIMD mask probe depends on:
//!
//! 1. Slab lengths are padded to whole 4-lane multiples, so the AVX2
//!    kernel never reads past the columns (`slab_len_for` rounds up
//!    with `(cap + 3) & !3`).
//! 2. Padding lanes (and cleared slots) hold `+∞` sentinels, so a
//!    `< eps_sq` fit test can never accept a lane that holds no group.
//! 3. The sentinels only mask lanes when the threshold is finite —
//!    callers of the mask probe outside `csj-geom` must be dominated
//!    by a finite-ε guard (or take a reasoned allow when the guard
//!    flows through a value the analyzer cannot track).
//!
//! The rule machine-checks each part:
//! * **P1 (construction):** a `vec![…]` or `.resize(…)` that builds or
//!   refills a `slab_`-named column must supply the `INFINITY`
//!   sentinel as its fill value.
//! * **P2 (padding):** the return value of any `slab_len*` function
//!   must be a multiple of 4 on every branch, proved by the value-range
//!   congruence domain (`mult % 4 == 0`).
//! * **P3 (shrink/grow):** calling a length-changing mutator (`clear`,
//!   `truncate`, `drain`, `pop`, `push`, `swap_remove`) on a
//!   `slab_`-named column is only valid in a function that either
//!   refills with `INFINITY` or records the opt-out (`slab_ok = …`).
//! * **P4 (finite ε):** a call to the slab fit probe (`mbr_fit_pick` /
//!   `fit_pick`) outside `csj-geom` must be dominated by a guard
//!   mentioning `INFINITY` (the `eps_sq < f64::INFINITY` test).

use crate::ast;
use crate::cfg::{self, Step};
use crate::context::{FileCtx, FileRole};
use crate::dataflow::{env_in_states, env_transfer};
use crate::domain::Env;
use crate::lexer::TokKind;
use crate::rules::{flow, Diagnostic};

pub const EXPLAIN: &str = "\
padding-invariant: the SoA bound-slab contract behind the SIMD mask
probe.

The merge window keeps per-dimension bound columns (`slab_lo`,
`slab_hi`) padded to whole 4-lane multiples and filled with `+inf`
sentinels in every lane that holds no live group. The AVX2/NEON fit
mask reads all lanes unconditionally; the contract is what makes that
sound:

  P1  construction/refill: `vec![...]` / `.resize(...)` on a column
      whose binding mentions `slab_` must use `f64::INFINITY` as the
      fill value — a zeroed pad lane would pass every fit test.
  P2  padding arithmetic: every `slab_len*` function must return a
      multiple of 4 on every branch (machine-checked with the
      congruence domain: `(cap + 3) & !3` proves, `cap + 3` does not).
  P3  shrink/grow: `clear`/`truncate`/`drain`/`pop`/`push`/
      `swap_remove` on a `slab_` column changes the padded length; the
      surrounding function must refill with `INFINITY` or record the
      opt-out by assigning `slab_ok`.
  P4  finite epsilon: the sentinels only mask lanes under a finite
      threshold, so calls to the fit probe (`mbr_fit_pick`/`fit_pick`)
      outside csj-geom must be dominated by a guard mentioning
      `INFINITY` (e.g. `eps_sq < f64::INFINITY`). Guards that flow
      through a computed bool (`let simd_ok = eps_sq < INF; ... if
      simd_ok {...}` selecting a *value*) are invisible to the
      control-flow analysis and take a reasoned allow.

Scope: crates/geom and crates/core, non-test code.";

const SCOPE: &[&str] = &["crates/geom/src/", "crates/core/src/"];

const RULE: &str = "padding-invariant";

/// Length-changing `Vec` mutators (P3). `resize` is handled by P1
/// (its fill argument must be the sentinel).
const MUTATORS: &[&str] = &["clear", "truncate", "drain", "pop", "push", "swap_remove"];

pub fn check(ctxs: &[FileCtx]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for ctx in ctxs {
        if ctx.role != FileRole::Src || !SCOPE.iter().any(|p| ctx.rel_path.starts_with(p)) {
            continue;
        }
        check_construction(ctx, &mut out);
        let parsed = ast::parse(ctx);
        check_slab_len_fns(ctx, &parsed, &mut out);
        if !ctx.rel_path.starts_with("crates/geom/") {
            check_finite_eps(ctx, &parsed, &mut out);
        }
    }
    out
}

fn diag(ctx: &FileCtx, ci: usize, msg: String) -> Diagnostic {
    let t = ctx.code_tok(ci);
    Diagnostic::new(RULE, ctx.rel_path.to_string(), t.line, t.col, msg)
}

/// True when the code token is an identifier mentioning `slab_`.
fn slab_ident(ctx: &FileCtx, ci: isize) -> bool {
    ctx.code_kind(ci) == TokKind::Ident && ctx.code_text(ci).contains("slab_")
}

/// P1 + P3: token scan over constructions and mutators.
fn check_construction(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.code.len() {
        if ctx.code_in_test(i) {
            continue;
        }
        let text = ctx.code_text(i as isize);
        // P1a: `vec![ … ]` whose statement prefix names a slab column.
        if text == "vec" && ctx.code_text(i as isize + 1) == "!" {
            if !stmt_prefix_mentions_slab(ctx, i) {
                continue;
            }
            if !group_contains(ctx, i + 2, "INFINITY") {
                out.push(diag(
                    ctx,
                    i,
                    "slab column constructed without the `f64::INFINITY` sentinel — \
                     padding lanes must hold +inf so the fit mask cannot accept them"
                        .into(),
                ));
            }
        }
        // P1b: `<slab_…>.resize(len, fill)` — fill must be the sentinel.
        if text == "resize"
            && ctx.code_text(i as isize - 1) == "."
            && recv_mentions_slab(ctx, i)
            && !group_contains(ctx, i + 1, "INFINITY")
        {
            out.push(diag(
                ctx,
                i,
                "slab column resized without the `f64::INFINITY` fill — new lanes \
                 must hold +inf so the fit mask cannot accept them"
                    .into(),
            ));
        }
        // P3: length-changing mutator on a slab column.
        if MUTATORS.contains(&text)
            && ctx.code_text(i as isize - 1) == "."
            && ctx.code_text(i as isize + 1) == "("
            && recv_mentions_slab(ctx, i)
            && !fn_handles_slab_change(ctx, i)
        {
            out.push(diag(
                ctx,
                i,
                format!(
                    "`{text}` on a slab column changes the padded length without \
                     refilling `f64::INFINITY` sentinels or recording the opt-out \
                     (`slab_ok = …`) in this function"
                ),
            ));
        }
    }
}

/// Scans back from `ci` to the statement-ish boundary (`;`, `{`, `}`,
/// `,`) looking for a `slab_` identifier.
fn stmt_prefix_mentions_slab(ctx: &FileCtx, ci: usize) -> bool {
    let mut j = ci as isize - 1;
    loop {
        match ctx.code_text(j) {
            ";" | "{" | "}" | "," | "" => return false,
            _ if slab_ident(ctx, j) => return true,
            _ => j -= 1,
        }
    }
}

/// Scans back through the dotted receiver chain of the method at `ci`
/// (`self.slab_lo[d].clear()` → sees `slab_lo`), stopping at the
/// chain's start.
fn recv_mentions_slab(ctx: &FileCtx, ci: usize) -> bool {
    let mut j = ci as isize - 1; // the `.`
    loop {
        match ctx.code_text(j) {
            "." | "]" | ")" | "[" | "(" => j -= 1,
            _ if ctx.code_kind(j) == TokKind::Ident || ctx.code_text(j) == "self" => {
                if slab_ident(ctx, j) {
                    return true;
                }
                j -= 1;
            }
            _ if matches!(ctx.code_kind(j), TokKind::Int | TokKind::Float) => j -= 1,
            _ => return false,
        }
    }
}

/// Tokens of the bracket/paren group opening at or after `ci`:
/// true when any token in the group equals `needle`.
fn group_contains(ctx: &FileCtx, ci: usize, needle: &str) -> bool {
    let mut j = ci;
    while !matches!(ctx.code_text(j as isize), "(" | "[" | "{" | "") {
        j += 1;
    }
    let mut depth = 0isize;
    loop {
        match ctx.code_text(j as isize) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth <= 0 {
                    return false;
                }
            }
            "" => return false,
            t if t == needle => return true,
            _ => {}
        }
        j += 1;
    }
}

/// P3's escape hatches: the enclosing braced region (scanned outward
/// to the function's opening brace) refills `INFINITY` or assigns
/// `slab_ok`. A conservative widening — the scan covers the whole
/// token stretch between the nearest enclosing top-level braces.
fn fn_handles_slab_change(ctx: &FileCtx, ci: usize) -> bool {
    // Walk back to the start of the enclosing fn: the `fn` keyword at
    // brace depth relative 0.
    let mut depth = 0isize;
    let mut j = ci as isize;
    let start = loop {
        match ctx.code_text(j) {
            "" => break 0,
            "}" => depth += 1,
            "{" => depth -= 1,
            "fn" if depth < 0 => break j,
            _ => {}
        }
        j -= 1;
    };
    // Forward from the fn keyword to its body's closing brace.
    let mut k = start;
    let mut depth = 0isize;
    let mut opened = false;
    loop {
        match ctx.code_text(k) {
            "" => return false,
            "{" => {
                depth += 1;
                opened = true;
            }
            "}" => {
                depth -= 1;
                if opened && depth <= 0 {
                    return false;
                }
            }
            "INFINITY" => return true,
            "slab_ok" if ctx.code_text(k + 1) == "=" => return true,
            _ => {}
        }
        k += 1;
    }
}

/// P2: every `slab_len*` function returns a 4-lane multiple on every
/// branch, proved with the congruence component of the value domain.
fn check_slab_len_fns(ctx: &FileCtx, parsed: &ast::ParsedFile, out: &mut Vec<Diagnostic>) {
    for (_, f) in parsed.fns() {
        if !f.name.starts_with("slab_len") {
            continue;
        }
        let Some(body) = &f.body else { continue };
        if ctx.code_in_test(body.span.lo as usize) {
            continue;
        }
        let env = Env::default();
        let mut leaves = Vec::new();
        if let Some(tail) = block_tail(body) {
            collect_leaves(tail, &mut leaves);
        }
        if leaves.is_empty() {
            out.push(diag(
                ctx,
                body.span.lo as usize,
                format!(
                    "`{}` has no analyzable tail expression — the padded-length \
                     contract (multiple of 4) cannot be machine-checked",
                    f.name
                ),
            ));
            continue;
        }
        for leaf in leaves {
            let v = env.eval(&cfg::lower_aexpr(leaf));
            if !v.multiple_of(4) {
                out.push(diag(
                    ctx,
                    leaf.span.lo as usize,
                    format!(
                        "`{}` can return a length that is not a 4-lane multiple \
                         (congruence: multiple of {}) — pad with `(cap + 3) & !3`",
                        f.name, v.mult
                    ),
                ));
            }
        }
    }
}

/// The tail expression of a block (its last expression statement).
fn block_tail(b: &ast::Block) -> Option<&ast::Expr> {
    match b.stmts.iter().rev().find(|s| !matches!(s, ast::Stmt::Empty)) {
        Some(ast::Stmt::Expr { expr, .. }) => Some(expr),
        _ => None,
    }
}

/// Branch leaves of a return expression: `if`/`else` arms, `match`
/// arms, nested blocks. Everything else is a leaf to evaluate.
fn collect_leaves<'e>(e: &'e ast::Expr, out: &mut Vec<&'e ast::Expr>) {
    match &e.kind {
        ast::ExprKind::If { then, els, .. } => {
            if let Some(t) = block_tail(then) {
                collect_leaves(t, out);
            }
            if let Some(els) = els {
                collect_leaves(els, out);
            }
        }
        ast::ExprKind::BlockExpr(b) => {
            if let Some(t) = block_tail(b) {
                collect_leaves(t, out);
            }
        }
        ast::ExprKind::Match { arms, .. } => {
            for arm in arms {
                collect_leaves(&arm.body, out);
            }
        }
        ast::ExprKind::Return(Some(inner)) => collect_leaves(inner, out),
        _ => out.push(e),
    }
}

/// P4: fit-probe calls outside csj-geom need a dominating finite-ε
/// guard.
fn check_finite_eps(ctx: &FileCtx, parsed: &ast::ParsedFile, out: &mut Vec<Diagnostic>) {
    for fncfg in cfg::lower_file(parsed) {
        if flow::in_test(ctx, &fncfg) {
            continue;
        }
        let states = env_in_states(&fncfg);
        for (b, block) in fncfg.blocks.iter().enumerate() {
            let Some(state) = states.get(b).and_then(|s| s.as_ref()) else { continue };
            let mut env = state.clone();
            for step in &block.steps {
                if let Step::Call(c) = step {
                    if (c.name == "mbr_fit_pick" || c.name == "fit_pick")
                        && !ctx.code_in_test(c.ci as usize)
                        && !env.dead
                        && !env.guards.iter().any(|g| g.contains("INFINITY"))
                    {
                        out.push(diag(
                            ctx,
                            c.ci as usize,
                            format!(
                                "call to `{}` is not dominated by a finite-ε guard \
                                 (`… < f64::INFINITY`) — the +∞ padding sentinels \
                                 only mask empty lanes under a finite threshold",
                                c.name
                            ),
                        ));
                    }
                }
                env_transfer(step, &mut env);
            }
        }
    }
}
