//! Rule `error-hygiene`: fallible public API must document its failure
//! modes.

use crate::context::{CrateKind, FileCtx, FileRole};
use crate::lexer::TokKind;
use crate::rules::{diag_at, Diagnostic};

pub const EXPLAIN: &str = "\
error-hygiene — fallible public API documents its failure modes.

Every `pub fn` in a library crate whose return type mentions `Result`
(including aliases such as `io::Result` or `PersistResult`) must carry
a doc comment containing an `# Errors` section describing when and why
it fails. This is the contract the typed error hierarchy (DESIGN.md,
'Robustness') is built around: callers route on error variants, so the
variants each function can produce are API surface, not trivia.

Scope: library crates' shipped sources, outside test regions.
Restricted visibility (`pub(crate)`, `pub(super)`) is exempt — those
are internal seams, not API.

    /// Persists the index to `path`.
    ///
    /// # Errors
    /// `PersistError::Io` on any write failure; `PersistError::Checksum`
    /// if post-write verification reads back a different digest.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> { … }";

/// Modifier tokens allowed between `pub` and `fn`.
const FN_MODIFIERS: &[&str] = &["const", "unsafe", "async", "extern"];

pub fn check(ctx: &FileCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ctx.kind != CrateKind::Library || ctx.role != FileRole::Src {
        return out;
    }
    for ci in 0..ctx.code.len() {
        if ctx.code_text(ci as isize) != "fn" || ctx.code_in_test(ci) {
            continue;
        }
        let Some(pub_ci) = plain_pub_before(ctx, ci) else { continue };
        if !returns_result(ctx, ci) {
            continue;
        }
        if !docs_have_errors_section(ctx, pub_ci) {
            let name = ctx.code_text(ci as isize + 1).to_string();
            out.push(diag_at(
                ctx,
                "error-hygiene",
                ci,
                format!(
                    "`pub fn {name}` returns a Result but its doc comment has no \
                     `# Errors` section — document when and why it fails"
                ),
            ));
        }
    }
    out
}

/// Walks back from the `fn` keyword over modifier tokens; returns the
/// code index of a bare `pub` (not `pub(crate)` — a `)` right before
/// `fn`'s modifiers means restricted visibility).
fn plain_pub_before(ctx: &FileCtx, fn_ci: usize) -> Option<usize> {
    let mut j = fn_ci as isize - 1;
    while FN_MODIFIERS.contains(&ctx.code_text(j)) || ctx.code_kind(j) == TokKind::Str {
        j -= 1; // `extern "C"` carries a string
    }
    (ctx.code_text(j) == "pub").then_some(j as usize)
}

/// Scans the signature from `fn` to the body `{` (or `;` for trait
/// methods) looking for an ident containing `Result` after a `->`.
fn returns_result(ctx: &FileCtx, fn_ci: usize) -> bool {
    let mut seen_arrow = false;
    // Bounded walk: signatures are short; 128 tokens covers every
    // signature in this workspace with margin.
    for j in (fn_ci as isize + 1)..(fn_ci as isize + 129) {
        let text = ctx.code_text(j);
        if text.is_empty() {
            return false;
        }
        match text {
            "{" | ";" => return false,
            "->" => seen_arrow = true,
            "where" if seen_arrow => {
                // Return type fully scanned without a Result.
                return false;
            }
            _ => {
                if seen_arrow && ctx.code_kind(j) == TokKind::Ident && text.ends_with("Result") {
                    return true;
                }
            }
        }
    }
    false
}

/// Walks the full token stream backwards from the `pub` token over
/// attributes and doc comments; true if an attached doc comment
/// contains `# Errors`.
fn docs_have_errors_section(ctx: &FileCtx, pub_ci: usize) -> bool {
    let mut i = ctx.code[pub_ci] as isize;
    let mut bracket_depth = 0usize;
    while i > 0 {
        i -= 1;
        let t = &ctx.tokens[i as usize];
        if t.is_comment() {
            let doc = t.text.starts_with("///") || t.text.starts_with("/**");
            if doc && t.text.contains("# Errors") {
                return true;
            }
            // Plain comments and other doc lines: keep walking up
            // through the contiguous doc block.
            continue;
        }
        match t.text.as_str() {
            "]" => bracket_depth += 1,
            "[" => bracket_depth = bracket_depth.saturating_sub(1),
            "#" | "!" => {}
            _ if bracket_depth > 0 => {}
            // First non-attribute, non-comment code token above the
            // item: the doc block (if any) has ended.
            _ => return false,
        }
    }
    false
}
