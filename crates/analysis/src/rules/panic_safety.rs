//! Rule `panic-safety`: panicking constructs are forbidden in shipped
//! library/binary code.

use crate::context::{CrateKind, FileCtx, FileRole};
use crate::rules::{diag_at, Diagnostic};

pub const EXPLAIN: &str = "\
panic-safety — panicking constructs are forbidden in shipped code.

Flags `.unwrap()`, `.expect(…)`, `panic!`, `todo!` and `unimplemented!`
in library and binary crates, outside `#[cfg(test)]` / `#[test]`
regions and outside harness paths (tests/, benches/, examples/,
src/bin/, build.rs). Bench and shim crates are exempt.

A similarity-join engine that dies mid-run loses the lossless-prefix
guarantee the resilience layer (DESIGN.md, 'Robustness') was built to
provide: every abort path must flow through the typed error hierarchy
so partial output stays well-formed. Return a `Result` (see
`csj_core::error`) or, where the panic encodes a real invariant (lock
poisoning after a peer panic, arena slot liveness), justify it:

    // csj-lint: allow(panic-safety) — poisoning implies a worker
    // already panicked; propagating is the only sound option
    let guard = pool.lock().expect(\"pool lock poisoned\");

`unreachable!` and `assert!` are deliberately NOT flagged: they
document impossibility rather than laziness, and removing them would
hide logic errors instead of handling them.";

const BANG_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

pub fn check(ctx: &FileCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !matches!(ctx.kind, CrateKind::Library | CrateKind::Binary) || ctx.role != FileRole::Src {
        return out;
    }
    for ci in 0..ctx.code.len() {
        if ctx.code_in_test(ci) {
            continue;
        }
        let i = ci as isize;
        let text = ctx.code_text(i);
        let method_call = ctx.code_text(i - 1) == "." && ctx.code_text(i + 1) == "(";
        if (text == "unwrap" || text == "expect") && method_call {
            out.push(diag_at(
                ctx,
                "panic-safety",
                ci,
                format!(
                    "`.{text}(…)` in non-test {} code — return a typed error or justify \
                     with `// csj-lint: allow(panic-safety) — <reason>`",
                    kind_word(ctx.kind)
                ),
            ));
        } else if BANG_MACROS.contains(&text) && ctx.code_text(i + 1) == "!" {
            out.push(diag_at(
                ctx,
                "panic-safety",
                ci,
                format!(
                    "`{text}!` in non-test {} code — return a typed error or justify \
                     with `// csj-lint: allow(panic-safety) — <reason>`",
                    kind_word(ctx.kind)
                ),
            ));
        }
    }
    out
}

fn kind_word(kind: CrateKind) -> &'static str {
    match kind {
        CrateKind::Binary => "binary",
        _ => "library",
    }
}
