//! Shared infrastructure for the CFG/dataflow rules (guard-discipline,
//! lock-order, io-under-lock): scoping, parsing, lowering, and the
//! interprocedural call summaries they consult.
//!
//! Summaries are keyed by *bare function name* — the linter has no
//! type information, so `store.evict(…)` resolves to every fn named
//! `evict` in scope and their effects union (conservative). Two
//! deliberate precision choices:
//!
//! * Hyper-generic names (`read`, `write`, `new`, `get`, …) do NOT
//!   propagate through summaries — attribution for those comes from
//!   the call site's receiver (`pager.read(…)` is disk I/O because the
//!   receiver is pager-shaped), otherwise every `Formatter::write`
//!   would taint the workspace.
//! * Closure bodies are lowered and analyzed as their own
//!   pseudo-functions but contribute nothing to their enclosing fn's
//!   summary: a closure handed to `thread::spawn` runs on another
//!   thread, so its acquisitions are not the spawner's.

use std::collections::{BTreeSet, HashMap};

use crate::ast;
use crate::cfg::{self, CallInfo, FnCfg, Step};
use crate::context::{FileCtx, FileRole};

/// Path prefixes the dataflow rules analyze: the out-of-core layer,
/// everything that feeds it, and the sharded-execution supervisor
/// (whose worker loops hold pins across channel sends).
pub const SCOPE: &[&str] =
    &["crates/storage/src/", "crates/index/src/", "crates/core/src/", "crates/shard/src/"];

/// One in-scope file: its context plus lowered CFGs.
pub struct FlowFile<'c, 'a> {
    pub ctx: &'c FileCtx<'a>,
    pub cfgs: Vec<FnCfg>,
}

/// True when the dataflow rules cover this file.
pub fn in_scope(ctx: &FileCtx) -> bool {
    ctx.role == FileRole::Src && SCOPE.iter().any(|p| ctx.rel_path.starts_with(p))
}

/// Parses and lowers every in-scope file. Parse recoveries degrade
/// gracefully: whatever parsed still lowers.
pub fn lower_scoped<'c, 'a>(ctxs: &'c [FileCtx<'a>]) -> Vec<FlowFile<'c, 'a>> {
    ctxs.iter()
        .filter(|ctx| in_scope(ctx))
        .map(|ctx| {
            let parsed = ast::parse(ctx);
            FlowFile { ctx, cfgs: cfg::lower_file(&parsed) }
        })
        .collect()
}

/// True when this CFG's body sits inside a `#[cfg(test)]`/`#[test]`
/// region.
pub fn in_test(ctx: &FileCtx, cfg: &FnCfg) -> bool {
    ctx.code.get(cfg.body_lo as usize).is_some_and(|_| ctx.code_in_test(cfg.body_lo as usize))
}

/// A lock/borrow acquisition at a call site.
pub struct LockEvent {
    /// Crate-qualified identity, e.g. `core:mutex:queue` /
    /// `index:cell:inner`. Crate qualification keeps a field named
    /// `inner` in one crate from aliasing another crate's.
    pub id: String,
    pub mutex: bool,
}

/// Short crate tag from a workspace-relative path
/// (`crates/index/src/paged.rs` → `index`).
pub fn crate_tag(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("ws"),
        _ => "ws",
    }
}

/// Receivers that name the I/O object itself. A borrow of the cell
/// that *holds* the pager is how I/O is serialized, not a hazard.
pub fn io_shaped(segment: &str) -> bool {
    let s = segment.to_ascii_lowercase();
    s.contains("disk") || s.contains("pager") || s == "io" || s == "file"
}

/// Detects a sync-facade mutex lock or RefCell borrow at `c`.
pub fn lock_event(rel_path: &str, c: &CallInfo) -> Option<LockEvent> {
    let tag = crate_tag(rel_path);
    if c.name == "lock" {
        let target = if c.is_method {
            c.recv.as_deref().map(strip_call_suffix)
        } else if c.args.len() == 1 {
            c.args.first().map(|a| strip_call_suffix(a))
        } else {
            None
        }?;
        let seg = ast::last_segment(target);
        return Some(LockEvent { id: format!("{tag}:mutex:{seg}"), mutex: true });
    }
    if c.is_method && (c.name == "borrow" || c.name == "borrow_mut") {
        let recv = c.recv.as_deref().unwrap_or("?");
        let seg = ast::last_segment(strip_call_suffix(recv));
        return Some(LockEvent { id: format!("{tag}:cell:{seg}"), mutex: false });
    }
    None
}

fn strip_call_suffix(s: &str) -> &str {
    s.trim_end_matches("()")
}

/// Direct disk I/O: `read`/`write`/`sync`/`flush` invoked on a
/// disk/pager-shaped receiver.
pub fn direct_io(c: &CallInfo) -> bool {
    if !c.is_method || !matches!(c.name.as_str(), "read" | "write" | "sync" | "flush") {
        return false;
    }
    let recv = c.recv.as_deref().unwrap_or("");
    io_shaped(ast::last_segment(strip_call_suffix(recv)))
}

/// Directly blocking operations beyond mutex acquisition: joining a
/// thread, waiting on a channel/condvar, parking, sleeping.
pub fn direct_blocking(c: &CallInfo) -> bool {
    matches!(c.name.as_str(), "join" | "recv" | "recv_timeout" | "wait" | "park" | "sleep")
}

/// Methods that pass a guard value through unchanged:
/// `m.lock().expect(…)` still yields the guard.
const PASSTHROUGH: &[&str] = &["expect", "unwrap", "unwrap_or_else", "map_err", "ok"];

/// True when this call consumes a freshly acquired guard as a chain
/// temporary — its receiver chain or an argument goes through the
/// direct result of a `lock`/`borrow`/`borrow_mut` call. In
/// `lock(&q).pop_front()` the guard dies at the statement's end, so a
/// `let` binding of the *call's* result must not be mistaken for a
/// binding of the guard.
pub fn consumes_guard_temp(c: &CallInfo) -> bool {
    if PASSTHROUGH.contains(&c.name.as_str()) {
        return false;
    }
    let through_acquire =
        |s: &str| s.contains("lock()") || s.contains("borrow()") || s.contains("borrow_mut()");
    c.recv.as_deref().is_some_and(through_acquire) || c.args.iter().any(|a| through_acquire(a))
}

/// A held lock/borrow fact shared by the lock-order and io-under-lock
/// analyses: identity, acquisition token, binding name. `name` is `""`
/// while the guard is an unbound temporary a `let` may still capture,
/// [`CHAINED`] once a chained call has consumed it (it then dies at
/// the statement end), and the binding name once bound.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Held {
    pub id: String,
    pub ci: u32,
    pub name: String,
}

/// Sentinel binding name for chain-consumed guard temporaries; never a
/// Rust identifier.
pub const CHAINED: &str = "\u{0}";

/// Marks every promotable pending guard as chain-consumed. Call at the
/// top of a `Call` transfer when [`consumes_guard_temp`] fires, before
/// the call's own acquisition is genned.
pub fn mark_chained(state: &mut BTreeSet<Held>) {
    let pend: Vec<Held> = state.iter().filter(|h| h.name.is_empty()).cloned().collect();
    for mut h in pend {
        state.remove(&h);
        h.name = CHAINED.to_string();
        state.insert(h);
    }
}

/// `let name = …`: promotable pending guards become bound.
pub fn bind_pending(state: &mut BTreeSet<Held>, name: &str) {
    let pend: Vec<Held> = state.iter().filter(|h| h.name.is_empty()).cloned().collect();
    for mut h in pend {
        state.remove(&h);
        h.name = name.to_string();
        state.insert(h);
    }
}

/// Statement boundary: unbound and chain-consumed temporaries die.
pub fn end_statement(state: &mut BTreeSet<Held>) {
    state.retain(|h| !h.name.is_empty() && h.name != CHAINED);
}

/// A named guard going out of scope (or `drop(name)`).
pub fn drop_named(state: &mut BTreeSet<Held>, name: &str) {
    state.retain(|h| h.name != name);
}

/// Names too generic to resolve by name alone — effects for these are
/// attributed at the call site (receiver shape), never propagated.
const GENERIC_NAMES: &[&str] = &[
    "read",
    "write",
    "sync",
    "flush",
    "new",
    "default",
    "clone",
    "get",
    "get_mut",
    "len",
    "push",
    "pop",
    "insert",
    "remove",
    "next",
    "iter",
    "lock",
    "borrow",
    "borrow_mut",
    "drop",
    "join",
    "recv",
    "wait",
    "park",
    "sleep",
    "sort",
    "extend",
    "clear",
    "contains",
    "take",
    "from",
    "into",
];

/// What calling a fn (transitively) does, for interprocedural checks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// Lock/borrow identities acquired (transiently) inside.
    pub locks: BTreeSet<String>,
    /// Reaches a direct disk I/O call.
    pub io: bool,
    /// Reaches a mutex acquisition or another blocking op.
    pub blocking: bool,
}

/// Name-keyed transitive call summaries over all in-scope files.
pub struct Summaries {
    by_name: HashMap<String, Summary>,
}

impl Summaries {
    pub fn get(&self, callee: &str) -> Option<&Summary> {
        if GENERIC_NAMES.contains(&callee) {
            return None;
        }
        self.by_name.get(callee)
    }
}

/// Builds the summary map: one local pass per fn, then a fixpoint over
/// the name-based call graph.
pub fn summarize(files: &[FlowFile<'_, '_>]) -> Summaries {
    let mut by_name: HashMap<String, Summary> = HashMap::new();
    // Local effects.
    for f in files {
        for cfg in &f.cfgs {
            if cfg.qual_name.contains("::closure") || in_test(f.ctx, cfg) {
                continue;
            }
            let entry = by_name.entry(cfg.fn_name.clone()).or_default();
            for step in cfg.blocks.iter().flat_map(|b| b.steps.iter()) {
                let Step::Call(c) = step else { continue };
                if let Some(ev) = lock_event(f.ctx.rel_path, c) {
                    entry.locks.insert(ev.id.clone());
                    if ev.mutex {
                        entry.blocking = true;
                    }
                }
                if direct_io(c) {
                    entry.io = true;
                }
                if direct_blocking(c) {
                    entry.blocking = true;
                }
            }
        }
    }
    // Transitive closure over named calls.
    loop {
        let mut changed = false;
        for f in files {
            for cfg in &f.cfgs {
                if cfg.qual_name.contains("::closure") || in_test(f.ctx, cfg) {
                    continue;
                }
                let mut add = Summary::default();
                for step in cfg.blocks.iter().flat_map(|b| b.steps.iter()) {
                    let Step::Call(c) = step else { continue };
                    if GENERIC_NAMES.contains(&c.name.as_str()) || c.name == cfg.fn_name {
                        continue;
                    }
                    if let Some(s) = by_name.get(&c.name) {
                        add.locks.extend(s.locks.iter().cloned());
                        add.io |= s.io;
                        add.blocking |= s.blocking;
                    }
                }
                let entry = by_name.entry(cfg.fn_name.clone()).or_default();
                let before = (entry.locks.len(), entry.io, entry.blocking);
                entry.locks.extend(add.locks);
                entry.io |= add.io;
                entry.blocking |= add.blocking;
                if (entry.locks.len(), entry.io, entry.blocking) != before {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Summaries { by_name }
}

/// Human-readable form of a lock identity:
/// `index:cell:inner` → ``RefCell `inner` (index)``.
pub fn display_lock(id: &str) -> String {
    let mut parts = id.splitn(3, ':');
    let tag = parts.next().unwrap_or("?");
    let kind = parts.next().unwrap_or("?");
    let name = parts.next().unwrap_or("?");
    let kind = if kind == "mutex" { "mutex" } else { "RefCell" };
    format!("{kind} `{name}` ({tag})")
}
