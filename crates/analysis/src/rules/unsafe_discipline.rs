//! Rule `unsafe-discipline`: every `unsafe` block must carry a written
//! safety argument.

use crate::context::{Annotation, FileCtx, FileRole};
use crate::rules::{diag_at, Diagnostic};

pub const EXPLAIN: &str = "\
unsafe-discipline — every unsafe block must carry its proof.

Flags an `unsafe {` block in non-test source unless the block's line
carries a `// SAFETY: <why>` comment (trailing on the same line, or on
the comment line(s) directly above). The annotation states which
obligations the surrounding code discharges — for the SIMD kernels
that is always two things: how the required CPU feature was
established (runtime detection behind `KernelPath::clamp`) and why
every raw load stays in bounds:

    // SAFETY: `clamp` returned `Avx2` only after
    // `is_x86_feature_detected!(\"avx2\")`; all slabs have length `n`.
    let mask = unsafe { x86::fit_mask_avx2(lo, hi, .., n) };

Only *blocks* are matched (`unsafe` directly followed by `{`).
`unsafe fn` / `unsafe impl` / `unsafe trait` declarations are the
*contract* side — their obligations belong in a `# Safety` doc
section, and with `unsafe_op_in_unsafe_fn` warnings on (as in
csj-geom) every discharge site inside them is an `unsafe {}` block
this rule does see. An empty justification (`// SAFETY:` with nothing
after it) does not count.";

pub fn check(ctx: &FileCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ctx.role != FileRole::Src {
        return out;
    }
    for ci in 0..ctx.code.len() {
        if ctx.code_in_test(ci) {
            continue;
        }
        let i = ci as isize;
        if ctx.code_text(i) == "unsafe" && ctx.code_text(i + 1) == "{" {
            let line = ctx.code_tok(ci).line;
            if !ctx.annotated(line, Annotation::Safety) {
                out.push(diag_at(
                    ctx,
                    "unsafe-discipline",
                    ci,
                    "`unsafe` block without a `// SAFETY:` justification — state which \
                     preconditions hold and what establishes them"
                        .to_string(),
                ));
            }
        }
    }
    out
}
