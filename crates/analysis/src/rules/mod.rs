//! The rule registry and the suppression-aware rule runner.
//!
//! Each rule is a plain function from [`FileCtx`] to diagnostics plus
//! static metadata (name, one-line summary, long `--explain` text).
//! Rules are deliberately token-level pattern matchers: with no `syn`
//! available offline, the contract is *high-signal heuristics with
//! documented false-negative classes*, never false positives a
//! developer cannot either fix or justify inline.
//!
//! Suppression: `// csj-lint: allow(<rule>[, <rule>…]) — <reason>` on
//! the offending line or the comment line(s) directly above. The reason
//! is mandatory; an allow without one (or naming an unknown rule) is
//! reported under the reserved meta-rule name `suppression`, which
//! itself cannot be suppressed.

pub mod atomics;
pub mod determinism;
pub mod error_hygiene;
pub mod float_eq;
pub mod flow;
pub mod guard_discipline;
pub mod io_under_lock;
pub mod lock_order;
pub mod padding_invariant;
pub mod panic_safety;
pub mod sync_facade;
pub mod unsafe_bounds;
pub mod unsafe_discipline;

use std::collections::HashMap;

use crate::context::FileCtx;

/// Reserved name for suppression-hygiene findings.
pub const META_RULE: &str = "suppression";

/// A secondary location attached to a diagnostic — e.g. the dominating
/// guard that discharges (or fails to discharge) a bounds claim.
/// Rendered as SARIF `relatedLocations`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Related {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// One finding, pinned to a file:line:col span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (one of [`all_rules`] or [`META_RULE`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// Secondary locations (guards, prior acquisitions).
    pub related: Vec<Related>,
    /// A *pass* note rather than a finding: the claim was discharged
    /// and this records by what. Pass notes never fail the lint; SARIF
    /// renders them as `kind: "pass"` results, text/JSON omit them.
    pub pass: bool,
}

impl Diagnostic {
    /// A plain (failing) diagnostic with no secondary locations.
    pub fn new(rule: &'static str, file: String, line: u32, col: u32, message: String) -> Self {
        Diagnostic { rule, file, line, col, message, related: Vec::new(), pass: false }
    }

    /// Attaches a secondary location.
    #[must_use]
    pub fn with_related(mut self, line: u32, col: u32, message: String) -> Self {
        self.related.push(Related { line, col, message });
        self
    }

    /// Marks this diagnostic as a discharged-claim pass note.
    #[must_use]
    pub fn passed(mut self) -> Self {
        self.pass = true;
        self
    }
}

/// How a rule consumes the workspace.
pub enum Check {
    /// Runs independently per file — the token-pattern rules.
    File(fn(&FileCtx) -> Vec<Diagnostic>),
    /// Runs once over every file together — the CFG/dataflow rules,
    /// whose interprocedural summaries and acquisition graph span
    /// crates. Diagnostics carry their own `file` and are bucketed
    /// back by the runner.
    Workspace(fn(&[FileCtx]) -> Vec<Diagnostic>),
}

/// A rule: metadata plus its checker.
pub struct Rule {
    pub name: &'static str,
    /// One-line summary shown in `--list-rules`.
    pub summary: &'static str,
    /// Long-form text shown by `--explain <rule>`.
    pub explain: &'static str,
    pub check: Check,
}

/// Every shipped rule, in reporting order.
pub fn all_rules() -> &'static [Rule] {
    &[
        Rule {
            name: "panic-safety",
            summary: "no unwrap/expect/panic!/todo!/unimplemented! outside test code",
            explain: panic_safety::EXPLAIN,
            check: Check::File(panic_safety::check),
        },
        Rule {
            name: "atomics-discipline",
            summary: "non-SeqCst atomic orderings require an `// ORDERING:` justification",
            explain: atomics::EXPLAIN,
            check: Check::File(atomics::check),
        },
        Rule {
            name: "float-discipline",
            summary: "float ==/!= in csj-geom/csj-core requires a `// FLOAT-EQ:` annotation",
            explain: float_eq::EXPLAIN,
            check: Check::File(float_eq::check),
        },
        Rule {
            name: "determinism",
            summary: "no wall-clock or RNG in the deterministic merge/output modules",
            explain: determinism::EXPLAIN,
            check: Check::File(determinism::check),
        },
        Rule {
            name: "error-hygiene",
            summary: "pub fns returning Result need a doc comment with an `# Errors` section",
            explain: error_hygiene::EXPLAIN,
            check: Check::File(error_hygiene::check),
        },
        Rule {
            name: "sync-facade",
            summary: "csj-core uses `crate::sync`, never `std::sync`, outside the facade",
            explain: sync_facade::EXPLAIN,
            check: Check::File(sync_facade::check),
        },
        Rule {
            name: "unsafe-discipline",
            summary: "every `unsafe` block requires a `// SAFETY:` justification",
            explain: unsafe_discipline::EXPLAIN,
            check: Check::File(unsafe_discipline::check),
        },
        Rule {
            name: "guard-discipline",
            summary: "buffer-pool pins and RAII guards balance on every CFG path",
            explain: guard_discipline::EXPLAIN,
            check: Check::Workspace(guard_discipline::check),
        },
        Rule {
            name: "lock-order",
            summary: "mutex/RefCell acquisition order is acyclic across the workspace",
            explain: lock_order::EXPLAIN,
            check: Check::Workspace(lock_order::check),
        },
        Rule {
            name: "io-under-lock",
            summary: "no disk I/O reachable while a pool borrow or facade lock is held",
            explain: io_under_lock::EXPLAIN,
            check: Check::Workspace(io_under_lock::check),
        },
        Rule {
            name: "unsafe-bounds",
            summary: "raw loads carry machine-discharged bounds claims or BOUNDS obligations",
            explain: unsafe_bounds::EXPLAIN,
            check: Check::Workspace(unsafe_bounds::check),
        },
        Rule {
            name: "padding-invariant",
            summary: "SoA slabs: 4-lane padded lengths, +inf sentinels, finite-ε probes",
            explain: padding_invariant::EXPLAIN,
            check: Check::Workspace(padding_invariant::check),
        },
    ]
}

/// Looks a rule up by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    all_rules().iter().find(|r| r.name == name)
}

/// The per-file result of running every rule: surviving diagnostics
/// plus how many findings inline suppressions absorbed.
#[derive(Debug, Default)]
pub struct FileReport {
    pub diagnostics: Vec<Diagnostic>,
    /// Discharged-claim pass notes (`Diagnostic::pass`): never counted
    /// as findings, rendered only by SARIF.
    pub notes: Vec<Diagnostic>,
    pub suppressed: usize,
}

/// Runs all rules over one file and applies suppressions. Workspace
/// rules see a singleton workspace — this is the seam fixture golden
/// tests drive; real runs go through [`run_all`] so interprocedural
/// rules see every file at once.
pub fn run_rules(ctx: &FileCtx) -> FileReport {
    run_all(std::slice::from_ref(ctx)).pop().unwrap_or_default()
}

/// Runs all rules over the whole workspace: per-file rules on each
/// file, workspace rules once over everything, then suppressions per
/// file. Returns one report per input context, in order.
pub fn run_all(ctxs: &[FileCtx]) -> Vec<FileReport> {
    let mut raw: Vec<Vec<Diagnostic>> = ctxs.iter().map(|_| Vec::new()).collect();
    let by_path: HashMap<&str, usize> =
        ctxs.iter().enumerate().map(|(i, c)| (c.rel_path, i)).collect();
    for rule in all_rules() {
        match rule.check {
            Check::File(f) => {
                for (i, ctx) in ctxs.iter().enumerate() {
                    raw[i].extend(f(ctx));
                }
            }
            Check::Workspace(f) => {
                for d in f(ctxs) {
                    if let Some(&i) = by_path.get(d.file.as_str()) {
                        raw[i].push(d);
                    }
                }
            }
        }
    }
    ctxs.iter().zip(raw).map(|(ctx, diags)| apply_suppressions(ctx, diags)).collect()
}

/// Applies one file's suppressions to its raw diagnostics.
///
/// Suppression-hygiene problems (missing reason, unknown rule name)
/// surface as [`META_RULE`] diagnostics and are never suppressible.
fn apply_suppressions(ctx: &FileCtx, raw: Vec<Diagnostic>) -> FileReport {
    let mut report = FileReport::default();
    for s in &ctx.suppressions {
        if s.rules.is_empty() {
            report.diagnostics.push(Diagnostic::new(
                META_RULE,
                ctx.rel_path.to_string(),
                s.at_line,
                1,
                "malformed `csj-lint: allow(...)` — expected \
                 `allow(<rule>[, <rule>]) — <reason>`"
                    .into(),
            ));
            continue;
        }
        if s.reason.is_empty() {
            report.diagnostics.push(Diagnostic::new(
                META_RULE,
                ctx.rel_path.to_string(),
                s.at_line,
                1,
                format!(
                    "suppression of `{}` has no justification — a reason after the \
                     rule list is mandatory",
                    s.rules.join(", ")
                ),
            ));
        }
        for r in &s.rules {
            if rule_by_name(r).is_none() {
                report.diagnostics.push(Diagnostic::new(
                    META_RULE,
                    ctx.rel_path.to_string(),
                    s.at_line,
                    1,
                    format!("suppression names unknown rule `{r}`"),
                ));
            }
        }
    }

    for d in raw {
        if d.pass {
            // Discharged-claim notes bypass suppression entirely —
            // there is nothing to suppress.
            report.notes.push(d);
            continue;
        }
        let suppressed = ctx.suppressions.iter().any(|s| {
            !s.reason.is_empty() && s.covers_line == d.line && s.rules.iter().any(|r| r == d.rule)
        });
        if suppressed {
            report.suppressed += 1;
        } else {
            report.diagnostics.push(d);
        }
    }
    report.diagnostics.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    report.notes.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    report
}

/// Shared helper: a diagnostic at a code token.
pub(crate) fn diag_at(ctx: &FileCtx, rule: &'static str, ci: usize, message: String) -> Diagnostic {
    let t = ctx.code_tok(ci);
    Diagnostic::new(rule, ctx.rel_path.to_string(), t.line, t.col, message)
}
