//! Rule `determinism`: the merge/output modules must never consult
//! wall-clock time or randomness.

use crate::context::{FileCtx, FileRole};
use crate::rules::{diag_at, Diagnostic};

pub const EXPLAIN: &str = "\
determinism — the merge/output path may not consult clock or RNG.

The parallel scheduler's headline guarantee (DESIGN.md §7a) is that
output is identical at any thread count and across runs: results are
merged in task-key order, and nothing on the emission path may depend
on timing or randomness. This rule machine-enforces that for the
modules carrying the guarantee:

    crates/core/src/parallel/**   (work-stealing scheduler + baseline)
    crates/core/src/group.rs      (group/window output shaping)

Flagged constructs, outside test regions: `Instant::now`,
`SystemTime` (any use), and RNG entry points (`thread_rng`,
`from_entropy`, `ThreadRng`, `StdRng`, `SmallRng`, `rand::random`).

Reading elapsed time for *budget accounting* is the one legitimate
exception — a deadline stop changes where a partial run ends, never
the content or order of what was emitted — and is justified inline:

    // csj-lint: allow(determinism) — wall-clock feeds RunBudget
    // deadline accounting only; completed runs never consult it
    let start = Instant::now();";

/// Identifiers that are forbidden on their own.
const BARE_FORBIDDEN: &[&str] =
    &["SystemTime", "ThreadRng", "StdRng", "SmallRng", "thread_rng", "from_entropy"];

pub fn check(ctx: &FileCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let scoped = ctx.rel_path.starts_with("crates/core/src/parallel/")
        || ctx.rel_path == "crates/core/src/group.rs";
    if !scoped || ctx.role != FileRole::Src {
        return out;
    }
    for ci in 0..ctx.code.len() {
        if ctx.code_in_test(ci) {
            continue;
        }
        let i = ci as isize;
        let text = ctx.code_text(i);
        let hit = if text == "now" {
            (ctx.code_text(i - 1) == "::" && ctx.code_text(i - 2) == "Instant")
                .then(|| "Instant::now".to_string())
        } else if text == "random" && ctx.code_text(i - 1) == "::" && ctx.code_text(i - 2) == "rand"
        {
            Some("rand::random".to_string())
        } else if BARE_FORBIDDEN.contains(&text) {
            Some(text.to_string())
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(diag_at(
                ctx,
                "determinism",
                ci,
                format!(
                    "`{what}` in a determinism-critical module — output must be \
                     identical across runs and thread counts; move the dependency out \
                     or justify with `// csj-lint: allow(determinism) — <reason>`"
                ),
            ));
        }
    }
    out
}
