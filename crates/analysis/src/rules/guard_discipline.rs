//! Rule `guard-discipline`: pin/unpin pairs and RAII pool guards must
//! be balanced on *every* control-flow path.

use std::collections::BTreeSet;

use crate::cfg::{ExitKind, FnCfg, Step};
use crate::context::FileCtx;
use crate::dataflow::{self, Analysis, Finding};
use crate::rules::flow::{self, FlowFile, Summaries};
use crate::rules::{diag_at, Diagnostic};

pub const EXPLAIN: &str = "\
guard-discipline — buffer-pool pins and RAII guards balance on every path.

Runs a path-sensitive forward dataflow over each function's control-flow
graph in crates/storage, crates/index and crates/core and flags:

  * a `.pin(page)` with no matching `.unpin(page)` on some path out of
    the function — including the error path of a `?` and early
    `return`s, the paths eyeballs miss. Constructing a `*Guard` struct
    (`NodeGuard`, `FrameGuard`, …) absorbs outstanding pins: that is
    the RAII ownership transfer, and the guard's `Drop` is trusted to
    unpin.
  * `.unpin(x)` on a path where no pin of `x` can be live — a double
    unpin, which corrupts the pool's pin counts.
  * a guard (`let g = store.node(…)?` or a `*Guard` literal) held
    across a call that can block: mutex acquisition, thread join,
    channel recv, sleep, or anything whose (transitive, name-resolved)
    summary does one of those. A pinned page plus a blocked thread is
    how a bounded pool deadlocks. Holding a guard across another
    `.node(…)` is deliberately allowed — the pool guarantees capacity
    for the two concurrent pins the join recursion needs (see
    DESIGN.md §11); it is *blocking* while pinned that is fatal.

Functions named `pin`, `unpin` and `drop` are exempt (they implement
the protocol), as is test code. Suppress intentional cases with
`// csj-lint: allow(guard-discipline) — <reason>`.";

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Fact {
    /// An outstanding `.pin(key)`.
    Pin(String),
    /// A just-produced guard value, not yet bound; dies at `;`.
    PendingGuard,
    /// A live named guard binding.
    Guard(String),
}

struct GuardAnalysis<'s> {
    /// Enclosing fn name: self-named calls never consult summaries.
    current_fn: &'s str,
    summaries: &'s Summaries,
}

impl Analysis for GuardAnalysis<'_> {
    type Fact = Fact;

    fn transfer(
        &self,
        step: &Step,
        state: &mut BTreeSet<Fact>,
        mut sink: Option<&mut Vec<Finding>>,
    ) {
        match step {
            Step::Call(c) => {
                // Blocking-while-guarded check first: the call being
                // inspected must not count its own acquisition as held.
                let blocking = flow::direct_blocking(c)
                    || (c.name == "lock")
                    || (c.name != self.current_fn
                        && self.summaries.get(&c.name).is_some_and(|s| s.blocking));
                if blocking {
                    if let Some(sink) = sink.as_deref_mut() {
                        for f in state.iter() {
                            if let Fact::Guard(g) = f {
                                sink.push(Finding {
                                    ci: c.ci,
                                    message: format!(
                                        "pool guard `{g}` is held across `{}`, which can \
                                         block — drop the guard first; a pinned page plus \
                                         a blocked thread can deadlock a bounded pool",
                                        c.name
                                    ),
                                });
                            }
                        }
                    }
                }
                match c.name.as_str() {
                    "pin" if c.is_method => {
                        let key = c.args.first().cloned().unwrap_or_else(|| "?".into());
                        state.insert(Fact::Pin(key));
                    }
                    "unpin" if c.is_method => {
                        let key = c.args.first().cloned().unwrap_or_else(|| "?".into());
                        if !state.remove(&Fact::Pin(key.clone())) {
                            if let Some(sink) = sink.as_deref_mut() {
                                sink.push(Finding {
                                    ci: c.ci,
                                    message: format!(
                                        "`.unpin({key})` with no matching `.pin({key})` \
                                         live on this path — a double unpin corrupts the \
                                         pool's pin counts"
                                    ),
                                });
                            }
                        }
                    }
                    // A guard-yielding pool access.
                    "node" if c.is_method => {
                        state.insert(Fact::PendingGuard);
                    }
                    // Explicit `drop(g)` releases a guard early.
                    "drop" if !c.is_method && c.args.len() == 1 => {
                        if let Some(a) = c.args.first() {
                            state.remove(&Fact::Guard(a.clone()));
                        }
                    }
                    _ => {}
                }
            }
            Step::StructLit { name, .. } => {
                if name.ends_with("Guard") {
                    // RAII ownership transfer: the guard now owns the
                    // outstanding pins and will unpin in Drop.
                    state.retain(|f| !matches!(f, Fact::Pin(_)));
                    state.insert(Fact::PendingGuard);
                }
            }
            Step::Bind { name } => {
                if state.remove(&Fact::PendingGuard) {
                    state.insert(Fact::Guard(name.clone()));
                }
            }
            Step::StmtEnd => {
                state.remove(&Fact::PendingGuard);
            }
            Step::DropName(name) => {
                state.remove(&Fact::Guard(name.clone()));
            }
            Step::Exit { kind, ci } => {
                if let Some(sink) = sink {
                    for f in state.iter() {
                        if let Fact::Pin(key) = f {
                            let path = match kind {
                                ExitKind::Question => "the `?` error path",
                                ExitKind::Return => "this early-return path",
                                ExitKind::End => "a path through this function",
                            };
                            sink.push(Finding {
                                ci: *ci,
                                message: format!(
                                    "`.pin({key})` is never unpinned on {path} — \
                                     unpin before leaving or hand the pin to a guard"
                                ),
                            });
                        }
                    }
                }
            }
            // Value-range steps carry no guard semantics.
            Step::Assign { .. }
            | Step::Assume(_)
            | Step::PtrAdd { .. }
            | Step::UncheckedIndex { .. } => {}
        }
    }
}

pub fn check(ctxs: &[FileCtx]) -> Vec<Diagnostic> {
    let files = flow::lower_scoped(ctxs);
    let summaries = flow::summarize(&files);
    let mut out = Vec::new();
    for f in &files {
        for cfg in &f.cfgs {
            if skip_fn(f, cfg) {
                continue;
            }
            let analysis = GuardAnalysis { current_fn: &cfg.fn_name, summaries: &summaries };
            for finding in dataflow::analyze(cfg, &analysis) {
                out.push(diag_at(f.ctx, "guard-discipline", finding.ci as usize, finding.message));
            }
        }
    }
    out
}

fn skip_fn(f: &FlowFile, cfg: &FnCfg) -> bool {
    // pin/unpin implement the protocol; Drop impls are the RAII sink.
    matches!(cfg.fn_name.as_str(), "pin" | "unpin" | "drop") || flow::in_test(f.ctx, cfg)
}
