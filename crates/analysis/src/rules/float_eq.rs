//! Rule `float-discipline`: bitwise float equality in the geometry and
//! join-core crates must be deliberate.

use crate::context::{Annotation, FileCtx, FileRole};
use crate::lexer::TokKind;
use crate::rules::{diag_at, Diagnostic};

pub const EXPLAIN: &str = "\
float-discipline — bitwise float equality must be deliberate.

The paper's losslessness theorems and the batched distance kernel's
bit-identical-to-scalar contract both hinge on epsilon-boundary
behaviour: a record at distance exactly ε must be classified the same
way by every code path (scalar kernel, batched kernel, window merge).
Accidental `==` on floats is how those paths drift apart.

Scope: `crates/geom` and `crates/core` shipped sources, outside test
regions. The rule flags a `==` or `!=` when its operand tokens look
float-typed:

  * a float literal (`0.0`, `1e-9`, `0.5f64`) on either side,
  * an `f32`/`f64` token (casts, consts like `f64::NAN`), or
  * a subscript-vs-subscript compare (`a[0] == b[0]`) — in these two
    crates, indexing a point yields a coordinate.

This is a heuristic, not type inference: a compare of two bare float
*variables* is not caught (documented false-negative; clippy's
`float_cmp` covers that class once enabled). A flagged compare that is
genuinely intended — exact coordinate dedup, IEEE-754 boundary tests —
is annotated in place:

    // FLOAT-EQ: exact duplicate collapse; any epsilon here would merge
    // distinct hull vertices
    pts.dedup_by(|a, b| a[0] == b[0] && a[1] == b[1]);";

/// How far the operand scan walks on each side of the operator.
const SCAN: usize = 12;

pub fn check(ctx: &FileCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let scoped =
        ctx.rel_path.starts_with("crates/geom/") || ctx.rel_path.starts_with("crates/core/");
    if !scoped || ctx.role != FileRole::Src {
        return out;
    }
    for ci in 0..ctx.code.len() {
        let i = ci as isize;
        let op = ctx.code_text(i);
        if (op != "==" && op != "!=") || ctx.code_in_test(ci) {
            continue;
        }
        let floaty = operand_is_floaty(ctx, i, -1)
            || operand_is_floaty(ctx, i, 1)
            || subscript_compare(ctx, i);
        if !floaty {
            continue;
        }
        let line = ctx.code_tok(ci).line;
        if !ctx.annotated(line, Annotation::FloatEq) {
            out.push(diag_at(
                ctx,
                "float-discipline",
                ci,
                format!(
                    "float `{op}` without a `// FLOAT-EQ:` annotation — epsilon-boundary \
                     comparisons must state why exact equality is intended"
                ),
            ));
        }
    }
    out
}

/// Walks up to [`SCAN`] code tokens away from the operator at `i` in
/// `dir` (±1), skipping over balanced bracket groups, and reports
/// whether a float literal or an `f32`/`f64` token shows up before an
/// expression boundary (`;`, `,`, `{`, `}`, `&&`, `||`, or an
/// unbalanced close/open in the scan direction).
fn operand_is_floaty(ctx: &FileCtx, op: isize, dir: isize) -> bool {
    let mut depth: i32 = 0;
    let mut j = op + dir;
    for _ in 0..SCAN {
        let text = ctx.code_text(j);
        if text.is_empty() {
            return false;
        }
        match text {
            ";" | "," | "{" | "}" | "&&" | "||" | "==" | "!=" if depth == 0 => return false,
            "(" | "[" => {
                depth += dir as i32;
                if depth < 0 {
                    return false;
                }
            }
            ")" | "]" => {
                depth -= dir as i32;
                if depth < 0 {
                    return false;
                }
            }
            "f32" | "f64" => return true,
            _ => {
                if ctx.code_kind(j) == TokKind::Float {
                    return true;
                }
            }
        }
        j += dir;
    }
    false
}

/// `a[0] == b[0]`-shaped: a subscript immediately left of the operator
/// and another beginning immediately right of it.
fn subscript_compare(ctx: &FileCtx, op: isize) -> bool {
    ctx.code_text(op - 1) == "]"
        && ctx.code_kind(op + 1) == TokKind::Ident
        && ctx.code_text(op + 2) == "["
}
