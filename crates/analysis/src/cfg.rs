//! Per-function control-flow graphs lowered from the [`crate::ast`]
//! parse tree.
//!
//! Each function body becomes a graph of basic blocks whose steps are
//! the events the dataflow rules care about: calls (with flattened
//! receiver/argument paths), struct-literal constructions, `let`
//! bindings, scope-end drops, statement boundaries (where unbound
//! temporaries die), and exits (`return`, the error path of `?`, and
//! falling off the end). `if`/`match`/loops produce real branch and
//! back edges, so a fact that only leaks on the error path of a `?` is
//! distinguishable from one that is balanced on every path.
//!
//! Closure bodies are lowered as *separate* pseudo-functions
//! (`outer::closure#k`): a closure handed to `thread::spawn` runs on
//! another thread, so its acquisitions must not appear on the
//! spawning function's timeline — but they still join the workspace
//! acquisition graph under their own name.

use crate::ast::{self, Block, Expr, ExprKind, FnItem, ParsedFile, Stmt};
use crate::domain::{AExpr, Cmp, CmpOp};

/// One call site, flattened for pattern matching.
#[derive(Clone, Debug)]
pub struct CallInfo {
    /// Method name, or the last segment of the callee path.
    pub name: String,
    /// Flattened receiver (`self.inner.borrow_mut().pool`), methods only.
    pub recv: Option<String>,
    /// Flattened arguments (references/try transparent).
    pub args: Vec<String>,
    pub is_method: bool,
    /// Code-token index for diagnostics.
    pub ci: u32,
}

/// Why control leaves the function at an [`Step::Exit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitKind {
    Return,
    /// The error path of a `?`.
    Question,
    /// Falling off the end of the body.
    End,
}

#[derive(Clone, Debug)]
pub enum Step {
    Call(CallInfo),
    /// `Name { … }` construction (RAII ownership transfer points).
    StructLit {
        name: String,
        ci: u32,
    },
    /// `let name = …` — binds the immediately preceding value.
    Bind {
        name: String,
    },
    /// A `let`-bound name going out of scope.
    DropName(String),
    /// Statement boundary: unbound temporaries die here.
    StmtEnd,
    /// Control leaves the function after this step.
    Exit {
        kind: ExitKind,
        ci: u32,
    },
    /// `name = rhs` (from a `let` or an assignment) with the
    /// right-hand side lowered for abstract evaluation.
    Assign {
        name: String,
        rhs: AExpr,
        ci: u32,
    },
    /// A comparison known true on this edge: branch conditions,
    /// `assert!`/`debug_assert!` bodies, loop-iteration facts.
    Assume(Cmp),
    /// `base.as_ptr().add(offset)`-shaped pointer arithmetic — a
    /// provenance claim site for the unsafe-bounds rule. `deref` is
    /// set when the result is immediately dereferenced (`*p.add(i)`),
    /// which strengthens the claim from `offset ≤ len` to
    /// `offset < len`.
    PtrAdd {
        base: String,
        offset: AExpr,
        ci: u32,
        deref: bool,
    },
    /// `base.get_unchecked(index)` — an in-bounds claim site.
    UncheckedIndex {
        base: String,
        index: AExpr,
        ci: u32,
    },
}

#[derive(Debug, Default)]
pub struct BasicBlock {
    pub steps: Vec<Step>,
    pub succs: Vec<usize>,
}

/// One function (or closure) lowered to a CFG.
#[derive(Debug)]
pub struct FnCfg {
    /// `Owner::name` (owner empty at top level), closures suffixed
    /// `::closure#k`.
    pub qual_name: String,
    /// Bare fn name (last component before any closure suffix).
    pub fn_name: String,
    /// Code index of the body's opening token (test-region checks).
    pub body_lo: u32,
    pub blocks: Vec<BasicBlock>,
    pub entry: usize,
    pub exit: usize,
}

/// Lowers every fn (and closure) in a parsed file.
pub fn lower_file(file: &ParsedFile) -> Vec<FnCfg> {
    let mut out = Vec::new();
    for (owner, f) in file.fns() {
        lower_fn(owner, f, &mut out);
    }
    out
}

fn lower_fn(owner: &str, f: &FnItem, out: &mut Vec<FnCfg>) {
    let Some(body) = &f.body else { return };
    let qual = if owner.is_empty() { f.name.clone() } else { format!("{owner}::{}", f.name) };
    let mut b = Builder::new(qual.clone(), f.name.clone(), body.span.lo);
    b.lower_block(body);
    let end_ci = body.span.hi.saturating_sub(1);
    b.push(Step::Exit { kind: ExitKind::End, ci: end_ci });
    b.edge_to_exit();
    let closures = std::mem::take(&mut b.closures);
    out.push(b.finish());
    for (k, c) in closures.iter().enumerate() {
        let mut cb = Builder::new(format!("{qual}::closure#{k}"), f.name.clone(), c.span.lo);
        cb.lower_expr(c);
        cb.push(Step::Exit { kind: ExitKind::End, ci: c.span.hi.saturating_sub(1) });
        cb.edge_to_exit();
        // Closures nested inside closures surface recursively.
        let nested = std::mem::take(&mut cb.closures);
        out.push(cb.finish());
        for (j, n) in nested.iter().enumerate() {
            let mut nb =
                Builder::new(format!("{qual}::closure#{k}.{j}"), f.name.clone(), n.span.lo);
            nb.lower_expr(n);
            nb.push(Step::Exit { kind: ExitKind::End, ci: n.span.hi.saturating_sub(1) });
            nb.edge_to_exit();
            // Third-level nesting does not occur in this workspace;
            // deeper closures are conservatively dropped.
            out.push(nb.finish());
        }
    }
}

/// Lowers an AST expression to the abstract-arithmetic language the
/// value-range domain evaluates. References, casts, and `?` are
/// transparent; uninterpreted shapes collapse to [`AExpr::Other`]
/// (which evaluates to ⊤ but still renders in messages).
pub fn lower_aexpr(e: &Expr) -> AExpr {
    match &e.kind {
        ExprKind::Lit(Some(v)) => AExpr::Const(*v),
        ExprKind::Path(p) if !p.contains("::") => AExpr::Var(p.clone()),
        ExprKind::Field { .. } => AExpr::Var(ast::flatten(e)),
        ExprKind::Unary { op, expr } => match op.as_str() {
            "!" | "-" => AExpr::Un(op.clone(), Box::new(lower_aexpr(expr))),
            _ => lower_aexpr(expr),
        },
        ExprKind::Cast { expr } | ExprKind::Try { expr } => lower_aexpr(expr),
        ExprKind::Binary { lhs, op, rhs } => {
            AExpr::Bin(op.clone(), Box::new(lower_aexpr(lhs)), Box::new(lower_aexpr(rhs)))
        }
        ExprKind::MethodCall { recv, name, args, .. } => match name.as_str() {
            // Index-transparent: `dims[d].len()` is `Len("dims")` —
            // sound for this workspace's column arrays, which share
            // one padded length per family (DESIGN.md §13).
            "len" if args.is_empty() => AExpr::Len(ast::flatten(recv)),
            "min" | "max" | "saturating_sub" | "saturating_add" if args.len() == 1 => {
                AExpr::Call(name.clone(), vec![lower_aexpr(recv), lower_aexpr(&args[0])])
            }
            _ => AExpr::Other(ast::flatten(e)),
        },
        _ => AExpr::Other(ast::flatten(e)),
    }
}

/// The conjunction of comparisons implied by `e` being true
/// (`&&`-split; anything non-comparison contributes nothing).
pub fn cmps_of(e: &Expr) -> Vec<Cmp> {
    match &e.kind {
        ExprKind::Binary { lhs, op, rhs } if op == "&&" => {
            let mut v = cmps_of(lhs);
            v.extend(cmps_of(rhs));
            v
        }
        ExprKind::Binary { lhs, op, rhs } => match CmpOp::parse(op) {
            Some(cop) => {
                vec![Cmp { lhs: lower_aexpr(lhs), op: cop, rhs: lower_aexpr(rhs), ci: e.span.lo }]
            }
            None => Vec::new(),
        },
        ExprKind::Unary { op, expr } if op == "!" => negate_cmps(expr),
        _ => Vec::new(),
    }
}

/// The conjunction implied by `e` being false (De Morgan over `||`).
pub fn negate_cmps(e: &Expr) -> Vec<Cmp> {
    match &e.kind {
        ExprKind::Binary { lhs, op, rhs } if op == "||" => {
            let mut v = negate_cmps(lhs);
            v.extend(negate_cmps(rhs));
            v
        }
        ExprKind::Binary { lhs, op, rhs } => match CmpOp::parse(op) {
            Some(cop) => vec![Cmp {
                lhs: lower_aexpr(lhs),
                op: cop.negate(),
                rhs: lower_aexpr(rhs),
                ci: e.span.lo,
            }],
            None => Vec::new(),
        },
        ExprKind::Unary { op, expr } if op == "!" => cmps_of(expr),
        _ => Vec::new(),
    }
}

/// Facts each iteration of `for binds in iter` establishes about the
/// loop bindings: range bounds, `enumerate` index bounds,
/// `chunks_exact` chunk lengths. Adapters that only reorder or drop
/// elements (`step_by`, `rev`, `take`, `skip`, `iter`, `iter_mut`,
/// `copied`, `cloned`) are transparent.
fn iter_assumes(binds: &[String], iter: &Expr) -> Vec<Cmp> {
    match &iter.kind {
        ExprKind::Range { lhs, rhs, inclusive } if binds.len() == 1 => {
            let b = AExpr::Var(binds[0].clone());
            let mut v = Vec::new();
            if let Some(l) = lhs {
                v.push(Cmp {
                    lhs: lower_aexpr(l),
                    op: CmpOp::Le,
                    rhs: b.clone(),
                    ci: iter.span.lo,
                });
            }
            if let Some(r) = rhs {
                let op = if *inclusive { CmpOp::Le } else { CmpOp::Lt };
                v.push(Cmp { lhs: b, op, rhs: lower_aexpr(r), ci: iter.span.lo });
            }
            v
        }
        ExprKind::MethodCall { recv, name, args, .. } => match name.as_str() {
            "enumerate" if binds.len() == 2 => vec![Cmp {
                lhs: AExpr::Var(binds[0].clone()),
                op: CmpOp::Lt,
                rhs: AExpr::Len(ast::flatten(recv)),
                ci: iter.span.lo,
            }],
            "chunks_exact" if binds.len() == 1 && args.len() == 1 => vec![Cmp {
                lhs: AExpr::Len(binds[0].clone()),
                op: CmpOp::Eq,
                rhs: lower_aexpr(&args[0]),
                ci: iter.span.lo,
            }],
            "step_by" | "rev" | "take" | "skip" | "iter" | "iter_mut" | "copied" | "cloned" => {
                iter_assumes(binds, recv)
            }
            _ => Vec::new(),
        },
        _ => Vec::new(),
    }
}

/// The collection a pointer method chain is rooted in:
/// `xs.as_ptr().add(i)` → `Some("xs")`. Plain pointer locals return
/// `None` — without provenance there is nothing to bound against.
fn ptr_base(recv: &Expr) -> Option<String> {
    match &recv.kind {
        ExprKind::Unary { expr, .. } | ExprKind::Cast { expr } | ExprKind::Try { expr } => {
            ptr_base(expr)
        }
        ExprKind::MethodCall { recv, name, .. } if name == "as_ptr" || name == "as_mut_ptr" => {
            Some(ast::flatten(recv))
        }
        _ => None,
    }
}

/// The tracked name an assignment writes through, when determinable.
fn assign_target(lhs: &Expr) -> Option<String> {
    match &lhs.kind {
        ExprKind::Path(p) if !p.contains("::") => Some(p.clone()),
        ExprKind::Field { .. } | ExprKind::Index { .. } => Some(ast::flatten(lhs)),
        ExprKind::Unary { op, expr } if op == "*" => assign_target(expr),
        _ => None,
    }
}

struct Builder<'e> {
    qual_name: String,
    fn_name: String,
    body_lo: u32,
    blocks: Vec<BasicBlock>,
    cur: usize,
    exit: usize,
    /// (continue_target, break_target, scope_depth_at_entry) stack.
    loops: Vec<(usize, usize, usize)>,
    /// Per-lexical-scope `let` bindings, for scope-end drops.
    scopes: Vec<Vec<String>>,
    /// Closure bodies to lower as separate pseudo-fns.
    closures: Vec<&'e Expr>,
}

impl<'e> Builder<'e> {
    fn new(qual_name: String, fn_name: String, body_lo: u32) -> Self {
        // Block 0: entry; block 1: exit.
        let blocks = vec![BasicBlock::default(), BasicBlock::default()];
        Builder {
            qual_name,
            fn_name,
            body_lo,
            blocks,
            cur: 0,
            exit: 1,
            loops: Vec::new(),
            scopes: Vec::new(),
            closures: Vec::new(),
        }
    }

    fn finish(self) -> FnCfg {
        FnCfg {
            qual_name: self.qual_name,
            fn_name: self.fn_name,
            body_lo: self.body_lo,
            blocks: self.blocks,
            entry: 0,
            exit: self.exit,
        }
    }

    fn push(&mut self, step: Step) {
        let cur = self.cur;
        self.blocks[cur].steps.push(step);
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn edge_to_exit(&mut self) {
        let (cur, exit) = (self.cur, self.exit);
        self.add_edge(cur, exit);
    }

    /// Emits `DropName`s for every binding in scopes deeper than
    /// `depth` — what a `break`/`continue` pops on its way out of the
    /// loop. The scopes themselves stay: the fall-through path still
    /// drops at each scope's lexical end.
    fn drop_scopes_from(&mut self, depth: usize) {
        let names: Vec<String> =
            self.scopes[depth..].iter().rev().flat_map(|s| s.iter().rev().cloned()).collect();
        for n in names {
            self.push(Step::DropName(n));
        }
    }

    // ---- statements -------------------------------------------------------

    fn lower_block(&mut self, block: &'e Block) {
        self.scopes.push(Vec::new());
        for stmt in &block.stmts {
            self.lower_stmt(stmt);
        }
        let names = self.scopes.pop().unwrap_or_default();
        for name in names.into_iter().rev() {
            self.push(Step::DropName(name));
        }
    }

    fn lower_stmt(&mut self, stmt: &'e Stmt) {
        match stmt {
            Stmt::Empty | Stmt::Item(_) => {}
            Stmt::Expr { expr, .. } => {
                self.lower_expr(expr);
                self.push(Step::StmtEnd);
            }
            Stmt::Let { name, init, els, .. } => {
                if let Some(init) = init {
                    self.lower_expr(init);
                }
                if let Some(els) = els {
                    // `let … else { diverging }`: refutable branch.
                    let else_entry = self.new_block();
                    let cont = self.new_block();
                    let cur = self.cur;
                    self.add_edge(cur, else_entry);
                    self.add_edge(cur, cont);
                    self.cur = else_entry;
                    self.lower_block(els);
                    // The else block must diverge; any return/break it
                    // contains has already routed its edges.
                    self.cur = cont;
                }
                if let Some(name) = name {
                    self.push(Step::Bind { name: name.clone() });
                    if let Some(init) = init {
                        self.push(Step::Assign {
                            name: name.clone(),
                            rhs: lower_aexpr(init),
                            ci: init.span.lo,
                        });
                    }
                    if let Some(scope) = self.scopes.last_mut() {
                        scope.push(name.clone());
                    }
                }
                self.push(Step::StmtEnd);
            }
        }
    }

    // ---- expressions ------------------------------------------------------

    fn lower_expr(&mut self, e: &'e Expr) {
        match &e.kind {
            ExprKind::Path(_) | ExprKind::Lit(_) => {}
            ExprKind::Continue => {
                if let Some(&(cont, _, depth)) = self.loops.last() {
                    self.drop_scopes_from(depth);
                    let cur = self.cur;
                    self.add_edge(cur, cont);
                }
                self.cur = self.new_block();
            }
            ExprKind::Call { callee, args } => {
                self.lower_expr(callee);
                for a in args {
                    self.lower_expr(a);
                }
                let flat = ast::flatten(callee);
                let name = ast::last_segment(&flat).to_string();
                let info = CallInfo {
                    name,
                    recv: None,
                    args: args.iter().map(ast::flatten).collect(),
                    is_method: false,
                    ci: e.span.lo,
                };
                self.push(Step::Call(info));
            }
            ExprKind::MethodCall { recv, name, name_ci, args } => {
                self.lower_expr(recv);
                for a in args {
                    self.lower_expr(a);
                }
                let info = CallInfo {
                    name: name.clone(),
                    recv: Some(ast::flatten(recv)),
                    args: args.iter().map(ast::flatten).collect(),
                    is_method: true,
                    ci: *name_ci,
                };
                self.push(Step::Call(info));
                match name.as_str() {
                    "add" | "offset" | "wrapping_add" if args.len() == 1 => {
                        if let Some(base) = ptr_base(recv) {
                            self.push(Step::PtrAdd {
                                base,
                                offset: lower_aexpr(&args[0]),
                                ci: *name_ci,
                                deref: false,
                            });
                        }
                    }
                    "get_unchecked" | "get_unchecked_mut" if args.len() == 1 => {
                        self.push(Step::UncheckedIndex {
                            base: ast::flatten(recv),
                            index: lower_aexpr(&args[0]),
                            ci: *name_ci,
                        });
                    }
                    _ => {}
                }
            }
            ExprKind::Field { recv, .. } => self.lower_expr(recv),
            ExprKind::Index { recv, index } => {
                self.lower_expr(recv);
                self.lower_expr(index);
            }
            ExprKind::Unary { op, expr } => {
                self.lower_expr(expr);
                if op == "*" {
                    // `*p.add(i)` actually reads the lane: the pending
                    // pointer-arithmetic claim must be strict.
                    let cur = self.cur;
                    if let Some(Step::PtrAdd { deref, .. }) = self.blocks[cur].steps.last_mut() {
                        *deref = true;
                    }
                }
            }
            ExprKind::Cast { expr } => self.lower_expr(expr),
            ExprKind::Try { expr } => {
                self.lower_expr(expr);
                let err = self.new_block();
                let cont = self.new_block();
                let cur = self.cur;
                self.add_edge(cur, err);
                self.add_edge(cur, cont);
                self.cur = err;
                self.push(Step::Exit { kind: ExitKind::Question, ci: e.span.hi.saturating_sub(1) });
                self.edge_to_exit();
                self.cur = cont;
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                self.lower_expr(lhs);
                self.lower_expr(rhs);
            }
            ExprKind::Assign { lhs, rhs, op } => {
                self.lower_expr(rhs);
                self.lower_expr(lhs);
                if let Some(name) = assign_target(lhs) {
                    let value = lower_aexpr(rhs);
                    let value = if op.is_empty() {
                        value
                    } else {
                        // `x += e` reads the old value: `x = x op e`.
                        AExpr::Bin(op.clone(), Box::new(AExpr::Var(name.clone())), Box::new(value))
                    };
                    self.push(Step::Assign { name, rhs: value, ci: e.span.lo });
                }
            }
            ExprKind::Range { lhs, rhs, .. } => {
                if let Some(l) = lhs {
                    self.lower_expr(l);
                }
                if let Some(r) = rhs {
                    self.lower_expr(r);
                }
            }
            ExprKind::Return(inner) => {
                if let Some(inner) = inner {
                    self.lower_expr(inner);
                }
                self.push(Step::Exit { kind: ExitKind::Return, ci: e.span.lo });
                self.edge_to_exit();
                self.cur = self.new_block();
            }
            ExprKind::Break(inner) => {
                if let Some(inner) = inner {
                    self.lower_expr(inner);
                }
                if let Some(&(_, brk, depth)) = self.loops.last() {
                    self.drop_scopes_from(depth);
                    let cur = self.cur;
                    self.add_edge(cur, brk);
                }
                self.cur = self.new_block();
            }
            ExprKind::If { cond, binds, then, els } => {
                self.lower_expr(cond);
                let cond_block = self.cur;
                let then_entry = self.new_block();
                let join = self.new_block();
                self.add_edge(cond_block, then_entry);
                self.cur = then_entry;
                // `if let` conditions carry no comparison semantics.
                let (pos, negs) = if binds.is_empty() {
                    (cmps_of(cond), negate_cmps(cond))
                } else {
                    (Vec::new(), Vec::new())
                };
                for c in pos {
                    self.push(Step::Assume(c));
                }
                for b in binds {
                    self.push(Step::Bind { name: b.clone() });
                }
                self.lower_block(then);
                let cur = self.cur;
                self.add_edge(cur, join);
                if let Some(els) = els {
                    let else_entry = self.new_block();
                    self.add_edge(cond_block, else_entry);
                    self.cur = else_entry;
                    for c in negs {
                        self.push(Step::Assume(c));
                    }
                    self.lower_expr(els);
                    let cur = self.cur;
                    self.add_edge(cur, join);
                } else if negs.is_empty() {
                    self.add_edge(cond_block, join);
                } else {
                    // Dedicated fall-through block so the negated
                    // condition holds on the no-else path.
                    let neg_block = self.new_block();
                    self.add_edge(cond_block, neg_block);
                    self.cur = neg_block;
                    for c in negs {
                        self.push(Step::Assume(c));
                    }
                    self.add_edge(neg_block, join);
                }
                self.cur = join;
            }
            ExprKind::Match { scrut, arms } => {
                self.lower_expr(scrut);
                let scrut_block = self.cur;
                let join = self.new_block();
                if arms.is_empty() {
                    self.add_edge(scrut_block, join);
                }
                for arm in arms {
                    let entry = self.new_block();
                    self.add_edge(scrut_block, entry);
                    self.cur = entry;
                    for b in &arm.binds {
                        self.push(Step::Bind { name: b.clone() });
                    }
                    self.lower_expr(&arm.body);
                    self.push(Step::StmtEnd);
                    let cur = self.cur;
                    self.add_edge(cur, join);
                }
                self.cur = join;
            }
            ExprKind::While { cond, body } => {
                let header = self.new_block();
                let cur = self.cur;
                self.add_edge(cur, header);
                self.cur = header;
                self.lower_expr(cond);
                let cond_block = self.cur;
                let body_entry = self.new_block();
                let after = self.new_block();
                self.add_edge(cond_block, body_entry);
                let negs = negate_cmps(cond);
                if negs.is_empty() {
                    self.add_edge(cond_block, after);
                } else {
                    // A dedicated block keeps the negated condition off
                    // the `break` edges, which also land on `after`.
                    let neg_block = self.new_block();
                    self.add_edge(cond_block, neg_block);
                    self.cur = neg_block;
                    for c in negs {
                        self.push(Step::Assume(c));
                    }
                    self.add_edge(neg_block, after);
                }
                self.loops.push((header, after, self.scopes.len()));
                self.cur = body_entry;
                for c in cmps_of(cond) {
                    self.push(Step::Assume(c));
                }
                self.lower_block(body);
                let cur = self.cur;
                self.add_edge(cur, header);
                self.loops.pop();
                self.cur = after;
            }
            ExprKind::Loop { body } => {
                let header = self.new_block();
                let cur = self.cur;
                self.add_edge(cur, header);
                let after = self.new_block();
                self.loops.push((header, after, self.scopes.len()));
                self.cur = header;
                self.lower_block(body);
                let cur = self.cur;
                self.add_edge(cur, header);
                self.loops.pop();
                self.cur = after;
            }
            ExprKind::For { binds, iter, body } => {
                self.lower_expr(iter);
                let iter_block = self.cur;
                let header = self.new_block();
                let after = self.new_block();
                self.add_edge(iter_block, header);
                self.add_edge(iter_block, after);
                self.loops.push((header, after, self.scopes.len()));
                self.cur = header;
                for b in binds {
                    self.push(Step::Bind { name: b.clone() });
                }
                for c in iter_assumes(binds, iter) {
                    self.push(Step::Assume(c));
                }
                self.lower_block(body);
                let cur = self.cur;
                self.add_edge(cur, header);
                self.add_edge(cur, after);
                self.loops.pop();
                self.cur = after;
            }
            ExprKind::BlockExpr(b) => self.lower_block(b),
            ExprKind::Closure { body } => {
                self.closures.push(body);
            }
            ExprKind::Macro { path, args } => {
                for a in args {
                    self.lower_expr(a);
                }
                // Assertions are assumptions downstream of the macro:
                // control only continues when the condition held.
                // `debug_assert!` is trusted by design — it states the
                // invariant, and debug builds check it (DESIGN.md §13).
                match ast::last_segment(path) {
                    "assert" | "debug_assert" => {
                        if let Some(c0) = args.first() {
                            for c in cmps_of(c0) {
                                self.push(Step::Assume(c));
                            }
                        }
                    }
                    "assert_eq" | "debug_assert_eq" => {
                        if let [a, b, ..] = args.as_slice() {
                            self.push(Step::Assume(Cmp {
                                lhs: lower_aexpr(a),
                                op: CmpOp::Eq,
                                rhs: lower_aexpr(b),
                                ci: e.span.lo,
                            }));
                        }
                    }
                    _ => {}
                }
            }
            ExprKind::StructLit { path, path_ci, fields } => {
                for f in fields {
                    self.lower_expr(f);
                }
                self.push(Step::StructLit { name: path.clone(), ci: *path_ci });
            }
            ExprKind::Tuple(parts) | ExprKind::Array(parts) => {
                for p in parts {
                    self.lower_expr(p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{CrateKind, FileCtx, FileRole};
    use crate::lexer::lex;

    fn cfgs(src: &str) -> Vec<FnCfg> {
        let toks = lex(src);
        let ctx = FileCtx::new("t.rs", CrateKind::Library, FileRole::Src, &toks);
        let parsed = ast::parse(&ctx);
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        lower_file(&parsed)
    }

    fn all_steps(cfg: &FnCfg) -> Vec<&Step> {
        cfg.blocks.iter().flat_map(|b| b.steps.iter()).collect()
    }

    #[test]
    fn question_mark_creates_error_exit_edge() {
        let v = cfgs("fn f(s: &S) -> Result<(), E> { s.pool.pin(p); s.io.read(p)?; s.pool.unpin(p); Ok(()) }");
        assert_eq!(v.len(), 1);
        let steps = all_steps(&v[0]);
        let exits: Vec<_> = steps
            .iter()
            .filter_map(|s| match s {
                Step::Exit { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert!(exits.contains(&ExitKind::Question));
        assert!(exits.contains(&ExitKind::End));
    }

    #[test]
    fn closure_becomes_pseudo_fn() {
        let v = cfgs("fn f() { spawn(move || { work(); }); }");
        assert_eq!(v.len(), 2);
        assert!(v[1].qual_name.ends_with("::closure#0"));
        let names: Vec<_> = all_steps(&v[1])
            .iter()
            .filter_map(|s| match s {
                Step::Call(c) => Some(c.name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, ["work"]);
    }

    #[test]
    fn let_bind_and_scope_drop() {
        let v = cfgs("fn f(s: &S) { let g = s.node(p); use_it(&g); }");
        let steps = all_steps(&v[0]);
        let has_bind = steps.iter().any(|s| matches!(s, Step::Bind { name } if name == "g"));
        let has_drop = steps.iter().any(|s| matches!(s, Step::DropName(n) if n == "g"));
        assert!(has_bind && has_drop);
    }

    #[test]
    fn branches_join() {
        let v = cfgs("fn f(x: bool) -> u32 { if x { one() } else { two() } }");
        let cfg = &v[0];
        // Both call sites must be in different blocks reaching the exit.
        let call_blocks: Vec<usize> = cfg
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.steps.iter().any(|s| matches!(s, Step::Call(_))))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(call_blocks.len(), 2);
    }
}
