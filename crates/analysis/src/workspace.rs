//! Workspace discovery and file classification.
//!
//! Walks every `.rs` file under the workspace root (skipping `target/`,
//! VCS metadata, and the linter's own fixture corpus), classifies each
//! by crate kind and file role, and runs the rule set over it. The walk
//! is sorted so output order — and therefore CI logs and golden tests —
//! is deterministic.

use std::fs;
use std::path::{Path, PathBuf};

use crate::context::{CrateKind, FileCtx, FileRole};
use crate::lexer::lex;
use crate::rules::{run_all, run_rules, FileReport};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "results", "fixtures"];

/// One analyzed file.
#[derive(Debug)]
pub struct AnalyzedFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    pub report: FileReport,
}

/// Whole-workspace result.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub files: Vec<AnalyzedFile>,
}

impl WorkspaceReport {
    /// Total unsuppressed findings.
    pub fn unsuppressed(&self) -> usize {
        self.files.iter().map(|f| f.report.diagnostics.len()).sum()
    }

    /// Total findings absorbed by inline suppressions.
    pub fn suppressed(&self) -> usize {
        self.files.iter().map(|f| f.report.suppressed).sum()
    }
}

/// Finds the workspace root at or above `start`: the nearest directory
/// whose `Cargo.toml` declares `[workspace]`.
///
/// # Errors
/// Returns a message when no ancestor of `start` is a workspace root.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    Err(format!("no workspace root found at or above {}", start.display()))
}

/// Classifies a workspace-relative path into crate kind, or `None` for
/// files the linter does not analyze.
pub fn classify(rel: &str) -> Option<CrateKind> {
    let first = rel.split('/').next().unwrap_or("");
    match first {
        "crates" => {
            let name = rel.split('/').nth(1).unwrap_or("");
            Some(match name {
                "cli" => CrateKind::Binary,
                "bench" => CrateKind::Bench,
                _ => CrateKind::Library,
            })
        }
        "shims" => Some(CrateKind::Shim),
        // Umbrella crate sources and its integration tests/examples.
        "src" | "tests" | "examples" => Some(CrateKind::Library),
        _ => None,
    }
}

/// Harness files: not shipped as library/binary source.
pub fn role_of(rel: &str) -> FileRole {
    let harness = rel
        .split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples" | "bin" | "build.rs"));
    if harness {
        FileRole::Harness
    } else {
        FileRole::Src
    }
}

/// Analyzes one source text under an explicit classification. This is
/// the seam the fixture tests drive directly.
pub fn analyze_source(rel_path: &str, source: &str, kind: CrateKind, role: FileRole) -> FileReport {
    let tokens = lex(source);
    let ctx = FileCtx::new(rel_path, kind, role, &tokens);
    run_rules(&ctx)
}

/// Walks and analyzes the whole workspace rooted at `root`.
///
/// # Errors
/// Returns a message when the walk or a file read fails (other than
/// individual files racing deletion, which are skipped).
pub fn analyze_workspace(root: &Path) -> Result<WorkspaceReport, String> {
    let mut rs_files = Vec::new();
    collect_rs_files(root, root, &mut rs_files)?;
    rs_files.sort();

    // Materialize every file first: workspace-level rules (call
    // summaries, the lock acquisition graph) need all contexts at once.
    let mut meta: Vec<(String, CrateKind, FileRole)> = Vec::new();
    let mut token_sets = Vec::new();
    for rel in rs_files {
        let Some(kind) = classify(&rel) else { continue };
        let role = role_of(&rel);
        let source =
            fs::read_to_string(root.join(&rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        token_sets.push(lex(&source));
        meta.push((rel, kind, role));
    }
    let ctxs: Vec<FileCtx> = meta
        .iter()
        .zip(&token_sets)
        .map(|((rel, kind, role), toks)| FileCtx::new(rel, *kind, *role, toks))
        .collect();
    let reports = run_all(&ctxs);
    drop(ctxs);

    let mut report = WorkspaceReport::default();
    for ((rel, _, _), file_report) in meta.into_iter().zip(reports) {
        report.files.push(AnalyzedFile { rel_path: rel, report: file_report });
    }
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walking {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}
