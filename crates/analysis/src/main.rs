//! `csj-lint` — the workspace static-analysis pass.
//!
//! ```text
//! csj-lint [--root <dir>] [--format text|json|sarif]
//! csj-lint --explain <rule>
//! csj-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.

// The report IS the product of this binary; printing it is the point.
#![allow(clippy::print_stdout)]

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use csj_analysis::report::{render_json, render_sarif, render_text};
use csj_analysis::{all_rules, analyze_workspace, find_workspace_root, rule_by_name};

enum Format {
    Text,
    Json,
    Sarif,
}

struct Opts {
    root: Option<PathBuf>,
    format: Format,
    explain: Option<String>,
    list_rules: bool,
}

const USAGE: &str = "\
csj-lint — static analysis for the compact-similarity-joins workspace

USAGE:
    csj-lint [--root <dir>] [--format text|json|sarif]
    csj-lint --explain <rule>
    csj-lint --list-rules

`--format sarif` emits SARIF 2.1.0 for GitHub code-scanning upload.

The workspace root is auto-detected from the current directory when
--root is omitted. Exit codes: 0 clean, 1 unsuppressed findings,
2 usage/I-O error.";

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts { root: None, format: Format::Text, explain: None, list_rules: false };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a value")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                Some("sarif") => opts.format = Format::Sarif,
                other => return Err(format!("--format expects text|json|sarif, got {other:?}")),
            },
            "--explain" => {
                let v = it.next().ok_or("--explain needs a rule name")?;
                opts.explain = Some(v.clone());
            }
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Writes to stdout, ignoring broken pipes (`csj-lint | head` must not
/// panic); any other write failure is ignored too — there is nothing
/// useful to do about a dead stdout, and the exit code still reports
/// the findings.
fn emit(s: &str) {
    let _ = std::io::stdout().write_all(s.as_bytes());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                emit(&format!("{USAGE}\n"));
                return ExitCode::SUCCESS;
            }
            eprintln!("csj-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in all_rules() {
            emit(&format!("{:<20} {}\n", rule.name, rule.summary));
        }
        return ExitCode::SUCCESS;
    }
    if let Some(name) = &opts.explain {
        return match rule_by_name(name) {
            Some(rule) => {
                emit(&format!("{}\n", rule.explain));
                ExitCode::SUCCESS
            }
            None => {
                let known: Vec<&str> = all_rules().iter().map(|r| r.name).collect();
                eprintln!("csj-lint: unknown rule `{name}` (known: {})", known.join(", "));
                ExitCode::from(2)
            }
        };
    }

    let start = opts.root.clone().unwrap_or_else(|| PathBuf::from("."));
    let root = match find_workspace_root(&start) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("csj-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("csj-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    match opts.format {
        Format::Text => emit(&render_text(&report)),
        Format::Json => emit(&render_json(&report)),
        Format::Sarif => emit(&render_sarif(&report)),
    }
    if report.unsuppressed() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
