//! `csj-analysis` — dependency-free static analysis for the
//! compact-similarity-joins workspace (bin: `csj-lint`).
//!
//! The join engine's hardest guarantees are *conventions*: the
//! work-stealing scheduler's atomic-ordering choices, the bit-identical
//! float comparisons shared by the scalar and batched distance kernels,
//! and the task-key-ordered merge that keeps parallel output identical
//! at any thread count (DESIGN.md §7a, §8). This crate turns those
//! conventions into machine-checked rules:
//!
//! | rule | enforces |
//! |------|----------|
//! | `panic-safety` | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in shipped code |
//! | `atomics-discipline` | non-SeqCst orderings carry an `// ORDERING:` justification |
//! | `float-discipline` | float `==`/`!=` in `csj-geom`/`csj-core` carries `// FLOAT-EQ:` |
//! | `determinism` | no clock/RNG in the merge/output modules |
//! | `error-hygiene` | `pub fn … -> Result` documents an `# Errors` section |
//! | `sync-facade` | csj-core imports sync primitives via `crate::sync`, keeping them model-checkable |
//! | `unsafe-discipline` | every `unsafe` block carries a `// SAFETY:` justification |
//! | `guard-discipline` | buffer-pool pins and RAII guards balance on every CFG path |
//! | `lock-order` | mutex/`RefCell` acquisition order stays acyclic workspace-wide |
//! | `io-under-lock` | no disk I/O reachable while a pool borrow or facade lock is held |
//! | `unsafe-bounds` | raw loads are machine-discharged against value-range analysis or carry checked `BOUNDS` obligations |
//! | `padding-invariant` | SoA slabs keep 4-lane padded lengths, `+inf` sentinels, finite-ε probes |
//!
//! The last two rules run on the abstract-interpretation layer
//! ([`domain`] + [`dataflow::env_in_states`]): intervals with
//! congruence (multiple-of) information, symbolic lengths, and linear
//! facts harvested from dominating guards (DESIGN.md §13). A
//! discharged claim is reported as a SARIF `pass` note whose
//! `relatedLocations` point at the discharging guard.
//!
//! Findings are suppressible inline with a mandatory reason:
//! `// csj-lint: allow(<rule>) — <reason>`. See DESIGN.md §8 for the
//! full annotation grammar and how to add a rule.
//!
//! Everything is hand-rolled — lexer ([`lexer`]), rule engine
//! ([`rules`]), JSON rendering ([`report`]) — because the build
//! environment is offline: no `syn`, no `serde`, no `walkdir`.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod ast;
pub mod cfg;
pub mod context;
pub mod dataflow;
pub mod domain;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use context::{Annotation, CrateKind, FileCtx, FileRole};
pub use rules::{all_rules, rule_by_name, Diagnostic, FileReport, META_RULE};
pub use workspace::{analyze_source, analyze_workspace, find_workspace_root, WorkspaceReport};
