//! Per-file analysis context: everything the rules need beyond the raw
//! token stream.
//!
//! * **Crate classification** — which workspace crate a file belongs to
//!   and what kind of crate that is ([`CrateKind`]), plus whether the
//!   file is shipped source or test/bench/example harness code
//!   ([`FileRole`]). Rules scope themselves with these.
//! * **Test regions** — a brace-tracking scan that marks every token
//!   inside a `#[cfg(test)]`-gated item or `#[test]` function, so rules
//!   can exempt test code without a parser.
//! * **Annotations** — `// ORDERING: …`, `// FLOAT-EQ: …` and
//!   `// SAFETY: …` justification comments, resolved to the code line
//!   they cover.
//! * **Suppressions** — `// csj-lint: allow(<rules>) — <reason>`
//!   comments; the reason is mandatory and a missing one is itself a
//!   diagnostic (see [`crate::rules`]).
//!
//! A comment that shares a line with code covers that line; a comment
//! on a line of its own covers the next line that contains code.

use std::collections::{HashMap, HashSet};

use crate::lexer::{TokKind, Token};

/// What kind of workspace member a file belongs to. Rules use this to
/// scope themselves (e.g. panic-safety applies to `Library` and
/// `Binary`, never to `Bench` or `Shim`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrateKind {
    /// A library crate whose API discipline we enforce end to end
    /// (`csj-geom`, `csj-index`, `csj-storage`, `csj-core`, `csj-data`,
    /// `csj-analysis`, and the umbrella crate).
    Library,
    /// The CLI binary: panic-discipline applies, API doc rules do not.
    Binary,
    /// The bench harness: exempt from panic- and doc-discipline.
    Bench,
    /// Vendored offline stand-ins under `shims/`: scanned for atomics
    /// and suppression hygiene only.
    Shim,
}

/// Whether a file is shipped source or test/bench/example harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileRole {
    /// Compiled into the crate proper (`src/**`, minus `src/bin`).
    Src,
    /// Integration tests, benches, examples, fixtures, binaries under
    /// `src/bin/`, and `build.rs`.
    Harness,
}

/// The justification-comment vocabulary rules can demand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Annotation {
    /// `// ORDERING: <why this memory ordering is sufficient>`
    Ordering,
    /// `// FLOAT-EQ: <why bitwise float equality is deliberate>`
    FloatEq,
    /// `// SAFETY: <why this unsafe block's preconditions hold>`
    Safety,
}

/// A parsed `csj-lint: allow(...)` comment.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Rule names inside `allow(...)`, verbatim.
    pub rules: Vec<String>,
    /// The code line this suppression covers.
    pub covers_line: u32,
    /// Line the comment itself sits on (for reporting).
    pub at_line: u32,
    /// Justification text after the rule list; empty means invalid.
    pub reason: String,
}

/// Everything rules see for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    pub kind: CrateKind,
    pub role: FileRole,
    /// Full token stream, comments included.
    pub tokens: &'a [Token],
    /// Indices into `tokens` of the non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Parallel to `tokens`: true when the token sits inside a
    /// `#[cfg(test)]` / `#[test]` region.
    pub in_test: Vec<bool>,
    annotations: HashMap<u32, HashSet<Annotation>>,
    /// Machine-parsed `// SAFETY: BOUNDS(<expr>)` obligations, keyed by
    /// the code line they cover. Each entry is the text inside one
    /// `BOUNDS(…)` group; a SAFETY comment may carry several.
    pub bounds: HashMap<u32, Vec<String>>,
    /// Parsed suppressions (valid and invalid alike).
    pub suppressions: Vec<Suppression>,
}

impl<'a> FileCtx<'a> {
    /// Builds the context for one file's token stream.
    pub fn new(rel_path: &'a str, kind: CrateKind, role: FileRole, tokens: &'a [Token]) -> Self {
        let code: Vec<usize> =
            tokens.iter().enumerate().filter(|(_, t)| !t.is_comment()).map(|(i, _)| i).collect();
        let in_test = mark_test_regions(tokens);
        let code_lines: Vec<u32> = {
            let mut lines: Vec<u32> = code.iter().map(|&i| tokens[i].line).collect();
            lines.dedup();
            lines
        };
        let mut annotations: HashMap<u32, HashSet<Annotation>> = HashMap::new();
        let mut bounds: HashMap<u32, Vec<String>> = HashMap::new();
        let mut suppressions = Vec::new();
        for t in tokens.iter().filter(|t| t.is_comment()) {
            // Doc comments never carry annotations or suppressions —
            // they *describe* the grammar (as this crate's own docs do)
            // rather than use it.
            if ["///", "//!", "/**", "/*!"].iter().any(|p| t.text.starts_with(p)) {
                continue;
            }
            let covers = effective_line(&code_lines, t.line);
            for (marker, ann) in [
                ("ORDERING:", Annotation::Ordering),
                ("FLOAT-EQ:", Annotation::FloatEq),
                ("SAFETY:", Annotation::Safety),
            ] {
                if let Some(rest) = find_after(&t.text, marker) {
                    // An empty justification does not count.
                    if !rest.trim().is_empty() {
                        annotations.entry(covers).or_default().insert(ann);
                    }
                    if ann == Annotation::Safety {
                        bounds.entry(covers).or_default().extend(parse_bounds(rest));
                    }
                }
            }
            if let Some(rest) = find_after(&t.text, "csj-lint:") {
                if let Some(s) = parse_allow(rest, t.line, covers) {
                    suppressions.push(s);
                }
            }
        }
        FileCtx { rel_path, kind, role, tokens, code, in_test, annotations, bounds, suppressions }
    }

    /// The code token at code-index `ci` (indices from [`FileCtx::code`]).
    pub fn code_tok(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    /// Text of the code token at code-index `ci`, or `""` out of range
    /// (lets rules look ahead/behind without bounds ceremony).
    pub fn code_text(&self, ci: isize) -> &str {
        if ci < 0 {
            return "";
        }
        match self.code.get(ci as usize) {
            Some(&i) => &self.tokens[i].text,
            None => "",
        }
    }

    /// Kind of the code token at code-index `ci`; `Punct` out of range.
    pub fn code_kind(&self, ci: isize) -> TokKind {
        if ci < 0 {
            return TokKind::Punct;
        }
        match self.code.get(ci as usize) {
            Some(&i) => self.tokens[i].kind,
            None => TokKind::Punct,
        }
    }

    /// True when the code token at code-index `ci` is in a test region.
    pub fn code_in_test(&self, ci: usize) -> bool {
        self.in_test[self.code[ci]]
    }

    /// True when line `line` carries the given justification annotation.
    pub fn annotated(&self, line: u32, ann: Annotation) -> bool {
        self.annotations.get(&line).is_some_and(|set| set.contains(&ann))
    }
}

/// Substring search that returns the text after the needle.
fn find_after<'t>(haystack: &'t str, needle: &str) -> Option<&'t str> {
    haystack.find(needle).map(|i| &haystack[i + needle.len()..])
}

/// Extracts every balanced `BOUNDS(<expr>)` group from a SAFETY
/// comment's tail. The grammar is deliberately tiny: the expression is
/// whatever sits between the balanced parentheses; the unsafe-bounds
/// rule parses it as a Rust comparison and checks it against the
/// dominating guards.
fn parse_bounds(mut rest: &str) -> Vec<String> {
    let mut out = Vec::new();
    while let Some(after) = find_after(rest, "BOUNDS(") {
        let mut depth = 1usize;
        let mut end = None;
        for (i, c) in after.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else { break };
        let expr = after[..end].trim();
        if !expr.is_empty() {
            out.push(expr.to_string());
        }
        rest = &after[end + 1..];
    }
    out
}

/// Parses `allow(rule, rule) — reason` (the `csj-lint:` prefix already
/// stripped). Returns `None` when this is not an allow form at all;
/// a malformed allow comes back with an empty `rules` or `reason` so
/// the suppression meta-rule can report it.
fn parse_allow(rest: &str, at_line: u32, covers_line: u32) -> Option<Suppression> {
    let rest = rest.trim_start();
    let body = find_after(rest, "allow")?.trim_start();
    let Some(inner) = body.strip_prefix('(') else {
        return Some(Suppression {
            rules: Vec::new(),
            covers_line,
            at_line,
            reason: String::new(),
        });
    };
    let Some(close) = inner.find(')') else {
        return Some(Suppression {
            rules: Vec::new(),
            covers_line,
            at_line,
            reason: String::new(),
        });
    };
    let rules: Vec<String> =
        inner[..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    // Reason: whatever follows the close paren, minus separator dashes.
    let reason =
        inner[close + 1..].trim_start().trim_start_matches(['—', '–', '-', ':']).trim().to_string();
    Some(Suppression { rules, covers_line, at_line, reason })
}

/// The code line a comment on `line` covers: its own line when that
/// line has code, else the next line that does.
fn effective_line(code_lines: &[u32], line: u32) -> u32 {
    match code_lines.binary_search(&line) {
        Ok(_) => line,
        Err(pos) => code_lines.get(pos).copied().unwrap_or(line),
    }
}

/// Marks tokens inside `#[cfg(test)]` / `#[test]` regions.
///
/// Brace-tracking state machine: a test-gating attribute arms a pending
/// marker; the next `{` opened at the same brace depth starts a region
/// that ends when the depth returns. A `;` at the same depth (e.g.
/// `#[cfg(test)] use …;`) disarms it. An inner `#![cfg(test)]` gates
/// the whole file.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut depth = 0usize;
    let mut pending: Option<usize> = None; // armed at this depth
    let mut regions: Vec<usize> = Vec::new(); // open region start depths
    let mut whole_file = false;

    let code: Vec<usize> =
        tokens.iter().enumerate().filter(|(_, t)| !t.is_comment()).map(|(i, _)| i).collect();
    let mut k = 0usize;
    while k < code.len() {
        let i = code[k];
        let text = tokens[i].text.as_str();
        match text {
            "{" => {
                if pending == Some(depth) {
                    regions.push(depth);
                    pending = None;
                }
                depth += 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                if regions.last() == Some(&depth) {
                    regions.pop();
                }
            }
            ";" if pending == Some(depth) => {
                pending = None;
            }
            "#" => {
                let inner = tokens
                    .get(code.get(k + 1).copied().unwrap_or(usize::MAX))
                    .map(|t| t.text.as_str())
                    == Some("!");
                let open = k + 1 + usize::from(inner);
                if matches!(code.get(open).map(|&j| tokens[j].text.as_str()), Some("[")) {
                    // Scan the attribute group for its shape.
                    let mut bdepth = 0usize;
                    let mut attr: Vec<&str> = Vec::new();
                    let mut j = open;
                    while j < code.len() {
                        let t = &tokens[code[j]];
                        match t.text.as_str() {
                            "[" => bdepth += 1,
                            "]" => {
                                bdepth = bdepth.saturating_sub(1);
                                if bdepth == 0 {
                                    break;
                                }
                            }
                            _ => attr.push(t.text.as_str()),
                        }
                        j += 1;
                    }
                    // `#[test]` gates; `#[cfg(… test …)]` gates unless the
                    // only `test` is under a `not(…)` (as in
                    // `#[cfg(not(test))]`). `cfg_attr` never gates — it
                    // conditions an attribute, not the item's existence.
                    let negated_test = attr.windows(3).any(|w| w == ["not", "(", "test"]);
                    let plain_test = attr.contains(&"test") && !negated_test;
                    let gates = match attr.first() {
                        Some(&"test") => attr.len() == 1,
                        Some(&"cfg") => plain_test,
                        _ => false,
                    };
                    if gates {
                        if inner {
                            whole_file = true;
                        } else {
                            pending = Some(depth);
                        }
                    }
                    // Mark attribute tokens with the current region state
                    // and skip past the group.
                    let in_region = whole_file || !regions.is_empty();
                    for &idx in &code[k..=j.min(code.len().saturating_sub(1))] {
                        flags[idx] = in_region;
                    }
                    k = j + 1;
                    continue;
                }
            }
            _ => {}
        }
        flags[i] = whole_file || !regions.is_empty();
        k += 1;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_flags(src: &str) -> (Vec<Token>, Vec<bool>) {
        let toks = lex(src);
        let flags = mark_test_regions(&toks);
        (toks, flags)
    }

    fn ident_flag(toks: &[Token], flags: &[bool], name: &str) -> bool {
        toks.iter()
            .zip(flags)
            .find(|(t, _)| t.text == name)
            .map(|(_, f)| *f)
            .unwrap_or_else(|| panic!("ident {name} not found"))
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn inner() { gated(); }\n}\nfn after() {}";
        let (toks, flags) = ctx_flags(src);
        assert!(!ident_flag(&toks, &flags, "live"));
        assert!(ident_flag(&toks, &flags, "gated"));
        assert!(!ident_flag(&toks, &flags, "after"));
    }

    #[test]
    fn test_attribute_gates_one_fn() {
        let src = "#[test]\nfn check() { probe(); }\nfn live() { open(); }";
        let (toks, flags) = ctx_flags(src);
        assert!(ident_flag(&toks, &flags, "probe"));
        assert!(!ident_flag(&toks, &flags, "open"));
    }

    #[test]
    fn cfg_test_use_statement_does_not_gate_following_item() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn live() { open(); }";
        let (toks, flags) = ctx_flags(src);
        assert!(!ident_flag(&toks, &flags, "open"));
    }

    #[test]
    fn non_test_cfg_does_not_gate() {
        let src = "#[cfg(feature = \"x\")]\nfn live() { open(); }";
        let (toks, flags) = ctx_flags(src);
        assert!(!ident_flag(&toks, &flags, "open"));
    }

    #[test]
    fn annotations_cover_same_and_next_code_line() {
        let src = "// ORDERING: advisory counter\nlet a = x.load(o);\nlet b = y.load(o); // FLOAT-EQ: exact\n";
        let toks = lex(src);
        let ctx = FileCtx::new("f.rs", CrateKind::Library, FileRole::Src, &toks);
        assert!(ctx.annotated(2, Annotation::Ordering));
        assert!(ctx.annotated(3, Annotation::FloatEq));
        assert!(!ctx.annotated(3, Annotation::Ordering));
    }

    #[test]
    fn empty_justification_does_not_count() {
        let src = "// ORDERING:\nlet a = x.load(o);\n";
        let toks = lex(src);
        let ctx = FileCtx::new("f.rs", CrateKind::Library, FileRole::Src, &toks);
        assert!(!ctx.annotated(2, Annotation::Ordering));
    }

    #[test]
    fn bounds_obligations_parse_balanced_groups() {
        let src = "// SAFETY: BOUNDS(j + 4 <= xs.len()) and BOUNDS(j % 4 == 0) hold per the loop\nload(xs, j);\n";
        let toks = lex(src);
        let ctx = FileCtx::new("f.rs", CrateKind::Library, FileRole::Src, &toks);
        assert_eq!(
            ctx.bounds.get(&2).map(Vec::as_slice),
            Some(&["j + 4 <= xs.len()".to_string(), "j % 4 == 0".to_string()][..])
        );
        // The SAFETY annotation itself still registers.
        assert!(ctx.annotated(2, Annotation::Safety));
    }

    #[test]
    fn suppression_parsing_with_reason() {
        let src = "// csj-lint: allow(panic-safety, atomics-discipline) — poisoning is fatal\nx.lock();\n";
        let toks = lex(src);
        let ctx = FileCtx::new("f.rs", CrateKind::Library, FileRole::Src, &toks);
        assert_eq!(ctx.suppressions.len(), 1);
        let s = &ctx.suppressions[0];
        assert_eq!(s.rules, ["panic-safety", "atomics-discipline"]);
        assert_eq!(s.covers_line, 2);
        assert_eq!(s.reason, "poisoning is fatal");
    }

    #[test]
    fn suppression_without_reason_is_flagged_as_empty() {
        let src = "// csj-lint: allow(panic-safety)\nx.unwrap();\n";
        let toks = lex(src);
        let ctx = FileCtx::new("f.rs", CrateKind::Library, FileRole::Src, &toks);
        assert_eq!(ctx.suppressions.len(), 1);
        assert!(ctx.suppressions[0].reason.is_empty());
    }
}
