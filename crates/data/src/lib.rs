//! Dataset generators and I/O for the compact-similarity-join experiments.
//!
//! The paper evaluates on four point sets, all normalized to the unit
//! square (§VI):
//!
//! | paper dataset | here |
//! |---|---|
//! | MG County (27K, 2-D road/feature endpoints) | [`roads::mg_county`] — synthetic road network, county profile |
//! | LB County (36K, 2-D) | [`roads::lb_county`] — denser coastal-county profile |
//! | Sierpinski3D (100K, 3-D fractal) | [`sierpinski::pyramid_3d`] — exact reproduction |
//! | Pacific NW (1.5M, 2-D TIGER road segments) | [`roads::pacific_nw`] — metropolitan-scale road network |
//!
//! The two county sets and Pacific NW are *substitutions* (the originals
//! are not redistributable here); the road generator reproduces the
//! property the join algorithms are sensitive to — points concentrated
//! along one-dimensional features with highly non-uniform local density —
//! see DESIGN.md §3. Everything is seeded and deterministic.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod clusters;
pub mod fractal;
pub mod io;
pub mod normalize;
pub mod roads;
pub mod sierpinski;
pub mod uniform;

pub use normalize::normalize_unit_cube;
