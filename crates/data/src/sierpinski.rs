//! Sierpinski fractal point sets (chaos game).
//!
//! The paper's synthetic dataset is "100,000 datapoints from a Sierpinski
//! pyramid (3D)", with smaller/larger draws used for the Experiment 2
//! scalability sweep. The chaos game converges to the attractor
//! geometrically, so after a short burn-in every emitted point lies on
//! the fractal (to fp precision). Fractal data is the classic stress test
//! for similarity joins: the intrinsic dimension is below the embedding
//! dimension, so local density is extremely non-uniform.

use csj_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BURN_IN: usize = 32;

fn chaos_game<const D: usize>(vertices: &[Point<D>], n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = vertices[0];
    for _ in 0..BURN_IN {
        let v = &vertices[rng.random_range(0..vertices.len())];
        current = current.midpoint(v);
    }
    (0..n)
        .map(|_| {
            let v = &vertices[rng.random_range(0..vertices.len())];
            current = current.midpoint(v);
            current
        })
        .collect()
}

/// `n` points on the 2-D Sierpinski triangle inside the unit square.
pub fn triangle_2d(n: usize, seed: u64) -> Vec<Point<2>> {
    let vertices = [Point::new([0.0, 0.0]), Point::new([1.0, 0.0]), Point::new([0.5, 1.0])];
    chaos_game(&vertices, n, seed)
}

/// `n` points on the 3-D Sierpinski pyramid (tetrahedron) inside the unit
/// cube — the paper's Sierpinski3D dataset at `n = 100_000`.
pub fn pyramid_3d(n: usize, seed: u64) -> Vec<Point<3>> {
    let vertices = [
        Point::new([0.0, 0.0, 0.0]),
        Point::new([1.0, 0.0, 0.0]),
        Point::new([0.5, 1.0, 0.0]),
        Point::new([0.5, 0.5, 1.0]),
    ];
    chaos_game(&vertices, n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_determinism() {
        let a = pyramid_3d(1000, 9);
        assert_eq!(a.len(), 1000);
        assert_eq!(a, pyramid_3d(1000, 9));
        assert_ne!(a, pyramid_3d(1000, 10));
    }

    #[test]
    fn points_inside_unit_cube() {
        for p in pyramid_3d(2000, 3) {
            for d in 0..3 {
                assert!((0.0..=1.0).contains(&p[d]), "{p:?}");
            }
        }
        for p in triangle_2d(2000, 3) {
            assert!((0.0..=1.0).contains(&p[0]) && (0.0..=1.0).contains(&p[1]));
        }
    }

    #[test]
    fn triangle_points_avoid_the_central_hole() {
        // The central hole of the Sierpinski triangle: the middle triangle
        // with vertices at the edge midpoints. No attractor point lies
        // strictly inside it.
        let pts = triangle_2d(5000, 11);
        // The hole triangle has corners (0.25, 0.5), (0.75, 0.5), (0.5, 0).
        // Points strictly inside satisfy y < 0.5, y > 2x − 1, y > 1 − 2x.
        let strictly_inside = |p: &Point<2>| {
            let (x, y) = (p[0], p[1]);
            let m = 1e-9;
            y < 0.5 - m && y > 2.0 * x - 1.0 + m && y > 1.0 - 2.0 * x + m
        };
        let violators = pts.iter().filter(|p| strictly_inside(p)).count();
        assert_eq!(violators, 0, "attractor points inside the central hole");
    }

    #[test]
    fn fractal_occupies_all_three_corners() {
        let pts = triangle_2d(3000, 5);
        let near = |cx: f64, cy: f64| {
            pts.iter().any(|p| (p[0] - cx).abs() < 0.1 && (p[1] - cy).abs() < 0.1)
        };
        assert!(near(0.0, 0.0) && near(1.0, 0.0) && near(0.5, 1.0));
    }

    #[test]
    fn pyramid_density_is_nonuniform() {
        // Fractal dimension of the Sierpinski tetrahedron is 2 (< 3):
        // occupied cells at grid resolution 8 should be far fewer than a
        // uniform fill would occupy.
        let pts = pyramid_3d(20_000, 1);
        let mut cells = std::collections::HashSet::new();
        for p in &pts {
            let key = (
                (p[0] * 8.0).min(7.0) as u32,
                (p[1] * 8.0).min(7.0) as u32,
                (p[2] * 8.0).min(7.0) as u32,
            );
            cells.insert(key);
        }
        // Uniform data would fill most of the ~512 occupiable cells; the
        // tetrahedron fills ~4^3 = 64 at this depth.
        assert!(cells.len() < 200, "occupied cells: {}", cells.len());
    }
}
