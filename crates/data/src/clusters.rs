//! Gaussian-mixture clustered points.
//!
//! The generic "locally dense" workload: `k` cluster centers, points
//! scattered around them with per-cluster spread. Used by tests and the
//! ablation benches to dial density (and thus output explosion) directly.

use csj_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a standard-normal value via Box–Muller (keeps the dependency
/// footprint to `rand` itself; see DESIGN.md §6).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0): shift the open interval.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Configuration for [`gaussian_mixture`].
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of cluster centers (uniformly placed in `[0.1, 0.9]^D`).
    pub clusters: usize,
    /// Standard deviation of each cluster.
    pub sigma: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { clusters: 8, sigma: 0.02 }
    }
}

/// `n` points from a `k`-cluster Gaussian mixture, clamped to the unit
/// cube. Deterministic in `seed`.
pub fn gaussian_mixture<const D: usize>(
    n: usize,
    config: ClusterConfig,
    seed: u64,
) -> Vec<Point<D>> {
    assert!(config.clusters >= 1, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point<D>> = (0..config.clusters)
        .map(|_| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = 0.1 + 0.8 * rng.random::<f64>();
            }
            Point::new(c)
        })
        .collect();
    (0..n)
        .map(|_| {
            let center = &centers[rng.random_range(0..centers.len())];
            let mut c = [0.0; D];
            for (d, v) in c.iter_mut().enumerate() {
                *v = (center[d] + config.sigma * standard_normal(&mut rng)).clamp(0.0, 1.0);
            }
            Point::new(c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn counts_bounds_determinism() {
        let cfg = ClusterConfig::default();
        let a = gaussian_mixture::<2>(800, cfg, 5);
        assert_eq!(a.len(), 800);
        assert_eq!(a, gaussian_mixture::<2>(800, cfg, 5));
        for p in &a {
            assert!((0.0..=1.0).contains(&p[0]) && (0.0..=1.0).contains(&p[1]));
        }
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn clusters_are_tighter_than_uniform() {
        // Average nearest-neighbour distance in a tight mixture is far
        // below the uniform expectation.
        let cfg = ClusterConfig { clusters: 4, sigma: 0.005 };
        let pts = gaussian_mixture::<2>(400, cfg, 9);
        let mut nn_sum = 0.0;
        for (i, p) in pts.iter().enumerate() {
            let mut best = f64::INFINITY;
            for (j, q) in pts.iter().enumerate() {
                if i != j {
                    best = best.min(p.euclidean(q));
                }
            }
            nn_sum += best;
        }
        let avg_nn = nn_sum / pts.len() as f64;
        // Uniform 400 points in the unit square: avg NN ≈ 0.5 / sqrt(400) = 0.025.
        assert!(avg_nn < 0.01, "avg nn {avg_nn} not cluster-like");
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        let _ = gaussian_mixture::<2>(10, ClusterConfig { clusters: 0, sigma: 0.1 }, 1);
    }
}
