//! Synthetic road-network point sets.
//!
//! Stand-ins for the paper's MG County, LB County and Pacific NW (TIGER)
//! datasets, which are road / hydrography segment endpoints. What the
//! join algorithms are sensitive to is their density profile: points
//! concentrated along one-dimensional features (streets) embedded in
//! 2-D, dense urban grids, sparse rural webs, and empty voids — exactly
//! what makes the output explode at moderate ε. The generator reproduces
//! that profile:
//!
//! * a handful of weighted *urban cores*; roads start near a core (or
//!   anywhere, for rural roads) and walk in a direction that usually
//!   snaps to the compass grid (street patterns), occasionally turning;
//! * segment endpoints are emitted at a fixed step with small jitter, so
//!   points lie along 1-D polylines;
//! * everything is clamped to — and fills — the unit square (§VI).

use csj_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::clusters::standard_normal;

/// Parameters of the road-network generator.
#[derive(Clone, Copy, Debug)]
pub struct RoadConfig {
    /// Number of points (segment endpoints) to generate.
    pub n_points: usize,
    /// Number of urban cores.
    pub cores: usize,
    /// Gaussian spread of urban road starts around their core.
    pub core_sigma: f64,
    /// Fraction of roads that are rural (start anywhere, run longer).
    pub rural_fraction: f64,
    /// Probability a road's heading snaps to the N/S/E/W grid.
    pub grid_snap_prob: f64,
    /// Distance between consecutive emitted endpoints along a road.
    pub step: f64,
    /// Mean road length for urban roads (rural roads are 5x longer).
    pub mean_road_len: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a road network per `config`. Deterministic in the seed.
pub fn road_network(config: &RoadConfig) -> Vec<Point<2>> {
    assert!(config.cores >= 1 && config.step > 0.0 && config.mean_road_len > 0.0);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Weighted urban cores.
    let cores: Vec<(Point<2>, f64)> = (0..config.cores)
        .map(|_| {
            let c =
                Point::new([0.15 + 0.7 * rng.random::<f64>(), 0.15 + 0.7 * rng.random::<f64>()]);
            let weight = 0.2 + rng.random::<f64>();
            (c, weight)
        })
        .collect();
    let total_weight: f64 = cores.iter().map(|(_, w)| w).sum();

    let mut points = Vec::with_capacity(config.n_points);
    while points.len() < config.n_points {
        let rural = rng.random::<f64>() < config.rural_fraction;
        // Road start.
        let start = if rural {
            Point::new([rng.random::<f64>(), rng.random::<f64>()])
        } else {
            // Pick a core by weight.
            let mut pick = rng.random::<f64>() * total_weight;
            let mut chosen = &cores[0].0;
            for (c, w) in &cores {
                pick -= w;
                if pick <= 0.0 {
                    chosen = c;
                    break;
                }
            }
            Point::new([
                (chosen[0] + config.core_sigma * standard_normal(&mut rng)).clamp(0.0, 1.0),
                (chosen[1] + config.core_sigma * standard_normal(&mut rng)).clamp(0.0, 1.0),
            ])
        };

        // Heading: snapped to the compass grid for street patterns.
        let mut angle = if rng.random::<f64>() < config.grid_snap_prob {
            rng.random_range(0..4) as f64 * std::f64::consts::FRAC_PI_2
        } else {
            rng.random::<f64>() * std::f64::consts::TAU
        };

        let mean_len = if rural { config.mean_road_len * 5.0 } else { config.mean_road_len };
        // Exponential length via inverse CDF.
        let len = -mean_len * (1.0 - rng.random::<f64>()).ln();
        let steps = ((len / config.step).ceil() as usize).clamp(1, 4 * config.n_points);

        let mut pos = start;
        for _ in 0..steps {
            if points.len() >= config.n_points {
                break;
            }
            // Small perpendicular jitter so endpoints are not perfectly
            // collinear (surveying noise).
            let jitter = 0.1 * config.step * standard_normal(&mut rng);
            let (dx, dy) = (angle.cos(), angle.sin());
            let p = Point::new([
                (pos[0] + jitter * -dy).clamp(0.0, 1.0),
                (pos[1] + jitter * dx).clamp(0.0, 1.0),
            ]);
            points.push(p);
            pos = Point::new([
                (pos[0] + config.step * dx).clamp(0.0, 1.0),
                (pos[1] + config.step * dy).clamp(0.0, 1.0),
            ]);
            // Occasional 90° turns (city blocks).
            if rng.random::<f64>() < 0.08 {
                let turn = if rng.random::<f64>() < 0.5 { 1.0 } else { -1.0 };
                angle += turn * std::f64::consts::FRAC_PI_2;
            }
        }
    }
    points
}

/// MG County profile: 27K endpoints, a small county seat plus sparse
/// rural web (the paper's Montgomery County dataset shape).
pub fn mg_county() -> Vec<Point<2>> {
    road_network(&RoadConfig {
        n_points: 27_000,
        cores: 3,
        core_sigma: 0.08,
        rural_fraction: 0.35,
        grid_snap_prob: 0.75,
        step: 0.004,
        mean_road_len: 0.05,
        seed: 0x4D47, // "MG"
    })
}

/// LB County profile: 36K endpoints, denser urban grid (the paper's Long
/// Beach County dataset shape).
pub fn lb_county() -> Vec<Point<2>> {
    road_network(&RoadConfig {
        n_points: 36_000,
        cores: 2,
        core_sigma: 0.12,
        rural_fraction: 0.2,
        grid_snap_prob: 0.9,
        step: 0.003,
        mean_road_len: 0.06,
        seed: 0x4C42, // "LB"
    })
}

/// Default size of the Pacific NW dataset (the paper's 1.5M).
pub const PACIFIC_NW_SIZE: usize = 1_500_000;

/// Pacific NW profile at a chosen size: several metropolitan cores
/// (Seattle/Portland/Spokane/Boise analogues) plus a wide rural web. The
/// paper's dataset has 1.5M points ([`PACIFIC_NW_SIZE`]); smaller draws
/// of the same process are used for quick runs.
pub fn pacific_nw(n_points: usize) -> Vec<Point<2>> {
    road_network(&RoadConfig {
        n_points,
        cores: 8,
        core_sigma: 0.05,
        rural_fraction: 0.3,
        grid_snap_prob: 0.8,
        step: 0.0012,
        mean_road_len: 0.03,
        seed: 0x504E57, // "PNW"
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occupancy_skew(pts: &[Point<2>], grid: usize) -> f64 {
        // Fraction of points inside the top-decile densest cells.
        let mut counts = vec![0usize; grid * grid];
        for p in pts {
            let x = ((p[0] * grid as f64) as usize).min(grid - 1);
            let y = ((p[1] * grid as f64) as usize).min(grid - 1);
            counts[y * grid + x] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = counts.iter().take(grid * grid / 10).sum::<usize>();
        top as f64 / pts.len() as f64
    }

    #[test]
    fn generator_counts_and_bounds() {
        let cfg = RoadConfig {
            n_points: 5000,
            cores: 4,
            core_sigma: 0.05,
            rural_fraction: 0.3,
            grid_snap_prob: 0.8,
            step: 0.003,
            mean_road_len: 0.05,
            seed: 1,
        };
        let pts = road_network(&cfg);
        assert_eq!(pts.len(), 5000);
        for p in &pts {
            assert!((0.0..=1.0).contains(&p[0]) && (0.0..=1.0).contains(&p[1]));
        }
        assert_eq!(pts, road_network(&cfg), "deterministic");
    }

    #[test]
    fn density_is_road_like_not_uniform() {
        let cfg = RoadConfig {
            n_points: 20_000,
            cores: 4,
            core_sigma: 0.06,
            rural_fraction: 0.3,
            grid_snap_prob: 0.8,
            step: 0.002,
            mean_road_len: 0.04,
            seed: 2,
        };
        let road = road_network(&cfg);
        let uniform = crate::uniform::uniform::<2>(20_000, 2);
        let road_skew = occupancy_skew(&road, 20);
        let uniform_skew = occupancy_skew(&uniform, 20);
        assert!(
            road_skew > uniform_skew * 1.8,
            "road skew {road_skew} vs uniform {uniform_skew}: not clustered enough"
        );
    }

    #[test]
    fn presets_have_paper_sizes() {
        // Generate scaled-down versions through the same code path to
        // keep the test fast, then check the real presets' configured
        // sizes via their constants.
        assert_eq!(PACIFIC_NW_SIZE, 1_500_000);
        let mg = mg_county();
        assert_eq!(mg.len(), 27_000);
        let lb = lb_county();
        assert_eq!(lb.len(), 36_000);
    }

    #[test]
    fn small_pacific_nw_sample() {
        let pts = pacific_nw(10_000);
        assert_eq!(pts.len(), 10_000);
        // Metropolitan cores: strong skew expected.
        assert!(occupancy_skew(&pts, 20) > 0.3);
    }

    #[test]
    fn points_lie_along_linear_features() {
        // For road-like data, a point's nearest neighbour is typically at
        // ~step distance (the next endpoint along the same road), much
        // closer than the uniform expectation.
        let cfg = RoadConfig {
            n_points: 4000,
            cores: 3,
            core_sigma: 0.05,
            rural_fraction: 0.3,
            grid_snap_prob: 0.8,
            step: 0.003,
            mean_road_len: 0.05,
            seed: 3,
        };
        let pts = road_network(&cfg);
        let mut close_nn = 0usize;
        for (i, p) in pts.iter().enumerate().take(500) {
            let mut best = f64::INFINITY;
            for (j, q) in pts.iter().enumerate() {
                if i != j {
                    best = best.min(p.euclidean(q));
                }
            }
            if best < 2.0 * cfg.step {
                close_nn += 1;
            }
        }
        assert!(close_nn > 350, "only {close_nn}/500 points have along-road neighbours");
    }
}
