//! Normalization to the unit hypercube.
//!
//! §VI: "All data sets were normalized to fit into the unit square." The
//! same affine map is applied to every axis? No — each axis is scaled
//! independently to `[0, 1]` so the data fills the square, matching how
//! the county datasets are conventionally prepared.

use csj_geom::{Mbr, Point};

/// Rescales `points` in place so each axis spans `[0, 1]`.
///
/// Degenerate axes (zero extent) map to `0.5`. Empty input is a no-op.
/// Returns the original bounding box for callers that need to invert the
/// map.
pub fn normalize_unit_cube<const D: usize>(points: &mut [Point<D>]) -> Option<Mbr<D>> {
    let bounds = Mbr::from_points(points)?;
    for p in points.iter_mut() {
        for d in 0..D {
            let span = bounds.hi[d] - bounds.lo[d];
            p[d] = if span > 0.0 { (p[d] - bounds.lo[d]) / span } else { 0.5 };
        }
    }
    Some(bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_become_unit() {
        let mut pts =
            vec![Point::new([10.0, -5.0]), Point::new([20.0, 5.0]), Point::new([15.0, 0.0])];
        let bounds = normalize_unit_cube(&mut pts).unwrap();
        assert_eq!(bounds.lo.coords(), [10.0, -5.0]);
        assert_eq!(pts[0].coords(), [0.0, 0.0]);
        assert_eq!(pts[1].coords(), [1.0, 1.0]);
        assert_eq!(pts[2].coords(), [0.5, 0.5]);
    }

    #[test]
    fn degenerate_axis_maps_to_half() {
        let mut pts = vec![Point::new([1.0, 7.0]), Point::new([2.0, 7.0])];
        normalize_unit_cube(&mut pts).unwrap();
        assert_eq!(pts[0].coords(), [0.0, 0.5]);
        assert_eq!(pts[1].coords(), [1.0, 0.5]);
    }

    #[test]
    fn empty_input() {
        let mut pts: Vec<Point<2>> = vec![];
        assert!(normalize_unit_cube(&mut pts).is_none());
    }

    #[test]
    fn all_outputs_in_unit_cube() {
        let mut pts: Vec<Point<3>> = (0..100)
            .map(|i| {
                Point::new([
                    (i as f64 * 13.7).sin() * 100.0,
                    (i as f64 * 7.3).cos() * 55.0 + 1000.0,
                    i as f64,
                ])
            })
            .collect();
        normalize_unit_cube(&mut pts).unwrap();
        for p in &pts {
            for d in 0..3 {
                assert!((0.0..=1.0).contains(&p[d]), "{p:?}");
            }
        }
    }
}
