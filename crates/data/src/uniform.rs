//! Uniform random points in the unit hypercube.

use csj_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` points drawn uniformly from `[0, 1]^D`, deterministic in `seed`.
pub fn uniform<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.random::<f64>();
            }
            Point::new(c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_bounds() {
        let pts = uniform::<2>(500, 1);
        assert_eq!(pts.len(), 500);
        for p in &pts {
            assert!((0.0..1.0).contains(&p[0]) && (0.0..1.0).contains(&p[1]));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(uniform::<3>(50, 42), uniform::<3>(50, 42));
        assert_ne!(uniform::<3>(50, 42), uniform::<3>(50, 43));
    }

    #[test]
    fn roughly_uniform_quadrants() {
        let pts = uniform::<2>(4000, 7);
        let q1 = pts.iter().filter(|p| p[0] < 0.5 && p[1] < 0.5).count();
        assert!((800..1200).contains(&q1), "quadrant count {q1} implausible for uniform");
    }
}
