//! Point-set I/O: a minimal whitespace-separated text format.
//!
//! One point per line, coordinates separated by single spaces, `#` lines
//! are comments. This is the interchange format the experiment binaries
//! use to export datasets (Figure 4 reproduction) and lets users run the
//! harness on their own point files (e.g. the real TIGER extracts).

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use csj_geom::Point;

/// Errors from [`read_points`].
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line had the wrong number of columns or a non-numeric field.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Writes points one per line with full float precision.
///
/// # Errors
/// Returns [`io::Error`] when the file cannot be created or a write
/// fails.
pub fn write_points<const D: usize>(path: impl AsRef<Path>, points: &[Point<D>]) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for p in points {
        for d in 0..D {
            if d > 0 {
                w.write_all(b" ")?;
            }
            // {:?} prints the shortest representation that round-trips.
            write!(w, "{:?}", p[d])?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Reads points written by [`write_points`] (or any whitespace-separated
/// numeric file with `D` columns). Blank lines and `#` comments are
/// skipped.
///
/// # Errors
/// Returns [`ReadError::Io`] when the file cannot be read and
/// [`ReadError::Parse`] on a malformed line (wrong column count or
/// an unparsable number).
pub fn read_points<const D: usize>(path: impl AsRef<Path>) -> Result<Vec<Point<D>>, ReadError> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut coords = [0.0; D];
        let mut fields = trimmed.split_whitespace();
        for (d, slot) in coords.iter_mut().enumerate() {
            let field = fields.next().ok_or_else(|| ReadError::Parse {
                line: idx + 1,
                message: format!("expected {D} columns, found {d}"),
            })?;
            *slot = field.parse().map_err(|e| ReadError::Parse {
                line: idx + 1,
                message: format!("bad number {field:?}: {e}"),
            })?;
        }
        if fields.next().is_some() {
            return Err(ReadError::Parse {
                line: idx + 1,
                message: format!("more than {D} columns"),
            });
        }
        out.push(Point::new(coords));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("csj_io_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_exact_values() {
        let path = temp("roundtrip");
        let pts = vec![
            Point::new([0.1, 0.2]),
            Point::new([1.0 / 3.0, std::f64::consts::PI]),
            Point::new([-5.5e-10, 1e20]),
        ];
        write_points(&path, &pts).unwrap();
        let back: Vec<Point<2>> = read_points(&path).unwrap();
        assert_eq!(back, pts, "full-precision round trip");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let path = temp("comments");
        std::fs::write(&path, "# header\n\n0.5 0.5\n  \n# tail\n1 2\n").unwrap();
        let pts: Vec<Point<2>> = read_points(&path).unwrap();
        assert_eq!(pts, vec![Point::new([0.5, 0.5]), Point::new([1.0, 2.0])]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_column_count_reports_line() {
        let path = temp("columns");
        std::fs::write(&path, "0.1 0.2\n0.3\n").unwrap();
        match read_points::<2>(&path) {
            Err(ReadError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error on line 2, got {other:?}"),
        }
        std::fs::write(&path, "0.1 0.2 0.3\n").unwrap();
        assert!(matches!(read_points::<2>(&path), Err(ReadError::Parse { line: 1, .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_number_reports_line() {
        let path = temp("badnum");
        std::fs::write(&path, "0.1 abc\n").unwrap();
        match read_points::<2>(&path) {
            Err(ReadError::Parse { line: 1, message }) => assert!(message.contains("abc")),
            other => panic!("unexpected: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(read_points::<2>("/nonexistent/csj/file.txt"), Err(ReadError::Io(_))));
    }
}
