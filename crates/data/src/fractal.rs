//! Fractal (intrinsic) dimension estimators.
//!
//! The paper closes with: *"A promising future research problem is the
//! analysis of the response time of the methods as a function of the
//! query range ε, and also as a function of the intrinsic ('fractal')
//! dimensionality of the input data set."* These estimators supply that
//! analysis (see the `ablation_fractal` experiment binary):
//!
//! * [`box_counting_dimension`] — the Hausdorff-style `D0`: slope of
//!   `log N(r)` vs `log (1/r)` over occupied grid cells;
//! * [`correlation_integral`] / [`correlation_dimension`] — `D2`: slope
//!   of `log C(r)` vs `log r`, where `C(r)` is the fraction of point
//!   pairs within `r`. `C(ε) · n²/2` *is* the similarity join's output
//!   size, which is why `D2` predicts the join's response curve.

use std::collections::{HashMap, HashSet};

use csj_geom::Point;

/// Least-squares slope of `y` against `x`. Returns 0 for fewer than two
/// points or a degenerate x-range.
pub fn lsq_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        var += (x - mx) * (x - mx);
    }
    if var <= 0.0 {
        0.0
    } else {
        cov / var
    }
}

/// Number of occupied cells when the unit cube is cut into `2^level`
/// cells per axis. Points are expected in `[0, 1]^D`.
pub fn occupied_cells<const D: usize>(points: &[Point<D>], level: u32) -> usize {
    let side = (1u64 << level) as f64;
    let mut cells: HashSet<[u32; D]> = HashSet::new();
    for p in points {
        let mut key = [0u32; D];
        for (d, slot) in key.iter_mut().enumerate() {
            *slot = (p[d] * side).clamp(0.0, side - 1.0) as u32;
        }
        cells.insert(key);
    }
    cells.len()
}

/// Box-counting dimension `D0` over grid levels `levels` (cell side
/// `2^-level`): the least-squares slope of `log2 N(level)` vs `level`.
///
/// Sensible level ranges depend on `n`: the finest level should still
/// keep multiple points per occupied cell (`2^(level·D0) << n`).
pub fn box_counting_dimension<const D: usize>(points: &[Point<D>], levels: &[u32]) -> f64 {
    let xs: Vec<f64> = levels.iter().map(|&l| l as f64).collect();
    let ys: Vec<f64> =
        levels.iter().map(|&l| (occupied_cells(points, l).max(1) as f64).log2()).collect();
    lsq_slope(&xs, &ys)
}

/// The correlation integral `C(r)`: the fraction of unordered point
/// pairs within Euclidean distance `r`. Exact, computed with an `r`-wide
/// grid so the cost is proportional to the number of near pairs, not
/// `n²`.
pub fn correlation_integral<const D: usize>(points: &[Point<D>], r: f64) -> f64 {
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    assert!(r > 0.0, "radius must be positive");
    let mut cells: HashMap<[i64; D], Vec<u32>> = HashMap::new();
    for (i, p) in points.iter().enumerate() {
        let mut key = [0i64; D];
        for (d, slot) in key.iter_mut().enumerate() {
            *slot = (p[d] / r).floor() as i64;
        }
        cells.entry(key).or_default().push(i as u32);
    }
    let r2 = r * r;
    let mut count: u64 = 0;
    let offsets = half_neighborhood::<D>();
    for (key, bucket) in &cells {
        // Within the cell.
        for (i, &a) in bucket.iter().enumerate() {
            for &b in &bucket[(i + 1)..] {
                if points[a as usize].sq_euclidean(&points[b as usize]) <= r2 {
                    count += 1;
                }
            }
        }
        // Across the positive half-neighbourhood.
        for off in &offsets {
            let mut nkey = *key;
            for d in 0..D {
                nkey[d] += off[d];
            }
            if let Some(nb) = cells.get(&nkey) {
                for &a in bucket {
                    for &b in nb {
                        if points[a as usize].sq_euclidean(&points[b as usize]) <= r2 {
                            count += 1;
                        }
                    }
                }
            }
        }
    }
    count as f64 / (n as f64 * (n - 1) as f64 / 2.0)
}

/// Correlation dimension `D2`: least-squares slope of `ln C(r)` vs
/// `ln r` over the given radii. Radii with `C(r) = 0` are skipped.
pub fn correlation_dimension<const D: usize>(points: &[Point<D>], radii: &[f64]) -> f64 {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &r in radii {
        let c = correlation_integral(points, r);
        if c > 0.0 {
            xs.push(r.ln());
            ys.push(c.ln());
        }
    }
    lsq_slope(&xs, &ys)
}

fn half_neighborhood<const D: usize>() -> Vec<[i64; D]> {
    let mut out = Vec::new();
    for code in 0..3usize.pow(D as u32) {
        let mut off = [0i64; D];
        let mut c = code;
        for slot in off.iter_mut() {
            *slot = (c % 3) as i64 - 1;
            c /= 3;
        }
        if off.iter().find(|&&v| v != 0).is_some_and(|&v| v > 0) {
            out.push(off);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sierpinski;
    use crate::uniform::uniform;

    #[test]
    fn lsq_slope_basics() {
        assert_eq!(lsq_slope(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]), 2.0);
        assert_eq!(lsq_slope(&[], &[]), 0.0);
        assert_eq!(lsq_slope(&[1.0], &[5.0]), 0.0);
        assert_eq!(lsq_slope(&[2.0, 2.0], &[1.0, 9.0]), 0.0, "degenerate x");
    }

    #[test]
    fn correlation_integral_exact_on_small_set() {
        // 3 points: pairs at distance 1, 1, 2. C(1.5) = 2/3; C(3) = 1.
        let pts = vec![Point::new([0.0, 0.0]), Point::new([1.0, 0.0]), Point::new([2.0, 0.0])];
        assert!((correlation_integral(&pts, 1.5) - 2.0 / 3.0).abs() < 1e-12);
        assert!((correlation_integral(&pts, 3.0) - 1.0).abs() < 1e-12);
        assert_eq!(correlation_integral(&pts, 0.5), 0.0);
        assert_eq!(correlation_integral::<2>(&[], 1.0), 0.0);
    }

    #[test]
    fn correlation_integral_matches_brute_force() {
        let pts = uniform::<2>(300, 4);
        for r in [0.05, 0.2, 0.7] {
            let mut brute = 0u64;
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    if pts[i].euclidean(&pts[j]) <= r {
                        brute += 1;
                    }
                }
            }
            let want = brute as f64 / (pts.len() * (pts.len() - 1) / 2) as f64;
            let got = correlation_integral(&pts, r);
            assert!((got - want).abs() < 1e-12, "r={r}: {got} vs {want}");
        }
    }

    #[test]
    fn uniform_2d_has_dimension_2() {
        let pts = uniform::<2>(20_000, 9);
        let d0 = box_counting_dimension(&pts, &[2, 3, 4]);
        assert!((d0 - 2.0).abs() < 0.25, "D0 of uniform 2-D: {d0}");
        let d2 = correlation_dimension(&pts, &[0.01, 0.02, 0.04, 0.08]);
        assert!((d2 - 2.0).abs() < 0.25, "D2 of uniform 2-D: {d2}");
    }

    #[test]
    fn line_has_dimension_1() {
        let pts: Vec<Point<2>> =
            (0..10_000).map(|i| Point::new([i as f64 / 10_000.0, 0.5])).collect();
        let d0 = box_counting_dimension(&pts, &[2, 3, 4, 5]);
        assert!((d0 - 1.0).abs() < 0.1, "D0 of a line: {d0}");
        let d2 = correlation_dimension(&pts, &[0.01, 0.02, 0.04]);
        assert!((d2 - 1.0).abs() < 0.1, "D2 of a line: {d2}");
    }

    #[test]
    fn sierpinski_triangle_has_fractal_dimension() {
        // ln 3 / ln 2 ≈ 1.585.
        let pts = sierpinski::triangle_2d(30_000, 7);
        let d0 = box_counting_dimension(&pts, &[2, 3, 4, 5]);
        assert!((d0 - 1.585).abs() < 0.2, "D0 of the triangle: {d0}");
        let d2 = correlation_dimension(&pts, &[0.01, 0.02, 0.04, 0.08]);
        assert!((d2 - 1.585).abs() < 0.3, "D2 of the triangle: {d2}");
    }

    #[test]
    fn sierpinski_pyramid_has_dimension_2() {
        // ln 4 / ln 2 = 2 exactly, embedded in 3-D.
        let pts = sierpinski::pyramid_3d(30_000, 7);
        let d0 = box_counting_dimension(&pts, &[2, 3, 4]);
        assert!((d0 - 2.0).abs() < 0.25, "D0 of the pyramid: {d0}");
    }

    #[test]
    fn occupied_cells_monotone_in_level() {
        let pts = uniform::<2>(2_000, 1);
        let c2 = occupied_cells(&pts, 2);
        let c4 = occupied_cells(&pts, 4);
        assert!(c2 <= c4);
        assert!(c2 <= 16);
    }
}
