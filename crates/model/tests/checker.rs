//! The checker checking itself: seeded failures it must find (with a
//! replayable trace) and correct protocols it must pass.

use csj_model::protocols::{relaxed_publication_race, release_acquire_publication};
use csj_model::sync::atomic::{AtomicUsize, Ordering};
use csj_model::sync::{Arc, Mutex};
use csj_model::{check, check_with, replay, Config, Failure, Trace};

/// The seeded race — data published through a `Relaxed` flag — must be
/// detected, and the reported schedule must reproduce it exactly.
#[test]
fn seeded_relaxed_publication_race_is_found_and_replayable() {
    let report = check(relaxed_publication_race);
    let failing = report.failure.expect("the seeded race must be found");
    assert!(
        matches!(failing.failure, Failure::DataRace { .. }),
        "expected a data race, got: {}",
        failing.failure
    );
    assert!(!failing.trace.steps.is_empty(), "a race needs at least one decision to reach");

    // The trace survives a print/parse round trip (the CI-log workflow)
    // and replays to the same failure, deterministically, both times.
    let parsed: Trace = failing.trace.to_string().parse().expect("trace must parse");
    assert_eq!(parsed, failing.trace);
    for _ in 0..2 {
        let replayed = replay(&parsed, relaxed_publication_race);
        let rf = replayed.failure.expect("replay must reproduce the failure");
        assert!(
            matches!(rf.failure, Failure::DataRace { .. }),
            "replay found a different failure: {}",
            rf.failure
        );
    }
}

/// The corrected release/acquire publication explores clean: same
/// accesses, same schedules, zero findings — the detector keys on the
/// happens-before edge, not on the access pattern.
#[test]
fn release_acquire_publication_verifies_clean() {
    let report = check_with(Config::new().preemptions(3), release_acquire_publication);
    report.assert_ok();
    assert!(report.executions > 1, "publication has more than one schedule");
}

/// A lost update: two threads doing load-then-store on the same atomic.
/// The final-value assertion must fail under some interleaving, and the
/// failure must carry a replayable schedule.
#[test]
fn lost_update_is_found_as_invariant_panic() {
    fn scenario() {
        let n = Arc::new(AtomicUsize::new(0));
        let h = csj_model::thread::spawn({
            let n = Arc::clone(&n);
            move || {
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
            }
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        h.join();
        assert_eq!(n.load(Ordering::SeqCst), 2, "an increment was lost");
    }
    let report = check(scenario);
    let failing = report.failure.expect("the lost update must be found");
    assert!(
        matches!(&failing.failure, Failure::Panic { message, .. } if message.contains("lost")),
        "expected the lost-update assertion, got: {}",
        failing.failure
    );
    let replayed = replay(&failing.trace, scenario);
    assert!(
        matches!(replayed.failure.expect("must reproduce").failure, Failure::Panic { .. }),
        "replay must reproduce the panic"
    );
}

/// Classic ABBA deadlock: found, not hung.
#[test]
fn abba_deadlock_is_reported() {
    let report = check(|| {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let h = csj_model::thread::spawn({
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            move || {
                let bg = b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let ag = a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                drop((ag, bg));
            }
        });
        let ag = a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let bg = b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        drop((bg, ag));
        h.join();
    });
    let failing = report.failure.expect("the ABBA deadlock must be found");
    assert!(
        matches!(&failing.failure, Failure::Deadlock { waiting } if waiting.len() == 2),
        "expected a two-thread deadlock, got: {}",
        failing.failure
    );
}

/// An unfeedable spin loop trips the operation budget as a livelock
/// instead of hanging the test process.
#[test]
fn starved_spin_loop_is_reported_as_livelock() {
    let report = check_with(Config::new().max_ops(64), || {
        let flag = Arc::new(csj_model::sync::atomic::AtomicBool::new(false));
        // No thread ever sets the flag.
        while !flag.load(Ordering::SeqCst) {
            csj_model::thread::yield_now();
        }
    });
    let failing = report.failure.expect("the spin loop must trip the op budget");
    assert!(
        matches!(failing.failure, Failure::Livelock { .. }),
        "expected a livelock, got: {}",
        failing.failure
    );
}

/// A schedule naming a thread that cannot run is rejected as divergence
/// rather than silently rerouted — replay results must be trustworthy.
#[test]
fn bogus_replay_schedule_diverges() {
    let trace: Trace = "7".parse().expect("trace parses");
    let report = replay(&trace, || {
        let n = Arc::new(AtomicUsize::new(0));
        n.fetch_add(1, Ordering::SeqCst);
    });
    let failing = report.failure.expect("divergence must be reported");
    assert!(
        matches!(failing.failure, Failure::ReplayDiverged { step: 0 }),
        "expected divergence at step 0, got: {}",
        failing.failure
    );
}

/// Exploration must honor the preemption bound as a *completeness*
/// knob: a race that needs one preemption is invisible at bound 0
/// (every thread runs to completion once started) and found at bound 1.
#[test]
fn preemption_bound_gates_what_is_reachable() {
    let at_zero = check_with(Config::new().preemptions(0), relaxed_publication_race);
    assert!(
        at_zero.failure.is_none() && at_zero.exhausted,
        "bound 0 runs threads to completion; the publication race needs a preemption"
    );
    let at_one = check_with(Config::new().preemptions(1), relaxed_publication_race);
    assert!(at_one.failure.is_some(), "bound 1 must expose the publication race");
}
