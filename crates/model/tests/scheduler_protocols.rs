//! Exhaustive exploration of the work-stealing scheduler's three core
//! protocols (mirrored from `csj_core::parallel` — see
//! `csj_model::protocols`) at preemption bound 2. Every test asserts
//! its invariants *inside* the model closure, so a pass here means no
//! schedule within the bound can violate them: tasks execute exactly
//! once, steal/donate neither duplicates nor drops work, stop and
//! cancellation quiesce every worker with consistent partial stats,
//! and splitting covers the parent's work exactly.
//!
//! Failures print a schedule trace; reproduce with
//! `csj_model::replay(&"<trace>".parse().unwrap(), <scenario>)`
//! (DESIGN.md §9 walks through the workflow).

use csj_model::protocols::{
    prefetch_scenario, quiesce_scenario, resplit_scenario, shard_retry_quiesce_scenario,
    steal_donate_scenario,
};
use csj_model::Config;

/// Steal/donate: three leaf tasks seeded on worker 0, worker 1 starts
/// starving. Donation feeds the pool, worker 1 steals; every task runs
/// exactly once and `stolen` counts exactly the cross-worker takes.
#[test]
fn steal_donate_protocol_exhausted_at_bound_2() {
    let report = Config::new().preemptions(2).check(|| steal_donate_scenario(3));
    report.assert_ok();
    assert!(
        report.executions > 100,
        "expected a real schedule space, explored only {}",
        report.executions
    );
}

/// Stop/cancel quiesce: two workers racing a canceller. Includes the
/// mid-steal window — cancel landing between a pool pop and the task's
/// execution — where the acquired task is dropped; accounting must
/// stay consistent (`pending == total - executed`, nothing lost,
/// nothing run twice).
#[test]
fn cancel_quiesce_protocol_exhausted_at_bound_2() {
    let report = Config::new().preemptions(2).check(|| quiesce_scenario(3));
    report.assert_ok();
    assert!(
        report.executions > 1000,
        "expected a real schedule space, explored only {}",
        report.executions
    );
}

/// Shard supervisor retry/quiesce, recovery path: attempt 1 is lost
/// (injected kill), attempt 2 delivers, a canceller races both. Under
/// every interleaving of the worker-lost event, the relaunch and the
/// cancel flag, the shard must end in exactly one terminal state with
/// `retries == attempts_used - 1` and no post-cancel launches.
#[test]
fn shard_retry_recovery_protocol_exhausted_at_bound_2() {
    let report = Config::new().preemptions(2).check(|| shard_retry_quiesce_scenario(false));
    report.assert_ok();
    assert!(
        report.executions > 100,
        "expected a real schedule space, explored only {}",
        report.executions
    );
}

/// Shard supervisor retry/quiesce, beyond-budget path: both attempts
/// are lost. The supervisor must mark the shard failed after exactly
/// `max_attempts` launches — never a third relaunch — or exit canceled,
/// under every schedule of the second loss vs. the cancel.
#[test]
fn shard_exhausted_budget_protocol_exhausted_at_bound_2() {
    let report = Config::new().preemptions(2).check(|| shard_retry_quiesce_scenario(true));
    report.assert_ok();
    assert!(
        report.executions > 100,
        "expected a real schedule space, explored only {}",
        report.executions
    );
}

/// Prefetcher stage/cancel/join handshake, clean path: every read-ahead
/// succeeds. Under every interleaving of the budget gate, the queue
/// pops, the `stage_raw` drains and the drop-time cancel, each page's
/// bytes arrive exactly once and the byte accounting balances.
#[test]
fn prefetch_handshake_protocol_exhausted_at_bound_3() {
    let report = Config::new().preemptions(3).check(|| prefetch_scenario(false));
    report.assert_ok();
    assert!(
        report.executions > 100,
        "expected a real schedule space, explored only {}",
        report.executions
    );
}

/// Prefetcher handshake, lost-read leg: one read-ahead fails and is
/// dropped silently. The engine must fall back to a synchronous read
/// for that page — same exactly-once delivery, same accounting.
#[test]
fn prefetch_failed_readahead_protocol_exhausted_at_bound_3() {
    let report = Config::new().preemptions(3).check(|| prefetch_scenario(true));
    report.assert_ok();
    assert!(
        report.executions > 100,
        "expected a real schedule space, explored only {}",
        report.executions
    );
}

/// Starvation-driven re-split: one splittable task, one starving peer.
/// The split must fire, and the children must cover the parent's
/// leaves exactly once no matter who wins the ensuing pool scramble.
#[test]
fn resplit_protocol_exhausted_at_bound_2() {
    let report = Config::new().preemptions(2).check(|| resplit_scenario(3));
    report.assert_ok();
    assert!(
        report.executions > 100,
        "expected a real schedule space, explored only {}",
        report.executions
    );
}
