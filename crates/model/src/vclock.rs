//! Vector clocks: the happens-before arithmetic behind the race
//! detector.
//!
//! Every model thread carries a [`VClock`]; every synchronization
//! object (atomic location, mutex) carries one too. Release-style
//! operations publish the acting thread's clock into the object;
//! acquire-style operations join the object's clock back into the
//! thread. Two accesses to the same unsynchronized location race iff
//! neither's epoch (thread id + that thread's clock component at access
//! time) is covered by the other thread's clock — the standard
//! FastTrack-style formulation, kept in full-vector form because model
//! runs involve a handful of threads at most.

/// A grow-on-demand vector clock. Component `t` counts operations
/// thread `t` has performed that the owner has (transitively) observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    c: Vec<u32>,
}

impl VClock {
    /// The zero clock (observed nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Component `t`, zero when never set.
    pub fn get(&self, t: usize) -> u32 {
        self.c.get(t).copied().unwrap_or(0)
    }

    /// Increments component `t` (the owner performing one operation).
    pub fn bump(&mut self, t: usize) {
        if self.c.len() <= t {
            self.c.resize(t + 1, 0);
        }
        self.c[t] += 1;
    }

    /// Pointwise maximum: the owner observes everything `other` has.
    pub fn join(&mut self, other: &VClock) {
        if self.c.len() < other.c.len() {
            self.c.resize(other.c.len(), 0);
        }
        for (i, &v) in other.c.iter().enumerate() {
            if self.c[i] < v {
                self.c[i] = v;
            }
        }
    }

    /// `true` when an event at epoch `(t, at)` happens-before the state
    /// this clock describes — i.e. the owner has observed thread `t` up
    /// to at least `at`.
    pub fn covers(&self, t: usize, at: u32) -> bool {
        self.get(t) >= at
    }
}

/// One access epoch: thread `tid` at its clock value `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Epoch {
    pub tid: usize,
    pub at: u32,
}

impl Epoch {
    /// The epoch of `clock`'s own component for thread `tid`.
    pub fn of(tid: usize, clock: &VClock) -> Self {
        Epoch { tid, at: clock.get(tid) }
    }

    /// `true` when this epoch happens-before `clock`.
    pub fn before(&self, clock: &VClock) -> bool {
        clock.covers(self.tid, self.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let mut v = VClock::new();
        assert_eq!(v.get(3), 0);
        v.bump(3);
        v.bump(3);
        assert_eq!(v.get(3), 2);
        assert_eq!(v.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.bump(0);
        a.bump(0);
        let mut b = VClock::new();
        b.bump(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
    }

    #[test]
    fn epoch_ordering() {
        let mut writer = VClock::new();
        writer.bump(0); // thread 0 performs a write at epoch (0, 1)
        let w = Epoch::of(0, &writer);

        // A reader that never synchronized does not cover the write.
        let reader = VClock::new();
        assert!(!w.before(&reader));

        // After an acquire-join of the writer's clock, it does.
        let mut synced = VClock::new();
        synced.join(&writer);
        assert!(w.before(&synced));
    }
}
