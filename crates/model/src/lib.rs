//! `csj-model` — a dependency-free, loom-style concurrency model
//! checker for the work-stealing join scheduler.
//!
//! The production scheduler (`csj-core`'s `parallel` module) accesses
//! its shared state through the `csj_core::sync` facade. Built
//! normally, the facade is `std::sync`; built with `--cfg csj_model`,
//! it is this crate's [`sync`] shims, which route every atomic
//! load/store/RMW and every mutex acquire/release through a virtual
//! scheduler. [`check`] then runs a model closure under bounded
//! depth-first exploration of thread interleavings: each execution is
//! one schedule, and the explorer backtracks until the schedule space
//! (within the preemption bound) is exhausted or a failure is found.
//!
//! Failures — data races (vector-clock happens-before analysis),
//! panics (protocol invariant assertions), deadlocks, and livelocks —
//! come with the [`Trace`] of scheduling decisions that reached them;
//! [`replay`] re-executes exactly that schedule, turning an
//! exploration counterexample into a deterministic unit test. See
//! DESIGN.md §9 for the scheduler's memory-model contract and the
//! replay workflow.
//!
//! ```
//! use csj_model::{check, sync::atomic::{AtomicUsize, Ordering}, sync::Arc, thread};
//!
//! let report = check(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let h = thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     n.fetch_add(1, Ordering::SeqCst);
//!     h.join();
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.failure.is_none() && report.exhausted);
//! ```

#![warn(missing_docs)]

pub mod cell;
pub mod protocols;
mod sched;
pub mod sync;
pub mod thread;
mod vclock;

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Why an execution failed.
#[derive(Clone, Debug)]
pub enum Failure {
    /// Two accesses to a [`cell::RaceCell`] with no happens-before
    /// edge between them.
    DataRace {
        /// Location id of the cell (stable within one execution).
        loc: u64,
        /// `"write-read"`, `"read-write"`, or `"write-write"`.
        kind: &'static str,
        /// Thread that performed the earlier access.
        first: usize,
        /// Thread whose access completed the race.
        second: usize,
    },
    /// A model thread panicked — an invariant assertion fired.
    Panic {
        /// The panicking thread.
        thread: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// No thread is enabled: every live thread is blocked on a held
    /// mutex or an unfinished join.
    Deadlock {
        /// One human-readable line per blocked thread.
        waiting: Vec<String>,
    },
    /// The execution exceeded the operation budget — a spin loop that
    /// never makes progress under some schedule.
    Livelock {
        /// Operations performed when the budget tripped.
        ops: usize,
    },
    /// A replayed trace named a thread that was not enabled, or the
    /// model closure is nondeterministic between executions.
    ReplayDiverged {
        /// The decision index where the divergence was noticed.
        step: usize,
    },
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::DataRace { loc, kind, first, second } => write!(
                f,
                "data race ({kind}) on cell {loc}: thread {first} vs thread {second} with no happens-before edge"
            ),
            Failure::Panic { thread, message } => {
                write!(f, "thread {thread} panicked: {message}")
            }
            Failure::Deadlock { waiting } => {
                write!(f, "deadlock: {}", waiting.join("; "))
            }
            Failure::Livelock { ops } => write!(
                f,
                "livelock: no termination within {ops} operations (a spin loop the schedule never releases?)"
            ),
            Failure::ReplayDiverged { step } => write!(
                f,
                "replay diverged at decision {step}: schedule does not match this model closure"
            ),
        }
    }
}

/// A schedule: the thread granted at each scheduling decision, in
/// order. Printable (`Display`) and parseable (`FromStr`) so a failing
/// schedule can be copied out of CI logs into a [`replay`] call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Granted thread ids, one per decision.
    pub steps: Vec<usize>,
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in &self.steps {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for Trace {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut steps = Vec::new();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let tid =
                part.parse::<usize>().map_err(|e| format!("bad trace element {part:?}: {e}"))?;
            steps.push(tid);
        }
        Ok(Trace { steps })
    }
}

/// A failure together with the schedule that produced it.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// What went wrong.
    pub failure: Failure,
    /// The schedule prefix that reached it; feed to [`replay`].
    pub trace: Trace,
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}\n  schedule: {}\n  replay with csj_model::replay(&\"{}\".parse().unwrap(), ..)",
            self.failure, self.trace, self.trace
        )
    }
}

/// The outcome of a [`check`] run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions (schedules) explored.
    pub executions: usize,
    /// `true` when the bounded schedule space was fully explored.
    pub exhausted: bool,
    /// The first failure found, if any.
    pub failure: Option<FailureReport>,
}

impl Report {
    /// Panics with the failure and its replayable schedule if the run
    /// found one, or if exploration stopped before exhausting the
    /// bounded space. Test helper.
    pub fn assert_ok(&self) {
        if let Some(fr) = &self.failure {
            // csj-lint: allow(panic-safety) — the whole point of this
            // helper is to fail the calling test with the counterexample.
            panic!("model check failed after {} executions: {fr}", self.executions);
        }
        if !self.exhausted {
            // csj-lint: allow(panic-safety) — incomplete exploration must
            // fail the calling test, not pass it vacuously.
            panic!(
                "model check did not exhaust the schedule space within {} executions; raise Config::max_executions",
                self.executions
            );
        }
    }
}

/// Exploration parameters for [`check_with`].
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// CHESS-style preemption bound: schedules with more involuntary
    /// context switches than this are pruned. `None` explores the full
    /// (exponential) space — only viable for tiny models.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules; [`Report::exhausted`] is `false`
    /// when it trips.
    pub max_executions: usize,
    /// Per-execution operation budget; exceeding it is a
    /// [`Failure::Livelock`].
    pub max_ops: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { preemption_bound: Some(2), max_executions: 500_000, max_ops: 20_000 }
    }
}

impl Config {
    /// Default configuration (preemption bound 2).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the preemption bound.
    #[must_use]
    pub fn preemptions(mut self, bound: usize) -> Self {
        self.preemption_bound = Some(bound);
        self
    }

    /// Removes the preemption bound: exhaustive (exponential)
    /// exploration.
    #[must_use]
    pub fn unbounded_preemptions(mut self) -> Self {
        self.preemption_bound = None;
        self
    }

    /// Sets the schedule cap.
    #[must_use]
    pub fn max_executions(mut self, n: usize) -> Self {
        self.max_executions = n;
        self
    }

    /// Sets the per-execution operation budget.
    #[must_use]
    pub fn max_ops(mut self, n: usize) -> Self {
        self.max_ops = n;
        self
    }

    /// Runs `f` under this configuration. See [`check`].
    pub fn check<F>(self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        check_with(self, f)
    }
}

/// Explores the interleavings of the model closure `f` and reports the
/// first failure, if any.
///
/// `f` runs once per schedule, as model thread 0; threads it spawns
/// via [`thread::spawn`] become model threads too. It must be
/// deterministic apart from scheduling — no wall-clock time, no
/// RNG seeded from the environment — because exploration replays
/// committed schedule prefixes.
pub fn check<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    check_with(Config::default(), f)
}

/// [`check`] with an explicit [`Config`].
pub fn check_with<F>(config: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut explorer = sched::Explorer::new(config.preemption_bound);
    let mut executions = 0usize;
    loop {
        let outcome = sched::run_execution(Arc::clone(&f), &mut explorer, config.max_ops);
        executions += 1;
        if let Some(failure) = outcome.failure {
            return Report {
                executions,
                exhausted: false,
                failure: Some(FailureReport { failure, trace: Trace { steps: outcome.steps } }),
            };
        }
        if !explorer.backtrack() {
            return Report { executions, exhausted: true, failure: None };
        }
        if executions >= config.max_executions {
            return Report { executions, exhausted: false, failure: None };
        }
    }
}

/// Re-executes `f` under exactly the schedule in `trace` (decisions
/// past the end of the trace follow the default continue-previous
/// policy). Returns the single execution's report — if the trace came
/// from a failing [`check`], the same failure reproduces
/// deterministically.
pub fn replay<F>(trace: &Trace, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    replay_with(Config::default(), trace, f)
}

/// [`replay`] with an explicit [`Config`] (only `max_ops` is used).
pub fn replay_with<F>(config: Config, trace: &Trace, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut chooser = sched::ReplayChooser::new(trace);
    let outcome = sched::run_execution(f, &mut chooser, config.max_ops);
    Report {
        executions: 1,
        exhausted: false,
        failure: outcome
            .failure
            .map(|failure| FailureReport { failure, trace: Trace { steps: outcome.steps } }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrips_through_display() {
        let t = Trace { steps: vec![0, 0, 1, 2, 1] };
        let s = t.to_string();
        assert_eq!(s, "0,0,1,2,1");
        let back: Trace = s.parse().expect("parse");
        assert_eq!(back, t);
    }

    #[test]
    fn empty_trace_parses() {
        let t: Trace = "".parse().expect("parse");
        assert!(t.steps.is_empty());
    }

    #[test]
    fn bad_trace_reports_the_offending_element() {
        let err = "0,x,1".parse::<Trace>().expect_err("must fail");
        assert!(err.contains("\"x\""), "error should name the bad element: {err}");
    }
}
