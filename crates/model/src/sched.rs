//! The virtual scheduler: serialized execution of model threads with a
//! controller that picks which thread performs each operation.
//!
//! Mechanics: every model thread is a real OS thread, but at each
//! instrumented operation (atomic access, mutex acquire, cell access,
//! yield, join) it *parks* on a shared condvar and waits for the
//! controller to grant it the next step. The controller waits until all
//! live threads are parked, computes the enabled set (a thread parked
//! on a held mutex or an unfinished join is disabled), asks the
//! [`Chooser`] which thread runs, and grants exactly one. The granted
//! thread performs its operation — updating vector clocks and the race
//! detector while it holds the core lock — then runs ahead to its next
//! park point. One operation is in flight at a time, so every
//! execution is a sequentially consistent interleaving, and the
//! sequence of grants *is* the schedule trace.
//!
//! Fairness: a thread parked on a [`Op::Yield`] (a spin-loop backoff)
//! is only eligible when every other enabled thread is also yielding,
//! mirroring loom's treatment of `yield_now` — this keeps spin loops
//! from generating unbounded self-scheduling suffixes.
//!
//! Teardown: any failure (race, panic, deadlock, livelock) sets an
//! abort flag; parked threads wake, unwind with a private sentinel
//! panic ([`ModelAbort`]) that the thread wrapper swallows, and the
//! controller collects the schedule prefix as the replayable trace.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use crate::vclock::{Epoch, VClock};
use crate::{Failure, Trace};

/// Global id well for synchronization objects. Objects are created
/// fresh inside each execution of the model closure, so ids never
/// collide within one execution's clock tables.
static NEXT_LOC: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh location id for an atomic/mutex/cell.
pub(crate) fn next_loc_id() -> u64 {
    // ORDERING: a pure id well — uniqueness comes from the RMW's
    // atomicity; no data is published through the counter.
    NEXT_LOC.fetch_add(1, Ordering::Relaxed)
}

/// The operation a parked thread is waiting to perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    /// Thread startup (its first scheduling point).
    Start,
    /// A `yield_now` backoff inside a spin loop.
    Yield,
    /// Atomic load; `acquire` if the ordering has acquire semantics.
    AtomicLoad { loc: u64, acquire: bool },
    /// Atomic store; `release` if the ordering has release semantics.
    AtomicStore { loc: u64, release: bool },
    /// Atomic read-modify-write.
    AtomicRmw { loc: u64, acquire: bool, release: bool },
    /// Mutex acquisition (disabled while the mutex is held).
    MutexLock { loc: u64 },
    /// Unsynchronized read of a [`crate::cell::RaceCell`].
    CellRead { loc: u64 },
    /// Unsynchronized write of a [`crate::cell::RaceCell`].
    CellWrite { loc: u64 },
    /// Join on another model thread (disabled until it finishes).
    Join { tid: usize },
}

impl Op {
    fn describe(self) -> String {
        match self {
            Op::Start => "start".into(),
            Op::Yield => "yield".into(),
            Op::AtomicLoad { loc, .. } => format!("atomic-load@{loc}"),
            Op::AtomicStore { loc, .. } => format!("atomic-store@{loc}"),
            Op::AtomicRmw { loc, .. } => format!("atomic-rmw@{loc}"),
            Op::MutexLock { loc } => format!("mutex-lock@{loc}"),
            Op::CellRead { loc } => format!("cell-read@{loc}"),
            Op::CellWrite { loc } => format!("cell-write@{loc}"),
            Op::Join { tid } => format!("join({tid})"),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TStatus {
    /// Registered, OS thread not yet parked at its first point.
    Starting,
    /// Granted: running ahead to its next park point.
    Running,
    /// Parked at `op`, waiting for a grant.
    Parked,
    /// Done (normally, or unwound during teardown).
    Finished,
}

struct TState {
    status: TStatus,
    op: Op,
}

#[derive(Default)]
struct CellState {
    write: Option<Epoch>,
    reads: Vec<Epoch>,
}

/// Everything the controller and the parked threads share, behind one
/// mutex. Coarse on purpose: executions are serialized anyway, so a
/// single lock keeps the handshake easy to reason about.
struct Core {
    threads: Vec<TState>,
    clocks: Vec<VClock>,
    final_clocks: Vec<Option<VClock>>,
    /// Thread currently granted (it clears this as it resumes).
    active: Option<usize>,
    abort: bool,
    failure: Option<Failure>,
    /// Release clocks of atomic locations (empty clock = last store was
    /// relaxed, which breaks the release sequence).
    atomic_sync: HashMap<u64, VClock>,
    mutex_clock: HashMap<u64, VClock>,
    mutex_held: HashMap<u64, bool>,
    cells: HashMap<u64, CellState>,
    ops: usize,
    max_ops: usize,
    /// The schedule so far: one granted tid per decision.
    steps: Vec<usize>,
}

impl Core {
    fn new(max_ops: usize) -> Self {
        Core {
            threads: Vec::new(),
            clocks: Vec::new(),
            final_clocks: Vec::new(),
            active: None,
            abort: false,
            failure: None,
            atomic_sync: HashMap::new(),
            mutex_clock: HashMap::new(),
            mutex_held: HashMap::new(),
            cells: HashMap::new(),
            ops: 0,
            max_ops,
            steps: Vec::new(),
        }
    }

    fn fail(&mut self, f: Failure) {
        if self.failure.is_none() {
            self.failure = Some(f);
        }
        self.abort = true;
    }

    /// Applies the happens-before effects of `op`, performed by `tid`,
    /// and runs the race detector for cell accesses.
    fn apply(&mut self, tid: usize, op: Op) {
        match op {
            Op::Start | Op::Yield => {}
            Op::AtomicLoad { loc, acquire } => {
                if acquire {
                    if let Some(sync) = self.atomic_sync.get(&loc).cloned() {
                        self.clocks[tid].join(&sync);
                    }
                }
            }
            Op::AtomicStore { loc, release } => {
                // A relaxed store breaks any release sequence: later
                // acquire loads observe this store, which publishes no
                // clock, so the location's sync clock is reset.
                let published = if release { self.clocks[tid].clone() } else { VClock::new() };
                self.atomic_sync.insert(loc, published);
            }
            Op::AtomicRmw { loc, acquire, release } => {
                if acquire {
                    if let Some(sync) = self.atomic_sync.get(&loc).cloned() {
                        self.clocks[tid].join(&sync);
                    }
                }
                if release {
                    // An RMW extends the release sequence, so its clock
                    // joins (rather than replaces) the location's.
                    let mine = self.clocks[tid].clone();
                    self.atomic_sync.entry(loc).or_default().join(&mine);
                }
            }
            Op::MutexLock { loc } => {
                self.mutex_held.insert(loc, true);
                if let Some(mc) = self.mutex_clock.get(&loc).cloned() {
                    self.clocks[tid].join(&mc);
                }
            }
            Op::CellRead { loc } => {
                let clock = self.clocks[tid].clone();
                let cell = self.cells.entry(loc).or_default();
                let race = cell.write.filter(|w| w.tid != tid && !w.before(&clock));
                if let Some(w) = race {
                    self.fail(Failure::DataRace {
                        loc,
                        kind: "write-read",
                        first: w.tid,
                        second: tid,
                    });
                    return;
                }
                let cell = self.cells.entry(loc).or_default();
                cell.reads.retain(|r| r.tid != tid);
                cell.reads.push(Epoch::of(tid, &clock));
            }
            Op::CellWrite { loc } => {
                let clock = self.clocks[tid].clone();
                let cell = self.cells.entry(loc).or_default();
                let write_race = cell.write.filter(|w| w.tid != tid && !w.before(&clock));
                let read_race =
                    cell.reads.iter().copied().find(|r| r.tid != tid && !r.before(&clock));
                if let Some(w) = write_race {
                    self.fail(Failure::DataRace {
                        loc,
                        kind: "write-write",
                        first: w.tid,
                        second: tid,
                    });
                    return;
                }
                if let Some(r) = read_race {
                    self.fail(Failure::DataRace {
                        loc,
                        kind: "read-write",
                        first: r.tid,
                        second: tid,
                    });
                    return;
                }
                let cell = self.cells.entry(loc).or_default();
                cell.reads.clear();
                cell.write = Some(Epoch::of(tid, &clock));
            }
            Op::Join { tid: child } => {
                if let Some(fc) = self.final_clocks.get(child).cloned().flatten() {
                    self.clocks[tid].join(&fc);
                }
            }
        }
    }

    fn enabled(&self, tid: usize) -> bool {
        match self.threads[tid].op {
            Op::MutexLock { loc } => !self.mutex_held.get(&loc).copied().unwrap_or(false),
            Op::Join { tid: t } => self.threads[t].status == TStatus::Finished,
            _ => true,
        }
    }
}

/// The handshake state one execution runs on.
pub(crate) struct Inner {
    core: Mutex<Core>,
    cvar: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Inner>, usize)>> = const { RefCell::new(None) };
}

/// The (execution, tid) of the calling model thread, or `None` when
/// called outside any model run (passthrough mode).
pub(crate) fn current() -> Option<(Arc<Inner>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Sentinel panic payload used to unwind model threads at teardown;
/// the thread wrapper swallows it.
pub(crate) struct ModelAbort;

fn lock_core(inner: &Inner) -> std::sync::MutexGuard<'_, Core> {
    inner.core.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Parks the calling model thread at a scheduling point, waits for the
/// controller's grant, applies the operation's happens-before effects,
/// and returns `true`. Returns `false` in passthrough mode — the
/// caller then performs its operation directly on the backing
/// primitive with no model involved.
pub(crate) fn yield_point(op: Op) -> bool {
    let Some((inner, tid)) = current() else { return false };
    let mut core = lock_core(&inner);
    core.threads[tid].status = TStatus::Parked;
    core.threads[tid].op = op;
    inner.cvar.notify_all();
    loop {
        if core.abort {
            drop(core);
            panic_any(ModelAbort);
        }
        if core.active == Some(tid) {
            break;
        }
        core = inner.cvar.wait(core).unwrap_or_else(PoisonError::into_inner);
    }
    core.active = None;
    core.threads[tid].status = TStatus::Running;
    core.ops += 1;
    if core.ops > core.max_ops {
        let ops = core.ops;
        core.fail(Failure::Livelock { ops });
    } else {
        core.clocks[tid].bump(tid);
        core.apply(tid, op);
    }
    if core.abort {
        inner.cvar.notify_all();
        drop(core);
        panic_any(ModelAbort);
    }
    true
}

/// Records a mutex release: updates the mutex's clock and frees it.
/// Not a scheduling point — the releasing thread keeps running, and
/// peers observe the free mutex at their next decision.
pub(crate) fn mutex_unlock(loc: u64) {
    let Some((inner, tid)) = current() else { return };
    let mut core = lock_core(&inner);
    core.mutex_held.insert(loc, false);
    let mine = core.clocks[tid].clone();
    core.mutex_clock.insert(loc, mine);
    core.clocks[tid].bump(tid);
    inner.cvar.notify_all();
}

/// Registers a new model thread (the root, or a child of `parent`) and
/// returns its tid. The child's clock starts as a copy of the
/// parent's — the spawn happens-before edge.
pub(crate) fn register_thread(inner: &Arc<Inner>, parent: Option<usize>) -> usize {
    let mut core = lock_core(inner);
    let tid = core.threads.len();
    core.threads.push(TState { status: TStatus::Starting, op: Op::Start });
    let clock = match parent {
        Some(p) => {
            core.clocks[p].bump(p);
            core.clocks[p].clone()
        }
        None => VClock::new(),
    };
    core.clocks.push(clock);
    core.final_clocks.push(None);
    tid
}

/// Runs `f` as the body of model thread `tid`: sets the thread-local
/// execution pointer, parks at the start point, catches panics (real
/// ones become [`Failure::Panic`]; [`ModelAbort`] is the teardown
/// sentinel and is swallowed), and marks the thread finished.
pub(crate) fn run_thread_body<F: FnOnce()>(inner: Arc<Inner>, tid: usize, f: F) {
    CURRENT.with(|c| *c.borrow_mut() = Some((inner.clone(), tid)));
    let result = catch_unwind(AssertUnwindSafe(|| {
        yield_point(Op::Start);
        f();
    }));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let mut core = lock_core(&inner);
    if let Err(payload) = result {
        if !payload.is::<ModelAbort>() {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            core.fail(Failure::Panic { thread: tid, message });
        }
    }
    core.threads[tid].status = TStatus::Finished;
    let fc = core.clocks[tid].clone();
    core.final_clocks[tid] = Some(fc);
    inner.cvar.notify_all();
}

/// Picks the next thread to grant. `candidates` is sorted and
/// nonempty; `prev` is the previously granted thread (it may or may
/// not be a candidate). `None` aborts the execution (replay
/// divergence or a nondeterministic model closure).
pub(crate) trait Chooser {
    fn choose(&mut self, candidates: &[usize], prev: Option<usize>) -> Option<usize>;
}

/// What one execution produced.
pub(crate) struct ExecutionOutcome {
    pub steps: Vec<usize>,
    pub failure: Option<Failure>,
}

/// Silences the default panic printout for model threads (their panics
/// are captured and reported as [`Failure::Panic`], and every teardown
/// unwinds with the sentinel); other threads keep the previous hook.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if current().is_none() {
                prev(info);
            }
        }));
    });
}

/// Runs the model closure once under `chooser`'s schedule.
pub(crate) fn run_execution<F>(
    f: Arc<F>,
    chooser: &mut dyn Chooser,
    max_ops: usize,
) -> ExecutionOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let inner = Arc::new(Inner { core: Mutex::new(Core::new(max_ops)), cvar: Condvar::new() });
    let root = register_thread(&inner, None);
    debug_assert_eq!(root, 0);
    let inner_root = Arc::clone(&inner);
    let root_handle = std::thread::spawn(move || run_thread_body(inner_root, 0, move || f()));

    let mut prev: Option<usize> = None;
    let outcome;
    loop {
        let mut core = lock_core(&inner);
        // Quiescence: the previous grant has been consumed (`active`
        // cleared by the woken thread) and every thread is parked or
        // finished. Checking `active` matters: right after a grant the
        // chosen thread is still `Parked` until it wakes, and without
        // the check the controller could double-decide on stale state.
        while core.active.is_some()
            || core.threads.iter().any(|t| matches!(t.status, TStatus::Starting | TStatus::Running))
        {
            core = inner.cvar.wait(core).unwrap_or_else(PoisonError::into_inner);
        }
        if core.failure.is_some() || core.abort {
            outcome = teardown(&inner, core);
            break;
        }
        let parked: Vec<usize> = (0..core.threads.len())
            .filter(|&t| core.threads[t].status == TStatus::Parked)
            .collect();
        if parked.is_empty() {
            // All finished: a clean, complete execution.
            outcome = ExecutionOutcome { steps: core.steps.clone(), failure: core.failure.clone() };
            break;
        }
        let enabled: Vec<usize> = parked.iter().copied().filter(|&t| core.enabled(t)).collect();
        if enabled.is_empty() {
            let waiting = parked
                .iter()
                .map(|&t| format!("thread {t} blocked on {}", core.threads[t].op.describe()))
                .collect();
            core.fail(Failure::Deadlock { waiting });
            outcome = teardown(&inner, core);
            break;
        }
        // Yield fairness: a spinning thread only runs when every
        // enabled thread is spinning.
        let eager: Vec<usize> =
            enabled.iter().copied().filter(|&t| core.threads[t].op != Op::Yield).collect();
        let candidates = if eager.is_empty() { enabled } else { eager };
        match chooser.choose(&candidates, prev) {
            Some(tid) if candidates.contains(&tid) => {
                core.steps.push(tid);
                prev = Some(tid);
                core.active = Some(tid);
                inner.cvar.notify_all();
            }
            _ => {
                let step = core.steps.len();
                core.fail(Failure::ReplayDiverged { step });
                outcome = teardown(&inner, core);
                break;
            }
        }
    }
    // The root OS thread has marked itself finished; reap it so no OS
    // threads accumulate across the (many) executions of a check.
    let _ = root_handle.join();
    outcome
}

/// Aborts a failed execution: wakes every parked thread (they unwind
/// via [`ModelAbort`]), waits for all of them to finish, and snapshots
/// the failure plus the schedule prefix that reached it.
fn teardown(inner: &Inner, mut core: std::sync::MutexGuard<'_, Core>) -> ExecutionOutcome {
    core.abort = true;
    inner.cvar.notify_all();
    while core.threads.iter().any(|t| t.status != TStatus::Finished) {
        core = inner.cvar.wait(core).unwrap_or_else(PoisonError::into_inner);
    }
    ExecutionOutcome { steps: core.steps.clone(), failure: core.failure.clone() }
}

/// Depth-first exploration of the schedule tree with an optional
/// preemption bound (CHESS-style): continuing the previously granted
/// thread is free; switching away from a thread that could have
/// continued costs one preemption. Schedules whose cost exceeds the
/// bound are pruned, which keeps exploration polynomial while still
/// covering every bug reachable with few preemptions — empirically
/// almost all of them.
pub(crate) struct Explorer {
    bound: Option<usize>,
    frames: Vec<Frame>,
    depth: usize,
}

struct Frame {
    /// Candidate threads, previously-granted thread first.
    options: Vec<usize>,
    /// Index into `options` taken on the current execution.
    chosen: usize,
    /// Whether `options[0]` is the previously granted thread (so any
    /// other choice is a preemption).
    prev_first: bool,
    /// Preemptions spent strictly before this decision.
    preemptions_before: usize,
}

impl Frame {
    fn cost(&self, idx: usize) -> usize {
        usize::from(self.prev_first && idx != 0)
    }
}

impl Explorer {
    pub(crate) fn new(bound: Option<usize>) -> Self {
        Explorer { bound, frames: Vec::new(), depth: 0 }
    }

    /// Rewinds to the deepest decision with an unexplored, in-budget
    /// alternative. Returns `false` when the bounded schedule space is
    /// exhausted.
    pub(crate) fn backtrack(&mut self) -> bool {
        self.depth = 0;
        while let Some(mut f) = self.frames.pop() {
            let mut next = f.chosen + 1;
            while next < f.options.len() {
                let within = self.bound.is_none_or(|b| f.preemptions_before + f.cost(next) <= b);
                if within {
                    f.chosen = next;
                    self.frames.push(f);
                    return true;
                }
                next += 1;
            }
        }
        false
    }
}

impl Chooser for Explorer {
    fn choose(&mut self, candidates: &[usize], prev: Option<usize>) -> Option<usize> {
        if self.depth < self.frames.len() {
            // Replaying the committed prefix. The model closure must be
            // deterministic for the replay to see the same choices.
            let f = &self.frames[self.depth];
            let mut seen: Vec<usize> = f.options.clone();
            seen.sort_unstable();
            if seen != candidates {
                return None;
            }
            let tid = f.options[f.chosen];
            self.depth += 1;
            return Some(tid);
        }
        let mut options = candidates.to_vec();
        let prev_first = match prev {
            Some(p) => match options.iter().position(|&t| t == p) {
                Some(pos) => {
                    options.remove(pos);
                    options.insert(0, p);
                    true
                }
                None => false,
            },
            None => false,
        };
        let preemptions_before =
            self.frames.last().map(|f| f.preemptions_before + f.cost(f.chosen)).unwrap_or(0);
        let tid = options[0];
        self.frames.push(Frame { options, chosen: 0, prev_first, preemptions_before });
        self.depth += 1;
        Some(tid)
    }
}

/// Replays a recorded schedule; past the recorded prefix it follows
/// the default continue-previous policy.
pub(crate) struct ReplayChooser {
    steps: Vec<usize>,
    depth: usize,
}

impl ReplayChooser {
    pub(crate) fn new(trace: &Trace) -> Self {
        ReplayChooser { steps: trace.steps.clone(), depth: 0 }
    }
}

impl Chooser for ReplayChooser {
    fn choose(&mut self, candidates: &[usize], prev: Option<usize>) -> Option<usize> {
        if self.depth < self.steps.len() {
            let tid = self.steps[self.depth];
            self.depth += 1;
            return candidates.contains(&tid).then_some(tid);
        }
        match prev.filter(|p| candidates.contains(p)) {
            Some(p) => Some(p),
            None => candidates.first().copied(),
        }
    }
}
