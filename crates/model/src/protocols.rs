//! Model-sized mirrors of the work-stealing scheduler's protocols.
//!
//! These functions re-implement the *protocol skeleton* of
//! `csj_core::parallel`'s `worker_loop` — the same shared state, the
//! same operations in the same order, with the same memory orderings —
//! on top of this crate's instrumented [`crate::sync`] primitives,
//! with the join work abstracted to leaf-range tasks. `csj-model`
//! cannot depend on `csj-core` (the facade points the other way), so
//! the mirror is kept line-for-line reviewable against
//! `crates/core/src/parallel/mod.rs`; any protocol change there must
//! be reflected here (DESIGN.md §9 pairs the two).
//!
//! Each scenario asserts the scheduler's contract *inside* the model
//! closure, so [`crate::check`] refutes it over every interleaving up
//! to the preemption bound:
//!
//! * [`steal_donate_scenario`] — donation/stealing neither duplicates
//!   nor drops a task; stats counters sum correctly.
//! * [`quiesce_scenario`] — stop-flag and cancellation quiesce all
//!   workers with `Partial`-consistent accounting, including cancel
//!   arriving between a pool pop and task execution (mid-steal).
//! * [`resplit_scenario`] — starvation-driven re-splitting covers
//!   exactly the parent's leaves, exactly once.
//! * [`prefetch_scenario`] — the out-of-core prefetcher's budget gate,
//!   `stage_raw` handoff, failed-read-ahead fallback and drop-time
//!   cancel/join deliver every page's bytes exactly once (mirrored
//!   from `csj_core::outofcore`).
//!
//! The deliberately broken [`relaxed_publication_race`] (data behind a
//! `Relaxed` flag) is the seeded-race fixture: the checker must find
//! and replay it. [`release_acquire_publication`] is the corrected
//! protocol, which must verify clean — together they pin the race
//! detector's precision in both directions.

use std::collections::VecDeque;
use std::sync::PoisonError;

use crate::cell::RaceCell;
use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex};
use crate::thread;

/// A task covering the leaf range `lo..=hi`; splittable when it covers
/// more than one leaf (the stand-in for a subtree join task, whose
/// children cover exactly the parent's work).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ModelTask {
    /// First leaf covered.
    pub lo: u32,
    /// Last leaf covered (inclusive).
    pub hi: u32,
}

impl ModelTask {
    /// A single-leaf task.
    pub fn leaf(i: u32) -> Self {
        ModelTask { lo: i, hi: i }
    }

    fn splittable(self) -> bool {
        self.hi > self.lo
    }

    fn split(self) -> (ModelTask, ModelTask) {
        let mid = self.lo + (self.hi - self.lo) / 2;
        (ModelTask { lo: self.lo, hi: mid }, ModelTask { lo: mid + 1, hi: self.hi })
    }
}

/// `(owner, task)` — a pool take by a different worker is a steal,
/// exactly as `TaskItem::owner` in the production scheduler.
pub type PoolItem = (usize, ModelTask);

/// Mirror of `csj_core::parallel`'s `Shared`: same fields, same
/// orderings. Stats counters and the advisory `pool_len`/`starving`
/// mirrors are `Relaxed`; `stop` and `pending` gate termination and
/// stay `SeqCst`. The scenarios in this module are the evidence that
/// this split is sound — see DESIGN.md §9.
pub struct ModelShared {
    /// Donation pool (the only lock).
    pub pool: Mutex<VecDeque<PoolItem>>,
    /// Lock-free mirror of `pool.len()`.
    pub pool_len: AtomicUsize,
    /// Workers currently out of work.
    pub starving: AtomicUsize,
    /// Tasks not yet executed.
    pub pending: AtomicUsize,
    /// Quiesce flag (mirror of `Shared::stop`).
    pub stop: AtomicBool,
    /// Mirror of `CancelToken`'s flag.
    pub cancel: AtomicBool,
    /// Tasks executed (stat).
    pub executed: AtomicUsize,
    /// Pool takes by a non-owner (stat).
    pub stolen: AtomicUsize,
    /// Split events (stat).
    pub splits: AtomicUsize,
    /// Total tasks ever created, splits included (stat).
    pub total: AtomicUsize,
}

impl ModelShared {
    /// Shared state for `initial` pending tasks and `workers` workers,
    /// of which all but worker 0 start pre-registered as starving
    /// (mirroring `ParallelJoin::run`).
    pub fn new(initial: usize, workers: usize) -> Self {
        ModelShared {
            pool: Mutex::new(VecDeque::new()),
            pool_len: AtomicUsize::new(0),
            starving: AtomicUsize::new(workers.saturating_sub(1)),
            pending: AtomicUsize::new(initial),
            stop: AtomicBool::new(false),
            cancel: AtomicBool::new(false),
            executed: AtomicUsize::new(0),
            stolen: AtomicUsize::new(0),
            splits: AtomicUsize::new(0),
            total: AtomicUsize::new(initial),
        }
    }
}

/// What one worker did: the tasks it executed and what was left in its
/// private deque when it exited (nonempty only after a stop).
pub struct WorkerOutcome {
    /// Tasks executed, in execution order.
    pub ran: Vec<ModelTask>,
    /// Private-deque leftovers at exit.
    pub leftover: Vec<ModelTask>,
}

/// One worker's run: the protocol skeleton of `worker_loop`, operation
/// for operation. `may_split` mirrors the non-CSJ/non-plane-sweep
/// condition; `pre_starving` mirrors workers 1..n starting registered.
pub fn worker(
    wid: usize,
    shared: &ModelShared,
    mut local: VecDeque<ModelTask>,
    may_split: bool,
    pre_starving: bool,
) -> WorkerOutcome {
    let mut ran = Vec::new();
    let mut registered_starving = pre_starving;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        // Acquire: private deque first, then the pool.
        let acquired = match local.pop_front() {
            Some(task) => Some((wid, task)),
            None => {
                let mut pool = shared.pool.lock().unwrap_or_else(PoisonError::into_inner);
                let item = pool.pop_front();
                // ORDERING: advisory mirror of the pool length, exactly
                // as in worker_loop (see DESIGN.md §9).
                shared.pool_len.store(pool.len(), Ordering::Relaxed);
                item
            }
        };
        let Some((owner, task)) = acquired else {
            if shared.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            if !registered_starving {
                // ORDERING: advisory — steers donation/splitting only.
                shared.starving.fetch_add(1, Ordering::Relaxed);
                registered_starving = true;
            }
            thread::yield_now();
            continue;
        };
        if registered_starving {
            // ORDERING: advisory — steers donation/splitting only.
            shared.starving.fetch_sub(1, Ordering::Relaxed);
            registered_starving = false;
        }
        if owner != wid {
            // ORDERING: stat counter, read only after all workers join.
            shared.stolen.fetch_add(1, Ordering::Relaxed);
        }

        // Task-boundary cancel check — between acquisition (possibly a
        // pool pop) and execution: the mid-steal window.
        // ORDERING: mirror of CancelToken::is_canceled (Relaxed).
        if shared.cancel.load(Ordering::Relaxed) {
            shared.stop.store(true, Ordering::SeqCst);
            break;
        }

        // Adaptive splitting under starvation.
        // ORDERING: advisory loads, as in worker_loop.
        let starving_now = shared.starving.load(Ordering::Relaxed);
        // ORDERING: as `starving`.
        let pool_len_now = shared.pool_len.load(Ordering::Relaxed);
        if may_split && task.splittable() && starving_now > pool_len_now {
            let (a, b) = task.split();
            // ORDERING: stat counters, read only after workers join.
            shared.splits.fetch_add(1, Ordering::Relaxed);
            shared.total.fetch_add(1, Ordering::Relaxed); // ORDERING: as `splits`
                                                          // Children added before the parent retires so `pending`
                                                          // never dips to zero in between (two children, one parent).
            shared.pending.fetch_add(1, Ordering::SeqCst);
            let mut pool = shared.pool.lock().unwrap_or_else(PoisonError::into_inner);
            pool.push_back((wid, a));
            pool.push_back((wid, b));
            // ORDERING: advisory mirror, as in the acquire path.
            shared.pool_len.store(pool.len(), Ordering::Relaxed);
            continue;
        }

        // Cold-path donation: starving peers, low pool, spare tasks.
        // ORDERING: advisory loads, as in worker_loop.
        let starving_now = shared.starving.load(Ordering::Relaxed);
        if starving_now > 0
            && shared.pool_len.load(Ordering::Relaxed) < starving_now // ORDERING: as `starving`
            && local.len() > 1
        {
            let give = local.len() / 2;
            let mut pool = shared.pool.lock().unwrap_or_else(PoisonError::into_inner);
            for _ in 0..give {
                if let Some(t) = local.pop_back() {
                    pool.push_back((wid, t));
                }
            }
            // ORDERING: advisory mirror, as in the acquire path.
            shared.pool_len.store(pool.len(), Ordering::Relaxed);
        }

        // "Execute" the task.
        shared.pending.fetch_sub(1, Ordering::SeqCst);
        // ORDERING: stat counter, read only after all workers join.
        shared.executed.fetch_add(1, Ordering::Relaxed);
        ran.push(task);
    }
    WorkerOutcome { ran, leftover: local.into_iter().collect() }
}

/// The leaves a set of executed tasks covers, sorted.
fn coverage(tasks: &[ModelTask]) -> Vec<u32> {
    let mut leaves: Vec<u32> = tasks.iter().flat_map(|t| t.lo..=t.hi).collect();
    leaves.sort_unstable();
    leaves
}

/// Asserts the stats identity that holds at quiescence under every
/// schedule: `executed` matches the work actually performed and
/// `pending` is exactly the unexecuted remainder.
fn assert_counters(shared: &ModelShared, outcomes: &[&WorkerOutcome]) {
    let ran: usize = outcomes.iter().map(|o| o.ran.len()).sum();
    assert_eq!(shared.executed.load(Ordering::SeqCst), ran, "executed != tasks actually run");
    let total = shared.total.load(Ordering::SeqCst);
    assert_eq!(
        shared.pending.load(Ordering::SeqCst),
        total - ran,
        "pending != total - executed at quiescence"
    );
}

/// Steal/donate protocol, two workers: worker 0 seeded with `n` leaf
/// tasks, worker 1 starting starving (as in `ParallelJoin::run`).
/// Every leaf must execute exactly once, wherever it ends up, and
/// `stolen` must count exactly worker 1's pool takes. Use `n >= 3` so
/// the donation path (requires `local.len() > 1` after an
/// acquisition) is reachable.
pub fn steal_donate_scenario(n: u32) {
    let shared = Arc::new(ModelShared::new(n as usize, 2));
    let seed: VecDeque<ModelTask> = (1..=n).map(ModelTask::leaf).collect();
    let thief = thread::spawn({
        let shared = Arc::clone(&shared);
        move || worker(1, &shared, VecDeque::new(), false, true)
    });
    let w0 = worker(0, &shared, seed, false, false);
    let w1 = thief.join();

    let mut all = w0.ran.clone();
    all.extend(w1.ran.iter().copied());
    assert_eq!(coverage(&all), (1..=n).collect::<Vec<_>>(), "each task exactly once");
    assert!(w0.leftover.is_empty() && w1.leftover.is_empty(), "no task left behind");
    assert_counters(&shared, &[&w0, &w1]);
    assert_eq!(
        shared.stolen.load(Ordering::SeqCst),
        w1.ran.len(),
        "every worker-1 task came via the pool and counted as a steal"
    );
    assert_eq!(shared.pending.load(Ordering::SeqCst), 0, "complete run leaves nothing pending");
}

/// Stop/cancel quiesce protocol: two workers over `n` leaf tasks plus
/// a canceller thread that fires mid-run. Under every schedule —
/// including cancel landing between a worker's pool pop and its
/// execution of that task (the mid-steal window) — both workers must
/// quiesce with consistent partial accounting: `executed` counts
/// exactly the tasks run, `pending` is exactly the remainder, and a
/// task acquired-but-dropped at the cancel boundary is part of that
/// remainder, never double-counted.
pub fn quiesce_scenario(n: u32) {
    let shared = Arc::new(ModelShared::new(n as usize, 2));
    let seed: VecDeque<ModelTask> = (1..=n).map(ModelTask::leaf).collect();
    let thief = thread::spawn({
        let shared = Arc::clone(&shared);
        move || worker(1, &shared, VecDeque::new(), false, true)
    });
    let canceller = thread::spawn({
        let shared = Arc::clone(&shared);
        // ORDERING: mirror of CancelToken::cancel (Relaxed).
        move || shared.cancel.store(true, Ordering::Relaxed)
    });
    let w0 = worker(0, &shared, seed, false, false);
    let w1 = thief.join();
    canceller.join();

    let mut all = w0.ran.clone();
    all.extend(w1.ran.iter().copied());
    let cov = coverage(&all);
    let full: Vec<u32> = (1..=n).collect();
    // Lossless prefix: no duplicates, no invented work.
    let mut dedup = cov.clone();
    dedup.dedup();
    assert_eq!(dedup, cov, "a task executed twice under cancellation");
    assert!(cov.iter().all(|l| full.contains(l)), "executed a task that was never created");
    assert_counters(&shared, &[&w0, &w1]);
    if shared.stop.load(Ordering::SeqCst) {
        // A worker observed the cancel. The unexecuted remainder is
        // split between the pool, private leftovers, and at most one
        // in-flight task per worker dropped at the cancel boundary.
        let pool_left = shared.pool.lock().unwrap_or_else(PoisonError::into_inner).len();
        let local_left = w0.leftover.len() + w1.leftover.len();
        let pending = shared.pending.load(Ordering::SeqCst);
        assert!(
            pending >= pool_left + local_left,
            "pending {pending} lost track of {} queued tasks",
            pool_left + local_left
        );
        assert!(
            pending - (pool_left + local_left) <= 2,
            "more dropped in-flight tasks than workers"
        );
    } else {
        // Both workers drained everything before the flag was seen.
        assert_eq!(cov, full, "clean finish must have executed everything");
        assert_eq!(shared.pending.load(Ordering::SeqCst), 0);
    }
}

/// Starvation-driven re-split protocol: worker 0 holds one splittable
/// task covering `n` leaves while worker 1 starves, so the first claim
/// must split (starving=1 > pool_len=0 is stable until the pool is
/// fed). Exactly-once coverage of the leaves must survive recursive
/// splitting and the ensuing pool scramble.
pub fn resplit_scenario(n: u32) {
    let shared = Arc::new(ModelShared::new(1, 2));
    let seed: VecDeque<ModelTask> = VecDeque::from([ModelTask { lo: 1, hi: n }]);
    let thief = thread::spawn({
        let shared = Arc::clone(&shared);
        move || worker(1, &shared, VecDeque::new(), false, true)
    });
    let w0 = worker(0, &shared, seed, true, false);
    let w1 = thief.join();

    let mut all = w0.ran.clone();
    all.extend(w1.ran.iter().copied());
    assert_eq!(
        coverage(&all),
        (1..=n).collect::<Vec<_>>(),
        "split children must cover the parent exactly once"
    );
    assert_counters(&shared, &[&w0, &w1]);
    assert!(
        shared.splits.load(Ordering::SeqCst) >= 1,
        "a starving peer over an empty pool must force a split"
    );
    let total = shared.total.load(Ordering::SeqCst);
    assert_eq!(
        total,
        1 + shared.splits.load(Ordering::SeqCst),
        "every split adds exactly one net task"
    );
    assert_eq!(shared.pending.load(Ordering::SeqCst), 0);
}

/// One event on the shard supervisor's channel: a worker for attempt
/// `attempt` either delivered its result or was lost (EOF after a
/// crash/kill).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardEvent {
    /// The worker's result frame arrived intact.
    Result(usize),
    /// The worker's stream ended without a result.
    Lost(usize),
}

/// Mirror of `csj_shard::supervisor`'s retry/quiesce protocol
/// skeleton: one shard, `max_attempts = 2`, a first attempt that is
/// always lost (the injected kill), a second attempt gated on the
/// supervisor's relaunch decision, and a canceller racing the whole
/// run — the worker-lost vs. cancel race.
///
/// The real supervisor is a single-threaded event loop fed by worker
/// pump threads over an mpsc channel, with cancellation observed
/// through `CancelToken`'s `Relaxed` flag at the loop top. The mirror
/// keeps exactly that shape: a mutex-protected event queue (the
/// channel), a `Relaxed` cancel flag, and supervisor-owned terminal
/// bookkeeping. Asserted under every schedule within the bound:
///
/// * terminal exclusivity — a shard never counts both completed and
///   failed, whatever order events and cancel land in;
/// * bounded retries — `attempts_used <= max_attempts` and
///   `retries == attempts_used - 1`, even when cancel interleaves
///   with the lost-worker relaunch window;
/// * no post-cancel launches — once the supervisor observes cancel it
///   stops relaunching, and a result a late worker still queues is
///   ignored, not merged into the accounting.
///
/// `second_attempt_dies` selects the beyond-budget path (both
/// attempts lost → the shard must degrade to failed, never relaunch a
/// third time) versus the recovery path (attempt 2 delivers → the
/// shard completes with exactly one counted retry).
pub fn shard_retry_quiesce_scenario(second_attempt_dies: bool) {
    const MAX_ATTEMPTS: usize = 2;
    let events = Arc::new(Mutex::new(VecDeque::<ShardEvent>::new()));
    let cancel = Arc::new(AtomicBool::new(false));
    let relaunch = Arc::new(AtomicBool::new(false));
    // The launch gate stands in for `transport.launch` on the retry
    // path: the supervisor holds it until it decides, and attempt 2's
    // worker blocks on it (blocked, not spinning, so the checker's
    // deadlock detection stays meaningful).
    let gate = Arc::new(Mutex::new(()));
    let gate_guard = gate.lock().unwrap_or_else(PoisonError::into_inner);
    let mut gate_guard = Some(gate_guard);

    // Attempt 1's worker: the injected kill — EOF without a result.
    let first = thread::spawn({
        let events = Arc::clone(&events);
        move || {
            events.lock().unwrap_or_else(PoisonError::into_inner).push_back(ShardEvent::Lost(1));
        }
    });
    // Attempt 2's worker: runs only if the supervisor decided to
    // relaunch before releasing the gate.
    let second = thread::spawn({
        let events = Arc::clone(&events);
        let relaunch = Arc::clone(&relaunch);
        let gate = Arc::clone(&gate);
        move || {
            let _launched = gate.lock().unwrap_or_else(PoisonError::into_inner);
            if relaunch.load(Ordering::SeqCst) {
                let ev =
                    if second_attempt_dies { ShardEvent::Lost(2) } else { ShardEvent::Result(2) };
                events.lock().unwrap_or_else(PoisonError::into_inner).push_back(ev);
            }
        }
    });
    let canceller = thread::spawn({
        let cancel = Arc::clone(&cancel);
        // ORDERING: mirror of CancelToken::cancel (Relaxed).
        move || cancel.store(true, Ordering::Relaxed)
    });

    // The supervisor event loop: cancel check at the loop top, then
    // drain the channel — exactly the shape of `Run::event_loop`.
    let mut attempts_used = 1usize; // attempt 1 launched before the loop
    let mut retries = 0usize;
    let mut completed = false;
    let mut failed = false;
    let mut canceled = false;
    loop {
        // ORDERING: mirror of CancelToken::is_canceled (Relaxed).
        if cancel.load(Ordering::Relaxed) {
            canceled = true;
            break;
        }
        let event = events.lock().unwrap_or_else(PoisonError::into_inner).pop_front();
        match event {
            Some(ShardEvent::Result(_)) => {
                completed = true;
            }
            Some(ShardEvent::Lost(_)) => {
                if attempts_used < MAX_ATTEMPTS {
                    attempts_used += 1;
                    retries += 1;
                    relaunch.store(true, Ordering::SeqCst);
                    gate_guard.take(); // release the gate: launch attempt 2
                } else {
                    failed = true;
                }
            }
            None => {
                thread::yield_now();
                continue;
            }
        }
        if completed || failed {
            break;
        }
    }
    // On every exit path the gate is released, so a never-launched
    // attempt 2 wakes, sees `relaunch` unset, and exits quietly.
    gate_guard.take();
    first.join();
    second.join();
    canceller.join();

    // Terminal exclusivity and bounded retries, under every schedule.
    assert!(!(completed && failed), "a shard cannot both complete and fail");
    assert!(attempts_used <= MAX_ATTEMPTS, "relaunched beyond the retry budget");
    assert_eq!(retries, attempts_used - 1, "every relaunch after the first is a retry");
    if completed {
        assert_eq!(retries, 1, "attempt 1 always dies; success means exactly one retry");
        assert!(!second_attempt_dies, "a doomed second attempt cannot complete");
    }
    if failed {
        assert_eq!(attempts_used, MAX_ATTEMPTS, "failure only after the budget is spent");
        assert!(second_attempt_dies, "the recovery path must not fail");
    }
    if !completed && !failed {
        assert!(canceled, "the only non-terminal exit is cancellation");
    }
    // A late worker may still have queued an event after the supervisor
    // exited; it must sit ignored in the channel, never merged.
    let leftover = events.lock().unwrap_or_else(PoisonError::into_inner).len();
    assert!(leftover <= 2, "at most one queued event per attempt");
}

/// Mirror of `csj_core::outofcore`'s prefetcher handshake: a dedicated
/// I/O thread races the engine over a byte-budget gate, a page queue
/// and a ready list, ending in the drop-time cancel/join.
///
/// The real protocol (`Prefetcher::spawn` / `drain_into` /
/// `Drop for Prefetcher`) has three legs, all kept operation for
/// operation with the same memory orderings:
///
/// * the I/O thread admits a read-ahead only while `ready_bytes`
///   (`Acquire`, pairing with the engine's `AcqRel` `fetch_sub`) plus
///   one page fits the budget, pops the oldest queued page, and
///   publishes the bytes with an `AcqRel` `fetch_add` before pushing
///   them onto `ready`;
/// * a failed read-ahead is dropped *silently* — the engine reads the
///   page synchronously when it gets there, so staging only ever
///   changes who reads the bytes, never what the traversal does;
/// * the engine drains `ready` into the store via the `stage_raw`
///   handoff, which rejects pages already resident or already staged;
///   on drop it cancels (`Relaxed`, the `CancelToken` mirror) and
///   joins the thread.
///
/// Asserted under every schedule within the bound: the budget gate
/// never over-admits, every page is decoded exactly once from exactly
/// one source (staged bytes or the synchronous fallback), a failed
/// read-ahead never stages, `ready_bytes` balances exactly the
/// undrained `ready` entries at quiescence, and no staged page is lost
/// or duplicated across the handoff
/// (`supplied + unconsumed + rejected + leftover == read_ahead`).
///
/// `read_ahead_fails` injects the lost-read leg: the prefetch read of
/// one page fails, and that page must arrive via the fallback.
pub fn prefetch_scenario(read_ahead_fails: bool) {
    const PAGES: u64 = 4;
    const FAIL_PAGE: u64 = 2;
    /// Model page size: one budget unit per page.
    const PAGE_BYTES: usize = 1;
    /// One page of budget, so the gate genuinely blocks and every
    /// admit/drain alternation is explored.
    const BUDGET: usize = 1;

    struct PrefetchModel {
        /// Pages the engine wants read, oldest first.
        queue: Mutex<VecDeque<u64>>,
        /// Pages read and awaiting hand-off to the store.
        ready: Mutex<Vec<(u64, usize)>>,
        /// Bytes held in `ready` — the admission gate.
        ready_bytes: AtomicUsize,
        /// Max bytes of read-ahead admitted to `ready`.
        budget: usize,
        /// Mirror of `CancelToken`'s flag.
        cancel: AtomicBool,
    }

    let shared = Arc::new(PrefetchModel {
        queue: Mutex::new((1..=PAGES).collect()),
        ready: Mutex::new(Vec::new()),
        ready_bytes: AtomicUsize::new(0),
        budget: BUDGET,
        cancel: AtomicBool::new(false),
    });

    // The I/O thread: the exact loop of `Prefetcher::spawn` — cancel
    // check, budget gate, queue pop, fallible read, publish.
    let io = thread::spawn({
        let shared = Arc::clone(&shared);
        move || {
            let mut read_ahead = 0usize;
            // ORDERING: mirror of CancelToken::is_canceled (Relaxed).
            while !shared.cancel.load(Ordering::Relaxed) {
                // ORDERING: Acquire pairs with the engine's AcqRel
                // fetch_sub in the drain, exactly as in the gate of
                // `Prefetcher::spawn`.
                if shared.ready_bytes.load(Ordering::Acquire) + PAGE_BYTES > shared.budget {
                    thread::yield_now(); // frontier full: wait for a drain
                    continue;
                }
                let next = shared.queue.lock().unwrap_or_else(PoisonError::into_inner).pop_front();
                let Some(page) = next else {
                    thread::yield_now();
                    continue;
                };
                // A failed read-ahead is not an error: dropped silently,
                // the engine reads the page synchronously itself.
                if read_ahead_fails && page == FAIL_PAGE {
                    continue;
                }
                // ORDERING: AcqRel publishes the budget claim to the
                // gate's Acquire load and the engine's drain, as in
                // `Prefetcher::spawn`.
                let seen = shared.ready_bytes.fetch_add(PAGE_BYTES, Ordering::AcqRel);
                assert!(
                    seen + PAGE_BYTES <= shared.budget,
                    "the gate admitted read-ahead past the budget"
                );
                shared
                    .ready
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push((page, PAGE_BYTES));
                read_ahead += 1;
            }
            read_ahead
        }
    });

    // The engine side: `drain_into` + the staged-or-sync decode of
    // `PagedStore::node`, page by page along the traversal.
    let mut resident: Vec<u64> = Vec::new();
    let mut staged: Vec<(u64, usize)> = Vec::new();
    let mut supplied = 0usize; // pages decoded from staged bytes
    let mut sync_reads = 0usize; // pages decoded via the fallback read
    let mut rejected = 0usize; // stage_raw refusals (already resident/staged)
    for page in 1..=PAGES {
        // drain_into: move every completed read into the staging area.
        let done: Vec<(u64, usize)> =
            std::mem::take(&mut *shared.ready.lock().unwrap_or_else(PoisonError::into_inner));
        for (p, bytes) in done {
            // ORDERING: AcqRel pairs with the gate's Acquire load,
            // publishing the freed budget, exactly as in `drain_into`.
            shared.ready_bytes.fetch_sub(bytes, Ordering::AcqRel);
            // stage_raw: pages already resident or staged are refused.
            if resident.contains(&p) || staged.iter().any(|&(q, _)| q == p) {
                rejected += 1;
            } else {
                staged.push((p, bytes));
            }
        }
        // node(page): staged bytes win; otherwise the synchronous read.
        if let Some(i) = staged.iter().position(|&(q, _)| q == page) {
            staged.remove(i);
            supplied += 1;
        } else {
            sync_reads += 1;
        }
        assert!(!resident.contains(&page), "a page was decoded twice");
        resident.push(page);
    }

    // Drop handshake, exactly `Drop for Prefetcher`: cancel, then join.
    // ORDERING: mirror of CancelToken::cancel (Relaxed).
    shared.cancel.store(true, Ordering::Relaxed);
    let read_ahead = io.join();

    // Every page decoded exactly once, from exactly one source.
    assert_eq!(supplied + sync_reads, PAGES as usize, "one byte source per page");
    if read_ahead_fails {
        assert!(supplied < PAGES as usize, "a failed read-ahead cannot stage its page");
    }
    // Budget accounting balances at quiescence: the unclaimed bytes are
    // exactly the undrained ready entries.
    let leftover = shared.ready.lock().unwrap_or_else(PoisonError::into_inner).len();
    assert_eq!(
        shared.ready_bytes.load(Ordering::SeqCst),
        leftover * PAGE_BYTES,
        "ready_bytes out of sync with the undrained staging area"
    );
    // Conservation across the handoff: everything the thread published
    // was consumed, is still staged, was refused, or sits undrained.
    assert!(read_ahead <= PAGES as usize, "read-ahead invented a page");
    assert_eq!(
        supplied + staged.len() + rejected + leftover,
        read_ahead,
        "a staged page was lost or duplicated in the handoff"
    );
}

/// The seeded race: data in a [`RaceCell`] published through a
/// `Relaxed` flag. No release/acquire edge connects the write to the
/// read, so some interleaving reads the cell concurrently with the
/// write — the checker must report a [`crate::Failure::DataRace`]
/// with a schedule that [`crate::replay`] reproduces.
pub fn relaxed_publication_race() {
    // ORDERING: deliberately broken — the Relaxed/Relaxed pair IS the
    // seeded bug this scenario exists to get caught.
    publication(Ordering::Relaxed, Ordering::Relaxed);
}

/// The corrected protocol: `Release` store / `Acquire` load. The same
/// accesses, now ordered — the checker must exhaust the schedule
/// space without a failure.
pub fn release_acquire_publication() {
    // ORDERING: the Release store publishes the cell write; the Acquire
    // load synchronizes with it — the minimal correct publication pair.
    publication(Ordering::Release, Ordering::Acquire);
}

fn publication(store: Ordering, load: Ordering) {
    let data = Arc::new(RaceCell::new(0u32));
    let flag = Arc::new(AtomicBool::new(false));
    let writer = thread::spawn({
        let data = Arc::clone(&data);
        let flag = Arc::clone(&flag);
        move || {
            data.set(42);
            // ORDERING: parameterized — Relaxed here is the seeded bug,
            // Release the fix; see the two public wrappers above.
            flag.store(true, store);
        }
    });
    // ORDERING: parameterized, as the store above.
    if flag.load(load) {
        assert_eq!(data.get(), 42, "flag observed but payload missing");
    }
    writer.join();
}
