//! Instrumented stand-ins for `std::sync` used by the
//! `csj_core::sync` facade under `--cfg csj_model`.
//!
//! Each shim wraps the real primitive and routes every access through
//! the virtual scheduler first: the calling thread parks, the
//! controller picks who runs, and only then does the access hit the
//! backing `std` object (always `SeqCst` underneath — the *modeled*
//! ordering lives in the vector clocks, the backing store is just a
//! value container that the serialized schedule keeps coherent).
//!
//! Passthrough: outside an active model execution the scheduler
//! declines to park ([`crate::sched`]'s thread-local is unset) and the
//! shims degrade to plain `std` behavior. This lets `csj-core` be
//! compiled with `--cfg csj_model` and still run its ordinary unit
//! tests; only closures under [`crate::check`] are explored.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::LockResult;
use std::sync::PoisonError;

pub use std::sync::Arc;

use crate::sched::{self, Op};

/// Atomic types instrumented for model checking.
pub mod atomic {
    use super::{fmt, sched, Op};

    pub use std::sync::atomic::Ordering;

    /// `true` for orderings with acquire semantics.
    fn acquires(order: Ordering) -> bool {
        // ORDERING: classifier, not a use site — maps the caller's
        // ordering onto the model's acquire happens-before edge.
        matches!(order, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    /// `true` for orderings with release semantics.
    fn releases(order: Ordering) -> bool {
        // ORDERING: classifier, not a use site — maps the caller's
        // ordering onto the model's release happens-before edge.
        matches!(order, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    /// The backing store is a value container; the schedule serializes
    /// all access, so SeqCst on it costs nothing and models nothing —
    /// the modeled ordering is what the caller passed, captured in the
    /// vector clocks.
    const BACKING: Ordering = Ordering::SeqCst;

    macro_rules! model_int_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$doc])*
            pub struct $name {
                id: u64,
                v: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates the atomic with an initial value.
                pub fn new(v: $ty) -> Self {
                    Self { id: sched::next_loc_id(), v: std::sync::atomic::$std::new(v) }
                }

                /// Instrumented `load`.
                pub fn load(&self, order: Ordering) -> $ty {
                    sched::yield_point(Op::AtomicLoad { loc: self.id, acquire: acquires(order) });
                    self.v.load(BACKING)
                }

                /// Instrumented `store`.
                pub fn store(&self, val: $ty, order: Ordering) {
                    sched::yield_point(Op::AtomicStore { loc: self.id, release: releases(order) });
                    self.v.store(val, BACKING);
                }

                /// Instrumented `fetch_add`.
                pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                    self.rmw(order);
                    self.v.fetch_add(val, BACKING)
                }

                /// Instrumented `fetch_sub`.
                pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                    self.rmw(order);
                    self.v.fetch_sub(val, BACKING)
                }

                /// Instrumented `fetch_max`.
                pub fn fetch_max(&self, val: $ty, order: Ordering) -> $ty {
                    self.rmw(order);
                    self.v.fetch_max(val, BACKING)
                }

                /// Instrumented `swap`.
                pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                    self.rmw(order);
                    self.v.swap(val, BACKING)
                }

                fn rmw(&self, order: Ordering) {
                    sched::yield_point(Op::AtomicRmw {
                        loc: self.id,
                        acquire: acquires(order),
                        release: releases(order),
                    });
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$ty>::default())
                }
            }

            impl fmt::Debug for $name {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    fmt::Debug::fmt(&self.v, f)
                }
            }
        };
    }

    model_int_atomic!(
        /// Instrumented `std::sync::atomic::AtomicU64`.
        AtomicU64,
        AtomicU64,
        u64
    );
    model_int_atomic!(
        /// Instrumented `std::sync::atomic::AtomicUsize`.
        AtomicUsize,
        AtomicUsize,
        usize
    );

    /// Instrumented `std::sync::atomic::AtomicBool`.
    pub struct AtomicBool {
        id: u64,
        v: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates the atomic with an initial value.
        pub fn new(v: bool) -> Self {
            Self { id: sched::next_loc_id(), v: std::sync::atomic::AtomicBool::new(v) }
        }

        /// Instrumented `load`.
        pub fn load(&self, order: Ordering) -> bool {
            sched::yield_point(Op::AtomicLoad { loc: self.id, acquire: acquires(order) });
            self.v.load(BACKING)
        }

        /// Instrumented `store`.
        pub fn store(&self, val: bool, order: Ordering) {
            sched::yield_point(Op::AtomicStore { loc: self.id, release: releases(order) });
            self.v.store(val, BACKING);
        }

        /// Instrumented `swap`.
        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            sched::yield_point(Op::AtomicRmw {
                loc: self.id,
                acquire: acquires(order),
                release: releases(order),
            });
            self.v.swap(val, BACKING)
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&self.v, f)
        }
    }
}

/// Instrumented `std::sync::Mutex`. Lock acquisition is a scheduling
/// point (and a disabled one while the mutex is held); release
/// publishes the holder's clock so the next acquirer inherits a
/// happens-before edge, exactly like the real thing.
pub struct Mutex<T> {
    id: u64,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self { id: sched::next_loc_id(), inner: std::sync::Mutex::new(value) }
    }

    /// Instrumented `lock`.
    ///
    /// # Errors
    ///
    /// Mirrors `std::sync::Mutex::lock`: returns [`PoisonError`] when a
    /// thread panicked while holding the lock. Model executions unwind
    /// through held guards at teardown, so poison is reachable there;
    /// callers use the same poison policy they would with `std`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        sched::yield_point(Op::MutexLock { loc: self.id });
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard { loc: self.id, inner: Some(g) }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                loc: self.id,
                inner: Some(poisoned.into_inner()),
            })),
        }
    }

    /// Instrumented `into_inner`.
    ///
    /// # Errors
    ///
    /// Mirrors `std::sync::Mutex::into_inner`: poison carries over from
    /// a panicked holder.
    pub fn into_inner(self) -> LockResult<T> {
        // Consuming the mutex needs no scheduling point: exclusive
        // ownership proves no other thread can touch it.
        self.inner.into_inner()
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

/// Guard returned by [`Mutex::lock`]; dropping it releases the model
/// mutex and publishes the holder's clock.
pub struct MutexGuard<'a, T> {
    loc: u64,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().unwrap_or_else(|| unreachable!("guard accessed after drop"))
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().unwrap_or_else(|| unreachable!("guard accessed after drop"))
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Free the backing lock before announcing the release so a
        // granted peer can never find it still held.
        self.inner.take();
        sched::mutex_unlock(self.loc);
    }
}
