//! [`RaceCell`]: shared data with *logical* race detection.
//!
//! The model's whole job is to catch unsynchronized access to shared
//! data, but genuinely unsynchronized access would be UB in the model
//! itself. `RaceCell` squares that: the storage is a plain mutex (safe,
//! always coherent), while every access is reported to the scheduler
//! as an *unsynchronized* read or write. The vector-clock detector
//! then flags any pair of accesses from different threads with no
//! happens-before edge between them — precisely the accesses that
//! would be a data race if the cell were a bare field, as it is in the
//! code being modeled.
//!
//! Use it in model fixtures wherever production code has plain shared
//! state whose safety rests on the protocol (e.g. data published via a
//! flag): if the protocol's orderings are wrong, the check fails with
//! a replayable [`crate::Failure::DataRace`].

use std::sync::{Mutex, PoisonError};

use crate::sched::{self, Op};

/// Shared storage whose accesses are race-checked instead of
/// synchronized. See the module docs.
#[derive(Debug, Default)]
pub struct RaceCell<T> {
    id: u64,
    v: Mutex<T>,
}

impl<T> RaceCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: T) -> Self {
        Self { id: sched::next_loc_id(), v: Mutex::new(value) }
    }

    /// Race-checked read.
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.with(Clone::clone)
    }

    /// Race-checked write.
    pub fn set(&self, value: T) {
        self.with_mut(|slot| *slot = value);
    }

    /// Race-checked read through a closure (for non-`Clone` payloads).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        sched::yield_point(Op::CellRead { loc: self.id });
        f(&self.v.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Race-checked in-place update.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        sched::yield_point(Op::CellWrite { loc: self.id });
        f(&mut self.v.lock().unwrap_or_else(PoisonError::into_inner))
    }
}
