//! Model-aware `thread::spawn` / `JoinHandle` / `yield_now`.
//!
//! Inside a model execution, spawned closures become model threads:
//! the spawn edge copies the parent's vector clock to the child, and
//! `join` is a scheduling point that stays disabled until the child
//! finishes (joining its final clock back — the join edge). Outside a
//! model execution everything falls through to `std::thread`.

use std::panic::resume_unwind;
use std::sync::{Arc, Mutex, PoisonError};

use crate::sched::{self, Op};

/// Handle to a spawned thread; mirrors `std::thread::JoinHandle`
/// except that [`JoinHandle::join`] returns `T` directly (a panicking
/// child already failed the model execution, or is propagated in
/// passthrough mode).
pub struct JoinHandle<T> {
    inner: Handle<T>,
}

enum Handle<T> {
    Model { tid: usize, slot: Arc<Mutex<Option<T>>>, os: std::thread::JoinHandle<()> },
    Native(std::thread::JoinHandle<T>),
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    pub fn join(self) -> T {
        match self.inner {
            Handle::Model { tid, slot, os } => {
                sched::yield_point(Op::Join { tid });
                // Reap the OS thread: the model thread has already
                // marked itself finished, so this cannot block on a
                // scheduling decision.
                let _ = os.join();
                let value = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
                match value {
                    Some(v) => v,
                    // The child unwound during teardown without
                    // producing a value; propagate the abort.
                    None => std::panic::panic_any(sched::ModelAbort),
                }
            }
            Handle::Native(h) => h.join().unwrap_or_else(|payload| resume_unwind(payload)),
        }
    }
}

/// Model-aware `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::current() {
        Some((inner, parent)) => {
            let tid = sched::register_thread(&inner, Some(parent));
            let slot = Arc::new(Mutex::new(None));
            let slot2 = Arc::clone(&slot);
            let os = std::thread::spawn(move || {
                sched::run_thread_body(inner, tid, move || {
                    let value = f();
                    *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
                });
            });
            JoinHandle { inner: Handle::Model { tid, slot, os } }
        }
        None => JoinHandle { inner: Handle::Native(std::thread::spawn(f)) },
    }
}

/// Model-aware `std::thread::yield_now`: a scheduling point the
/// explorer deprioritizes (spin-loop fairness) in model executions, a
/// real OS yield otherwise.
pub fn yield_now() {
    if !sched::yield_point(Op::Yield) {
        std::thread::yield_now();
    }
}
