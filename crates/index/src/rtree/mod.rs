//! Guttman's R-tree (SIGMOD 1984).
//!
//! Dynamic insertion with ChooseLeaf (least enlargement), linear or
//! quadratic node splitting, and deletion with tree condensation. One of
//! the three index structures of the paper's Experiment 4.

pub mod split;

use crate::arena::NodeId;
use crate::rect::{impl_join_index_for_rect, RNode, RectCore};
use crate::traits::LeafEntry;
use crate::{RTreeConfig, SplitStrategy};
use csj_geom::{Mbr, Point, RecordId};
use split::{ChildItem, SplitResult};

/// A dynamic R-tree over `D`-dimensional points.
///
/// ```
/// use csj_index::{rtree::RTree, RTreeConfig, JoinIndex};
/// use csj_geom::Point;
///
/// let mut tree = RTree::<2>::new(RTreeConfig::with_max_fanout(8));
/// for i in 0..100u32 {
///     tree.insert(i, Point::new([i as f64, (i % 10) as f64]));
/// }
/// assert_eq!(tree.num_records(), 100);
/// assert!(tree.remove(5, &Point::new([5.0, 5.0])));
/// assert_eq!(tree.num_records(), 99);
/// ```
#[derive(Clone, Debug)]
pub struct RTree<const D: usize> {
    pub(crate) core: RectCore<D>,
}

impl_join_index_for_rect!(RTree);

impl<const D: usize> RTree<D> {
    /// An empty R-tree.
    pub fn new(config: RTreeConfig) -> Self {
        RTree { core: RectCore::new(config) }
    }

    /// Builds the tree by inserting `points` one by one; record ids are
    /// the slice indexes.
    pub fn from_points(points: &[Point<D>], config: RTreeConfig) -> Self {
        let mut tree = Self::new(config);
        for (i, p) in points.iter().enumerate() {
            tree.insert(i as RecordId, *p);
        }
        tree
    }

    /// Bulk-loads via Sort-Tile-Recursive packing (see [`crate::bulk`]).
    pub fn bulk_load_str(points: &[Point<D>], config: RTreeConfig) -> Self {
        RTree { core: crate::bulk::str_pack(points, config) }
    }

    /// Access to the shared rectangle-tree core (queries, stats).
    pub fn core(&self) -> &RectCore<D> {
        &self.core
    }

    /// Inserts a record.
    pub fn insert(&mut self, id: RecordId, point: Point<D>) {
        debug_assert!(point.is_finite(), "non-finite point inserted");
        let entry = LeafEntry::new(id, point);
        let Some(root) = self.core.root else {
            let leaf = self.core.arena.alloc(RNode::new_leaf());
            let node = self.core.arena.get_mut(leaf);
            node.entries.push(entry);
            node.mbr = Mbr::from_point(&point);
            self.core.root = Some(leaf);
            self.core.num_records = 1;
            return;
        };
        let leaf = self.choose_leaf(root, &point);
        self.core.node_mut(leaf).entries.push(entry);
        self.core.expand_upward(leaf, &Mbr::from_point(&point));
        self.core.num_records += 1;
        if self.core.node(leaf).entries.len() > self.core.config.max_fanout {
            self.split_overflowing(leaf);
        }
    }

    /// ChooseLeaf: descend picking the child needing least enlargement
    /// (ties: smaller volume, then fewer children).
    fn choose_leaf(&self, mut node: NodeId, point: &Point<D>) -> NodeId {
        let pm = Mbr::from_point(point);
        loop {
            let n = self.core.node(node);
            if n.is_leaf() {
                return node;
            }
            let mut best = n.children[0];
            let mut best_enl = f64::INFINITY;
            let mut best_vol = f64::INFINITY;
            for &c in &n.children {
                let cm = self.core.node(c).mbr;
                let enl = cm.enlargement(&pm);
                let vol = cm.volume();
                if enl < best_enl || (enl == best_enl && vol < best_vol) {
                    best = c;
                    best_enl = enl;
                    best_vol = vol;
                }
            }
            node = best;
        }
    }

    /// Splits an overflowing node and propagates splits/MBR updates to the
    /// root.
    fn split_overflowing(&mut self, node_id: NodeId) {
        let (is_leaf, level) = {
            let n = self.core.node(node_id);
            (n.is_leaf(), n.level)
        };
        let min_fanout = self.core.config.min_fanout;
        let strategy = self.core.config.split;

        let sibling = if is_leaf {
            let entries = self.core.node_mut(node_id).entries.take();
            let SplitResult { left, left_mbr, right, right_mbr } = match strategy {
                SplitStrategy::Linear => split::split_linear(entries, min_fanout),
                SplitStrategy::Quadratic => split::split_quadratic(entries, min_fanout),
            };
            let node = self.core.node_mut(node_id);
            node.entries = left.into();
            node.mbr = left_mbr;
            let mut sib = RNode::new_leaf();
            sib.entries = right.into();
            sib.mbr = right_mbr;
            self.core.arena.alloc(sib)
        } else {
            let children = std::mem::take(&mut self.core.node_mut(node_id).children);
            let items: Vec<ChildItem<D>> = children
                .into_iter()
                .map(|c| ChildItem { id: c, mbr: self.core.node(c).mbr })
                .collect();
            let SplitResult { left, left_mbr, right, right_mbr } = match strategy {
                SplitStrategy::Linear => split::split_linear(items, min_fanout),
                SplitStrategy::Quadratic => split::split_quadratic(items, min_fanout),
            };
            let node = self.core.node_mut(node_id);
            node.children = left.iter().map(|c| c.id).collect();
            node.mbr = left_mbr;
            let mut sib = RNode::new_internal(level);
            sib.children = right.iter().map(|c| c.id).collect();
            sib.mbr = right_mbr;
            let sib_id = self.core.arena.alloc(sib);
            for c in &right {
                self.core.node_mut(c.id).parent = Some(sib_id);
            }
            sib_id
        };

        match self.core.node(node_id).parent {
            None => self.core.grow_root(sibling),
            Some(parent) => {
                self.core.node_mut(sibling).parent = Some(parent);
                self.core.node_mut(parent).children.push(sibling);
                self.core.adjust_upward(parent);
                if self.core.node(parent).children.len() > self.core.config.max_fanout {
                    self.split_overflowing(parent);
                }
            }
        }
    }

    /// Removes the record with the given id at the given point.
    ///
    /// Returns `false` (tree unchanged) if no such record exists. Underflow
    /// is handled by tree condensation: underfull nodes are dissolved and
    /// their records reinserted.
    pub fn remove(&mut self, id: RecordId, point: &Point<D>) -> bool {
        let Some(root) = self.core.root else { return false };
        let Some(leaf) = self.find_leaf(root, id, point) else { return false };
        let node = self.core.node_mut(leaf);
        let pos = node
            .entries
            .iter()
            .position(|e| e.id == id)
            // csj-lint: allow(panic-safety) — find_leaf just located this
            // id in this leaf; its absence would be index corruption.
            .expect("find_leaf returned a leaf without the entry");
        node.entries.swap_remove(pos);
        self.core.num_records -= 1;
        self.condense_tree(leaf);
        true
    }

    /// Locates the leaf holding record `id` at `point` (DFS over nodes
    /// whose MBR contains the point).
    fn find_leaf(&self, from: NodeId, id: RecordId, point: &Point<D>) -> Option<NodeId> {
        let mut stack = vec![from];
        while let Some(cur) = stack.pop() {
            let node = self.core.node(cur);
            if !node.mbr.contains_point(point) {
                continue;
            }
            if node.is_leaf() {
                if node.entries.iter().any(|e| e.id == id) {
                    return Some(cur);
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        None
    }

    /// CondenseTree: dissolve underfull ancestors, shrink the root, and
    /// reinsert orphaned records.
    fn condense_tree(&mut self, leaf: NodeId) {
        let min_fanout = self.core.config.min_fanout;
        let mut orphans: Vec<LeafEntry<D>> = Vec::new();
        let mut current = leaf;
        loop {
            let parent = self.core.node(current).parent;
            match parent {
                None => {
                    self.core.recompute_mbr(current);
                    break;
                }
                Some(p) => {
                    if self.core.node(current).occupancy() < min_fanout {
                        // Detach and dissolve the whole subtree.
                        let pos = self
                            .core
                            .node(p)
                            .children
                            .iter()
                            .position(|&c| c == current)
                            // csj-lint: allow(panic-safety) — parent links
                            // are maintained by insert/split; a missing
                            // back-edge would be index corruption.
                            .expect("child missing from parent");
                        self.core.node_mut(p).children.swap_remove(pos);
                        self.dissolve_subtree(current, &mut orphans);
                    } else {
                        self.core.recompute_mbr(current);
                    }
                    current = p;
                }
            }
        }
        // Shrink the root while it is an internal node with one child.
        while let Some(root) = self.core.root {
            let node = self.core.node(root);
            if !node.is_leaf() && node.children.len() == 1 {
                let only = node.children[0];
                self.core.node_mut(only).parent = None;
                self.core.root = Some(only);
                self.core.arena.free(root);
            } else if node.is_leaf() && node.entries.is_empty() && orphans.is_empty() {
                self.core.arena.free(root);
                self.core.root = None;
                break;
            } else if !node.is_leaf() && node.children.is_empty() {
                // All children dissolved into orphans.
                self.core.arena.free(root);
                self.core.root = None;
                break;
            } else {
                break;
            }
        }
        // Reinsert orphaned records.
        self.core.num_records -= orphans.len();
        for e in orphans {
            self.insert(e.id, e.point);
        }
    }

    /// Frees every node in the subtree, collecting its records.
    fn dissolve_subtree(&mut self, root: NodeId, orphans: &mut Vec<LeafEntry<D>>) {
        let mut stack = vec![root];
        while let Some(cur) = stack.pop() {
            let node = self.core.arena.free(cur);
            if node.is_leaf() {
                orphans.extend(node.entries);
            } else {
                stack.extend(node.children);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::JoinIndex;
    use crate::validate::validate_rect_tree;
    use csj_geom::Metric;

    fn grid_points(n_side: usize) -> Vec<Point<2>> {
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                pts.push(Point::new([i as f64, j as f64]));
            }
        }
        pts
    }

    #[test]
    fn empty_tree() {
        let tree = RTree::<2>::new(RTreeConfig::default());
        assert_eq!(tree.num_records(), 0);
        assert_eq!(tree.height(), 0);
        assert!(tree.root().is_none());
    }

    #[test]
    fn single_insert() {
        let mut tree = RTree::<2>::new(RTreeConfig::default());
        tree.insert(7, Point::new([0.5, 0.5]));
        assert_eq!(tree.num_records(), 1);
        assert_eq!(tree.height(), 1);
        let root = tree.root().unwrap();
        assert!(tree.is_leaf(root));
        assert_eq!(tree.leaf_entries(root)[0].id, 7);
    }

    #[test]
    fn insert_many_valid_both_strategies() {
        for split in [SplitStrategy::Linear, SplitStrategy::Quadratic] {
            let config = RTreeConfig::with_max_fanout(8).with_split(split);
            let tree = RTree::from_points(&grid_points(20), config);
            assert_eq!(tree.num_records(), 400);
            assert!(tree.height() >= 2, "tree must have split");
            validate_rect_tree(tree.core()).unwrap_or_else(|e| panic!("{split:?}: {e}"));
        }
    }

    #[test]
    fn range_query_matches_filter() {
        let pts = grid_points(15);
        let tree = RTree::from_points(&pts, RTreeConfig::with_max_fanout(6));
        let q = Mbr::from_corners(&Point::new([2.5, 2.5]), &Point::new([6.5, 8.5]));
        let mut got = tree.core().range_query_mbr(&q);
        got.sort_unstable();
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains_point(p))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn ball_query_matches_filter() {
        let pts = grid_points(12);
        let tree = RTree::from_points(&pts, RTreeConfig::with_max_fanout(6));
        let center = Point::new([5.3, 5.7]);
        let eps = 2.4;
        let mut got = tree.core().range_query_ball(&center, eps, Metric::Euclidean);
        got.sort_unstable();
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| center.euclidean(p) <= eps)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_all_records() {
        let pts = grid_points(10);
        let mut tree = RTree::from_points(&pts, RTreeConfig::with_max_fanout(5));
        for (i, p) in pts.iter().enumerate() {
            assert!(tree.remove(i as u32, p), "record {i} must be removable");
            validate_rect_tree(tree.core()).unwrap();
        }
        assert_eq!(tree.num_records(), 0);
        assert!(tree.root().is_none());
        assert_eq!(tree.core().node_count(), 0, "no leaked nodes");
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut tree = RTree::from_points(&grid_points(5), RTreeConfig::with_max_fanout(5));
        assert!(!tree.remove(999, &Point::new([0.0, 0.0])));
        assert!(!tree.remove(0, &Point::new([100.0, 100.0])), "wrong location");
        assert_eq!(tree.num_records(), 25);
    }

    #[test]
    fn interleaved_insert_remove() {
        let mut tree = RTree::<2>::new(RTreeConfig::with_max_fanout(4));
        let pts = grid_points(8);
        for (i, p) in pts.iter().enumerate() {
            tree.insert(i as u32, *p);
            if i % 3 == 2 {
                assert!(tree.remove((i - 1) as u32, &pts[i - 1]));
            }
            validate_rect_tree(tree.core()).unwrap();
        }
        let expected = 64 - 64 / 3;
        assert_eq!(tree.num_records(), expected);
    }

    #[test]
    fn duplicate_points_allowed() {
        let mut tree = RTree::<2>::new(RTreeConfig::with_max_fanout(4));
        let p = Point::new([0.5, 0.5]);
        for i in 0..20 {
            tree.insert(i, p);
        }
        assert_eq!(tree.num_records(), 20);
        validate_rect_tree(tree.core()).unwrap();
        assert_eq!(tree.core().range_query_ball(&p, 0.0, Metric::Euclidean).len(), 20);
    }

    #[test]
    fn collect_record_ids_covers_tree() {
        let tree = RTree::from_points(&grid_points(9), RTreeConfig::with_max_fanout(5));
        let mut ids = Vec::new();
        tree.collect_record_ids(tree.root().unwrap(), &mut ids);
        ids.sort_unstable();
        assert_eq!(ids, (0..81u32).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    #[allow(unused_imports)]
    use crate::traits::JoinIndex;
    use crate::validate::validate_rect_tree;
    use csj_geom::Metric;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Invariants hold after arbitrary insertion sequences, for both
        /// split strategies and several fanouts.
        #[test]
        fn insertion_preserves_invariants(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 1..300),
            quadratic in any::<bool>(),
            fanout in 4usize..16,
        ) {
            let split = if quadratic { SplitStrategy::Quadratic } else { SplitStrategy::Linear };
            let config = RTreeConfig::with_max_fanout(fanout).with_split(split);
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = RTree::from_points(&points, config);
            prop_assert_eq!(tree.num_records(), points.len());
            prop_assert!(validate_rect_tree(tree.core()).is_ok());
        }

        /// Ball queries agree with a linear scan.
        #[test]
        fn ball_query_matches_scan(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 1..200),
            center in prop::array::uniform2(0.0f64..1.0),
            eps in 0.0f64..0.5,
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = RTree::from_points(&points, RTreeConfig::with_max_fanout(8));
            let center = Point::new(center);
            let mut got = tree.core().range_query_ball(&center, eps, Metric::Euclidean);
            got.sort_unstable();
            let mut want: Vec<u32> = points.iter().enumerate()
                .filter(|(_, p)| center.euclidean(p) <= eps)
                .map(|(i, _)| i as u32)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        /// Removing a random subset leaves exactly the complement, with
        /// invariants intact throughout.
        #[test]
        fn removal_leaves_complement(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 1..120),
            seed in any::<u64>(),
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let mut tree = RTree::from_points(&points, RTreeConfig::with_max_fanout(5));
            let mut kept: Vec<u32> = Vec::new();
            for (i, p) in points.iter().enumerate() {
                // Simple deterministic pseudo-random selection.
                if (seed.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(i as u32)) & 1 == 0 {
                    prop_assert!(tree.remove(i as u32, p));
                } else {
                    kept.push(i as u32);
                }
            }
            prop_assert!(validate_rect_tree(tree.core()).is_ok());
            prop_assert_eq!(tree.num_records(), kept.len());
            let mut ids: Vec<u32> = tree.core().iter_records().map(|e| e.id).collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, kept);
        }
    }
}
