//! Guttman node-split algorithms (linear and quadratic).
//!
//! The splits are generic over the item being distributed — leaf entries
//! (point records) or internal entries (child nodes with MBRs) — so one
//! implementation serves both levels of the tree.

use crate::arena::NodeId;
use crate::traits::LeafEntry;
use csj_geom::Mbr;

/// An item that a node split can distribute: anything with an MBR.
pub trait SplitItem<const D: usize> {
    /// Bounding rectangle of the item.
    fn mbr(&self) -> Mbr<D>;
}

impl<const D: usize> SplitItem<D> for LeafEntry<D> {
    fn mbr(&self) -> Mbr<D> {
        Mbr::from_point(&self.point)
    }
}

/// A child node viewed as a split item.
#[derive(Clone, Copy, Debug)]
pub struct ChildItem<const D: usize> {
    /// Child node id.
    pub id: NodeId,
    /// The child's MBR at split time.
    pub mbr: Mbr<D>,
}

impl<const D: usize> SplitItem<D> for ChildItem<D> {
    fn mbr(&self) -> Mbr<D> {
        self.mbr
    }
}

/// Result of distributing an overflowing node's items into two groups.
pub struct SplitResult<T, const D: usize> {
    /// First group (stays in the original node).
    pub left: Vec<T>,
    /// MBR of the first group.
    pub left_mbr: Mbr<D>,
    /// Second group (moves to the new sibling).
    pub right: Vec<T>,
    /// MBR of the second group.
    pub right_mbr: Mbr<D>,
}

/// Guttman's linear-cost split.
///
/// Seeds are the pair with greatest normalized separation along any axis;
/// remaining items go to the group whose MBR grows least, with the minimum
/// fanout enforced.
// csj-lint: allow(error-hygiene) — SplitResult is a plain struct (two
// groups plus their MBRs), not a fallible Result; the split is total.
pub fn split_linear<T: SplitItem<D>, const D: usize>(
    items: Vec<T>,
    min_fanout: usize,
) -> SplitResult<T, D> {
    debug_assert!(items.len() >= 2 * min_fanout.max(1));
    let n = items.len();

    // LinearPickSeeds: per axis, the entry with the highest low side and
    // the entry with the lowest high side; separation normalized by the
    // total width on that axis.
    let mut best_sep = f64::NEG_INFINITY;
    let mut seed_a = 0;
    let mut seed_b = n - 1;
    for axis in 0..D {
        let mut highest_lo = 0;
        let mut lowest_hi = 0;
        let mut min_lo = f64::INFINITY;
        let mut max_hi = f64::NEG_INFINITY;
        for (i, it) in items.iter().enumerate() {
            let m = it.mbr();
            if m.lo[axis] > items[highest_lo].mbr().lo[axis] {
                highest_lo = i;
            }
            if m.hi[axis] < items[lowest_hi].mbr().hi[axis] {
                lowest_hi = i;
            }
            min_lo = min_lo.min(m.lo[axis]);
            max_hi = max_hi.max(m.hi[axis]);
        }
        let width = max_hi - min_lo;
        if width <= 0.0 || highest_lo == lowest_hi {
            continue;
        }
        let sep = (items[highest_lo].mbr().lo[axis] - items[lowest_hi].mbr().hi[axis]) / width;
        if sep > best_sep {
            best_sep = sep;
            seed_a = lowest_hi;
            seed_b = highest_lo;
        }
    }
    if seed_a == seed_b {
        // Degenerate data (e.g. all identical rects): any two distinct items.
        seed_b = if seed_a == 0 { 1 } else { 0 };
    }
    distribute(items, seed_a, seed_b, min_fanout, false)
}

/// Guttman's quadratic-cost split.
///
/// Seeds are the pair wasting the most area if grouped together; remaining
/// items are assigned in order of strongest preference.
// csj-lint: allow(error-hygiene) — SplitResult is a plain struct (two
// groups plus their MBRs), not a fallible Result; the split is total.
pub fn split_quadratic<T: SplitItem<D>, const D: usize>(
    items: Vec<T>,
    min_fanout: usize,
) -> SplitResult<T, D> {
    debug_assert!(items.len() >= 2 * min_fanout.max(1));
    // QuadraticPickSeeds: maximize dead space of the pair's union.
    let mut best_waste = f64::NEG_INFINITY;
    let mut seed_a = 0;
    let mut seed_b = 1;
    for (i, item_i) in items.iter().enumerate() {
        let mi = item_i.mbr();
        for (j, item_j) in items.iter().enumerate().skip(i + 1) {
            let mj = item_j.mbr();
            let waste = mi.union(&mj).volume() - mi.volume() - mj.volume();
            if waste > best_waste {
                best_waste = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    distribute(items, seed_a, seed_b, min_fanout, true)
}

/// Shared assignment loop. With `pick_next`, the next item is chosen by
/// maximal preference difference (quadratic); otherwise items are taken in
/// input order (linear).
fn distribute<T: SplitItem<D>, const D: usize>(
    mut items: Vec<T>,
    seed_a: usize,
    seed_b: usize,
    min_fanout: usize,
    pick_next: bool,
) -> SplitResult<T, D> {
    debug_assert_ne!(seed_a, seed_b);
    // Remove seeds (higher index first so the lower stays valid).
    let (hi, lo) = if seed_a > seed_b { (seed_a, seed_b) } else { (seed_b, seed_a) };
    let item_hi = items.swap_remove(hi);
    let item_lo = items.swap_remove(lo);

    let mut left = vec![item_lo];
    let mut right = vec![item_hi];
    let mut left_mbr = left[0].mbr();
    let mut right_mbr = right[0].mbr();

    while !items.is_empty() {
        let remaining = items.len();
        // Min-fanout forcing: if one group needs every remaining item,
        // hand them all over.
        if left.len() + remaining <= min_fanout {
            for it in items.drain(..) {
                left_mbr.expand_to_mbr(&it.mbr());
                left.push(it);
            }
            break;
        }
        if right.len() + remaining <= min_fanout {
            for it in items.drain(..) {
                right_mbr.expand_to_mbr(&it.mbr());
                right.push(it);
            }
            break;
        }

        let idx = if pick_next {
            // PickNext: strongest preference for one group.
            let mut best = 0;
            let mut best_diff = f64::NEG_INFINITY;
            for (i, it) in items.iter().enumerate() {
                let m = it.mbr();
                let d1 = left_mbr.enlargement(&m);
                let d2 = right_mbr.enlargement(&m);
                let diff = (d1 - d2).abs();
                if diff > best_diff {
                    best_diff = diff;
                    best = i;
                }
            }
            best
        } else {
            items.len() - 1
        };
        let it = items.swap_remove(idx);
        let m = it.mbr();
        let e_left = left_mbr.enlargement(&m);
        let e_right = right_mbr.enlargement(&m);
        let to_left = match e_left.partial_cmp(&e_right) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => {
                // Ties: smaller area, then fewer items.
                match left_mbr.volume().partial_cmp(&right_mbr.volume()) {
                    Some(std::cmp::Ordering::Less) => true,
                    Some(std::cmp::Ordering::Greater) => false,
                    _ => left.len() <= right.len(),
                }
            }
        };
        if to_left {
            left_mbr.expand_to_mbr(&m);
            left.push(it);
        } else {
            right_mbr.expand_to_mbr(&m);
            right.push(it);
        }
    }

    SplitResult { left, left_mbr, right, right_mbr }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csj_geom::Point;

    fn entries(pts: &[[f64; 2]]) -> Vec<LeafEntry<2>> {
        pts.iter().enumerate().map(|(i, p)| LeafEntry::new(i as u32, Point::new(*p))).collect()
    }

    fn check_result(r: &SplitResult<LeafEntry<2>, 2>, total: usize, min_fanout: usize) {
        assert_eq!(r.left.len() + r.right.len(), total);
        assert!(r.left.len() >= min_fanout, "left {} < {min_fanout}", r.left.len());
        assert!(r.right.len() >= min_fanout, "right {} < {min_fanout}", r.right.len());
        for e in &r.left {
            assert!(r.left_mbr.contains_point(&e.point));
        }
        for e in &r.right {
            assert!(r.right_mbr.contains_point(&e.point));
        }
    }

    #[test]
    fn linear_separates_two_clusters() {
        let mut pts = vec![];
        for i in 0..5 {
            pts.push([i as f64 * 0.01, 0.0]);
            pts.push([10.0 + i as f64 * 0.01, 0.0]);
        }
        let r = split_linear(entries(&pts), 2);
        check_result(&r, 10, 2);
        // Two well-separated clusters should be cleanly cut.
        assert_eq!(r.left.len(), 5);
        assert_eq!(r.right.len(), 5);
        assert_eq!(r.left_mbr.overlap_volume(&r.right_mbr), 0.0);
    }

    #[test]
    fn quadratic_separates_two_clusters() {
        let mut pts = vec![];
        for i in 0..5 {
            pts.push([0.0, i as f64 * 0.01]);
            pts.push([0.0, 7.0 + i as f64 * 0.01]);
        }
        let r = split_quadratic(entries(&pts), 2);
        check_result(&r, 10, 2);
        assert_eq!(r.left.len(), 5);
        assert_eq!(r.right.len(), 5);
    }

    #[test]
    fn identical_points_still_split_validly() {
        let pts = vec![[1.0, 1.0]; 8];
        let r = split_linear(entries(&pts), 3);
        check_result(&r, 8, 3);
        let r = split_quadratic(entries(&pts), 3);
        check_result(&r, 8, 3);
    }

    #[test]
    fn min_fanout_forced_assignment() {
        // 9 points: 8 near origin, 1 far away. With min fanout 4, the far
        // singleton's group must be topped up to 4.
        let mut pts = vec![[100.0, 100.0]];
        for i in 0..8 {
            pts.push([i as f64 * 0.001, 0.0]);
        }
        for r in [split_linear(entries(&pts), 4), split_quadratic(entries(&pts), 4)] {
            check_result(&r, 9, 4);
        }
    }

    #[test]
    fn child_items_split() {
        let items: Vec<ChildItem<2>> = (0..6)
            .map(|i| ChildItem {
                id: NodeId(i),
                mbr: Mbr::from_corners(
                    &Point::new([i as f64 * 5.0, 0.0]),
                    &Point::new([i as f64 * 5.0 + 1.0, 1.0]),
                ),
            })
            .collect();
        let r = split_quadratic(items, 2);
        assert_eq!(r.left.len() + r.right.len(), 6);
        assert!(r.left.len() >= 2 && r.right.len() >= 2);
        // Ids preserved.
        let mut ids: Vec<u32> = r.left.iter().chain(r.right.iter()).map(|c| c.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use csj_geom::Point;
    use proptest::prelude::*;

    fn arb_entries() -> impl Strategy<Value = Vec<LeafEntry<2>>> {
        prop::collection::vec(prop::array::uniform2(-100.0f64..100.0), 6..60).prop_map(|v| {
            v.into_iter()
                .enumerate()
                .map(|(i, p)| LeafEntry::new(i as u32, Point::new(p)))
                .collect()
        })
    }

    proptest! {
        /// Both splits partition the input, respect the minimum fanout and
        /// produce covering MBRs.
        #[test]
        fn splits_are_valid_partitions(items in arb_entries(), quadratic in any::<bool>()) {
            let n = items.len();
            let min_fanout = (n / 3).clamp(1, n / 2);
            let ids_before: std::collections::BTreeSet<u32> =
                items.iter().map(|e| e.id).collect();
            let r = if quadratic {
                split_quadratic(items, min_fanout)
            } else {
                split_linear(items, min_fanout)
            };
            prop_assert_eq!(r.left.len() + r.right.len(), n);
            prop_assert!(r.left.len() >= min_fanout);
            prop_assert!(r.right.len() >= min_fanout);
            let ids_after: std::collections::BTreeSet<u32> =
                r.left.iter().chain(r.right.iter()).map(|e| e.id).collect();
            prop_assert_eq!(ids_before, ids_after);
            for e in &r.left {
                prop_assert!(r.left_mbr.contains_point(&e.point));
            }
            for e in &r.right {
                prop_assert!(r.right_mbr.contains_point(&e.point));
            }
        }
    }
}
