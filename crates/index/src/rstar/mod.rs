//! The R*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD 1990).
//!
//! The paper's default index ("we used ... a standard R*-Tree
//! implementation"). Differs from the Guttman R-tree in three ways, all
//! implemented here:
//!
//! * **ChooseSubtree** minimizes *overlap* enlargement at the level just
//!   above the target (area enlargement higher up);
//! * **topological split** picks the split axis by minimal margin and the
//!   split index by minimal overlap ([`split`]);
//! * **forced reinsertion**: the first overflow per level per insertion
//!   evicts the ~30% of entries farthest from the node center and
//!   reinserts them, letting the tree reorganize instead of splitting.

pub mod split;

use crate::arena::NodeId;
use crate::rect::{impl_join_index_for_rect, RNode, RectCore};
use crate::rtree::split::{ChildItem, SplitResult};
use crate::traits::LeafEntry;
use crate::RTreeConfig;
use csj_geom::{Mbr, Point, RecordId};
use split::split_rstar;

/// A dynamic R*-tree over `D`-dimensional points.
///
/// ```
/// use csj_index::{rstar::RStarTree, RTreeConfig, JoinIndex};
/// use csj_geom::Point;
///
/// let mut tree = RStarTree::<2>::new(RTreeConfig::with_max_fanout(10));
/// for i in 0..500u32 {
///     let t = i as f64 / 500.0;
///     tree.insert(i, Point::new([t, (t * 37.0).fract()]));
/// }
/// assert_eq!(tree.num_records(), 500);
/// ```
#[derive(Clone, Debug)]
pub struct RStarTree<const D: usize> {
    pub(crate) core: RectCore<D>,
}

impl_join_index_for_rect!(RStarTree);

impl<const D: usize> RStarTree<D> {
    /// An empty R*-tree.
    pub fn new(config: RTreeConfig) -> Self {
        RStarTree { core: RectCore::new(config) }
    }

    /// Builds the tree by inserting `points` one by one; record ids are
    /// the slice indexes.
    pub fn from_points(points: &[Point<D>], config: RTreeConfig) -> Self {
        let mut tree = Self::new(config);
        for (i, p) in points.iter().enumerate() {
            tree.insert(i as RecordId, *p);
        }
        tree
    }

    /// Bulk-loads via Sort-Tile-Recursive packing (see [`crate::bulk`]).
    pub fn bulk_load_str(points: &[Point<D>], config: RTreeConfig) -> Self {
        RStarTree { core: crate::bulk::str_pack(points, config) }
    }

    /// Bulk-loads via Hilbert-curve packing (see [`crate::bulk`]).
    pub fn bulk_load_hilbert(points: &[Point<D>], config: RTreeConfig) -> Self {
        RStarTree { core: crate::bulk::hilbert_pack(points, config) }
    }

    /// Bulk-loads via OMT top-down packing (see [`crate::bulk`]).
    pub fn bulk_load_omt(points: &[Point<D>], config: RTreeConfig) -> Self {
        RStarTree { core: crate::bulk::omt_pack(points, config) }
    }

    /// Access to the shared rectangle-tree core (queries, stats).
    pub fn core(&self) -> &RectCore<D> {
        &self.core
    }

    /// Inserts a record.
    pub fn insert(&mut self, id: RecordId, point: Point<D>) {
        debug_assert!(point.is_finite(), "non-finite point inserted");
        let entry = LeafEntry::new(id, point);
        if self.core.root.is_none() {
            let leaf = self.core.arena.alloc(RNode::new_leaf());
            let node = self.core.arena.get_mut(leaf);
            node.entries.push(entry);
            node.mbr = Mbr::from_point(&point);
            self.core.root = Some(leaf);
            self.core.num_records = 1;
            return;
        }
        // One forced-reinsert opportunity per level per top-level insert.
        let mut reinserted = vec![false; self.core.height()];
        self.insert_leaf_entry(entry, &mut reinserted);
        self.core.num_records += 1;
    }

    fn insert_leaf_entry(&mut self, entry: LeafEntry<D>, reinserted: &mut Vec<bool>) {
        let leaf = self.choose_subtree(&Mbr::from_point(&entry.point), 0);
        let point_mbr = Mbr::from_point(&entry.point);
        self.core.node_mut(leaf).entries.push(entry);
        self.core.expand_upward(leaf, &point_mbr);
        if self.core.node(leaf).entries.len() > self.core.config.max_fanout {
            self.overflow_treatment(leaf, reinserted);
        }
    }

    /// Re-attaches an orphaned node (from a forced reinsert at an internal
    /// level) under a parent at `node.level + 1`.
    fn insert_orphan_node(&mut self, orphan: NodeId, reinserted: &mut Vec<bool>) {
        let (orphan_mbr, level) = {
            let n = self.core.node(orphan);
            (n.mbr, n.level)
        };
        let parent = self.choose_subtree(&orphan_mbr, level + 1);
        self.core.node_mut(orphan).parent = Some(parent);
        self.core.node_mut(parent).children.push(orphan);
        self.core.expand_upward(parent, &orphan_mbr);
        if self.core.node(parent).children.len() > self.core.config.max_fanout {
            self.overflow_treatment(parent, reinserted);
        }
    }

    /// ChooseSubtree: descend to the node at `target_level` best suited to
    /// receive `new_mbr`.
    fn choose_subtree(&self, new_mbr: &Mbr<D>, target_level: u32) -> NodeId {
        // csj-lint: allow(panic-safety) — callers create the root before
        // descending; an empty tree cannot reach choose_subtree.
        let mut node = self.core.root.expect("choose_subtree on empty tree");
        loop {
            let n = self.core.node(node);
            if n.level == target_level {
                return node;
            }
            debug_assert!(n.level > target_level);
            let use_overlap_rule = n.level == target_level + 1;
            let mut best = n.children[0];
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for &c in &n.children {
                let cm = self.core.node(c).mbr;
                let enlargement = cm.enlargement(new_mbr);
                let key = if use_overlap_rule {
                    // Overlap enlargement against the siblings.
                    let grown = cm.union(new_mbr);
                    let mut overlap_delta = 0.0;
                    for &s in &n.children {
                        if s == c {
                            continue;
                        }
                        let sm = self.core.node(s).mbr;
                        overlap_delta += grown.overlap_volume(&sm) - cm.overlap_volume(&sm);
                    }
                    (overlap_delta, enlargement, cm.volume())
                } else {
                    (enlargement, cm.volume(), 0.0)
                };
                if key < best_key {
                    best_key = key;
                    best = c;
                }
            }
            node = best;
        }
    }

    /// OverflowTreatment: forced reinsert on the first overflow at a level
    /// (unless the node is the root), split otherwise.
    fn overflow_treatment(&mut self, node: NodeId, reinserted: &mut Vec<bool>) {
        let level = self.core.node(node).level as usize;
        let is_root = self.core.node(node).parent.is_none();
        if !is_root && level < reinserted.len() && !reinserted[level] {
            reinserted[level] = true;
            self.forced_reinsert(node, reinserted);
        } else {
            self.split_overflowing(node, reinserted);
        }
    }

    /// Evicts the `p` entries whose centers are farthest from the node
    /// center and reinserts them closest-first ("close reinsert").
    fn forced_reinsert(&mut self, node_id: NodeId, reinserted: &mut Vec<bool>) {
        let p = ((self.core.config.reinsert_fraction * self.core.config.max_fanout as f64).ceil()
            as usize)
            .max(1);
        let center = self.core.node(node_id).mbr.center();
        let is_leaf = self.core.node(node_id).is_leaf();

        if is_leaf {
            let store = &mut self.core.arena.get_mut(node_id).entries;
            let keep = store.len() - p;
            let evicted: Vec<LeafEntry<D>> = store.edit(|entries| {
                // Farthest entries at the tail.
                entries.sort_by(|a, b| {
                    a.point.sq_euclidean(&center).total_cmp(&b.point.sq_euclidean(&center))
                });
                entries.split_off(keep)
            });
            self.core.adjust_upward(node_id);
            // Close reinsert: nearest evictee first.
            for e in evicted.into_iter() {
                self.insert_leaf_entry(e, reinserted);
            }
        } else {
            let children = &mut self.core.arena.get_mut(node_id).children;
            let mut with_dist: Vec<NodeId> = std::mem::take(children);
            // Need center distances; re-borrow immutably per child.
            with_dist.sort_by(|&a, &b| {
                let da = self.core.node(a).mbr.center().sq_euclidean(&center);
                let db = self.core.node(b).mbr.center().sq_euclidean(&center);
                da.total_cmp(&db)
            });
            let keep = with_dist.len() - p;
            let evicted: Vec<NodeId> = with_dist.split_off(keep);
            self.core.arena.get_mut(node_id).children = with_dist;
            self.core.adjust_upward(node_id);
            for c in evicted.into_iter() {
                self.insert_orphan_node(c, reinserted);
            }
        }
    }

    /// Splits an overflowing node with the R* topological split and
    /// propagates to the root.
    fn split_overflowing(&mut self, node_id: NodeId, reinserted: &mut Vec<bool>) {
        let (is_leaf, level) = {
            let n = self.core.node(node_id);
            (n.is_leaf(), n.level)
        };
        let min_fanout = self.core.config.min_fanout;

        let sibling = if is_leaf {
            let entries = self.core.node_mut(node_id).entries.take();
            let SplitResult { left, left_mbr, right, right_mbr } = split_rstar(entries, min_fanout);
            let node = self.core.node_mut(node_id);
            node.entries = left.into();
            node.mbr = left_mbr;
            let mut sib = RNode::new_leaf();
            sib.entries = right.into();
            sib.mbr = right_mbr;
            self.core.arena.alloc(sib)
        } else {
            let children = std::mem::take(&mut self.core.node_mut(node_id).children);
            let items: Vec<ChildItem<D>> = children
                .into_iter()
                .map(|c| ChildItem { id: c, mbr: self.core.node(c).mbr })
                .collect();
            let SplitResult { left, left_mbr, right, right_mbr } = split_rstar(items, min_fanout);
            let node = self.core.node_mut(node_id);
            node.children = left.iter().map(|c| c.id).collect();
            node.mbr = left_mbr;
            let mut sib = RNode::new_internal(level);
            sib.children = right.iter().map(|c| c.id).collect();
            sib.mbr = right_mbr;
            let sib_id = self.core.arena.alloc(sib);
            for c in &right {
                self.core.node_mut(c.id).parent = Some(sib_id);
            }
            sib_id
        };

        match self.core.node(node_id).parent {
            None => {
                self.core.grow_root(sibling);
                reinserted.push(false); // tree grew a level
            }
            Some(parent) => {
                self.core.node_mut(sibling).parent = Some(parent);
                self.core.node_mut(parent).children.push(sibling);
                self.core.adjust_upward(parent);
                if self.core.node(parent).children.len() > self.core.config.max_fanout {
                    self.overflow_treatment(parent, reinserted);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TreeStats;
    use crate::traits::JoinIndex;
    use crate::validate::validate_rect_tree;
    use csj_geom::Metric;

    fn spiral_points(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let t = i as f64 * 0.1;
                Point::new([0.5 + t.cos() * t * 0.01, 0.5 + t.sin() * t * 0.01])
            })
            .collect()
    }

    #[test]
    fn insert_many_preserves_invariants() {
        let pts = spiral_points(500);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(8));
        assert_eq!(tree.num_records(), 500);
        validate_rect_tree(tree.core()).unwrap();
        assert!(tree.height() >= 3);
    }

    #[test]
    fn queries_match_scan() {
        let pts = spiral_points(400);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(10));
        let center = Point::new([0.5, 0.5]);
        let eps = 0.1;
        let mut got = tree.core().range_query_ball(&center, eps, Metric::Euclidean);
        got.sort_unstable();
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| center.euclidean(p) <= eps)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn rstar_packs_tighter_than_rtree_on_clustered_data() {
        // The R*-tree should produce leaves with no larger average
        // diameter than the Guttman linear R-tree on skewed data.
        let mut pts = Vec::new();
        for c in 0..10 {
            let cx = (c as f64 * 0.37).fract();
            let cy = (c as f64 * 0.61).fract();
            for i in 0..60 {
                let dx = ((i * 31 + c * 7) % 100) as f64 / 100.0 * 0.02;
                let dy = ((i * 17 + c * 13) % 100) as f64 / 100.0 * 0.02;
                pts.push(Point::new([cx + dx, cy + dy]));
            }
        }
        let config = RTreeConfig::with_max_fanout(10);
        let rstar = RStarTree::from_points(&pts, config);
        let rlin =
            crate::rtree::RTree::from_points(&pts, config.with_split(crate::SplitStrategy::Linear));
        let s_star = TreeStats::compute(&rstar, Metric::Euclidean);
        let s_lin = TreeStats::compute(&rlin, Metric::Euclidean);
        assert!(
            s_star.avg_leaf_diameter <= s_lin.avg_leaf_diameter * 1.5,
            "r* leaves unexpectedly loose: {} vs {}",
            s_star.avg_leaf_diameter,
            s_lin.avg_leaf_diameter
        );
        validate_rect_tree(rstar.core()).unwrap();
    }

    #[test]
    fn duplicate_heavy_input() {
        let mut pts = vec![Point::new([0.5, 0.5]); 100];
        pts.extend(spiral_points(100));
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(6));
        assert_eq!(tree.num_records(), 200);
        validate_rect_tree(tree.core()).unwrap();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    #[allow(unused_imports)]
    use crate::traits::JoinIndex;
    use crate::validate::validate_rect_tree;
    use csj_geom::Metric;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Arbitrary insertion sequences leave a valid tree.
        #[test]
        fn insertion_preserves_invariants(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 1..400),
            fanout in 4usize..14,
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = RStarTree::from_points(&points, RTreeConfig::with_max_fanout(fanout));
            prop_assert_eq!(tree.num_records(), points.len());
            prop_assert!(validate_rect_tree(tree.core()).is_ok());
        }

        /// Every inserted record is findable by an exact ball query.
        #[test]
        fn all_records_findable(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 1..150),
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = RStarTree::from_points(&points, RTreeConfig::with_max_fanout(6));
            for (i, p) in points.iter().enumerate() {
                let hits = tree.core().range_query_ball(p, 0.0, Metric::Euclidean);
                prop_assert!(hits.contains(&(i as u32)), "record {i} missing");
            }
        }
    }
}
