//! The R*-tree topological split (Beckmann et al., SIGMOD 1990).
//!
//! ChooseSplitAxis picks the axis with minimal total margin over all
//! candidate distributions; ChooseSplitIndex then picks the distribution
//! with minimal overlap (ties: minimal combined volume).

use crate::rtree::split::{SplitItem, SplitResult};
use csj_geom::Mbr;

/// Splits an overflowing set of `M + 1` items per the R* algorithm.
///
/// `min_fanout` is the tree's `m`; every distribution keeps at least `m`
/// items on each side.
// csj-lint: allow(error-hygiene) — SplitResult is a plain struct (two
// groups plus their MBRs), not a fallible Result; the split is total.
pub fn split_rstar<T: SplitItem<D> + Clone, const D: usize>(
    items: Vec<T>,
    min_fanout: usize,
) -> SplitResult<T, D> {
    let n = items.len();
    debug_assert!(n >= 2 * min_fanout);
    let k_range = min_fanout..=(n - min_fanout);

    // ChooseSplitAxis: for each axis, margin summed over both sort orders
    // and all distributions.
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..D {
        let mut margin_sum = 0.0;
        for by_upper in [false, true] {
            let sorted = sort_by_axis(&items, axis, by_upper);
            let (prefix, suffix) = prefix_suffix_mbrs(&sorted);
            for k in k_range.clone() {
                margin_sum += prefix[k - 1].margin() + suffix[k].margin();
            }
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // ChooseSplitIndex on the winning axis: minimal overlap, ties by
    // minimal combined volume, over both sort orders.
    let mut best: Option<(Vec<T>, usize, f64, f64)> = None; // (sorted, k, overlap, volume)
    for by_upper in [false, true] {
        let sorted = sort_by_axis(&items, best_axis, by_upper);
        let (prefix, suffix) = prefix_suffix_mbrs(&sorted);
        for k in k_range.clone() {
            let overlap = prefix[k - 1].overlap_volume(&suffix[k]);
            let volume = prefix[k - 1].volume() + suffix[k].volume();
            let better = match &best {
                None => true,
                Some((_, _, bo, bv)) => overlap < *bo || (overlap == *bo && volume < *bv),
            };
            if better {
                best = Some((sorted.clone(), k, overlap, volume));
            }
        }
    }
    // csj-lint: allow(panic-safety) — the distribution loop above runs
    // at least once for any overfull node, so `best` is always set.
    let (sorted, k, _, _) = best.expect("at least one distribution exists");
    let mut left = sorted;
    let right = left.split_off(k);
    let left_mbr = items_mbr(&left);
    let right_mbr = items_mbr(&right);
    SplitResult { left, left_mbr, right, right_mbr }
}

fn sort_by_axis<T: SplitItem<D> + Clone, const D: usize>(
    items: &[T],
    axis: usize,
    by_upper: bool,
) -> Vec<T> {
    let mut sorted = items.to_vec();
    if by_upper {
        sorted.sort_by(|a, b| a.mbr().hi[axis].total_cmp(&b.mbr().hi[axis]));
    } else {
        sorted.sort_by(|a, b| a.mbr().lo[axis].total_cmp(&b.mbr().lo[axis]));
    }
    sorted
}

/// `prefix[i]` bounds items `0..=i`; `suffix[i]` bounds items `i..`.
fn prefix_suffix_mbrs<T: SplitItem<D>, const D: usize>(items: &[T]) -> (Vec<Mbr<D>>, Vec<Mbr<D>>) {
    let n = items.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = Mbr::empty();
    for it in items {
        acc.expand_to_mbr(&it.mbr());
        prefix.push(acc);
    }
    let mut suffix = vec![Mbr::empty(); n];
    let mut acc = Mbr::empty();
    for i in (0..n).rev() {
        acc.expand_to_mbr(&items[i].mbr());
        suffix[i] = acc;
    }
    (prefix, suffix)
}

fn items_mbr<T: SplitItem<D>, const D: usize>(items: &[T]) -> Mbr<D> {
    let mut m = Mbr::empty();
    for it in items {
        m.expand_to_mbr(&it.mbr());
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::LeafEntry;
    use csj_geom::Point;

    fn entries(pts: &[[f64; 2]]) -> Vec<LeafEntry<2>> {
        pts.iter().enumerate().map(|(i, p)| LeafEntry::new(i as u32, Point::new(*p))).collect()
    }

    #[test]
    fn splits_two_clusters_with_zero_overlap() {
        let mut pts = vec![];
        for i in 0..6 {
            pts.push([i as f64 * 0.01, i as f64 * 0.01]);
            pts.push([5.0 + i as f64 * 0.01, 5.0 + i as f64 * 0.01]);
        }
        let r = split_rstar(entries(&pts), 3);
        assert_eq!(r.left.len() + r.right.len(), 12);
        assert!(r.left.len() >= 3 && r.right.len() >= 3);
        assert_eq!(r.left_mbr.overlap_volume(&r.right_mbr), 0.0);
    }

    #[test]
    fn split_respects_min_fanout_on_skewed_data() {
        // One outlier, many duplicates.
        let mut pts = vec![[9.0, 9.0]];
        pts.extend(std::iter::repeat_n([0.0, 0.0], 9));
        let r = split_rstar(entries(&pts), 4);
        assert!(r.left.len() >= 4 && r.right.len() >= 4);
        assert_eq!(r.left.len() + r.right.len(), 10);
    }

    #[test]
    fn chooses_axis_with_better_separation() {
        // Spread along y, tight along x: split must cut along y.
        let pts: Vec<[f64; 2]> = (0..10).map(|i| [0.0, i as f64]).collect();
        let r = split_rstar(entries(&pts), 3);
        // A y-cut gives disjoint y-ranges.
        let max_left_y = r.left.iter().map(|e| e.point[1]).fold(f64::NEG_INFINITY, f64::max);
        let min_right_y = r.right.iter().map(|e| e.point[1]).fold(f64::INFINITY, f64::min);
        let (lo, hi) = if max_left_y < min_right_y {
            (max_left_y, min_right_y)
        } else {
            let max_right_y = r.right.iter().map(|e| e.point[1]).fold(f64::NEG_INFINITY, f64::max);
            let min_left_y = r.left.iter().map(|e| e.point[1]).fold(f64::INFINITY, f64::min);
            (max_right_y, min_left_y)
        };
        assert!(lo < hi, "groups must not interleave on the split axis");
    }

    #[test]
    fn prefix_suffix_cover() {
        let items = entries(&[[0.0, 0.0], [1.0, 1.0], [2.0, 0.5]]);
        let (prefix, suffix) = prefix_suffix_mbrs(&items);
        assert_eq!(prefix.len(), 3);
        assert_eq!(suffix.len(), 3);
        assert_eq!(prefix[2], suffix[0]);
        assert!(prefix[0].contains_point(&items[0].point));
        assert!(suffix[2].contains_point(&items[2].point));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::traits::LeafEntry;
    use csj_geom::Point;
    use proptest::prelude::*;

    proptest! {
        /// The R* split is a valid partition with covering MBRs.
        #[test]
        fn rstar_split_valid(
            pts in prop::collection::vec(prop::array::uniform2(-10.0f64..10.0), 8..50)
        ) {
            let items: Vec<LeafEntry<2>> = pts.iter().enumerate()
                .map(|(i, p)| LeafEntry::new(i as u32, Point::new(*p)))
                .collect();
            let n = items.len();
            let min_fanout = n / 3;
            let r = split_rstar(items, min_fanout);
            prop_assert_eq!(r.left.len() + r.right.len(), n);
            prop_assert!(r.left.len() >= min_fanout);
            prop_assert!(r.right.len() >= min_fanout);
            for e in &r.left {
                prop_assert!(r.left_mbr.contains_point(&e.point));
            }
            for e in &r.right {
                prop_assert!(r.right_mbr.contains_point(&e.point));
            }
        }
    }
}
