//! Slab arena for tree nodes.
//!
//! All three trees store their nodes in a flat `Vec` and refer to them by
//! [`NodeId`] (a `u32` index). This keeps nodes contiguous in memory, makes
//! a node a natural unit for the paged-storage simulation in `csj-storage`
//! (one node ≈ one page), and avoids `Rc`/`Box` pointer webs.

/// Index of a node inside a tree's arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena slot as a usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A growable slab of nodes with a free list.
///
/// Deletion support in the R-tree frees nodes back to the list, so long
/// insert/delete workloads do not leak arena slots.
#[derive(Clone, Debug)]
pub struct Arena<N> {
    slots: Vec<Option<N>>,
    free: Vec<NodeId>,
}

impl<N> Default for Arena<N> {
    fn default() -> Self {
        Arena { slots: Vec::new(), free: Vec::new() }
    }
}

impl<N> Arena<N> {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Arena { slots: Vec::with_capacity(cap), free: Vec::new() }
    }

    /// Stores `node`, returning its id. Reuses freed slots when available.
    pub fn alloc(&mut self, node: N) -> NodeId {
        match self.free.pop() {
            Some(id) => {
                self.slots[id.index()] = Some(node);
                id
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "arena full");
                let id = NodeId(self.slots.len() as u32);
                self.slots.push(Some(node));
                id
            }
        }
    }

    /// Removes the node at `id`, returning it and recycling the slot.
    ///
    /// Panics if the slot is already free.
    pub fn free(&mut self, id: NodeId) -> N {
        // csj-lint: allow(panic-safety) — documented arena contract: a
        // double free is caller corruption, not a recoverable state.
        let node = self.slots[id.index()].take().expect("double free of arena slot");
        self.free.push(id);
        node
    }

    /// Shared access. Panics on a freed or out-of-range id.
    #[inline]
    pub fn get(&self, id: NodeId) -> &N {
        // csj-lint: allow(panic-safety) — documented contract (see the
        // doc comment): a freed id here is an index-structure bug.
        self.slots[id.index()].as_ref().expect("freed arena slot")
    }

    /// Mutable access. Panics on a freed or out-of-range id.
    #[inline]
    pub fn get_mut(&mut self, id: NodeId) -> &mut N {
        // csj-lint: allow(panic-safety) — documented contract, as `get`.
        self.slots[id.index()].as_mut().expect("freed arena slot")
    }

    /// Mutable access to two distinct nodes at once.
    ///
    /// Panics if `a == b` or either slot is free.
    pub fn get2_mut(&mut self, a: NodeId, b: NodeId) -> (&mut N, &mut N) {
        assert_ne!(a, b, "get2_mut requires distinct ids");
        let (lo, hi, swapped) = if a.index() < b.index() {
            (a.index(), b.index(), false)
        } else {
            (b.index(), a.index(), true)
        };
        let (left, right) = self.slots.split_at_mut(hi);
        // csj-lint: allow(panic-safety) — documented contract, as `get`.
        let lo_ref = left[lo].as_mut().expect("freed arena slot");
        // csj-lint: allow(panic-safety) — documented contract, as `get`.
        let hi_ref = right[0].as_mut().expect("freed arena slot");
        if swapped {
            (hi_ref, lo_ref)
        } else {
            (lo_ref, hi_ref)
        }
    }

    /// Number of live (allocated, not freed) nodes.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// `true` if no nodes are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(id, node)` for every live node.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|n| (NodeId(i as u32), n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_roundtrip() {
        let mut a = Arena::new();
        let x = a.alloc("x");
        let y = a.alloc("y");
        assert_ne!(x, y);
        assert_eq!(*a.get(x), "x");
        assert_eq!(*a.get(y), "y");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn free_recycles_slots() {
        let mut a = Arena::new();
        let x = a.alloc(1);
        let _y = a.alloc(2);
        assert_eq!(a.free(x), 1);
        assert_eq!(a.len(), 1);
        let z = a.alloc(3);
        assert_eq!(z, x, "freed slot is reused");
        assert_eq!(*a.get(z), 3);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = Arena::new();
        let x = a.alloc(1);
        a.free(x);
        a.free(x);
    }

    #[test]
    #[should_panic(expected = "freed arena slot")]
    fn get_after_free_panics() {
        let mut a = Arena::new();
        let x = a.alloc(1);
        a.free(x);
        a.get(x);
    }

    #[test]
    fn get2_mut_both_orders() {
        let mut a = Arena::new();
        let x = a.alloc(1);
        let y = a.alloc(2);
        {
            let (rx, ry) = a.get2_mut(x, y);
            *rx += 10;
            *ry += 20;
        }
        {
            let (ry, rx) = a.get2_mut(y, x);
            assert_eq!(*ry, 22);
            assert_eq!(*rx, 11);
        }
    }

    #[test]
    #[should_panic(expected = "distinct ids")]
    fn get2_mut_same_id_panics() {
        let mut a = Arena::new();
        let x = a.alloc(1);
        let _ = a.get2_mut(x, x);
    }

    #[test]
    fn iter_skips_freed() {
        let mut a = Arena::new();
        let x = a.alloc(1);
        let _y = a.alloc(2);
        let _z = a.alloc(3);
        a.free(x);
        let live: Vec<i32> = a.iter().map(|(_, n)| *n).collect();
        assert_eq!(live, vec![2, 3]);
    }

    #[test]
    fn mutation_via_get_mut() {
        let mut a = Arena::new();
        let x = a.alloc(vec![1, 2]);
        a.get_mut(x).push(3);
        assert_eq!(a.get(x).len(), 3);
    }
}
