//! A bucket PR-quadtree (octree in 3-D): space-partitioning rather than
//! data-partitioning.
//!
//! Not one of the paper's three evaluated structures, but the paper's
//! design claim is stronger — the compact joins run on *any* index whose
//! nodes have computable distance bounds and satisfy the inclusion
//! property (§IV, §VII). The quadtree is the classic structure with very
//! different balance characteristics (unbalanced, space- not
//! data-partitioned, fanout up to `2^D` with empty quadrants elided), so
//! it makes the index-independence test bite harder.
//!
//! Each node stores the *tight* MBR of its contents alongside its cell,
//! so the join bounds are as good as an R-tree's even though the cells
//! are rigid.

use crate::arena::{Arena, NodeId};
use crate::store::LeafStore;
use crate::traits::{JoinIndex, LeafEntry};
use csj_geom::{Mbr, Metric, Point, RecordId, SoaView};

/// Configuration for [`QuadTree`].
#[derive(Clone, Copy, Debug)]
pub struct QuadTreeConfig {
    /// Maximum records per leaf before it splits.
    pub capacity: usize,
    /// Depth limit; leaves at this depth hold any number of records
    /// (guards against unbounded splitting on duplicate points).
    pub max_depth: u32,
}

impl Default for QuadTreeConfig {
    fn default() -> Self {
        QuadTreeConfig { capacity: 50, max_depth: 24 }
    }
}

#[derive(Clone, Debug)]
struct QNode<const D: usize> {
    /// Tight bounding rectangle of the records below (the shape the join
    /// bounds use).
    mbr: Mbr<D>,
    /// Child nodes (empty quadrants are not materialized).
    children: Vec<NodeId>,
    /// Records (leaves only), with their contiguous point mirror.
    entries: LeafStore<D>,
}

/// A static bucket quadtree over `D`-dimensional points, built by
/// recursive subdivision.
///
/// ```
/// use csj_index::quadtree::{QuadTree, QuadTreeConfig};
/// use csj_index::JoinIndex;
/// use csj_geom::Point;
///
/// let pts: Vec<Point<2>> = (0..1000)
///     .map(|i| Point::new([(i % 40) as f64 / 40.0, (i / 40) as f64 / 25.0]))
///     .collect();
/// let tree = QuadTree::build(&pts, QuadTreeConfig { capacity: 16, max_depth: 16 });
/// assert_eq!(tree.num_records(), 1000);
/// ```
#[derive(Clone, Debug)]
pub struct QuadTree<const D: usize> {
    arena: Arena<QNode<D>>,
    root: Option<NodeId>,
    num_records: usize,
    height: usize,
}

impl<const D: usize> QuadTree<D> {
    /// Builds the tree over `points`; record ids are the slice indexes.
    pub fn build(points: &[Point<D>], config: QuadTreeConfig) -> Self {
        assert!(config.capacity >= 1, "capacity must be at least 1");
        let mut tree =
            QuadTree { arena: Arena::new(), root: None, num_records: points.len(), height: 0 };
        if points.is_empty() {
            return tree;
        }
        let entries: Vec<LeafEntry<D>> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                debug_assert!(p.is_finite(), "non-finite point");
                LeafEntry::new(i as RecordId, *p)
            })
            .collect();
        // csj-lint: allow(panic-safety) — the empty case returned early
        // above, so `from_points` always has at least one point.
        let cell = Mbr::from_points(points).expect("non-empty");
        let (root, height) = tree.build_node(entries, cell, 0, &config);
        tree.root = Some(root);
        tree.height = height;
        tree
    }

    fn build_node(
        &mut self,
        entries: Vec<LeafEntry<D>>,
        cell: Mbr<D>,
        depth: u32,
        config: &QuadTreeConfig,
    ) -> (NodeId, usize) {
        let mut mbr = Mbr::empty();
        for e in &entries {
            mbr.expand_to_point(&e.point);
        }
        if entries.len() <= config.capacity || depth >= config.max_depth {
            let id = self.arena.alloc(QNode { mbr, children: Vec::new(), entries: entries.into() });
            return (id, 1);
        }
        // Partition into 2^D quadrants around the cell center.
        let center = cell.center();
        let mut buckets: Vec<Vec<LeafEntry<D>>> = (0..(1usize << D)).map(|_| Vec::new()).collect();
        for e in entries {
            let mut idx = 0usize;
            for d in 0..D {
                if e.point[d] > center[d] {
                    idx |= 1 << d;
                }
            }
            buckets[idx].push(e);
        }
        // Degenerate case (all points identical / on the split plane):
        // everything lands in one bucket — stop splitting.
        if buckets.iter().filter(|b| !b.is_empty()).count() <= 1 {
            let entries: Vec<LeafEntry<D>> = buckets.into_iter().flatten().collect();
            let id = self.arena.alloc(QNode { mbr, children: Vec::new(), entries: entries.into() });
            return (id, 1);
        }
        let mut children = Vec::new();
        let mut max_child_height = 0usize;
        for (idx, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut sub_lo = cell.lo;
            let mut sub_hi = cell.hi;
            for d in 0..D {
                if idx & (1 << d) != 0 {
                    sub_lo[d] = center[d];
                } else {
                    sub_hi[d] = center[d];
                }
            }
            let (child, h) = self.build_node(bucket, Mbr::new(sub_lo, sub_hi), depth + 1, config);
            max_child_height = max_child_height.max(h);
            children.push(child);
        }
        let id = self.arena.alloc(QNode { mbr, children, entries: LeafStore::new() });
        (id, max_child_height + 1)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }

    /// All record ids within `eps` of `query` under `metric`.
    pub fn range_query_ball(&self, query: &Point<D>, eps: f64, metric: Metric) -> Vec<RecordId> {
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = self.arena.get(id);
            if metric.min_dist_point_mbr(query, &node.mbr) > eps {
                continue;
            }
            if node.children.is_empty() {
                out.extend(
                    node.entries
                        .iter()
                        .filter(|e| metric.distance(query, &e.point) <= eps)
                        .map(|e| e.id),
                );
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        out
    }
}

impl<const D: usize> JoinIndex<D> for QuadTree<D> {
    fn root(&self) -> Option<NodeId> {
        self.root
    }
    fn is_leaf(&self, n: NodeId) -> bool {
        self.arena.get(n).children.is_empty()
    }
    fn children(&self, n: NodeId) -> &[NodeId] {
        &self.arena.get(n).children
    }
    fn leaf_entries(&self, n: NodeId) -> &[LeafEntry<D>] {
        &self.arena.get(n).entries
    }
    fn leaf_soa(&self, n: NodeId) -> SoaView<'_, D> {
        self.arena.get(n).entries.soa()
    }
    fn node_mbr(&self, n: NodeId) -> Mbr<D> {
        self.arena.get(n).mbr
    }
    fn max_diameter(&self, n: NodeId, metric: Metric) -> f64 {
        metric.mbr_diameter(&self.arena.get(n).mbr)
    }
    fn pair_diameter(&self, a: NodeId, b: NodeId, metric: Metric) -> f64 {
        metric.max_dist_mbr(&self.arena.get(a).mbr, &self.arena.get(b).mbr)
    }
    fn min_dist(&self, a: NodeId, b: NodeId, metric: Metric) -> f64 {
        metric.min_dist_mbr(&self.arena.get(a).mbr, &self.arena.get(b).mbr)
    }
    fn num_records(&self) -> usize {
        self.num_records
    }
    fn height(&self) -> usize {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let x = ((i * 2654435761) % 100_000) as f64 / 100_000.0;
                let y = ((i * 40503 + 17) % 100_000) as f64 / 100_000.0;
                Point::new([x, y])
            })
            .collect()
    }

    #[test]
    fn build_and_counts() {
        let pts = scatter(2_000);
        let tree = QuadTree::build(&pts, QuadTreeConfig { capacity: 20, max_depth: 20 });
        assert_eq!(tree.num_records(), 2_000);
        assert!(tree.height() >= 2);
        let mut ids = Vec::new();
        tree.collect_record_ids(tree.root().unwrap(), &mut ids);
        ids.sort_unstable();
        assert_eq!(ids, (0..2000u32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let tree = QuadTree::<2>::build(&[], QuadTreeConfig::default());
        assert!(tree.root().is_none());
        assert_eq!(tree.height(), 0);
        let one = QuadTree::build(&[Point::new([0.3, 0.7])], QuadTreeConfig::default());
        assert_eq!(one.num_records(), 1);
        assert_eq!(one.height(), 1);
    }

    #[test]
    fn duplicates_bounded_by_max_depth() {
        let pts = vec![Point::new([0.5, 0.5]); 500];
        let tree = QuadTree::build(&pts, QuadTreeConfig { capacity: 4, max_depth: 6 });
        assert_eq!(tree.num_records(), 500);
        // Identical points cannot be separated; the degenerate-split stop
        // keeps the tree shallow.
        assert_eq!(tree.height(), 1, "identical points collapse to one leaf");
    }

    #[test]
    fn inclusion_property_holds() {
        let pts = scatter(1_500);
        let tree = QuadTree::build(&pts, QuadTreeConfig { capacity: 12, max_depth: 16 });
        let mut stack = vec![tree.root().unwrap()];
        while let Some(id) = stack.pop() {
            let mbr = tree.node_mbr(id);
            for &c in tree.children(id) {
                assert!(mbr.contains_mbr(&tree.node_mbr(c)), "inclusion property");
                stack.push(c);
            }
            for e in tree.leaf_entries(id) {
                assert!(mbr.contains_point(&e.point));
            }
        }
    }

    #[test]
    fn range_query_matches_scan() {
        let pts = scatter(1_200);
        let tree = QuadTree::build(&pts, QuadTreeConfig { capacity: 10, max_depth: 16 });
        let q = Point::new([0.4, 0.6]);
        let eps = 0.1;
        let mut got = tree.range_query_ball(&q, eps, Metric::Euclidean);
        got.sort_unstable();
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.euclidean(p) <= eps)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn three_dimensional_octree() {
        let pts: Vec<Point<3>> = (0..800)
            .map(|i| {
                Point::new([
                    ((i * 31) % 97) as f64 / 97.0,
                    ((i * 57) % 89) as f64 / 89.0,
                    ((i * 13) % 83) as f64 / 83.0,
                ])
            })
            .collect();
        let tree = QuadTree::build(&pts, QuadTreeConfig { capacity: 8, max_depth: 12 });
        assert_eq!(tree.num_records(), 800);
        // Octree fanout is at most 8.
        let mut stack = vec![tree.root().unwrap()];
        while let Some(id) = stack.pop() {
            assert!(tree.children(id).len() <= 8);
            stack.extend_from_slice(tree.children(id));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every record lands in exactly one leaf, inclusion holds, and
        /// range queries agree with a scan.
        #[test]
        fn quadtree_valid(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 0..300),
            capacity in 1usize..20,
            q in prop::array::uniform2(0.0f64..1.0),
            eps in 0.0f64..0.5,
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = QuadTree::build(&points, QuadTreeConfig { capacity, max_depth: 16 });
            prop_assert_eq!(tree.num_records(), points.len());
            if let Some(root) = tree.root() {
                let mut ids = Vec::new();
                tree.collect_record_ids(root, &mut ids);
                ids.sort_unstable();
                let want: Vec<u32> = (0..points.len() as u32).collect();
                prop_assert_eq!(ids, want);
            }
            let q = Point::new(q);
            let mut got = tree.range_query_ball(&q, eps, Metric::Euclidean);
            got.sort_unstable();
            let mut want: Vec<u32> = points.iter().enumerate()
                .filter(|(_, p)| q.euclidean(p) <= eps)
                .map(|(i, _)| i as u32)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
