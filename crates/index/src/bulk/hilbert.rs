//! `D`-dimensional Hilbert curve keys (Skilling's transpose algorithm,
//! "Programming the Hilbert curve", AIP Conf. Proc. 707, 2004).
//!
//! Used by the Hilbert bulk loader to impose a locality-preserving total
//! order on points before packing.

/// Number of bits of precision per coordinate used by the bulk loader.
pub const DEFAULT_BITS: u32 = 16;

/// Maps quantized coordinates (each in `[0, 2^bits)`) to their index along
/// the `D`-dimensional Hilbert curve of order `bits`.
///
/// The result occupies `D * bits` bits; with `D <= 8` and
/// `bits <= 16` it fits comfortably in a `u128`.
pub fn hilbert_key<const D: usize>(coords: [u32; D], bits: u32) -> u128 {
    assert!((1..=32).contains(&bits), "bits out of range");
    assert!((D as u32) * bits <= 128, "key would overflow u128");
    let mut x = coords;

    // Skilling's AxesToTranspose: inverse-undo pass …
    let m = 1u32 << (bits - 1);
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..D {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // … then Gray encode.
    for i in 1..D {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    q = m;
    while q > 1 {
        if x[D - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }

    // Interleave the transposed form into a single key, most significant
    // bit-plane first.
    let mut key: u128 = 0;
    for b in (0..bits).rev() {
        for xi in x.iter() {
            key = (key << 1) | (((xi >> b) & 1) as u128);
        }
    }
    key
}

/// Quantizes a coordinate in `[lo, hi]` to `bits` bits. Degenerate ranges
/// map to 0.
pub fn quantize(value: f64, lo: f64, hi: f64, bits: u32) -> u32 {
    let span = hi - lo;
    if span <= 0.0 {
        return 0;
    }
    let max = (1u64 << bits) - 1;
    let t = ((value - lo) / span).clamp(0.0, 1.0);
    (t * max as f64).round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_a_permutation_2d() {
        let bits = 3;
        let side = 1u32 << bits;
        let mut keys: Vec<u128> = Vec::new();
        for x in 0..side {
            for y in 0..side {
                keys.push(hilbert_key([x, y], bits));
            }
        }
        keys.sort_unstable();
        let expected: Vec<u128> = (0..(side as u128 * side as u128)).collect();
        assert_eq!(keys, expected, "keys must be a bijection onto 0..4^bits");
    }

    #[test]
    fn consecutive_keys_are_grid_neighbors_2d() {
        // The defining property of the Hilbert curve: successive cells are
        // adjacent (Manhattan distance exactly 1).
        let bits = 4;
        let side = 1u32 << bits;
        let mut cells: Vec<(u128, u32, u32)> = Vec::new();
        for x in 0..side {
            for y in 0..side {
                cells.push((hilbert_key([x, y], bits), x, y));
            }
        }
        cells.sort_unstable();
        for w in cells.windows(2) {
            let (ka, xa, ya) = w[0];
            let (kb, xb, yb) = w[1];
            assert_eq!(kb, ka + 1);
            let dist = xa.abs_diff(xb) + ya.abs_diff(yb);
            assert_eq!(dist, 1, "cells ({xa},{ya}) and ({xb},{yb}) not adjacent");
        }
    }

    #[test]
    fn consecutive_keys_are_grid_neighbors_3d() {
        let bits = 3;
        let side = 1u32 << bits;
        let mut cells: Vec<(u128, [u32; 3])> = Vec::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    cells.push((hilbert_key([x, y, z], bits), [x, y, z]));
                }
            }
        }
        cells.sort_unstable_by_key(|c| c.0);
        for w in cells.windows(2) {
            let dist: u32 = (0..3).map(|i| w[0].1[i].abs_diff(w[1].1[i])).sum();
            assert_eq!(dist, 1, "3-D curve must visit adjacent cells");
        }
    }

    #[test]
    fn quantize_bounds() {
        assert_eq!(quantize(0.0, 0.0, 1.0, 8), 0);
        assert_eq!(quantize(1.0, 0.0, 1.0, 8), 255);
        assert_eq!(quantize(0.5, 0.0, 1.0, 8), 128);
        // Out-of-range values clamp.
        assert_eq!(quantize(-5.0, 0.0, 1.0, 8), 0);
        assert_eq!(quantize(5.0, 0.0, 1.0, 8), 255);
        // Degenerate span.
        assert_eq!(quantize(3.0, 3.0, 3.0, 8), 0);
    }
}
