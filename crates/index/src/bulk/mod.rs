//! Bulk-loading (packing) algorithms for the rectangle trees.
//!
//! The paper's discussion (§VII) notes that when no index exists one must
//! be built, and cites bulk-loading as the fast path (\[22\]–\[24\]). We
//! implement three published loaders:
//!
//! * [`str_pack`] — Sort-Tile-Recursive (Leutenegger et al. / García et
//!   al., GIS 1998 lineage): recursive dimension-ordered tiling.
//! * [`hilbert_pack`] — Hilbert-sort packing (Kamel & Faloutsos style, the
//!   approach of Berchtold et al. 1998 for high-dimensional loads).
//! * [`omt_pack`] — Overlap-Minimizing Top-down loading (Lee & Lee,
//!   CAiSE 2003).
//!
//! All three produce a [`RectCore`] directly usable as an R-tree or
//! R*-tree, and are how the experiment harness builds the 1.5M-point
//! Pacific NW tree in seconds.

pub mod hilbert;

use crate::rect::{RNode, RectCore};
use crate::traits::LeafEntry;
use crate::RTreeConfig;
use csj_geom::{Mbr, Point, RecordId};

pub(crate) fn make_entries<const D: usize>(points: &[Point<D>]) -> Vec<LeafEntry<D>> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            debug_assert!(p.is_finite(), "non-finite point in bulk load");
            LeafEntry::new(i as RecordId, *p)
        })
        .collect()
}

/// Packs `points` into a tree with Sort-Tile-Recursive tiling. Record ids
/// are the indexes into `points`.
pub fn str_pack<const D: usize>(points: &[Point<D>], config: RTreeConfig) -> RectCore<D> {
    config.validate();
    let mut core = RectCore::new(config);
    if points.is_empty() {
        return core;
    }
    let cap = config.max_fanout;
    let chunks = str_chunks::<_, D>(make_entries(points), cap, |e, d| e.point[d]);
    let mut level_nodes = Vec::with_capacity(chunks.len());
    for chunk in chunks {
        level_nodes.push(alloc_leaf(&mut core, chunk));
    }
    core.num_records = points.len();
    pack_upper_levels_str(&mut core, level_nodes);
    core
}

/// Packs `points` in Hilbert-curve order. Record ids are the indexes into
/// `points`.
pub fn hilbert_pack<const D: usize>(points: &[Point<D>], config: RTreeConfig) -> RectCore<D> {
    config.validate();
    let mut core = RectCore::new(config);
    if points.is_empty() {
        return core;
    }
    // csj-lint: allow(panic-safety) — the empty case returned above, so
    // `from_points` always has at least one point.
    let bounds = Mbr::from_points(points).expect("non-empty");
    let bits = hilbert::DEFAULT_BITS;
    let mut entries = make_entries(points);
    entries.sort_by_cached_key(|e| {
        let mut q = [0u32; D];
        for (i, slot) in q.iter_mut().enumerate() {
            *slot = hilbert::quantize(e.point[i], bounds.lo[i], bounds.hi[i], bits);
        }
        hilbert::hilbert_key(q, bits)
    });
    let cap = config.max_fanout;
    let mut level_nodes = Vec::new();
    for chunk in balanced_chunks(entries, cap) {
        level_nodes.push(alloc_leaf(&mut core, chunk));
    }
    core.num_records = points.len();
    // The Hilbert order is already locality-preserving; chunk consecutive
    // runs at every level.
    pack_upper_levels_ordered(&mut core, level_nodes);
    core
}

/// Packs `points` with Overlap-Minimizing Top-down bulk loading. Record
/// ids are the indexes into `points`.
pub fn omt_pack<const D: usize>(points: &[Point<D>], config: RTreeConfig) -> RectCore<D> {
    config.validate();
    let mut core = RectCore::new(config);
    if points.is_empty() {
        return core;
    }
    let entries = make_entries(points);
    let cap = config.max_fanout;
    let height = height_for(entries.len(), cap);
    let root = omt_build(&mut core, entries, cap, height);
    core.root = Some(root);
    core.num_records = points.len();
    core
}

/// Smallest `h` with `cap^h >= n` (tree height in levels).
fn height_for(n: usize, cap: usize) -> u32 {
    let mut h = 1u32;
    let mut reach = cap as u128;
    while (n as u128) > reach {
        h += 1;
        reach = reach.saturating_mul(cap as u128);
    }
    h
}

fn alloc_leaf<const D: usize>(
    core: &mut RectCore<D>,
    entries: Vec<LeafEntry<D>>,
) -> crate::arena::NodeId {
    debug_assert!(!entries.is_empty());
    let mut leaf = RNode::new_leaf();
    leaf.mbr = {
        let mut m = Mbr::empty();
        for e in &entries {
            m.expand_to_point(&e.point);
        }
        m
    };
    leaf.entries = entries.into();
    core.arena.alloc(leaf)
}

/// Splits `items` into chunks of at most `cap` with all sizes as equal as
/// possible (never below `cap / 2`, so min-fanout holds for `m <= M/2`).
pub(crate) fn balanced_chunks<T>(items: Vec<T>, cap: usize) -> Vec<Vec<T>> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let k = n.div_ceil(cap);
    let base = n / k;
    let extra = n % k; // first `extra` chunks get one more
    let mut out = Vec::with_capacity(k);
    let mut iter = items.into_iter();
    for i in 0..k {
        let take = base + usize::from(i < extra);
        out.push(iter.by_ref().take(take).collect());
    }
    out
}

/// Recursive STR tiling: sort by the current dimension, cut into slabs,
/// recurse on the next dimension; the last dimension chunks directly.
pub(crate) fn str_chunks<T, const D: usize>(
    items: Vec<T>,
    cap: usize,
    key: fn(&T, usize) -> f64,
) -> Vec<Vec<T>> {
    fn rec<T, const D: usize>(
        mut items: Vec<T>,
        dim: usize,
        cap: usize,
        key: fn(&T, usize) -> f64,
        out: &mut Vec<Vec<T>>,
    ) {
        let n = items.len();
        if n <= cap {
            if n > 0 {
                out.push(items);
            }
            return;
        }
        items.sort_by(|a, b| key(a, dim).total_cmp(&key(b, dim)));
        if dim == D - 1 {
            out.extend(balanced_chunks(items, cap));
            return;
        }
        // Number of leaves this subproblem will produce, tiled into
        // `slices` slabs along this dimension.
        let leaves = n.div_ceil(cap);
        let remaining_dims = (D - dim) as f64;
        let slices = (leaves as f64).powf(1.0 / remaining_dims).ceil() as usize;
        let slices = slices.clamp(1, leaves);
        for slab in balanced_chunks(items, n.div_ceil(slices)) {
            rec::<T, D>(slab, dim + 1, cap, key, out);
        }
    }
    let mut out = Vec::new();
    rec::<T, D>(items, 0, cap, key, &mut out);
    out
}

/// Builds internal levels by STR-tiling node centers.
fn pack_upper_levels_str<const D: usize>(
    core: &mut RectCore<D>,
    mut level_nodes: Vec<crate::arena::NodeId>,
) {
    let cap = core.config.max_fanout;
    let mut level = 1u32;
    while level_nodes.len() > 1 {
        let items: Vec<(crate::arena::NodeId, Point<D>)> =
            level_nodes.iter().map(|&id| (id, core.node(id).mbr.center())).collect();
        let groups = str_chunks::<_, D>(items, cap, |it, d| it.1[d]);
        level_nodes = attach_groups(
            core,
            groups.into_iter().map(|g| g.into_iter().map(|(id, _)| id).collect()),
            level,
        );
        level += 1;
    }
    core.root = level_nodes.pop();
    if let Some(root) = core.root {
        core.node_mut(root).parent = None;
    }
}

/// Builds internal levels by chunking consecutive runs (order preserved).
fn pack_upper_levels_ordered<const D: usize>(
    core: &mut RectCore<D>,
    mut level_nodes: Vec<crate::arena::NodeId>,
) {
    let cap = core.config.max_fanout;
    let mut level = 1u32;
    while level_nodes.len() > 1 {
        let groups = balanced_chunks(level_nodes, cap);
        level_nodes = attach_groups(core, groups.into_iter(), level);
        level += 1;
    }
    core.root = level_nodes.pop();
    if let Some(root) = core.root {
        core.node_mut(root).parent = None;
    }
}

fn attach_groups<const D: usize>(
    core: &mut RectCore<D>,
    groups: impl Iterator<Item = Vec<crate::arena::NodeId>>,
    level: u32,
) -> Vec<crate::arena::NodeId> {
    let mut parents = Vec::new();
    for group in groups {
        debug_assert!(!group.is_empty());
        let parent = core.arena.alloc(RNode::new_internal(level));
        let mut mbr = Mbr::empty();
        for &child in &group {
            core.node_mut(child).parent = Some(parent);
            mbr.expand_to_mbr(&core.node(child).mbr);
        }
        let p = core.node_mut(parent);
        p.children = group;
        p.mbr = mbr;
        parents.push(parent);
    }
    parents
}

/// OMT recursion: builds a subtree of exactly `height` levels over
/// `entries` (`entries.len() <= cap^height`).
fn omt_build<const D: usize>(
    core: &mut RectCore<D>,
    entries: Vec<LeafEntry<D>>,
    cap: usize,
    height: u32,
) -> crate::arena::NodeId {
    if height == 1 {
        debug_assert!(entries.len() <= cap);
        return alloc_leaf(core, entries);
    }
    let subtree_cap = (cap as u128).pow(height - 1);
    let k = ((entries.len() as u128).div_ceil(subtree_cap) as usize).clamp(2, cap);
    let groups = slice_groups::<_, D>(entries, k, 0, |e, d| e.point[d]);
    let children: Vec<crate::arena::NodeId> =
        groups.into_iter().map(|g| omt_build(core, g, cap, height - 1)).collect();
    let parent = core.arena.alloc(RNode::new_internal(height - 1));
    let mut mbr = Mbr::empty();
    for &c in &children {
        core.node_mut(c).parent = Some(parent);
        mbr.expand_to_mbr(&core.node(c).mbr);
    }
    let p = core.node_mut(parent);
    p.children = children;
    p.mbr = mbr;
    parent
}

/// Partitions `items` into exactly `k` groups of near-equal size by
/// recursive dimension-sorted slicing (the OMT partition step).
fn slice_groups<T, const D: usize>(
    mut items: Vec<T>,
    k: usize,
    dim: usize,
    key: fn(&T, usize) -> f64,
) -> Vec<Vec<T>> {
    debug_assert!(k >= 1);
    if k == 1 {
        return vec![items];
    }
    items.sort_by(|a, b| key(a, dim).total_cmp(&key(b, dim)));
    if dim == D - 1 {
        return equal_partition(items, k);
    }
    let remaining_dims = (D - dim) as f64;
    let slices = ((k as f64).powf(1.0 / remaining_dims).ceil() as usize).clamp(1, k);
    // Distribute the k groups over the slices, then the items over the
    // slices proportionally.
    let group_counts = spread(k, slices);
    let n = items.len();
    let mut out = Vec::with_capacity(k);
    let mut iter = items.into_iter();
    let mut assigned_items = 0usize;
    let mut assigned_groups = 0usize;
    for &gc in &group_counts {
        // Proportional share of items for gc of the k groups.
        let take = ((assigned_groups + gc) * n / k) - assigned_items;
        assigned_items += take;
        assigned_groups += gc;
        let slab: Vec<T> = iter.by_ref().take(take).collect();
        out.extend(slice_groups::<_, D>(slab, gc, dim + 1, key));
    }
    out
}

/// Distributes `k` units over `s` buckets as evenly as possible.
fn spread(k: usize, s: usize) -> Vec<usize> {
    let base = k / s;
    let extra = k % s;
    (0..s).map(|i| base + usize::from(i < extra)).collect()
}

/// Splits `items` into exactly `k` consecutive groups, sizes equal ±1.
fn equal_partition<T>(items: Vec<T>, k: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let mut out = Vec::with_capacity(k);
    let mut iter = items.into_iter();
    let mut taken = 0usize;
    for i in 0..k {
        let end = (i + 1) * n / k;
        let take = end - taken;
        taken = end;
        out.push(iter.by_ref().take(take).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_rect_tree;
    use csj_geom::Metric;

    fn scatter(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let x = ((i * 2654435761) % 100_000) as f64 / 100_000.0;
                let y = ((i * 40503 + 17) % 100_000) as f64 / 100_000.0;
                Point::new([x, y])
            })
            .collect()
    }

    fn check_loader(name: &str, build: fn(&[Point<2>], RTreeConfig) -> RectCore<2>) {
        for n in [1usize, 7, 49, 50, 51, 500, 2500] {
            let pts = scatter(n);
            let core = build(&pts, RTreeConfig::with_max_fanout(10));
            assert_eq!(core.num_records, n, "{name} n={n}");
            validate_rect_tree(&core).unwrap_or_else(|e| panic!("{name} n={n}: {e}"));
            // Every record present exactly once.
            let mut ids: Vec<u32> = core.iter_records().map(|e| e.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..n as u32).collect::<Vec<_>>(), "{name} n={n}");
        }
    }

    #[test]
    fn str_valid_at_many_sizes() {
        check_loader("str", str_pack);
    }

    #[test]
    fn hilbert_valid_at_many_sizes() {
        check_loader("hilbert", hilbert_pack);
    }

    #[test]
    fn omt_valid_at_many_sizes() {
        check_loader("omt", omt_pack);
    }

    #[test]
    fn empty_input_gives_empty_tree() {
        let none: [Point<2>; 0] = [];
        for build in [str_pack, hilbert_pack, omt_pack] {
            let core: RectCore<2> = build(&none, RTreeConfig::default());
            assert!(core.root.is_none());
            assert_eq!(core.num_records, 0);
        }
    }

    #[test]
    fn loaders_answer_queries_correctly() {
        let pts = scatter(1200);
        let center = Point::new([0.4, 0.6]);
        let eps = 0.15;
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| center.euclidean(p) <= eps)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        for (name, build) in [
            ("str", str_pack as fn(&[Point<2>], RTreeConfig) -> RectCore<2>),
            ("hilbert", hilbert_pack),
            ("omt", omt_pack),
        ] {
            let core = build(&pts, RTreeConfig::with_max_fanout(16));
            let mut got = core.range_query_ball(&center, eps, Metric::Euclidean);
            got.sort_unstable();
            assert_eq!(got, want, "{name} query mismatch");
        }
    }

    #[test]
    fn packed_trees_are_denser_than_dynamic() {
        let pts = scatter(2000);
        let cfg = RTreeConfig::with_max_fanout(10);
        let packed = str_pack(&pts, cfg);
        let dynamic = crate::rstar::RStarTree::from_points(&pts, cfg);
        use crate::traits::JoinIndex;
        assert!(
            packed.node_count() < dynamic.core().node_count(),
            "packing should use fewer nodes ({} vs {})",
            packed.node_count(),
            dynamic.core().node_count()
        );
        assert_eq!(dynamic.num_records(), 2000);
    }

    #[test]
    fn height_for_values() {
        assert_eq!(height_for(1, 10), 1);
        assert_eq!(height_for(10, 10), 1);
        assert_eq!(height_for(11, 10), 2);
        assert_eq!(height_for(100, 10), 2);
        assert_eq!(height_for(101, 10), 3);
    }

    #[test]
    fn balanced_chunks_sizes() {
        let chunks = balanced_chunks((0..23).collect::<Vec<_>>(), 10);
        assert_eq!(chunks.len(), 3);
        let sizes: Vec<usize> = chunks.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 23);
        assert!(sizes.iter().all(|&s| s == 7 || s == 8));
        assert!(balanced_chunks(Vec::<i32>::new(), 5).is_empty());
    }

    #[test]
    fn equal_partition_exact() {
        let parts = equal_partition((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(parts.len(), 3);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
        // Order preserved: concatenation is the original.
        let flat: Vec<i32> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::validate::validate_rect_tree;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// All three loaders produce valid trees over arbitrary inputs
        /// (2-D and 3-D) and arbitrary small fanouts.
        #[test]
        fn loaders_valid_2d(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 1..600),
            fanout in 4usize..20,
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let cfg = RTreeConfig::with_max_fanout(fanout);
            for (name, core) in [
                ("str", str_pack(&points, cfg)),
                ("hilbert", hilbert_pack(&points, cfg)),
                ("omt", omt_pack(&points, cfg)),
            ] {
                prop_assert!(validate_rect_tree(&core).is_ok(), "{}", name);
                prop_assert_eq!(core.num_records, points.len(), "{}", name);
            }
        }

        #[test]
        fn loaders_valid_3d(
            pts in prop::collection::vec(prop::array::uniform3(0.0f64..1.0), 1..400),
            fanout in 4usize..16,
        ) {
            let points: Vec<Point<3>> = pts.into_iter().map(Point::new).collect();
            let cfg = RTreeConfig::with_max_fanout(fanout);
            for (name, core) in [
                ("str", str_pack(&points, cfg)),
                ("hilbert", hilbert_pack(&points, cfg)),
                ("omt", omt_pack(&points, cfg)),
            ] {
                prop_assert!(validate_rect_tree(&core).is_ok(), "{}", name);
                prop_assert_eq!(core.num_records, points.len(), "{}", name);
            }
        }
    }
}
