//! The index contract the join algorithms are written against.
//!
//! §IV of the paper: *"We only assume that the minimum and maximum distance
//! (similarity) between any two nodes in the tree data structure can be
//! calculated efficiently."* [`JoinIndex`] is that assumption as a trait,
//! plus the structural access (children, leaf entries) any recursive tree
//! join needs. `csj-core` implements SSJ / N-CSJ / CSJ(g) once, generically
//! over this trait; Experiment 4 (R-tree vs R*-tree vs M-tree) is then just
//! three instantiations.

use crate::arena::NodeId;
use csj_geom::{Mbr, Metric, Point, RecordId, SoaView};

/// A data record stored in a leaf: its id plus coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeafEntry<const D: usize> {
    /// Record identifier, reported in join output.
    pub id: RecordId,
    /// Record coordinates.
    pub point: Point<D>,
}

impl<const D: usize> LeafEntry<D> {
    /// Convenience constructor.
    pub fn new(id: RecordId, point: Point<D>) -> Self {
        LeafEntry { id, point }
    }
}

/// A tree index usable by the similarity-join algorithms.
///
/// Requirements (all satisfied by R-trees, R*-trees and M-trees):
///
/// * every node has a bounding shape with computable diameter;
/// * for any two nodes, a lower bound on point distances
///   ([`JoinIndex::min_dist`]) and an upper bound
///   ([`JoinIndex::pair_diameter`]) are computable;
/// * parent shapes include child shapes (the inclusion property).
pub trait JoinIndex<const D: usize> {
    /// The root node, or `None` for an empty tree.
    fn root(&self) -> Option<NodeId>;

    /// `true` if `n` stores data records directly.
    fn is_leaf(&self, n: NodeId) -> bool;

    /// Child nodes of an internal node (empty slice for leaves).
    fn children(&self, n: NodeId) -> &[NodeId];

    /// Data records of a leaf (empty slice for internal nodes).
    fn leaf_entries(&self, n: NodeId) -> &[LeafEntry<D>];

    /// Coordinates of a leaf's records as one contiguous `f64` slab per
    /// dimension, in the same order as [`JoinIndex::leaf_entries`] (empty
    /// for internal nodes). This is the batched-distance-kernel view of a
    /// leaf: `leaf_soa(n).point(i) == leaf_entries(n)[i].point`. The
    /// struct-of-arrays layout makes kernel probes contiguous streaming
    /// loads instead of strided gathers over `Point` records.
    fn leaf_soa(&self, n: NodeId) -> SoaView<'_, D>;

    /// A rectangle covering the node's bounding shape. For rectangle trees
    /// this is the node MBR itself; for the M-tree, the box circumscribing
    /// the covering ball. Used to seed group shapes.
    fn node_mbr(&self, n: NodeId) -> Mbr<D>;

    /// Upper bound on the distance between any two points below `n`
    /// (the "maximum diameter of the bounding shape", line 2 of the
    /// paper's pseudo-code).
    fn max_diameter(&self, n: NodeId, metric: Metric) -> f64;

    /// Upper bound on the distance between any point below `a` and any
    /// point below `b`, *and* between points within each — i.e. the
    /// diameter of the union of the two shapes (line 20 of the
    /// pseudo-code: "maximum diameter of {n1, n2}").
    fn pair_diameter(&self, a: NodeId, b: NodeId, metric: Metric) -> f64;

    /// Lower bound on the distance between any point below `a` and any
    /// point below `b` (MINDIST; used to prune node pairs).
    fn min_dist(&self, a: NodeId, b: NodeId, metric: Metric) -> f64;

    /// Total number of data records in the tree.
    fn num_records(&self) -> usize;

    /// Height of the tree: 1 for a single leaf root, 0 when empty.
    fn height(&self) -> usize;

    /// Appends every record id stored in the subtree under `n` to `out`.
    ///
    /// Used by the early-stopping rule to emit a whole subtree as one
    /// group. The default implementation walks the subtree iteratively.
    fn collect_record_ids(&self, n: NodeId, out: &mut Vec<RecordId>) {
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            if self.is_leaf(cur) {
                out.extend(self.leaf_entries(cur).iter().map(|e| e.id));
            } else {
                stack.extend_from_slice(self.children(cur));
            }
        }
    }

    /// Appends every `(id, point)` pair in the subtree under `n` to `out`.
    fn collect_entries(&self, n: NodeId, out: &mut Vec<LeafEntry<D>>) {
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            if self.is_leaf(cur) {
                out.extend_from_slice(self.leaf_entries(cur));
            } else {
                stack.extend_from_slice(self.children(cur));
            }
        }
    }

    /// Number of nodes in the subtree under `n` (including `n`).
    fn subtree_node_count(&self, n: NodeId) -> usize {
        let mut count = 0;
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            count += 1;
            stack.extend_from_slice(self.children(cur));
        }
        count
    }
}
