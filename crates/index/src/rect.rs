//! Shared machinery for the rectangle trees (R-tree and R*-tree).
//!
//! Both trees use the same node layout and differ only in their insertion
//! and split policies, so the arena, MBR maintenance, queries and the
//! [`crate::JoinIndex`] plumbing live here and are reused by `rtree`, `rstar` and
//! the bulk loaders.

use crate::arena::{Arena, NodeId};
use crate::store::LeafStore;
use crate::traits::LeafEntry;
use crate::RTreeConfig;
use csj_geom::{Mbr, Metric, Point, RecordId};

/// A node of a rectangle tree.
///
/// `level == 0` means leaf (uses `entries`); otherwise internal (uses
/// `children`). The MBR always covers exactly the node's contents.
#[derive(Clone, Debug)]
pub struct RNode<const D: usize> {
    /// Minimum bounding rectangle of everything below this node.
    pub mbr: Mbr<D>,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Distance from the leaf level (0 = leaf).
    pub level: u32,
    /// Child nodes (internal nodes only).
    pub children: Vec<NodeId>,
    /// Data records (leaves only), with their contiguous point mirror.
    pub entries: LeafStore<D>,
}

impl<const D: usize> RNode<D> {
    /// A fresh empty leaf.
    pub fn new_leaf() -> Self {
        RNode {
            mbr: Mbr::empty(),
            parent: None,
            level: 0,
            children: Vec::new(),
            entries: LeafStore::new(),
        }
    }

    /// A fresh empty internal node at `level >= 1`.
    pub fn new_internal(level: u32) -> Self {
        debug_assert!(level >= 1);
        RNode {
            mbr: Mbr::empty(),
            parent: None,
            level,
            children: Vec::new(),
            entries: LeafStore::new(),
        }
    }

    /// `true` if the node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of slots in use (entries for leaves, children for internals).
    #[inline]
    pub fn occupancy(&self) -> usize {
        if self.is_leaf() {
            self.entries.len()
        } else {
            self.children.len()
        }
    }
}

/// Arena, root pointer and config shared by both rectangle trees.
#[derive(Clone, Debug)]
pub struct RectCore<const D: usize> {
    /// Node storage.
    pub arena: Arena<RNode<D>>,
    /// Root node (`None` iff the tree is empty).
    pub root: Option<NodeId>,
    /// Fanout and split configuration.
    pub config: RTreeConfig,
    /// Number of data records currently stored.
    pub num_records: usize,
}

impl<const D: usize> RectCore<D> {
    /// An empty tree core.
    pub fn new(config: RTreeConfig) -> Self {
        config.validate();
        RectCore { arena: Arena::new(), root: None, config, num_records: 0 }
    }

    /// Shared node access.
    #[inline]
    pub fn node(&self, id: NodeId) -> &RNode<D> {
        self.arena.get(id)
    }

    /// Mutable node access.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut RNode<D> {
        self.arena.get_mut(id)
    }

    /// Recomputes a node's MBR from its direct contents.
    pub fn recompute_mbr(&mut self, id: NodeId) {
        let node = self.arena.get(id);
        let mut mbr = Mbr::empty();
        if node.is_leaf() {
            for e in &node.entries {
                mbr.expand_to_point(&e.point);
            }
        } else {
            // Collect child MBRs first to appease the borrow checker.
            let child_mbrs: Vec<Mbr<D>> =
                node.children.iter().map(|&c| self.arena.get(c).mbr).collect();
            for m in child_mbrs {
                mbr.expand_to_mbr(&m);
            }
        }
        self.arena.get_mut(id).mbr = mbr;
    }

    /// Recomputes MBRs from `id` up to the root (after a structural change).
    pub fn adjust_upward(&mut self, mut id: NodeId) {
        loop {
            self.recompute_mbr(id);
            match self.arena.get(id).parent {
                Some(p) => id = p,
                None => break,
            }
        }
    }

    /// Grows ancestor MBRs to cover `mbr` starting at `id` (cheaper than
    /// full recomputation when only an insertion happened).
    pub fn expand_upward(&mut self, mut id: NodeId, mbr: &Mbr<D>) {
        loop {
            let node = self.arena.get_mut(id);
            node.mbr.expand_to_mbr(mbr);
            match node.parent {
                Some(p) => id = p,
                None => break,
            }
        }
    }

    /// Attaches `child` under `parent`, updating parent pointer and MBR
    /// along the path to the root. Does **not** handle overflow.
    pub fn attach_child(&mut self, parent: NodeId, child: NodeId) {
        let child_mbr = self.arena.get(child).mbr;
        self.arena.get_mut(child).parent = Some(parent);
        self.arena.get_mut(parent).children.push(child);
        self.expand_upward(parent, &child_mbr);
    }

    /// Grows the tree by one level: makes a new root with the old root and
    /// `sibling` as children.
    pub fn grow_root(&mut self, sibling: NodeId) {
        // csj-lint: allow(panic-safety) — documented contract: grow_root
        // is only reachable from a root split, which implies a root.
        let old_root = self.root.expect("grow_root on empty tree");
        let level = self.arena.get(old_root).level + 1;
        let new_root = self.arena.alloc(RNode::new_internal(level));
        self.root = Some(new_root);
        for id in [old_root, sibling] {
            self.arena.get_mut(id).parent = Some(new_root);
            self.arena.get_mut(new_root).children.push(id);
        }
        self.recompute_mbr(new_root);
    }

    /// Tree height: `root level + 1`, or 0 when empty.
    pub fn height(&self) -> usize {
        self.root.map_or(0, |r| self.arena.get(r).level as usize + 1)
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }

    /// All record ids whose point lies inside `query` (boundary inclusive).
    pub fn range_query_mbr(&self, query: &Mbr<D>) -> Vec<RecordId> {
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = self.arena.get(id);
            if !node.mbr.intersects(query) {
                continue;
            }
            if node.is_leaf() {
                out.extend(
                    node.entries.iter().filter(|e| query.contains_point(&e.point)).map(|e| e.id),
                );
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        out
    }

    /// All record ids within distance `eps` of `center` under `metric`.
    pub fn range_query_ball(&self, center: &Point<D>, eps: f64, metric: Metric) -> Vec<RecordId> {
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = self.arena.get(id);
            if metric.min_dist_point_mbr(center, &node.mbr) > eps {
                continue;
            }
            if node.is_leaf() {
                out.extend(
                    node.entries
                        .iter()
                        .filter(|e| metric.distance(center, &e.point) <= eps)
                        .map(|e| e.id),
                );
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        out
    }

    /// The `k` records nearest to `query` under `metric`, closest first.
    /// Ties are broken arbitrarily. Returns fewer than `k` if the tree is
    /// smaller.
    pub fn knn(&self, query: &Point<D>, k: usize, metric: Metric) -> Vec<(RecordId, f64)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Cand(f64, bool, u32); // (distance, is_record, id)
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        if k == 0 {
            return out;
        }
        let mut heap: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        heap.push(Reverse(Cand(
            metric.min_dist_point_mbr(query, &self.arena.get(root).mbr),
            false,
            root.0,
        )));
        while let Some(Reverse(Cand(dist, is_record, id))) = heap.pop() {
            if is_record {
                out.push((id, dist));
                if out.len() == k {
                    break;
                }
                continue;
            }
            let node = self.arena.get(NodeId(id));
            if node.is_leaf() {
                for e in &node.entries {
                    heap.push(Reverse(Cand(metric.distance(query, &e.point), true, e.id)));
                }
            } else {
                for &c in &node.children {
                    let d = metric.min_dist_point_mbr(query, &self.arena.get(c).mbr);
                    heap.push(Reverse(Cand(d, false, c.0)));
                }
            }
        }
        out
    }

    /// Iterates over every stored record (id, point) in arbitrary order.
    pub fn iter_records(&self) -> impl Iterator<Item = &LeafEntry<D>> {
        self.arena.iter().filter(|(_, n)| n.is_leaf()).flat_map(|(_, n)| n.entries.iter())
    }
}

/// Implements [`crate::JoinIndex`] for a type with a `core: RectCore<D>` field.
macro_rules! impl_join_index_for_rect {
    ($ty:ident) => {
        impl<const D: usize> crate::traits::JoinIndex<D> for $ty<D> {
            fn root(&self) -> Option<crate::arena::NodeId> {
                self.core.root
            }
            fn is_leaf(&self, n: crate::arena::NodeId) -> bool {
                self.core.node(n).is_leaf()
            }
            fn children(&self, n: crate::arena::NodeId) -> &[crate::arena::NodeId] {
                &self.core.node(n).children
            }
            fn leaf_entries(&self, n: crate::arena::NodeId) -> &[crate::traits::LeafEntry<D>] {
                &self.core.node(n).entries
            }
            fn leaf_soa(&self, n: crate::arena::NodeId) -> csj_geom::SoaView<'_, D> {
                self.core.node(n).entries.soa()
            }
            fn node_mbr(&self, n: crate::arena::NodeId) -> csj_geom::Mbr<D> {
                self.core.node(n).mbr
            }
            fn max_diameter(&self, n: crate::arena::NodeId, metric: csj_geom::Metric) -> f64 {
                metric.mbr_diameter(&self.core.node(n).mbr)
            }
            fn pair_diameter(
                &self,
                a: crate::arena::NodeId,
                b: crate::arena::NodeId,
                metric: csj_geom::Metric,
            ) -> f64 {
                metric.max_dist_mbr(&self.core.node(a).mbr, &self.core.node(b).mbr)
            }
            fn min_dist(
                &self,
                a: crate::arena::NodeId,
                b: crate::arena::NodeId,
                metric: csj_geom::Metric,
            ) -> f64 {
                metric.min_dist_mbr(&self.core.node(a).mbr, &self.core.node(b).mbr)
            }
            fn num_records(&self) -> usize {
                self.core.num_records
            }
            fn height(&self) -> usize {
                self.core.height()
            }
        }
    };
}
pub(crate) use impl_join_index_for_rect;

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_with(core: &mut RectCore<2>, pts: &[[f64; 2]], first_id: u32) -> NodeId {
        let id = core.arena.alloc(RNode::new_leaf());
        for (i, p) in pts.iter().enumerate() {
            let e = LeafEntry::new(first_id + i as u32, Point::new(*p));
            core.arena.get_mut(id).entries.push(e);
        }
        core.recompute_mbr(id);
        core.num_records += pts.len();
        id
    }

    #[test]
    fn recompute_leaf_mbr() {
        let mut core = RectCore::<2>::new(RTreeConfig::default());
        let l = leaf_with(&mut core, &[[0.0, 0.0], [2.0, 3.0]], 0);
        assert_eq!(
            core.node(l).mbr,
            Mbr::from_corners(&Point::new([0.0, 0.0]), &Point::new([2.0, 3.0]))
        );
    }

    #[test]
    fn grow_root_and_adjust() {
        let mut core = RectCore::<2>::new(RTreeConfig::default());
        let l1 = leaf_with(&mut core, &[[0.0, 0.0], [1.0, 1.0]], 0);
        let l2 = leaf_with(&mut core, &[[5.0, 5.0], [6.0, 6.0]], 2);
        core.root = Some(l1);
        core.grow_root(l2);
        let root = core.root.unwrap();
        assert_eq!(core.node(root).level, 1);
        assert_eq!(core.node(root).children.len(), 2);
        assert_eq!(core.node(l1).parent, Some(root));
        assert_eq!(core.height(), 2);
        let root_mbr = core.node(root).mbr;
        assert!(root_mbr.contains_mbr(&core.node(l1).mbr));
        assert!(root_mbr.contains_mbr(&core.node(l2).mbr));
    }

    #[test]
    fn range_queries_on_manual_tree() {
        let mut core = RectCore::<2>::new(RTreeConfig::default());
        let l1 = leaf_with(&mut core, &[[0.1, 0.1], [0.2, 0.2]], 0);
        let l2 = leaf_with(&mut core, &[[0.8, 0.8], [0.9, 0.9]], 2);
        core.root = Some(l1);
        core.grow_root(l2);

        let q = Mbr::from_corners(&Point::new([0.0, 0.0]), &Point::new([0.5, 0.5]));
        let mut hits = core.range_query_mbr(&q);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);

        let mut ball = core.range_query_ball(&Point::new([0.85, 0.85]), 0.1, Metric::Euclidean);
        ball.sort_unstable();
        assert_eq!(ball, vec![2, 3]);

        assert!(core.range_query_ball(&Point::new([0.5, 0.5]), 0.05, Metric::Euclidean).is_empty());
    }

    #[test]
    fn knn_on_manual_tree() {
        let mut core = RectCore::<2>::new(RTreeConfig::default());
        let l1 = leaf_with(&mut core, &[[0.0, 0.0], [0.3, 0.0]], 0);
        let l2 = leaf_with(&mut core, &[[1.0, 0.0], [2.0, 0.0]], 2);
        core.root = Some(l1);
        core.grow_root(l2);
        let nn = core.knn(&Point::new([0.1, 0.0]), 2, Metric::Euclidean);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].0, 0);
        assert_eq!(nn[1].0, 1);
        assert!(nn[0].1 <= nn[1].1, "results ordered by distance");
        assert!(core.knn(&Point::new([0.0, 0.0]), 0, Metric::Euclidean).is_empty());
        assert_eq!(core.knn(&Point::new([0.0, 0.0]), 10, Metric::Euclidean).len(), 4);
    }

    #[test]
    fn empty_core_queries() {
        let core = RectCore::<2>::new(RTreeConfig::default());
        assert_eq!(core.height(), 0);
        assert!(core.range_query_ball(&Point::new([0.0, 0.0]), 1.0, Metric::Euclidean).is_empty());
        assert!(core.knn(&Point::new([0.0, 0.0]), 3, Metric::Euclidean).is_empty());
    }
}

#[cfg(test)]
mod knn_proptests {
    use crate::rstar::RStarTree;
    use crate::RTreeConfig;
    use csj_geom::{Metric, Point};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// kNN returns exactly the k smallest distances (compared against
        /// a full sort), in non-decreasing order.
        #[test]
        fn knn_matches_sorted_scan(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 1..150),
            q in prop::array::uniform2(0.0f64..1.0),
            k in 1usize..20,
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = RStarTree::from_points(&points, RTreeConfig::with_max_fanout(5));
            let q = Point::new(q);
            let got = tree.core().knn(&q, k, Metric::Euclidean);
            let mut dists: Vec<f64> = points.iter().map(|p| q.euclidean(p)).collect();
            dists.sort_by(f64::total_cmp);
            prop_assert_eq!(got.len(), k.min(points.len()));
            for (i, (_, d)) in got.iter().enumerate() {
                prop_assert!((d - dists[i]).abs() < 1e-12, "rank {i}: {d} vs {}", dists[i]);
                if i > 0 {
                    prop_assert!(got[i - 1].1 <= *d, "results out of order");
                }
            }
        }
    }
}
