//! Spatial index substrate for compact similarity joins.
//!
//! The paper (§IV) requires exactly one thing of the underlying index: that
//! the minimum and maximum distance between any two nodes can be computed
//! efficiently — i.e. each node carries a bounding shape, and parent shapes
//! include child shapes (the *inclusion property*, §VII). This crate
//! provides three such indexes, built from scratch:
//!
//! * [`rtree::RTree`] — Guttman's original R-tree with linear or quadratic
//!   node splitting.
//! * [`rstar::RStarTree`] — the R*-tree of Beckmann et al. (ChooseSubtree,
//!   margin-driven split, forced reinsertion). The paper's default index.
//! * [`mtree::MTree`] — the M-tree of Ciaccia et al.: ball-shaped nodes
//!   valid in any metric space.
//! * [`quadtree::QuadTree`] — a bucket PR-quadtree/octree (bonus fourth
//!   structure: unbalanced and space-partitioned, stressing the paper's
//!   index-independence claim further).
//!
//! plus three bulk-loading algorithms ([`bulk`]) — STR, Hilbert-sort and
//! OMT — which the paper's discussion section cites for the "no index yet"
//! case, and which we use to build the 1.5M-point Pacific NW tree quickly.
//!
//! All join algorithms in `csj-core` are written once against the
//! [`JoinIndex`] trait and run unchanged on every tree here; that is how
//! the paper's Experiment 4 (index independence) is reproduced.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod arena;
pub mod bulk;
pub mod mtree;
pub mod paged;
pub mod persist;
pub mod quadtree;
pub mod rect;
pub mod rstar;
pub mod rtree;
pub mod stats;
pub mod store;
pub mod traits;
pub mod validate;

pub use arena::NodeId;
pub use paged::{NodeGuard, PagedMeta, PagedNode, PagedStats, PagedStore, PagedTree};
pub use rstar::RStarTree;
pub use rtree::RTree;
pub use store::LeafStore;
pub use traits::{JoinIndex, LeafEntry};

/// Configuration shared by the rectangle trees ([`RTree`], [`RStarTree`]).
#[derive(Clone, Copy, Debug)]
pub struct RTreeConfig {
    /// Maximum entries per node (`M`). The paper notes R-trees typically
    /// use 50–100; we default to 50.
    pub max_fanout: usize,
    /// Minimum entries per non-root node (`m`). Default `M * 2 / 5` (40%),
    /// the R*-tree paper's recommendation.
    pub min_fanout: usize,
    /// Node-splitting strategy for the Guttman R-tree. Ignored by the
    /// R*-tree, which always uses its margin-driven split.
    pub split: SplitStrategy,
    /// Fraction of entries force-reinserted on first overflow per level
    /// (R*-tree only). The R*-tree paper recommends 30%.
    pub reinsert_fraction: f64,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            max_fanout: 50,
            min_fanout: 20,
            split: SplitStrategy::Quadratic,
            reinsert_fraction: 0.3,
        }
    }
}

impl RTreeConfig {
    /// Config with the given maximum fanout and a 40% minimum.
    pub fn with_max_fanout(max_fanout: usize) -> Self {
        assert!(max_fanout >= 4, "max fanout must be at least 4");
        RTreeConfig { max_fanout, min_fanout: (max_fanout * 2 / 5).max(2), ..Default::default() }
    }

    /// Replaces the split strategy.
    pub fn with_split(mut self, split: SplitStrategy) -> Self {
        self.split = split;
        self
    }

    /// Panics unless `2 <= min <= max/2` and `max >= 4`.
    pub fn validate(&self) {
        assert!(self.max_fanout >= 4, "max fanout must be at least 4");
        assert!(
            self.min_fanout >= 2 && self.min_fanout <= self.max_fanout / 2,
            "min fanout must be in [2, max/2]"
        );
        assert!(
            (0.0..0.5).contains(&self.reinsert_fraction),
            "reinsert fraction must be in [0, 0.5)"
        );
    }
}

/// Guttman node-split strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Linear-cost split: pick the pair of seeds with maximal normalized
    /// separation, assign the rest greedily.
    Linear,
    /// Quadratic-cost split: pick the pair of seeds wasting the most area,
    /// assign remaining entries by maximal preference difference.
    Quadratic,
}
