//! Structural invariant checkers.
//!
//! Used pervasively in tests (including property tests) to assert that
//! every mutation leaves a tree in a valid state. The checks mirror the
//! *inclusion property* the paper identifies as the one essential index
//! requirement, plus the usual balance/fanout invariants.

use crate::mtree::MTree;
use crate::rect::RectCore;
use std::fmt;

/// A violated tree invariant, with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation(pub String);

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tree invariant violated: {}", self.0)
    }
}

impl std::error::Error for InvariantViolation {}

// The negated float comparisons inside `ensure!` are deliberate: an
// invariant must hold, and NaN (incomparable) must also fail it.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn holds(cond: bool) -> bool {
    cond
}

macro_rules! ensure {
    ($cond:expr, $($arg:tt)*) => {
        if !holds($cond) {
            return Err(InvariantViolation(format!($($arg)*)));
        }
    };
}

/// Validates a rectangle tree (R-tree or R*-tree):
///
/// * parent/child pointers are mutually consistent and acyclic;
/// * every node's MBR is exactly the bound of its contents (inclusion);
/// * all leaves are at level 0 and levels decrease by one per step;
/// * fanout bounds hold for every non-root node;
/// * the record count matches;
/// * every live arena node is reachable from the root.
///
/// # Errors
/// Returns an [`InvariantViolation`] describing the first broken
/// invariant.
pub fn validate_rect_tree<const D: usize>(core: &RectCore<D>) -> Result<(), InvariantViolation> {
    let Some(root) = core.root else {
        ensure!(core.num_records == 0, "empty tree with {} records", core.num_records);
        ensure!(core.arena.is_empty(), "empty tree with {} live nodes", core.arena.len());
        return Ok(());
    };
    ensure!(core.node(root).parent.is_none(), "root has a parent");

    let mut records = 0usize;
    let mut visited = 0usize;
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        visited += 1;
        let node = core.node(id);
        if id != root {
            ensure!(
                node.occupancy() >= core.config.min_fanout,
                "{id} underfull: {} < {}",
                node.occupancy(),
                core.config.min_fanout
            );
        } else if !node.is_leaf() {
            ensure!(node.children.len() >= 2, "internal root with < 2 children");
        }
        ensure!(
            node.occupancy() <= core.config.max_fanout,
            "{id} overfull: {} > {}",
            node.occupancy(),
            core.config.max_fanout
        );
        if node.is_leaf() {
            ensure!(node.children.is_empty(), "leaf {id} has children");
            records += node.entries.len();
            let mut mbr = csj_geom::Mbr::empty();
            for e in &node.entries {
                mbr.expand_to_point(&e.point);
            }
            ensure!(mbr == node.mbr, "leaf {id} MBR stale: {:?} != {:?}", node.mbr, mbr);
        } else {
            ensure!(node.entries.is_empty(), "internal {id} has leaf entries");
            let mut mbr = csj_geom::Mbr::empty();
            for &c in &node.children {
                let child = core.node(c);
                ensure!(
                    child.parent == Some(id),
                    "child {c} of {id} has parent {:?}",
                    child.parent
                );
                ensure!(
                    child.level + 1 == node.level,
                    "child {c} level {} under {id} level {}",
                    child.level,
                    node.level
                );
                ensure!(
                    node.mbr.contains_mbr(&child.mbr),
                    "inclusion property violated: {id} does not contain child {c}"
                );
                mbr.expand_to_mbr(&child.mbr);
                stack.push(c);
            }
            ensure!(mbr == node.mbr, "internal {id} MBR stale");
        }
    }
    ensure!(
        records == core.num_records,
        "record count mismatch: stored {} vs counted {records}",
        core.num_records
    );
    ensure!(
        visited == core.arena.len(),
        "unreachable nodes: visited {visited}, arena holds {}",
        core.arena.len()
    );
    Ok(())
}

/// Validates an M-tree:
///
/// * parent/child pointers consistent, levels decrease by one;
/// * every leaf record lies within its node's covering radius;
/// * every child ball is contained in its parent ball
///   (`d(parent, child) + r_child <= r_parent`, up to fp slack);
/// * fanout bounds and record count hold.
///
/// # Errors
/// Returns an [`InvariantViolation`] describing the first broken
/// invariant.
pub fn validate_mtree<const D: usize>(tree: &MTree<D>) -> Result<(), InvariantViolation> {
    let metric = tree.metric();
    let Some(root) = tree.root_id() else {
        ensure!(tree.is_empty(), "empty m-tree with {} records", tree.len());
        return Ok(());
    };
    let mut records = 0usize;
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        let node = tree.node_ref(id);
        if id != root {
            ensure!(
                node.occupancy() >= tree.config().min_fanout,
                "{id} underfull ({})",
                node.occupancy()
            );
        }
        ensure!(
            node.occupancy() <= tree.config().max_fanout,
            "{id} overfull ({})",
            node.occupancy()
        );
        if node.is_leaf() {
            records += node.entries.len();
            for e in &node.entries {
                let d = metric.distance(&node.center, &e.point);
                ensure!(
                    d <= node.radius + 1e-9,
                    "leaf {id}: record {} at distance {d} outside radius {}",
                    e.id,
                    node.radius
                );
            }
        } else {
            for &c in &node.children {
                let child = tree.node_ref(c);
                ensure!(child.parent == Some(id), "m-tree child {c} parent mismatch");
                ensure!(child.level + 1 == node.level, "m-tree child {c} level mismatch");
                let d = metric.distance(&node.center, &child.center);
                ensure!(
                    d + child.radius <= node.radius + 1e-9,
                    "ball inclusion violated: {id} (r={}) does not contain {c} (d={d}, r={})",
                    node.radius,
                    child.radius
                );
                stack.push(c);
            }
        }
    }
    ensure!(records == tree.len(), "m-tree record count mismatch: {} vs {records}", tree.len());
    Ok(())
}
