//! Index persistence: a compact binary codec for rectangle trees.
//!
//! Building a tree over millions of points costs real time (the paper's
//! §VII: "tree creation is expensive in computation time and memory"), so
//! a production deployment builds once and reloads. The format is a
//! straightforward little-endian layout — header, then one record per
//! node in a DFS order with dense re-numbered ids — independent of arena
//! slot history, so a loaded tree is bit-identical regardless of how the
//! original was built or mutated.
//!
//! ```
//! use csj_index::{persist, rstar::RStarTree, RTreeConfig, JoinIndex};
//! use csj_geom::Point;
//!
//! let pts: Vec<Point<2>> = (0..500)
//!     .map(|i| Point::new([(i % 25) as f64 / 25.0, (i / 25) as f64 / 20.0]))
//!     .collect();
//! let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
//! let bytes = persist::serialize_rect(tree.core());
//! let loaded = RStarTree::<2>::from_bytes(&bytes).unwrap();
//! assert_eq!(loaded.num_records(), 500);
//! ```

use crate::arena::NodeId;
use crate::rect::{RNode, RectCore};
use crate::traits::LeafEntry;
use crate::{RTreeConfig, SplitStrategy};
use csj_geom::{Mbr, Point};

const MAGIC: &[u8; 8] = b"CSJRTREE";
const VERSION: u32 = 1;
const NO_NODE: u32 = u32::MAX;

/// FNV-1a over the payload: structural validation cannot notice a
/// corrupted *interior* point (leaf MBRs are determined by extreme
/// points only), so the format carries an integrity checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Errors surfaced while decoding a persisted tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u32),
    /// The file was written for a different dimensionality.
    DimensionMismatch {
        /// Dimension recorded in the file.
        stored: u32,
        /// Dimension requested by the caller.
        requested: u32,
    },
    /// The buffer ended mid-record.
    Truncated,
    /// The payload checksum does not match (bit rot / corruption).
    ChecksumMismatch,
    /// A structural reference (child/root id) is out of range.
    CorruptStructure(String),
    /// An operating-system I/O failure while reading or writing the
    /// index file (path and OS error text).
    Io(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a csj index file (bad magic)"),
            PersistError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            PersistError::DimensionMismatch { stored, requested } => {
                write!(f, "index stores {stored}-d points, caller requested {requested}-d")
            }
            PersistError::Truncated => write!(f, "file truncated"),
            PersistError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            PersistError::CorruptStructure(msg) => write!(f, "corrupt structure: {msg}"),
            PersistError::Io(msg) => write!(f, "index file I/O: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<csj_storage::StorageError> for PersistError {
    fn from(e: csj_storage::StorageError) -> Self {
        PersistError::Io(e.to_string())
    }
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.buf.len() {
            return Err(PersistError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        // csj-lint: allow(panic-safety) — take(4) either returns exactly
        // 4 bytes or errors Truncated; the conversion is infallible.
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        // csj-lint: allow(panic-safety) — as `u32`: take(8) is exact.
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn f64(&mut self) -> Result<f64, PersistError> {
        // csj-lint: allow(panic-safety) — as `u32`: take(8) is exact.
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Serializes a rectangle-tree core to bytes.
pub fn serialize_rect<const D: usize>(core: &RectCore<D>) -> Vec<u8> {
    // Dense renumbering in DFS preorder.
    let mut order: Vec<NodeId> = Vec::with_capacity(core.node_count());
    let mut remap = std::collections::HashMap::new();
    if let Some(root) = core.root {
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            remap.insert(id, order.len() as u32);
            order.push(id);
            // Reverse so children pop in original order.
            for &c in core.node(id).children.iter().rev() {
                stack.push(c);
            }
        }
    }

    let mut w = Writer { buf: Vec::with_capacity(64 + order.len() * 64) };
    w.buf.extend_from_slice(MAGIC);
    w.u32(VERSION);
    w.u32(D as u32);
    w.u64(core.num_records as u64);
    w.u32(core.config.max_fanout as u32);
    w.u32(core.config.min_fanout as u32);
    w.u32(match core.config.split {
        SplitStrategy::Linear => 0,
        SplitStrategy::Quadratic => 1,
    });
    w.f64(core.config.reinsert_fraction);
    w.u32(order.len() as u32);
    w.u32(if order.is_empty() { NO_NODE } else { 0 }); // root is always record 0

    for &id in &order {
        let node = core.node(id);
        w.u32(node.level);
        for d in 0..D {
            w.f64(node.mbr.lo[d]);
        }
        for d in 0..D {
            w.f64(node.mbr.hi[d]);
        }
        w.u32(node.children.len() as u32);
        for &c in &node.children {
            w.u32(remap[&c]);
        }
        w.u32(node.entries.len() as u32);
        for e in &node.entries {
            w.u32(e.id);
            for d in 0..D {
                w.f64(e.point[d]);
            }
        }
    }
    let checksum = fnv1a(&w.buf);
    w.u64(checksum);
    w.buf
}

/// Decodes a rectangle-tree core from bytes written by
/// [`serialize_rect`]. Structural invariants are re-validated.
///
/// # Errors
/// Returns a [`PersistError`] when the bytes are not a valid tree
/// image: wrong magic or version, truncation, checksum mismatch, or
/// a decoded structure that fails invariant validation.
pub fn deserialize_rect<const D: usize>(bytes: &[u8]) -> Result<RectCore<D>, PersistError> {
    if bytes.len() < 16 {
        return Err(if bytes.starts_with(b"CSJRTREE") || b"CSJRTREE".starts_with(bytes) {
            PersistError::Truncated
        } else {
            PersistError::BadMagic
        });
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    // csj-lint: allow(panic-safety) — split_at(len - 8) makes the tail
    // exactly 8 bytes (the length was bounds-checked above).
    let stored_sum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(payload) != stored_sum {
        // Distinguish truncation (prefix of a valid file) heuristically:
        // a wrong-magic buffer reports BadMagic below either way.
        if &payload[..8.min(payload.len())] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        return Err(PersistError::ChecksumMismatch);
    }
    let mut r = Reader { buf: payload, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let dim = r.u32()?;
    if dim as usize != D {
        return Err(PersistError::DimensionMismatch { stored: dim, requested: D as u32 });
    }
    let num_records = r.u64()? as usize;
    let max_fanout = r.u32()? as usize;
    let min_fanout = r.u32()? as usize;
    let split = match r.u32()? {
        0 => SplitStrategy::Linear,
        1 => SplitStrategy::Quadratic,
        other => {
            return Err(PersistError::CorruptStructure(format!("unknown split strategy {other}")))
        }
    };
    let reinsert_fraction = r.f64()?;
    let node_count = r.u32()? as usize;
    let root_mark = r.u32()?;
    // Plausibility guards so a corrupt (but checksum-colliding) header
    // cannot trigger huge allocations: every node record occupies at
    // least 12 bytes + the MBR corners.
    let min_node_bytes = 12 + 16 * D;
    if node_count.saturating_mul(min_node_bytes) > r.buf.len() {
        return Err(PersistError::Truncated);
    }
    if num_records.saturating_mul(4 + 8 * D) > r.buf.len() {
        return Err(PersistError::Truncated);
    }

    // Validate config bounds by hand: `RTreeConfig::validate` panics,
    // and a garbage file must produce an error, never a panic.
    if max_fanout < 4
        || min_fanout < 2
        || min_fanout > max_fanout / 2
        || !(0.0..0.5).contains(&reinsert_fraction)
    {
        return Err(PersistError::CorruptStructure(format!(
            "invalid tree config: max_fanout={max_fanout} min_fanout={min_fanout} reinsert={reinsert_fraction}"
        )));
    }
    let config = RTreeConfig { max_fanout, min_fanout, split, reinsert_fraction };
    let mut core = RectCore::new(config);
    core.num_records = num_records;

    // First pass: allocate nodes (ids come out dense and sequential).
    let mut children_of: Vec<Vec<u32>> = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let level = r.u32()?;
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for v in lo.iter_mut() {
            *v = r.f64()?;
        }
        for v in hi.iter_mut() {
            *v = r.f64()?;
        }
        let n_children = r.u32()? as usize;
        if n_children > node_count {
            return Err(PersistError::CorruptStructure("child count exceeds node count".into()));
        }
        let mut children = Vec::with_capacity(n_children);
        for _ in 0..n_children {
            children.push(r.u32()?);
        }
        let n_entries = r.u32()? as usize;
        if n_entries > num_records {
            return Err(PersistError::CorruptStructure("entry count exceeds record count".into()));
        }
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let id = r.u32()?;
            let mut coords = [0.0; D];
            for v in coords.iter_mut() {
                *v = r.f64()?;
            }
            entries.push(LeafEntry::new(id, Point::new(coords)));
        }
        let node = RNode {
            mbr: if (0..D).all(|d| lo[d] <= hi[d]) {
                Mbr::new(Point::new(lo), Point::new(hi))
            } else {
                return Err(PersistError::CorruptStructure("inverted MBR".into()));
            },
            parent: None,
            level,
            children: Vec::new(),
            entries: entries.into(),
        };
        core.arena.alloc(node);
        children_of.push(children);
    }

    // Second pass: wire children and parents.
    for (idx, children) in children_of.into_iter().enumerate() {
        let parent_id = NodeId(idx as u32);
        for c in children {
            if c as usize >= node_count {
                return Err(PersistError::CorruptStructure(format!("child id {c} out of range")));
            }
            let child_id = NodeId(c);
            core.arena.get_mut(child_id).parent = Some(parent_id);
            core.arena.get_mut(parent_id).children.push(child_id);
        }
    }

    core.root = if root_mark == NO_NODE {
        None
    } else {
        if node_count == 0 {
            return Err(PersistError::CorruptStructure("root marked but no nodes".into()));
        }
        Some(NodeId(0))
    };

    crate::validate::validate_rect_tree(&core)
        .map_err(|e| PersistError::CorruptStructure(e.to_string()))?;
    Ok(core)
}

/// Writes already-serialized index bytes to `path` atomically (temp
/// file + rename), so readers never observe a half-written index.
///
/// # Errors
/// Returns [`PersistError::Io`] when the temp-file write or rename
/// fails; the destination is left untouched.
pub fn save_bytes(path: impl AsRef<std::path::Path>, bytes: &[u8]) -> Result<(), PersistError> {
    csj_storage::fault::write_file_atomic(path, bytes).map_err(PersistError::from)
}

/// Like [`save_bytes`], but routed through a fault injector — used to
/// drill the recovery path (fail-once, torn writes) from tests.
///
/// # Errors
/// Returns [`PersistError::Io`] for injected write failures; torn
/// writes report success and are caught by the reader's checksum.
pub fn save_bytes_with_faults(
    path: impl AsRef<std::path::Path>,
    bytes: &[u8],
    injector: &mut csj_storage::FaultInjector,
) -> Result<(), PersistError> {
    csj_storage::fault::write_file_with_faults(path, bytes, injector).map_err(PersistError::from)
}

/// Reads raw index bytes from `path` (checksum verification happens in
/// the deserializer).
///
/// # Errors
/// Returns [`PersistError::Io`] when the file cannot be read.
pub fn load_bytes(path: impl AsRef<std::path::Path>) -> Result<Vec<u8>, PersistError> {
    let path = path.as_ref();
    std::fs::read(path).map_err(|e| PersistError::Io(format!("{}: {e}", path.display())))
}

impl<const D: usize> crate::rstar::RStarTree<D> {
    /// Serializes the tree with [`serialize_rect`].
    pub fn to_bytes(&self) -> Vec<u8> {
        serialize_rect(self.core())
    }

    /// Loads a tree persisted by [`RStarTree::to_bytes`] (or
    /// [`crate::rtree::RTree::to_bytes`] — the on-disk layout is shared).
    ///
    /// # Errors
    /// Returns a [`PersistError`] as documented on
    /// [`deserialize_rect`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        Ok(crate::rstar::RStarTree { core: deserialize_rect(bytes)? })
    }

    /// Persists the tree to `path` atomically.
    ///
    /// # Errors
    /// Returns [`PersistError::Io`] when writing or renaming fails.
    pub fn save_to_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), PersistError> {
        save_bytes(path, &self.to_bytes())
    }

    /// Loads a tree persisted by [`RStarTree::save_to_file`]. Corruption
    /// (bit rot, torn writes) surfaces as a typed [`PersistError`] —
    /// typically [`PersistError::ChecksumMismatch`] or
    /// [`PersistError::Truncated`] — never a panic, so callers can
    /// restore the file and retry.
    ///
    /// # Errors
    /// Returns a [`PersistError`] when the file cannot be read or its
    /// contents fail decoding/validation.
    pub fn load_from_file(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        Self::from_bytes(&load_bytes(path)?)
    }
}

impl<const D: usize> crate::rtree::RTree<D> {
    /// Serializes the tree with [`serialize_rect`].
    pub fn to_bytes(&self) -> Vec<u8> {
        serialize_rect(self.core())
    }

    /// Loads a tree persisted by [`RTree::to_bytes`].
    ///
    /// # Errors
    /// Returns a [`PersistError`] as documented on
    /// [`deserialize_rect`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        Ok(crate::rtree::RTree { core: deserialize_rect(bytes)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rstar::RStarTree;
    use crate::traits::JoinIndex;
    use csj_geom::Metric;

    fn sample_tree(n: usize) -> RStarTree<2> {
        let pts: Vec<Point<2>> = (0..n)
            .map(|i| {
                Point::new([
                    ((i * 2654435761) % 10_000) as f64 / 10_000.0,
                    ((i * 40503 + 7) % 10_000) as f64 / 10_000.0,
                ])
            })
            .collect();
        RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(12))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let tree = sample_tree(900);
        let bytes = tree.to_bytes();
        let loaded = RStarTree::<2>::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.num_records(), tree.num_records());
        assert_eq!(loaded.height(), tree.height());
        assert_eq!(loaded.core().node_count(), tree.core().node_count());
        // Queries agree exactly.
        let q = Point::new([0.3, 0.7]);
        let mut a = tree.core().range_query_ball(&q, 0.1, Metric::Euclidean);
        let mut b = loaded.core().range_query_ball(&q, 0.1, Metric::Euclidean);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_is_deterministic() {
        let tree = sample_tree(400);
        let bytes = tree.to_bytes();
        let again = RStarTree::<2>::from_bytes(&bytes).unwrap().to_bytes();
        assert_eq!(bytes, again, "serialize ∘ deserialize is the identity on bytes");
    }

    #[test]
    fn empty_tree_roundtrip() {
        let tree = RStarTree::<2>::new(RTreeConfig::default());
        let loaded = RStarTree::<2>::from_bytes(&tree.to_bytes()).unwrap();
        assert_eq!(loaded.num_records(), 0);
        assert!(loaded.root().is_none());
    }

    #[test]
    fn loaded_tree_supports_further_insertion() {
        let mut loaded = RStarTree::<2>::from_bytes(&sample_tree(300).to_bytes()).unwrap();
        for i in 0..100u32 {
            loaded.insert(1000 + i, Point::new([0.001 * i as f64, 0.5]));
        }
        assert_eq!(loaded.num_records(), 400);
        crate::validate::validate_rect_tree(loaded.core()).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(RStarTree::<2>::from_bytes(b"NOTATREE").unwrap_err(), PersistError::BadMagic);
        assert_eq!(RStarTree::<2>::from_bytes(b"CS").unwrap_err(), PersistError::Truncated);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let tree = sample_tree(100);
        let bytes = tree.to_bytes();
        match crate::persist::deserialize_rect::<3>(&bytes) {
            Err(PersistError::DimensionMismatch { stored: 2, requested: 3 }) => {}
            other => panic!("expected dimension mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample_tree(200).to_bytes();
        for cut in [9, bytes.len() / 2, bytes.len() - 1] {
            // A truncated file either fails its checksum or runs out of
            // bytes; both refuse the load.
            let err = RStarTree::<2>::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, PersistError::Truncated | PersistError::ChecksumMismatch),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn corruption_caught_by_validation() {
        let mut bytes = sample_tree(300).to_bytes();
        // Flip a coordinate byte deep in the payload. Structural
        // validation alone cannot see an interior-point flip (leaf MBRs
        // are set by extreme points), so the checksum must catch it.
        let idx = bytes.len() - 20;
        bytes[idx] ^= 0xFF;
        assert_eq!(RStarTree::<2>::from_bytes(&bytes).unwrap_err(), PersistError::ChecksumMismatch);
    }

    #[test]
    fn version_rejected() {
        // Rewrite the version field and re-stamp the checksum so the
        // version check itself is exercised.
        let tree = sample_tree(50);
        let bytes = tree.to_bytes();
        let mut payload = bytes[..bytes.len() - 8].to_vec();
        payload[8] = 99;
        let sum = super::fnv1a(&payload);
        payload.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            RStarTree::<2>::from_bytes(&payload).unwrap_err(),
            PersistError::BadVersion(_)
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rstar::RStarTree;
    use crate::traits::JoinIndex;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Round-trip over arbitrary trees (dynamic and bulk-built, both
        /// fanouts) preserves records, structure and query behaviour.
        #[test]
        fn roundtrip_arbitrary_trees(
            pts in prop::collection::vec(prop::array::uniform2(-5.0f64..5.0), 0..250),
            fanout in 4usize..12,
            bulk in any::<bool>(),
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let cfg = RTreeConfig::with_max_fanout(fanout);
            let tree = if bulk {
                RStarTree::bulk_load_str(&points, cfg)
            } else {
                RStarTree::from_points(&points, cfg)
            };
            let loaded = RStarTree::<2>::from_bytes(&tree.to_bytes()).unwrap();
            prop_assert_eq!(loaded.num_records(), tree.num_records());
            prop_assert_eq!(loaded.height(), tree.height());
            let mut a: Vec<u32> = Vec::new();
            let mut b: Vec<u32> = Vec::new();
            if let (Some(ra), Some(rb)) = (tree.root(), loaded.root()) {
                tree.collect_record_ids(ra, &mut a);
                loaded.collect_record_ids(rb, &mut b);
            }
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}

#[cfg(test)]
mod fuzz {
    use crate::rstar::RStarTree;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The decoder never panics on arbitrary input — it returns an
        /// error for anything that is not a valid index file.
        #[test]
        fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
            let _ = RStarTree::<2>::from_bytes(&bytes);
            let _ = crate::persist::deserialize_rect::<3>(&bytes);
        }

        /// Nor on mutations of a valid file (truncation, bit flips,
        /// splices) — every corruption is rejected with an error.
        #[test]
        fn decoder_never_panics_on_mutations(
            flip_at in 0usize..4096,
            cut in 0usize..4096,
        ) {
            let pts: Vec<csj_geom::Point<2>> = (0..100)
                .map(|i| csj_geom::Point::new([i as f64 * 0.01, (i % 7) as f64 * 0.1]))
                .collect();
            let tree = RStarTree::bulk_load_str(&pts, crate::RTreeConfig::with_max_fanout(8));
            let mut bytes = tree.to_bytes();
            if !bytes.is_empty() {
                let i = flip_at % bytes.len();
                bytes[i] ^= 0x5A;
                let end = cut % (bytes.len() + 1);
                let _ = RStarTree::<2>::from_bytes(&bytes[..end]);
                let _ = RStarTree::<2>::from_bytes(&bytes);
            }
        }
    }
}
