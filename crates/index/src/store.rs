//! Leaf payload storage with a struct-of-arrays coordinate mirror.
//!
//! The distance kernels in `csj-geom` want each leaf's coordinates as one
//! contiguous `f64` slab per dimension ([`csj_geom::SoaView`]) so probes
//! are streaming loads, while the tree algorithms (insertion, splits,
//! condensation, persistence) want `LeafEntry` records. [`LeafStore`]
//! keeps both: a `Vec<LeafEntry<D>>` that remains the source of truth,
//! plus a [`SoaBuffer`] mirror maintained through the narrow mutation API
//! below. Reads go through `Deref<Target = [LeafEntry<D>]>`, so call
//! sites that only look at entries are unchanged.

use std::ops::Deref;

use crate::traits::LeafEntry;
use csj_geom::{SoaBuffer, SoaView};

/// Leaf entries stored as parallel arrays: entry records plus a
/// struct-of-arrays coordinate mirror for the batched distance kernels.
///
/// Invariant: `soa().point(i) == entries[i].point` for every `i`.
#[derive(Clone, Debug, Default)]
pub struct LeafStore<const D: usize> {
    entries: Vec<LeafEntry<D>>,
    soa: SoaBuffer<D>,
}

impl<const D: usize> LeafStore<D> {
    /// An empty store.
    pub fn new() -> Self {
        LeafStore { entries: Vec::new(), soa: SoaBuffer::new() }
    }

    /// The entry records (also available through `Deref`).
    #[inline]
    pub fn entries(&self) -> &[LeafEntry<D>] {
        &self.entries
    }

    /// The coordinates of all entries as per-dimension slabs, in entry
    /// order — the batched-kernel view.
    #[inline]
    pub fn soa(&self) -> SoaView<'_, D> {
        self.soa.view()
    }

    /// Appends an entry.
    #[inline]
    pub fn push(&mut self, e: LeafEntry<D>) {
        self.soa.push(&e.point);
        self.entries.push(e);
    }

    /// Removes and returns the entry at `i`, replacing it with the last
    /// entry (like [`Vec::swap_remove`]).
    pub fn swap_remove(&mut self, i: usize) -> LeafEntry<D> {
        self.soa.swap_remove(i);
        self.entries.swap_remove(i)
    }

    /// Takes all entries out, leaving the store empty.
    pub fn take(&mut self) -> Vec<LeafEntry<D>> {
        self.soa.clear();
        std::mem::take(&mut self.entries)
    }

    /// Runs an arbitrary mutation on the entry vector (sorting, draining,
    /// …) and rebuilds the coordinate mirror afterwards. The escape hatch
    /// for call sites that need full `Vec` access.
    pub fn edit<R>(&mut self, f: impl FnOnce(&mut Vec<LeafEntry<D>>) -> R) -> R {
        let out = f(&mut self.entries);
        self.soa.clear();
        for e in &self.entries {
            self.soa.push(&e.point);
        }
        out
    }
}

impl<const D: usize> From<Vec<LeafEntry<D>>> for LeafStore<D> {
    fn from(entries: Vec<LeafEntry<D>>) -> Self {
        let mut soa = SoaBuffer::with_capacity(entries.len());
        for e in &entries {
            soa.push(&e.point);
        }
        LeafStore { entries, soa }
    }
}

impl<const D: usize> Deref for LeafStore<D> {
    type Target = [LeafEntry<D>];
    #[inline]
    fn deref(&self) -> &[LeafEntry<D>] {
        &self.entries
    }
}

impl<'a, const D: usize> IntoIterator for &'a LeafStore<D> {
    type Item = &'a LeafEntry<D>;
    type IntoIter = std::slice::Iter<'a, LeafEntry<D>>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl<const D: usize> IntoIterator for LeafStore<D> {
    type Item = LeafEntry<D>;
    type IntoIter = std::vec::IntoIter<LeafEntry<D>>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csj_geom::{Point, RecordId};

    fn entry(id: RecordId, x: f64) -> LeafEntry<2> {
        LeafEntry::new(id, Point::new([x, -x]))
    }

    fn assert_mirror(s: &LeafStore<2>) {
        assert_eq!(s.soa().len(), s.entries().len());
        for (i, e) in s.entries().iter().enumerate() {
            assert_eq!(e.point, s.soa().point(i), "mirror out of sync");
        }
    }

    #[test]
    fn push_and_read_views() {
        let mut s = LeafStore::new();
        s.push(entry(1, 0.5));
        s.push(entry(2, 1.5));
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].id, 1);
        assert_eq!(s.soa().point(1), Point::new([1.5, -1.5]));
        assert_eq!(s.soa().dims()[0], &[0.5, 1.5], "x slab is contiguous");
        assert_eq!(s.soa().dims()[1], &[-0.5, -1.5], "y slab is contiguous");
        assert_mirror(&s);
        // Deref gives slice iteration; &store gives IntoIterator.
        assert_eq!(s.iter().count(), 2);
        assert_eq!((&s).into_iter().count(), 2);
    }

    #[test]
    fn from_vec_and_take_roundtrip() {
        let v = vec![entry(1, 0.0), entry(2, 1.0), entry(3, 2.0)];
        let mut s = LeafStore::from(v.clone());
        assert_mirror(&s);
        let back = s.take();
        assert_eq!(back, v);
        assert!(s.is_empty());
        assert!(s.soa().is_empty());
    }

    #[test]
    fn swap_remove_keeps_mirror() {
        let mut s = LeafStore::from(vec![entry(1, 0.0), entry(2, 1.0), entry(3, 2.0)]);
        let removed = s.swap_remove(0);
        assert_eq!(removed.id, 1);
        assert_eq!(s[0].id, 3, "last entry swapped into the hole");
        assert_mirror(&s);
        let removed = s.swap_remove(1);
        assert_eq!(removed.id, 2);
        assert_mirror(&s);
    }

    #[test]
    fn edit_rebuilds_mirror() {
        let mut s = LeafStore::from(vec![entry(3, 2.0), entry(1, 0.0), entry(2, 1.0)]);
        let split = s.edit(|v| {
            v.sort_by_key(|e| e.id);
            v.split_off(2)
        });
        assert_eq!(split.len(), 1);
        assert_eq!(split[0].id, 3);
        assert_eq!(s.len(), 2);
        assert_mirror(&s);
    }

    #[test]
    fn owned_into_iter() {
        let s = LeafStore::from(vec![entry(1, 0.0), entry(2, 1.0)]);
        let ids: Vec<u32> = s.into_iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2]);
    }
}
