//! Descriptive statistics over index trees.
//!
//! Experiment interpretation (which ε produces early stops, where SSJ and
//! the compact joins diverge — point 3 of the paper's trend list) depends
//! on the distribution of node diameters; this module computes those
//! summaries for any [`JoinIndex`].

use crate::traits::JoinIndex;
use csj_geom::Metric;

/// Summary statistics of a tree's shape and node geometry.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeStats {
    /// Number of data records.
    pub num_records: usize,
    /// Total node count.
    pub node_count: usize,
    /// Leaf node count.
    pub leaf_count: usize,
    /// Tree height (1 = single leaf root).
    pub height: usize,
    /// Mean leaf occupancy.
    pub avg_leaf_occupancy: f64,
    /// Minimum diameter over leaf bounding shapes.
    pub min_leaf_diameter: f64,
    /// Mean diameter over leaf bounding shapes.
    pub avg_leaf_diameter: f64,
    /// Maximum diameter over leaf bounding shapes.
    pub max_leaf_diameter: f64,
}

impl TreeStats {
    /// Computes statistics for `tree` under `metric`.
    pub fn compute<const D: usize, T: JoinIndex<D>>(tree: &T, metric: Metric) -> Self {
        let mut node_count = 0usize;
        let mut leaf_count = 0usize;
        let mut occupancy_sum = 0usize;
        let mut dia_min = f64::INFINITY;
        let mut dia_max: f64 = 0.0;
        let mut dia_sum = 0.0;
        if let Some(root) = tree.root() {
            let mut stack = vec![root];
            while let Some(id) = stack.pop() {
                node_count += 1;
                if tree.is_leaf(id) {
                    leaf_count += 1;
                    occupancy_sum += tree.leaf_entries(id).len();
                    let d = tree.max_diameter(id, metric);
                    dia_min = dia_min.min(d);
                    dia_max = dia_max.max(d);
                    dia_sum += d;
                } else {
                    stack.extend_from_slice(tree.children(id));
                }
            }
        }
        TreeStats {
            num_records: tree.num_records(),
            node_count,
            leaf_count,
            height: tree.height(),
            avg_leaf_occupancy: if leaf_count == 0 {
                0.0
            } else {
                occupancy_sum as f64 / leaf_count as f64
            },
            min_leaf_diameter: if leaf_count == 0 { 0.0 } else { dia_min },
            avg_leaf_diameter: if leaf_count == 0 { 0.0 } else { dia_sum / leaf_count as f64 },
            max_leaf_diameter: dia_max,
        }
    }
}

impl std::fmt::Display for TreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "records={} nodes={} leaves={} height={} avg_fill={:.1} leaf_diam[min/avg/max]={:.4}/{:.4}/{:.4}",
            self.num_records,
            self.node_count,
            self.leaf_count,
            self.height,
            self.avg_leaf_occupancy,
            self.min_leaf_diameter,
            self.avg_leaf_diameter,
            self.max_leaf_diameter
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtree::RTree;
    use crate::RTreeConfig;
    use csj_geom::Point;

    #[test]
    fn stats_of_empty_tree() {
        let tree = RTree::<2>::new(RTreeConfig::default());
        let s = TreeStats::compute(&tree, Metric::Euclidean);
        assert_eq!(s.num_records, 0);
        assert_eq!(s.node_count, 0);
        assert_eq!(s.height, 0);
        assert_eq!(s.avg_leaf_occupancy, 0.0);
    }

    #[test]
    fn stats_of_populated_tree() {
        let pts: Vec<Point<2>> = (0..200)
            .map(|i| Point::new([(i % 20) as f64 / 20.0, (i / 20) as f64 / 10.0]))
            .collect();
        let tree = RTree::from_points(&pts, RTreeConfig::with_max_fanout(8));
        let s = TreeStats::compute(&tree, Metric::Euclidean);
        assert_eq!(s.num_records, 200);
        assert!(s.leaf_count > 1);
        assert!(s.node_count > s.leaf_count, "has internal nodes");
        assert!(s.height >= 2);
        assert!(s.avg_leaf_occupancy > 0.0 && s.avg_leaf_occupancy <= 8.0);
        assert!(s.min_leaf_diameter <= s.avg_leaf_diameter);
        assert!(s.avg_leaf_diameter <= s.max_leaf_diameter);
        // Sanity: leaf diameters are below the dataset diameter.
        assert!(s.max_leaf_diameter <= 2.0f64.sqrt() + 1e-9);
        let shown = s.to_string();
        assert!(shown.contains("records=200"));
    }
}
