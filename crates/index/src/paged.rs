//! Page-serialized R*-tree nodes behind a live buffer pool.
//!
//! The in-memory trees keep nodes in an arena; this module stores them
//! in fixed-size disk pages (one node per page, the granularity the
//! paper's Experiment 3 simulates), giving the join engines a real
//! external-memory index: resident nodes are bounded by a
//! [`BufferPool`], in-use pages are pinned, and everything else lives
//! on a [`Disk`] — the counting simulation or a real page file.
//!
//! # Page format (version 1, little-endian)
//!
//! Page 0 is the superblock:
//!
//! ```text
//! magic "CSJPAGE1" | version u32 | dims u32 | max_fanout u32 |
//! height u32 | num_records u64 | node_pages u64 | root_page u64
//! ```
//!
//! (`root_page == 0` encodes an empty tree — page 0 is the superblock,
//! so no node can live there.) Every other page is one node:
//!
//! ```text
//! level u32 | count u32 | node MBR (2·D f64) | payload
//! ```
//!
//! where the payload is `count` leaf entries (`id u32`, `point D·f64`)
//! at level 0 and `count` child slots (`child page u64`, `child MBR
//! 2·D f64`) above. **Parents store their children's MBRs**: every
//! pruning and early-stopping decision the join engines make
//! (`min_dist`, `pair_diameter`, `max_diameter`) is a pure function of
//! node MBRs, so child pages are only faulted in when a pair actually
//! survives pruning — and the out-of-core traversal makes bit-identical
//! decisions to the in-memory one.
//!
//! Trees reach disk two ways: [`PagedTree::from_core`] serializes any
//! built [`RectCore`] (so all three bulk loaders — STR, Hilbert, OMT —
//! write to pages), and [`PagedTree::build_str`] streams an STR build
//! bottom-up, writing each leaf as its chunk is produced and keeping
//! only `(page, MBR)` per node of the level under construction — the
//! node arena for a multi-million-point tree never materializes.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::ops::Deref;
use std::rc::Rc;

use crate::bulk::{make_entries, str_chunks};
use crate::rect::RectCore;
use crate::store::LeafStore;
use crate::traits::LeafEntry;
use crate::RTreeConfig;
use csj_geom::{Mbr, Point, RecordId};
use csj_storage::buffer::{BufferPool, BufferStats};
use csj_storage::disk::Disk;
use csj_storage::{IoOp, Page, PageId, RetryPager, RetryPolicy, StorageError, PAGE_SIZE};

/// Superblock magic: identifies a CSJ page file, version 1.
const MAGIC: &[u8; 8] = b"CSJPAGE1";
/// On-disk format version.
const VERSION: u32 = 1;
/// Fixed superblock length (magic + 4 u32 + 3 u64).
const SUPERBLOCK_LEN: usize = 8 + 4 * 4 + 3 * 8;
/// Node page header length before the payload: level, count, node MBR.
const fn node_header_len(dims: usize) -> usize {
    8 + 16 * dims
}
/// Bytes per leaf entry: record id + point.
const fn leaf_entry_len(dims: usize) -> usize {
    4 + 8 * dims
}
/// Bytes per internal child slot: child page + child MBR.
const fn child_slot_len(dims: usize) -> usize {
    8 + 16 * dims
}

/// Tree-level metadata stored in the superblock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagedMeta {
    /// Spatial dimensionality of the stored tree.
    pub dims: u32,
    /// Maximum node fanout the tree was built with.
    pub max_fanout: u32,
    /// Tree height (1 = single leaf root, 0 = empty).
    pub height: u32,
    /// Number of data records.
    pub num_records: u64,
    /// Node pages written (excluding the superblock).
    pub node_pages: u64,
    /// The root node's page, `None` for an empty tree.
    pub root: Option<PageId>,
}

/// One decoded tree node, as read from (or about to be written to) a
/// page.
#[derive(Clone, Debug)]
pub struct PagedNode<const D: usize> {
    /// Distance from the leaf level (0 = leaf).
    pub level: u32,
    /// Bounding rectangle of everything below this node.
    pub mbr: Mbr<D>,
    /// Child pages with their MBRs (internal nodes only).
    pub children: Vec<(PageId, Mbr<D>)>,
    /// Data records (leaves only), with the struct-of-arrays mirror the
    /// batched distance kernels probe.
    pub entries: LeafStore<D>,
}

impl<const D: usize> PagedNode<D> {
    /// A leaf over `entries` (MBR computed from the points).
    pub fn leaf(entries: Vec<LeafEntry<D>>) -> Self {
        let mut mbr = Mbr::empty();
        for e in &entries {
            mbr.expand_to_point(&e.point);
        }
        PagedNode { level: 0, mbr, children: Vec::new(), entries: entries.into() }
    }

    /// An internal node over `children` (MBR = union of child MBRs).
    pub fn internal(level: u32, children: Vec<(PageId, Mbr<D>)>) -> Self {
        debug_assert!(level >= 1);
        let mut mbr = Mbr::empty();
        for (_, m) in &children {
            mbr.expand_to_mbr(m);
        }
        PagedNode { level, mbr, children, entries: LeafStore::new() }
    }

    /// `true` if the node stores data records directly.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Serialized size in bytes.
    fn encoded_len(&self) -> usize {
        node_header_len(D)
            + if self.is_leaf() {
                self.entries.len() * leaf_entry_len(D)
            } else {
                self.children.len() * child_slot_len(D)
            }
    }
}

fn corrupt(page: PageId, msg: impl std::fmt::Display) -> StorageError {
    StorageError::Io { op: IoOp::Read, detail: format!("corrupt page {}: {msg}", page.0) }
}

/// Largest fanout whose nodes (leaf *and* internal — child slots are
/// the wider of the two) are guaranteed to fit one page.
const fn max_page_fanout(dims: usize) -> usize {
    let leaf = (PAGE_SIZE - node_header_len(dims)) / leaf_entry_len(dims);
    let child = (PAGE_SIZE - node_header_len(dims)) / child_slot_len(dims);
    if child < leaf {
        child
    } else {
        leaf
    }
}

/// Rejects a fanout whose full nodes cannot be paged. Checked up front
/// by [`PagedTree::from_core`] / [`PagedTree::build_str`] so an
/// impossible configuration fails before any page is allocated,
/// instead of mid-build with orphan pages already on disk.
fn check_fanout(dims: usize, fanout: usize) -> Result<(), StorageError> {
    let cap = max_page_fanout(dims);
    if fanout > cap {
        return Err(StorageError::Io {
            op: IoOp::Write,
            detail: format!(
                "fanout {fanout} cannot be paged: a full {dims}-d node needs more than the \
                 {PAGE_SIZE}-byte page (max pageable fanout is {cap})"
            ),
        });
    }
    Ok(())
}

/// Little-endian reader over one page's bytes.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    page: PageId,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(corrupt(self.page, format!("truncated at byte {}", self.pos)));
        };
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn mbr<const D: usize>(&mut self) -> Result<Mbr<D>, StorageError> {
        let mut lo = [0.0f64; D];
        let mut hi = [0.0f64; D];
        for slot in &mut lo {
            *slot = self.f64()?;
        }
        for slot in &mut hi {
            *slot = self.f64()?;
        }
        // Construct directly: `Mbr::new` debug-asserts ordered corners,
        // which decoding must not do on (possibly corrupt) disk bytes.
        Ok(Mbr { lo: Point::new(lo), hi: Point::new(hi) })
    }
}

fn put_mbr<const D: usize>(buf: &mut Vec<u8>, mbr: &Mbr<D>) {
    for d in 0..D {
        buf.extend_from_slice(&mbr.lo[d].to_bits().to_le_bytes());
    }
    for d in 0..D {
        buf.extend_from_slice(&mbr.hi[d].to_bits().to_le_bytes());
    }
}

/// Serializes a node into page bytes (zero-padded to [`PAGE_SIZE`]).
fn encode_node<const D: usize>(node: &PagedNode<D>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(node.encoded_len());
    buf.extend_from_slice(&node.level.to_le_bytes());
    let count = if node.is_leaf() { node.entries.len() } else { node.children.len() } as u32;
    buf.extend_from_slice(&count.to_le_bytes());
    put_mbr(&mut buf, &node.mbr);
    if node.is_leaf() {
        for e in node.entries.iter() {
            buf.extend_from_slice(&e.id.to_le_bytes());
            for d in 0..D {
                buf.extend_from_slice(&e.point[d].to_bits().to_le_bytes());
            }
        }
    } else {
        for (page, mbr) in &node.children {
            buf.extend_from_slice(&page.0.to_le_bytes());
            put_mbr(&mut buf, mbr);
        }
    }
    debug_assert!(
        buf.len() <= PAGE_SIZE,
        "encoded node ({} bytes) exceeds the page — fanout validation let an oversized \
         node through",
        buf.len(),
    );
    buf
}

/// Decodes one node page.
///
/// # Errors
/// Returns [`StorageError::Io`] when the page bytes are truncated or
/// internally inconsistent (corruption).
pub fn decode_node<const D: usize>(
    bytes: &[u8],
    page: PageId,
) -> Result<PagedNode<D>, StorageError> {
    let mut c = Cursor { buf: bytes, pos: 0, page };
    let level = c.u32()?;
    let count = c.u32()? as usize;
    let mbr = c.mbr::<D>()?;
    if level == 0 {
        if count > (PAGE_SIZE - node_header_len(D)) / leaf_entry_len(D) {
            return Err(corrupt(page, format!("leaf count {count} exceeds page capacity")));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let id = c.u32()? as RecordId;
            let mut coords = [0.0f64; D];
            for slot in &mut coords {
                *slot = c.f64()?;
            }
            entries.push(LeafEntry::new(id, Point::new(coords)));
        }
        Ok(PagedNode { level, mbr, children: Vec::new(), entries: entries.into() })
    } else {
        if count > (PAGE_SIZE - node_header_len(D)) / child_slot_len(D) {
            return Err(corrupt(page, format!("child count {count} exceeds page capacity")));
        }
        let mut children = Vec::with_capacity(count);
        for _ in 0..count {
            let child = PageId(c.u64()?);
            if child.0 == 0 {
                return Err(corrupt(page, "child pointer into the superblock"));
            }
            let child_mbr = c.mbr::<D>()?;
            children.push((child, child_mbr));
        }
        Ok(PagedNode { level, mbr, children, entries: LeafStore::new() })
    }
}

fn encode_superblock(meta: &PagedMeta) -> Vec<u8> {
    let mut buf = Vec::with_capacity(SUPERBLOCK_LEN);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&meta.dims.to_le_bytes());
    buf.extend_from_slice(&meta.max_fanout.to_le_bytes());
    buf.extend_from_slice(&meta.height.to_le_bytes());
    buf.extend_from_slice(&meta.num_records.to_le_bytes());
    buf.extend_from_slice(&meta.node_pages.to_le_bytes());
    buf.extend_from_slice(&meta.root.map_or(0, |p| p.0).to_le_bytes());
    buf
}

fn decode_superblock(bytes: &[u8]) -> Result<PagedMeta, StorageError> {
    let page = PageId(0);
    let mut c = Cursor { buf: bytes, pos: 0, page };
    if c.take(8)? != MAGIC {
        return Err(corrupt(page, "bad magic (not a CSJ page file)"));
    }
    let version = c.u32()?;
    if version != VERSION {
        return Err(corrupt(page, format!("unsupported format version {version}")));
    }
    let dims = c.u32()?;
    let max_fanout = c.u32()?;
    let height = c.u32()?;
    let num_records = c.u64()?;
    let node_pages = c.u64()?;
    let root_raw = c.u64()?;
    Ok(PagedMeta {
        dims,
        max_fanout,
        height,
        num_records,
        node_pages,
        root: (root_raw != 0).then_some(PageId(root_raw)),
    })
}

/// Cumulative counters of a [`PagedStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagedStats {
    /// Buffer-pool hits / misses / evictions.
    pub pool: BufferStats,
    /// Physical page read attempts on the backing disk.
    pub disk_reads: u64,
    /// Physical page write attempts on the backing disk.
    pub disk_writes: u64,
    /// Transient-fault retries absorbed by the pager.
    pub io_retries: u64,
    /// Faults the disk's injector produced.
    pub faults_injected: u64,
    /// Page misses served from prefetch-staged bytes instead of a
    /// synchronous disk read.
    pub prefetch_supplied: u64,
    /// Node pages decoded (equals pool misses for a read-only join).
    pub nodes_decoded: u64,
}

/// In-memory page state: the pool, the decoded-node cache, dirty
/// tracking, and the prefetch staging area. Never touches the disk —
/// write-back work leaves as [`PoolState::detach`] results the caller
/// performs *after* releasing the borrow.
struct PoolState<const D: usize> {
    pool: BufferPool,
    cache: HashMap<PageId, Rc<PagedNode<D>>>,
    dirty: HashSet<PageId>,
    staged: HashMap<PageId, Vec<u8>>,
    prefetch_supplied: u64,
    nodes_decoded: u64,
}

impl<const D: usize> PoolState<D> {
    /// Detaches an evicted `victim` from the cache, returning its
    /// encoded bytes when it was dirty and must reach the disk. The
    /// write itself is the caller's job, outside this borrow.
    fn detach(&mut self, victim: PageId) -> Option<(PageId, Vec<u8>)> {
        let node = self.cache.remove(&victim);
        if self.dirty.remove(&victim) {
            // csj-lint: allow(panic-safety) — a dirty page is by
            // construction cached; the pool never evicts what the cache
            // does not hold.
            let node = node.expect("dirty page must be cached");
            Some((victim, encode_node(node.as_ref())))
        } else {
            None
        }
    }
}

/// Node store over a [`Disk`]: decoded nodes cached under a pinned LRU
/// [`BufferPool`], dirty pages written back on eviction, reads retried
/// per the pager's policy.
///
/// Single-threaded by design (interior mutability via `RefCell`); the
/// async prefetcher runs in `csj-core` and hands raw page bytes in
/// through [`PagedStore::stage_raw`].
///
/// Pool state and the pager live in *separate* cells so that no disk
/// access ever happens while the state borrow is held: each operation
/// runs as short state-only critical sections with the I/O between
/// them. Beyond keeping the borrow windows tiny, this fixes a failure
/// -atomicity bug the single-cell layout had: a page used to be
/// admitted to the pool *before* its disk read, so a failed read left
/// the pool claiming a residency the cache never got.
pub struct PagedStore<const D: usize, Dk: Disk> {
    state: RefCell<PoolState<D>>,
    io: RefCell<RetryPager<Dk>>,
}

impl<const D: usize, Dk: Disk> std::fmt::Debug for PagedStore<D, Dk> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.borrow();
        f.debug_struct("PagedStore")
            .field("pool_capacity", &state.pool.capacity())
            .field("cached", &state.cache.len())
            .field("dirty", &state.dirty.len())
            .field("staged", &state.staged.len())
            .finish()
    }
}

/// A pinned, decoded node. The underlying page stays resident (and the
/// pool slot pinned) until the guard drops, so the node data a caller
/// holds can never be evicted underneath it.
pub struct NodeGuard<'s, const D: usize, Dk: Disk> {
    store: &'s PagedStore<D, Dk>,
    page: PageId,
    node: Rc<PagedNode<D>>,
}

impl<const D: usize, Dk: Disk> Deref for NodeGuard<'_, D, Dk> {
    type Target = PagedNode<D>;
    fn deref(&self) -> &PagedNode<D> {
        &self.node
    }
}

impl<const D: usize, Dk: Disk> NodeGuard<'_, D, Dk> {
    /// The page this guard pins.
    pub fn page(&self) -> PageId {
        self.page
    }
}

impl<const D: usize, Dk: Disk> Drop for NodeGuard<'_, D, Dk> {
    fn drop(&mut self) {
        self.store.state.borrow_mut().pool.unpin(self.page);
    }
}

impl<const D: usize, Dk: Disk> PagedStore<D, Dk> {
    /// A store over `disk` with an LRU pool of `pool_pages` frames.
    pub fn new(disk: Dk, policy: RetryPolicy, pool_pages: usize) -> Self {
        PagedStore {
            state: RefCell::new(PoolState {
                pool: BufferPool::new(pool_pages),
                cache: HashMap::new(),
                dirty: HashSet::new(),
                staged: HashMap::new(),
                prefetch_supplied: 0,
                nodes_decoded: 0,
            }),
            io: RefCell::new(RetryPager::new(disk, policy)),
        }
    }

    /// Reads (or finds cached) the node on `page`, pinning it for the
    /// lifetime of the returned guard.
    ///
    /// The page is admitted to the pool only *after* its bytes have
    /// been read and decoded: a failed read leaves the pool, cache and
    /// staging exactly as they were, so the call can simply be retried.
    ///
    /// # Errors
    /// Returns [`StorageError::AllPagesPinned`] when the pool cannot
    /// admit the page, [`StorageError::Io`] for disk failures or a
    /// corrupt page, and whatever the retry pager could not absorb.
    pub fn node(&self, page: PageId) -> Result<NodeGuard<'_, D, Dk>, StorageError> {
        // Fast path: resident. One short state borrow, no I/O.
        let staged = {
            let mut state = self.state.borrow_mut();
            if state.pool.contains(page) {
                let adm = state.pool.try_access(page)?;
                debug_assert!(adm.hit && adm.evicted.is_none());
                let node = match state.cache.get(&page) {
                    Some(n) => n.clone(),
                    None => {
                        return Err(corrupt(page, "pool/cache desync (resident but not cached)"))
                    }
                };
                state.pool.pin(page);
                return Ok(NodeGuard { store: self, page, node });
            }
            state.staged.remove(&page)
        };

        // Miss: fetch and decode with no borrow across the I/O.
        let from_prefetch = staged.is_some();
        let bytes = match staged {
            Some(b) => b,
            None => self.io.borrow_mut().read(page)?.data,
        };
        let node = Rc::new(decode_node::<D>(&bytes, page)?);

        // Admit, pin, and collect any eviction write-back to perform
        // after the borrow ends.
        let writeback = {
            let mut state = self.state.borrow_mut();
            let adm = match state.pool.try_access(page) {
                Ok(adm) => adm,
                Err(e) => {
                    if from_prefetch {
                        // Keep the prefetched copy for a later retry.
                        state.staged.insert(page, bytes);
                    }
                    return Err(e);
                }
            };
            let writeback = adm.evicted.and_then(|victim| state.detach(victim));
            if from_prefetch {
                state.prefetch_supplied += 1;
            }
            state.nodes_decoded += 1;
            state.cache.insert(page, node.clone());
            state.pool.pin(page);
            writeback
        };
        if let Some((victim, data)) = writeback {
            // Bound `let` so the io borrow ends before the error path
            // re-borrows state (an `if let` scrutinee temporary would
            // outlive the whole branch) — state before io, always.
            let written = self.io.borrow_mut().write(&Page::with_data(victim, data));
            if let Err(e) = written {
                // Keep the pin count balanced on the error path; the
                // page itself stays resident and cached.
                self.state.borrow_mut().pool.unpin(page);
                return Err(e);
            }
        }
        Ok(NodeGuard { store: self, page, node })
    }

    /// Writes `node` to a freshly allocated page through the pool
    /// (page 0 is reserved for the superblock on first use). The page
    /// is cached dirty; it reaches the disk on eviction or at
    /// [`PagedStore::checkpoint`].
    ///
    /// # Errors
    /// Returns [`StorageError::Io`] when the node does not fit a page
    /// or allocation fails, and [`StorageError::AllPagesPinned`] when
    /// the pool cannot admit it.
    pub fn put_node(&self, node: PagedNode<D>) -> Result<PageId, StorageError> {
        let need = node.encoded_len();
        if need > PAGE_SIZE {
            return Err(StorageError::Io {
                op: IoOp::Write,
                detail: format!(
                    "node ({} bytes, fanout {}) exceeds the {PAGE_SIZE}-byte page — lower the \
                     tree fanout",
                    need,
                    if node.is_leaf() { node.entries.len() } else { node.children.len() },
                ),
            });
        }
        let page = {
            let mut io = self.io.borrow_mut();
            if io.disk().num_pages() == 0 {
                io.disk_mut().alloc_through(PageId(0))?; // superblock
            }
            io.disk_mut().alloc()?
        };
        let writeback = {
            let mut state = self.state.borrow_mut();
            let adm = state.pool.try_access(page)?;
            let writeback = adm.evicted.and_then(|victim| state.detach(victim));
            state.cache.insert(page, Rc::new(node));
            state.dirty.insert(page);
            writeback
        };
        if let Some((victim, data)) = writeback {
            self.io.borrow_mut().write(&Page::with_data(victim, data))?;
        }
        Ok(page)
    }

    /// Writes the superblock (page 0) directly.
    ///
    /// # Errors
    /// Returns [`StorageError::Io`] when allocation or the write fails.
    pub fn write_superblock(&self, meta: &PagedMeta) -> Result<(), StorageError> {
        let mut io = self.io.borrow_mut();
        io.disk_mut().alloc_through(PageId(0))?;
        io.write(&Page::with_data(PageId(0), encode_superblock(meta)))
    }

    /// Reads and decodes the superblock.
    ///
    /// # Errors
    /// Returns [`StorageError::Io`] when the read fails, the file is not
    /// a CSJ page file, or its dimensionality differs from `D`.
    pub fn read_superblock(&self) -> Result<PagedMeta, StorageError> {
        let page = self.io.borrow_mut().read(PageId(0))?;
        let meta = decode_superblock(&page.data)?;
        if meta.dims as usize != D {
            return Err(corrupt(
                PageId(0),
                format!("dimensionality mismatch: file stores {}-d, caller wants {D}-d", meta.dims),
            ));
        }
        Ok(meta)
    }

    /// Flushes every dirty page and fsyncs the disk, making the tree
    /// durable.
    ///
    /// # Errors
    /// Returns [`StorageError::Io`] (or an exhausted-retries error) when
    /// a write-back or the final sync fails.
    pub fn checkpoint(&self) -> Result<(), StorageError> {
        // Snapshot the dirty set (sorted: deterministic write order)
        // and encode under the state borrow; write with only the pager
        // borrowed. The dirty set is cleared only after a successful
        // sync, so a failed checkpoint can be retried.
        let batch: Vec<(PageId, Vec<u8>)> = {
            let state = self.state.borrow();
            let mut dirty: Vec<PageId> = state.dirty.iter().copied().collect();
            dirty.sort_unstable();
            dirty
                .into_iter()
                .map(|page| {
                    // csj-lint: allow(panic-safety) — dirty pages are cached
                    // by construction (see detach); absence is a logic bug.
                    let node = state.cache.get(&page).expect("dirty page must be cached");
                    (page, encode_node(node.as_ref()))
                })
                .collect()
        };
        {
            let mut io = self.io.borrow_mut();
            for (page, data) in batch {
                io.write(&Page::with_data(page, data))?;
            }
            io.sync()?;
        }
        self.state.borrow_mut().dirty.clear();
        Ok(())
    }

    /// Offers raw prefetched page bytes. Accepted (and later consumed by
    /// the next miss on that page) unless the page is already resident
    /// or already staged; returns whether the bytes were kept.
    pub fn stage_raw(&self, page: PageId, bytes: Vec<u8>) -> bool {
        let mut state = self.state.borrow_mut();
        if state.pool.contains(page) || state.staged.contains_key(&page) {
            return false;
        }
        state.staged.insert(page, bytes);
        true
    }

    /// `true` when `page` is resident in the pool (its node is cached).
    pub fn is_resident(&self, page: PageId) -> bool {
        self.state.borrow().pool.contains(page)
    }

    /// Bytes currently held in the prefetch staging area.
    pub fn staged_bytes(&self) -> usize {
        self.state.borrow().staged.values().map(Vec::len).sum()
    }

    /// Pool capacity in pages.
    pub fn pool_capacity(&self) -> usize {
        self.state.borrow().pool.capacity()
    }

    /// Cumulative counters (pool, disk, retries, prefetch).
    pub fn stats(&self) -> PagedStats {
        let state = self.state.borrow();
        let io = self.io.borrow();
        PagedStats {
            pool: state.pool.stats(),
            disk_reads: io.disk().reads(),
            disk_writes: io.disk().writes(),
            io_retries: io.retries(),
            faults_injected: io.disk().faults_injected(),
            prefetch_supplied: state.prefetch_supplied,
            nodes_decoded: state.nodes_decoded,
        }
    }

    /// Consumes the store, returning the backing disk.
    pub fn into_disk(self) -> Dk {
        self.io.into_inner().into_disk()
    }
}

/// A page-resident rectangle tree: metadata plus a [`PagedStore`].
///
/// This is the out-of-core counterpart of [`RectCore`]: same node
/// structure, same child order, same MBRs — so a traversal that copies
/// the in-memory engine's visit order byte-for-byte reproduces its
/// output (see `csj_core::outofcore`).
#[derive(Debug)]
pub struct PagedTree<const D: usize, Dk: Disk> {
    store: PagedStore<D, Dk>,
    meta: PagedMeta,
}

impl<const D: usize, Dk: Disk> PagedTree<D, Dk> {
    /// Serializes a built [`RectCore`] (from any loader or dynamic
    /// inserts) to `disk`, depth-first, children before parents.
    ///
    /// # Errors
    /// Returns [`StorageError::Io`] when the tree's fanout cannot fit a
    /// page (checked up front, before any page is written) or the disk
    /// fails beyond retry.
    pub fn from_core(
        core: &RectCore<D>,
        disk: Dk,
        policy: RetryPolicy,
        pool_pages: usize,
    ) -> Result<Self, StorageError> {
        check_fanout(D, core.config.max_fanout)?;
        let store = PagedStore::new(disk, policy, pool_pages);
        let root = match core.root {
            Some(root) => Some(write_subtree(core, root, &store)?.0),
            None => None,
        };
        let meta = PagedMeta {
            dims: D as u32,
            max_fanout: core.config.max_fanout as u32,
            height: core.height() as u32,
            num_records: core.num_records as u64,
            node_pages: core.node_count() as u64,
            root,
        };
        store.write_superblock(&meta)?;
        store.checkpoint()?;
        Ok(PagedTree { store, meta })
    }

    /// Streams a Sort-Tile-Recursive bulk load straight to pages:
    /// leaves are written as their chunks are produced, upper levels are
    /// STR-tiled over `(page, MBR)` summaries — the full node arena
    /// never exists in memory. The resulting tree is structurally
    /// identical to `bulk::str_pack` (same chunking, same child order).
    ///
    /// # Errors
    /// Returns [`StorageError::Io`] when the configured fanout cannot
    /// fit a page (checked up front, before any page is written) or the
    /// disk fails beyond retry.
    pub fn build_str(
        points: &[Point<D>],
        config: RTreeConfig,
        disk: Dk,
        policy: RetryPolicy,
        pool_pages: usize,
    ) -> Result<Self, StorageError> {
        config.validate();
        check_fanout(D, config.max_fanout)?;
        let store = PagedStore::new(disk, policy, pool_pages);
        let cap = config.max_fanout;
        let mut node_pages = 0u64;
        let mut height = 0u32;
        let mut root = None;
        if !points.is_empty() {
            // Leaf level: identical chunking to bulk::str_pack.
            let chunks = str_chunks::<_, D>(make_entries(points), cap, |e, d| e.point[d]);
            let mut level_nodes: Vec<(PageId, Mbr<D>)> = Vec::with_capacity(chunks.len());
            for chunk in chunks {
                let node = PagedNode::leaf(chunk);
                let mbr = node.mbr;
                level_nodes.push((store.put_node(node)?, mbr));
                node_pages += 1;
            }
            // Upper levels: STR-tiling of node MBR centers, exactly as
            // bulk::pack_upper_levels_str.
            height = 1;
            let mut level = 1u32;
            while level_nodes.len() > 1 {
                let groups =
                    str_chunks::<(PageId, Mbr<D>), D>(level_nodes, cap, |it, d| it.1.center()[d]);
                let mut parents = Vec::with_capacity(groups.len());
                for group in groups {
                    let node = PagedNode::internal(level, group);
                    let mbr = node.mbr;
                    parents.push((store.put_node(node)?, mbr));
                    node_pages += 1;
                }
                level_nodes = parents;
                level += 1;
                height += 1;
            }
            root = level_nodes.pop().map(|(p, _)| p);
        }
        let meta = PagedMeta {
            dims: D as u32,
            max_fanout: cap as u32,
            height,
            num_records: points.len() as u64,
            node_pages,
            root,
        };
        store.write_superblock(&meta)?;
        store.checkpoint()?;
        Ok(PagedTree { store, meta })
    }

    /// Opens a tree previously written to `disk`.
    ///
    /// # Errors
    /// Returns [`StorageError::Io`] when the superblock is unreadable,
    /// not a CSJ page file, or of a different dimensionality.
    pub fn open(disk: Dk, policy: RetryPolicy, pool_pages: usize) -> Result<Self, StorageError> {
        let store = PagedStore::new(disk, policy, pool_pages);
        let meta = store.read_superblock()?;
        Ok(PagedTree { store, meta })
    }

    /// The root node's page, `None` for an empty tree.
    pub fn root(&self) -> Option<PageId> {
        self.meta.root
    }

    /// Tree metadata from the superblock.
    pub fn meta(&self) -> &PagedMeta {
        &self.meta
    }

    /// Number of data records.
    pub fn num_records(&self) -> usize {
        self.meta.num_records as usize
    }

    /// Tree height (1 = single leaf root, 0 = empty).
    pub fn height(&self) -> usize {
        self.meta.height as usize
    }

    /// Reads (pinning) the node on `page`.
    ///
    /// # Errors
    /// As [`PagedStore::node`].
    pub fn node(&self, page: PageId) -> Result<NodeGuard<'_, D, Dk>, StorageError> {
        self.store.node(page)
    }

    /// The underlying store (for staging prefetched pages, stats).
    pub fn store(&self) -> &PagedStore<D, Dk> {
        &self.store
    }

    /// Cumulative I/O and pool counters.
    pub fn stats(&self) -> PagedStats {
        self.store.stats()
    }

    /// Appends every record id below `page` to `out`, in **exactly** the
    /// order of [`crate::JoinIndex::collect_record_ids`]'s default
    /// implementation (stack-based, children revisited last-first) — the
    /// group-member order of the in-memory engines.
    ///
    /// # Errors
    /// As [`PagedStore::node`].
    pub fn collect_record_ids(
        &self,
        page: PageId,
        out: &mut Vec<RecordId>,
    ) -> Result<(), StorageError> {
        let mut stack = vec![page];
        while let Some(cur) = stack.pop() {
            let node = self.node(cur)?;
            if node.is_leaf() {
                out.extend(node.entries.iter().map(|e| e.id));
            } else {
                stack.extend(node.children.iter().map(|&(p, _)| p));
            }
        }
        Ok(())
    }

    /// Appends every `(id, point)` below `page` to `out`, in the order
    /// of [`crate::JoinIndex::collect_entries`]'s default.
    ///
    /// # Errors
    /// As [`PagedStore::node`].
    pub fn collect_entries(
        &self,
        page: PageId,
        out: &mut Vec<LeafEntry<D>>,
    ) -> Result<(), StorageError> {
        let mut stack = vec![page];
        while let Some(cur) = stack.pop() {
            let node = self.node(cur)?;
            if node.is_leaf() {
                out.extend_from_slice(&node.entries);
            } else {
                stack.extend(node.children.iter().map(|&(p, _)| p));
            }
        }
        Ok(())
    }
}

/// Writes the subtree under `node_id` (children first), returning the
/// root's page and MBR.
fn write_subtree<const D: usize, Dk: Disk>(
    core: &RectCore<D>,
    node_id: crate::arena::NodeId,
    store: &PagedStore<D, Dk>,
) -> Result<(PageId, Mbr<D>), StorageError> {
    let n = core.node(node_id);
    let paged = if n.is_leaf() {
        PagedNode {
            level: 0,
            mbr: n.mbr,
            children: Vec::new(),
            entries: n.entries.entries().to_vec().into(),
        }
    } else {
        let mut children = Vec::with_capacity(n.children.len());
        for &c in &n.children {
            children.push(write_subtree(core, c, store)?);
        }
        PagedNode { level: n.level, mbr: n.mbr, children, entries: LeafStore::new() }
    };
    let mbr = paged.mbr;
    Ok((store.put_node(paged)?, mbr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::{hilbert_pack, omt_pack, str_pack};
    use csj_storage::{FaultPolicy, SimulatedDisk};

    fn scatter(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let x = ((i * 2654435761) % 100_000) as f64 / 100_000.0;
                let y = ((i * 40503 + 17) % 100_000) as f64 / 100_000.0;
                Point::new([x, y])
            })
            .collect()
    }

    fn entry(id: u32, x: f64, y: f64) -> LeafEntry<2> {
        LeafEntry::new(id, Point::new([x, y]))
    }

    #[test]
    fn node_codec_roundtrip_leaf_and_internal() {
        let leaf = PagedNode::leaf(vec![entry(7, 0.25, -1.5), entry(9, 3.0, 4.0)]);
        let bytes = encode_node(&leaf);
        let back = decode_node::<2>(&bytes, PageId(1)).unwrap();
        assert_eq!(back.level, 0);
        assert_eq!(back.mbr, leaf.mbr);
        assert_eq!(back.entries.entries(), leaf.entries.entries());
        assert_eq!(back.entries.soa().point(1), Point::new([3.0, 4.0]), "soa mirror rebuilt");

        let internal = PagedNode::internal(
            2,
            vec![
                (PageId(1), Mbr::from_corners(&Point::new([0.0, 0.0]), &Point::new([1.0, 1.0]))),
                (PageId(4), Mbr::from_corners(&Point::new([2.0, 2.0]), &Point::new([3.0, 5.0]))),
            ],
        );
        let bytes = encode_node(&internal);
        let back = decode_node::<2>(&bytes, PageId(2)).unwrap();
        assert_eq!(back.level, 2);
        assert_eq!(back.children, internal.children);
        assert_eq!(back.mbr, internal.mbr);
    }

    #[test]
    fn decode_rejects_corruption() {
        let leaf = PagedNode::<2>::leaf(vec![entry(1, 0.0, 0.0)]);
        let bytes = encode_node(&leaf);
        assert!(decode_node::<2>(&bytes[..bytes.len() - 1], PageId(3)).is_err(), "truncated");
        let mut huge = bytes.clone();
        huge[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_node::<2>(&huge, PageId(3)).is_err(), "absurd count");
        assert!(decode_superblock(&bytes).is_err(), "node page is not a superblock");
    }

    #[test]
    fn superblock_roundtrip() {
        let meta = PagedMeta {
            dims: 2,
            max_fanout: 50,
            height: 3,
            num_records: 123_456,
            node_pages: 2_600,
            root: Some(PageId(2_600)),
        };
        assert_eq!(decode_superblock(&encode_superblock(&meta)).unwrap(), meta);
        let empty = PagedMeta { root: None, height: 0, num_records: 0, node_pages: 0, ..meta };
        assert_eq!(decode_superblock(&encode_superblock(&empty)).unwrap(), empty);
    }

    /// Recursively compares a paged tree against an in-memory core:
    /// level, MBR, child order and leaf entries must all agree.
    fn assert_same_structure(
        core: &RectCore<2>,
        node: crate::arena::NodeId,
        tree: &PagedTree<2, SimulatedDisk>,
        page: PageId,
    ) {
        let mem = core.node(node);
        let disk = tree.node(page).unwrap();
        assert_eq!(disk.level, mem.level);
        assert_eq!(disk.mbr, mem.mbr);
        if mem.is_leaf() {
            assert_eq!(disk.entries.entries(), mem.entries.entries());
        } else {
            assert_eq!(disk.children.len(), mem.children.len());
            let pairs: Vec<(crate::arena::NodeId, PageId, Mbr<2>)> = mem
                .children
                .iter()
                .zip(disk.children.iter())
                .map(|(&m, &(p, pm))| (m, p, pm))
                .collect();
            drop(disk);
            for (m, p, pm) in pairs {
                assert_eq!(pm, core.node(m).mbr, "parent-stored child MBR");
                assert_same_structure(core, m, tree, p);
            }
        }
    }

    #[test]
    fn unpageable_fanout_is_rejected_up_front() {
        // Child slots are the wider encoding, so they bound the fanout:
        // (8192 - 40) / 40 = 203 for 2-d trees.
        assert_eq!(max_page_fanout(2), 203);
        let pts = scatter(50);
        let cfg = RTreeConfig::with_max_fanout(204);
        let err = PagedTree::build_str(&pts, cfg, SimulatedDisk::new(), RetryPolicy::none(), 8);
        assert!(err.is_err(), "build_str must reject an unpageable fanout before writing");
        let core = str_pack(&pts, cfg);
        let err = PagedTree::from_core(&core, SimulatedDisk::new(), RetryPolicy::none(), 8);
        assert!(err.is_err(), "from_core must reject an unpageable fanout before writing");
        // The boundary fanout still builds and reloads.
        let cfg = RTreeConfig::with_max_fanout(203);
        let tree =
            PagedTree::build_str(&pts, cfg, SimulatedDisk::new(), RetryPolicy::none(), 8).unwrap();
        assert_eq!(tree.meta().num_records, 50);
    }

    #[test]
    fn from_core_preserves_structure_for_all_loaders() {
        let pts = scatter(700);
        let cfg = RTreeConfig::with_max_fanout(10);
        for (name, core) in [
            ("str", str_pack(&pts, cfg)),
            ("hilbert", hilbert_pack(&pts, cfg)),
            ("omt", omt_pack(&pts, cfg)),
        ] {
            let tree =
                PagedTree::from_core(&core, SimulatedDisk::new(), RetryPolicy::none(), 64).unwrap();
            assert_eq!(tree.num_records(), 700, "{name}");
            assert_eq!(tree.height(), core.height(), "{name}");
            assert_eq!(tree.meta().node_pages as usize, core.node_count(), "{name}");
            let (root_mem, root_page) = (core.root.unwrap(), tree.root().unwrap());
            assert_same_structure(&core, root_mem, &tree, root_page);
        }
    }

    #[test]
    fn streaming_str_build_matches_in_memory_str_pack() {
        for n in [1usize, 9, 10, 11, 250, 2500] {
            let pts = scatter(n);
            let cfg = RTreeConfig::with_max_fanout(10);
            let core = str_pack(&pts, cfg);
            let tree =
                PagedTree::build_str(&pts, cfg, SimulatedDisk::new(), RetryPolicy::none(), 8)
                    .unwrap();
            assert_eq!(tree.num_records(), n);
            assert_eq!(tree.height(), core.height(), "n={n}");
            assert_eq!(tree.meta().node_pages as usize, core.node_count(), "n={n}");
            assert_same_structure(&core, core.root.unwrap(), &tree, tree.root().unwrap());
        }
    }

    #[test]
    fn reopen_after_checkpoint() {
        let pts = scatter(300);
        let cfg = RTreeConfig::with_max_fanout(8);
        let tree =
            PagedTree::build_str(&pts, cfg, SimulatedDisk::new(), RetryPolicy::none(), 16).unwrap();
        let meta = *tree.meta();
        let disk = tree.store.into_disk();
        let reopened = PagedTree::<2, _>::open(disk, RetryPolicy::none(), 16).unwrap();
        assert_eq!(*reopened.meta(), meta);
        let mut ids = Vec::new();
        reopened.collect_record_ids(reopened.root().unwrap(), &mut ids).unwrap();
        ids.sort_unstable();
        assert_eq!(ids, (0..300).collect::<Vec<u32>>());
    }

    #[test]
    fn collect_matches_join_index_default_order() {
        use crate::traits::JoinIndex;
        let pts = scatter(400);
        let cfg = RTreeConfig::with_max_fanout(7);
        let core = str_pack(&pts, cfg);
        let rtree = crate::rstar::RStarTree { core: core.clone() };
        let mut mem_ids = Vec::new();
        rtree.collect_record_ids(core.root.unwrap(), &mut mem_ids);
        let tree =
            PagedTree::from_core(&core, SimulatedDisk::new(), RetryPolicy::none(), 4).unwrap();
        let mut disk_ids = Vec::new();
        tree.collect_record_ids(tree.root().unwrap(), &mut disk_ids).unwrap();
        assert_eq!(mem_ids, disk_ids, "member order must match the in-memory default exactly");
    }

    #[test]
    fn pool_bounds_resident_pages_under_traversal() {
        let pts = scatter(2000);
        let cfg = RTreeConfig::with_max_fanout(10);
        let tree =
            PagedTree::build_str(&pts, cfg, SimulatedDisk::new(), RetryPolicy::none(), 3).unwrap();
        // Full scan through a 3-frame pool: lots of evictions, bounded
        // residency, every record still reachable.
        let mut ids = Vec::new();
        tree.collect_record_ids(tree.root().unwrap(), &mut ids).unwrap();
        assert_eq!(ids.len(), 2000);
        let stats = tree.stats();
        assert!(stats.pool.evictions > 0, "a 3-frame pool must evict during a full scan");
        // Every node page must be decoded except the few still resident
        // from the build itself.
        assert!(stats.nodes_decoded as usize >= tree.meta().node_pages as usize - 3);
    }

    #[test]
    fn staged_bytes_satisfy_misses_without_disk_reads() {
        let pts = scatter(120);
        let cfg = RTreeConfig::with_max_fanout(8);
        let tree =
            PagedTree::build_str(&pts, cfg, SimulatedDisk::new(), RetryPolicy::none(), 2).unwrap();
        let root = tree.root().unwrap();
        // Evict everything by touching other pages, then stage the root
        // page's bytes as a prefetcher would.
        let raw = {
            let guard = tree.node(root).unwrap();
            encode_node(guard.deref())
        };
        let before = tree.stats();
        // Fill the 2-frame pool with other pages so the root is evicted.
        let child_pages: Vec<PageId> = {
            let g = tree.node(root).unwrap();
            g.children.iter().map(|&(p, _)| p).collect()
        };
        for &p in &child_pages {
            let _ = tree.node(p).unwrap();
        }
        assert!(!tree.store().is_resident(root));
        assert!(tree.store().stage_raw(root, raw));
        let reads_before = tree.stats().disk_reads;
        let g = tree.node(root).unwrap();
        assert_eq!(g.level as usize + 1, tree.height());
        let after = tree.stats();
        assert_eq!(after.disk_reads, reads_before, "miss served from staged bytes");
        assert_eq!(after.prefetch_supplied, before.prefetch_supplied + 1);
    }

    /// Delegates to a populated [`SimulatedDisk`] but fails the next
    /// `fail_reads` read attempts — fault injection for a disk that
    /// already holds pages (the built-in policy only wraps new disks).
    struct FlakyDisk {
        inner: SimulatedDisk,
        fail_reads: u64,
        injected: u64,
    }

    impl Disk for FlakyDisk {
        fn num_pages(&self) -> u64 {
            self.inner.num_pages() as u64
        }
        fn alloc(&mut self) -> Result<PageId, StorageError> {
            Ok(self.inner.alloc())
        }
        fn alloc_through(&mut self, id: PageId) -> Result<(), StorageError> {
            self.inner.alloc_through(id);
            Ok(())
        }
        fn read(&mut self, id: PageId) -> Result<Page, StorageError> {
            if self.fail_reads > 0 {
                self.fail_reads -= 1;
                self.injected += 1;
                return Err(StorageError::FaultInjected { op: IoOp::Read, seq: self.injected });
            }
            self.inner.read(id)
        }
        fn write(&mut self, page: &Page) -> Result<(), StorageError> {
            self.inner.write(page)
        }
        fn sync(&mut self) -> Result<(), StorageError> {
            Ok(())
        }
        fn reads(&self) -> u64 {
            Disk::reads(&self.inner)
        }
        fn writes(&self) -> u64 {
            Disk::writes(&self.inner)
        }
        fn faults_injected(&self) -> u64 {
            self.injected + self.inner.faults_injected()
        }
    }

    /// Regression: a page used to be admitted to the pool *before* its
    /// disk read, so a failed read left the pool claiming a residency
    /// the cache never got — every later access to that page then died
    /// with a pool/cache-desync error. The read must leave no trace.
    #[test]
    fn failed_read_leaves_pool_and_cache_consistent() {
        let store = PagedStore::<2, _>::new(SimulatedDisk::new(), RetryPolicy::none(), 4);
        let page = store.put_node(PagedNode::leaf(vec![entry(1, 0.1, 0.2)])).unwrap();
        store.checkpoint().unwrap();
        let disk = store.into_disk();

        let flaky = FlakyDisk { inner: disk, fail_reads: 1, injected: 0 };
        let store = PagedStore::<2, _>::new(flaky, RetryPolicy::none(), 4);
        assert!(store.node(page).is_err(), "the injected read fault must surface");
        assert!(!store.is_resident(page), "a failed read must not admit the page");

        let guard = store.node(page).expect("the retry reads the intact page");
        assert_eq!(guard.entries.entries().len(), 1);
        assert_eq!(store.stats().nodes_decoded, 1, "only the successful read decodes");
    }

    /// A checkpoint that faults keeps its dirty set, so the caller can
    /// simply checkpoint again; nothing is marked clean prematurely.
    #[test]
    fn failed_checkpoint_keeps_dirty_pages_for_retry() {
        let disk = SimulatedDisk::with_faults(FaultPolicy::fail_once());
        let store = PagedStore::<2, _>::new(disk, RetryPolicy::none(), 4);
        let page = store.put_node(PagedNode::leaf(vec![entry(3, 0.5, 0.5)])).unwrap();
        assert!(store.checkpoint().is_err(), "the first write attempt faults");
        store.checkpoint().expect("the retry rewrites the still-dirty page");

        let store = PagedStore::<2, _>::new(store.into_disk(), RetryPolicy::none(), 4);
        let guard = store.node(page).expect("the page reached the disk");
        assert_eq!(guard.entries.entries().len(), 1);
    }
}
