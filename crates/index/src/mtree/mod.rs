//! The M-tree (Ciaccia, Patella, Zezula — VLDB 1997).
//!
//! A dynamically balanced tree whose nodes are *metric balls* (pivot +
//! covering radius) rather than rectangles, making it valid in any metric
//! space — the structure behind the paper's "Metric trees" in Experiment 4
//! and its §VII claim that the compact-join gains carry over to metric
//! data.
//!
//! Invariant maintained (and checked by [`crate::validate::validate_mtree`]):
//! every child ball is contained in its parent ball, so in particular every
//! record below a node lies within the node's covering radius. That is all
//! [`crate::JoinIndex`] needs: `min_dist` and `pair_diameter` follow from
//! the triangle inequality.

pub mod split;

use crate::arena::{Arena, NodeId};
use crate::store::LeafStore;
use crate::traits::{JoinIndex, LeafEntry};
use csj_geom::{Mbr, Metric, Point, RecordId, SoaView};

/// Configuration for [`MTree`].
#[derive(Clone, Copy, Debug)]
pub struct MTreeConfig {
    /// Maximum entries per node.
    pub max_fanout: usize,
    /// Minimum entries per non-root node.
    pub min_fanout: usize,
    /// The metric the tree (and all its distance bounds) lives in.
    pub metric: Metric,
}

impl Default for MTreeConfig {
    fn default() -> Self {
        MTreeConfig { max_fanout: 50, min_fanout: 20, metric: Metric::Euclidean }
    }
}

impl MTreeConfig {
    /// Config with the given maximum fanout and a 40% minimum.
    pub fn with_max_fanout(max_fanout: usize) -> Self {
        assert!(max_fanout >= 4, "max fanout must be at least 4");
        MTreeConfig { max_fanout, min_fanout: (max_fanout * 2 / 5).max(2), ..Default::default() }
    }

    /// Replaces the metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }
}

/// A node of the M-tree: a pivot point with a covering radius.
#[derive(Clone, Debug)]
pub struct MNode<const D: usize> {
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Distance from the leaf level (0 = leaf).
    pub level: u32,
    /// Routing pivot.
    pub center: Point<D>,
    /// Covering radius: every record below lies within this distance of
    /// the pivot.
    pub radius: f64,
    /// Child nodes (internal nodes only).
    pub children: Vec<NodeId>,
    /// Data records (leaves only), with their contiguous point mirror.
    pub entries: LeafStore<D>,
}

impl<const D: usize> MNode<D> {
    fn new_leaf(center: Point<D>) -> Self {
        MNode {
            parent: None,
            level: 0,
            center,
            radius: 0.0,
            children: Vec::new(),
            entries: LeafStore::new(),
        }
    }

    fn new_internal(center: Point<D>, level: u32) -> Self {
        MNode {
            parent: None,
            level,
            center,
            radius: 0.0,
            children: Vec::new(),
            entries: LeafStore::new(),
        }
    }

    /// `true` if the node stores records directly.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Entries for leaves, children for internals.
    pub fn occupancy(&self) -> usize {
        if self.is_leaf() {
            self.entries.len()
        } else {
            self.children.len()
        }
    }
}

/// A dynamic M-tree over `D`-dimensional points under a fixed metric.
///
/// ```
/// use csj_index::mtree::{MTree, MTreeConfig};
/// use csj_geom::{Metric, Point};
///
/// let cfg = MTreeConfig::with_max_fanout(8).with_metric(Metric::Manhattan);
/// let mut tree = MTree::<2>::new(cfg);
/// for i in 0..200u32 {
///     tree.insert(i, Point::new([(i % 17) as f64, (i % 13) as f64]));
/// }
/// let hits = tree.range_query(&Point::new([3.0, 5.0]), 1.5);
/// assert!(!hits.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct MTree<const D: usize> {
    arena: Arena<MNode<D>>,
    root: Option<NodeId>,
    config: MTreeConfig,
    num_records: usize,
}

impl<const D: usize> MTree<D> {
    /// An empty M-tree.
    pub fn new(config: MTreeConfig) -> Self {
        assert!(config.min_fanout >= 2 && config.min_fanout <= config.max_fanout / 2);
        MTree { arena: Arena::new(), root: None, config, num_records: 0 }
    }

    /// Builds the tree by inserting `points` one by one; record ids are
    /// the slice indexes.
    pub fn from_points(points: &[Point<D>], config: MTreeConfig) -> Self {
        let mut tree = Self::new(config);
        for (i, p) in points.iter().enumerate() {
            tree.insert(i as RecordId, *p);
        }
        tree
    }

    /// The tree's metric.
    pub fn metric(&self) -> Metric {
        self.config.metric
    }

    /// The tree's configuration.
    pub fn config(&self) -> &MTreeConfig {
        &self.config
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.num_records
    }

    /// `true` if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.num_records == 0
    }

    /// Root node id (`None` when empty). Named to avoid clashing with
    /// [`JoinIndex::root`].
    pub fn root_id(&self) -> Option<NodeId> {
        self.root
    }

    /// Shared node access (used by the validator and the join plumbing).
    pub fn node_ref(&self, id: NodeId) -> &MNode<D> {
        self.arena.get(id)
    }

    /// Inserts a record.
    pub fn insert(&mut self, id: RecordId, point: Point<D>) {
        debug_assert!(point.is_finite(), "non-finite point inserted");
        let entry = LeafEntry::new(id, point);
        let Some(root) = self.root else {
            let mut leaf = MNode::new_leaf(point);
            leaf.entries.push(entry);
            self.root = Some(self.arena.alloc(leaf));
            self.num_records = 1;
            return;
        };
        let leaf = self.choose_leaf(root, &point);
        self.arena.get_mut(leaf).entries.push(entry);
        self.num_records += 1;
        // Maintain strict ball inclusion up the path.
        self.update_radii_upward(leaf, &point);
        if self.arena.get(leaf).entries.len() > self.config.max_fanout {
            self.split_overflowing(leaf);
        }
    }

    /// Descends to the leaf best suited for `point`: prefer children whose
    /// ball already contains it (min distance), otherwise the child
    /// needing the least radius enlargement.
    fn choose_leaf(&self, mut node: NodeId, point: &Point<D>) -> NodeId {
        let metric = self.config.metric;
        loop {
            let n = self.arena.get(node);
            if n.is_leaf() {
                return node;
            }
            let mut best = n.children[0];
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for &c in &n.children {
                let child = self.arena.get(c);
                let d = metric.distance(&child.center, point);
                let key = if d <= child.radius {
                    (0.0, d) // contained: prefer the closest pivot
                } else {
                    (d - child.radius, d) // enlargement needed
                };
                if key < best_key {
                    best_key = key;
                    best = c;
                }
            }
            node = best;
        }
    }

    /// Walks from `leaf` to the root growing radii so that strict ball
    /// inclusion (and hence point coverage of `point`) holds everywhere.
    fn update_radii_upward(&mut self, leaf: NodeId, point: &Point<D>) {
        let metric = self.config.metric;
        let mut cur = leaf;
        // Leaf radius covers the new point directly.
        {
            let n = self.arena.get_mut(cur);
            let d = metric.distance(&n.center, point);
            n.radius = n.radius.max(d);
        }
        while let Some(parent) = self.arena.get(cur).parent {
            let (child_center, child_radius) = {
                let c = self.arena.get(cur);
                (c.center, c.radius)
            };
            let p = self.arena.get_mut(parent);
            let needed = metric.distance(&p.center, &child_center) + child_radius;
            p.radius = p.radius.max(needed);
            cur = parent;
        }
    }

    /// Splits an overflowing node, promoting two pivots and partitioning
    /// its contents; propagates overflow to the root.
    fn split_overflowing(&mut self, node_id: NodeId) {
        let metric = self.config.metric;
        let min_fanout = self.config.min_fanout;
        let (is_leaf, level) = {
            let n = self.arena.get(node_id);
            (n.is_leaf(), n.level)
        };

        let sibling = if is_leaf {
            let entries = self.arena.get_mut(node_id).entries.take();
            let split = split::split_leaf(entries, metric, min_fanout);
            {
                let n = self.arena.get_mut(node_id);
                n.center = split.left_pivot;
                n.radius = split.left_radius;
                n.entries = split.left.into();
            }
            let mut sib = MNode::new_leaf(split.right_pivot);
            sib.radius = split.right_radius;
            sib.entries = split.right.into();
            self.arena.alloc(sib)
        } else {
            let children = std::mem::take(&mut self.arena.get_mut(node_id).children);
            let balls: Vec<split::Ball<D>> = children
                .iter()
                .map(|&c| {
                    let n = self.arena.get(c);
                    split::Ball { id: c, center: n.center, radius: n.radius }
                })
                .collect();
            let split = split::split_internal(balls, metric, min_fanout);
            {
                let n = self.arena.get_mut(node_id);
                n.center = split.left_pivot;
                n.radius = split.left_radius;
                n.children = split.left.iter().map(|b| b.id).collect();
            }
            let mut sib = MNode::new_internal(split.right_pivot, level);
            sib.radius = split.right_radius;
            sib.children = split.right.iter().map(|b| b.id).collect();
            let sib_id = self.arena.alloc(sib);
            for b in &split.right {
                self.arena.get_mut(b.id).parent = Some(sib_id);
            }
            // Left children keep node_id as parent (unchanged).
            sib_id
        };

        match self.arena.get(node_id).parent {
            None => {
                // Grow a new root whose pivot is the left pivot.
                let (lc, lr) = {
                    let n = self.arena.get(node_id);
                    (n.center, n.radius)
                };
                let (rc, rr) = {
                    let n = self.arena.get(sibling);
                    (n.center, n.radius)
                };
                let mut root = MNode::new_internal(lc, level + 1);
                root.radius = lr.max(metric.distance(&lc, &rc) + rr);
                let root_id = self.arena.alloc(root);
                self.arena.get_mut(root_id).children = vec![node_id, sibling];
                self.arena.get_mut(node_id).parent = Some(root_id);
                self.arena.get_mut(sibling).parent = Some(root_id);
                self.root = Some(root_id);
            }
            Some(parent) => {
                self.arena.get_mut(sibling).parent = Some(parent);
                self.arena.get_mut(parent).children.push(sibling);
                // The split may have shrunk/moved both balls; restore
                // inclusion for both under the parent and upward.
                self.restore_inclusion_upward(parent);
                if self.arena.get(parent).children.len() > self.config.max_fanout {
                    self.split_overflowing(parent);
                }
            }
        }
    }

    /// Recomputes covering radii from `node` to the root so that every
    /// child ball is included (used after splits rearrange children).
    fn restore_inclusion_upward(&mut self, mut node: NodeId) {
        let metric = self.config.metric;
        loop {
            let children = self.arena.get(node).children.clone();
            if !children.is_empty() {
                let center = self.arena.get(node).center;
                let mut r = 0.0_f64;
                for c in children {
                    let ch = self.arena.get(c);
                    r = r.max(metric.distance(&center, &ch.center) + ch.radius);
                }
                self.arena.get_mut(node).radius = r;
            }
            match self.arena.get(node).parent {
                Some(p) => node = p,
                None => break,
            }
        }
    }

    /// The `k` records nearest to `query` under the tree metric, closest
    /// first (best-first search over the ball bounds).
    pub fn knn(&self, query: &Point<D>, k: usize) -> Vec<(RecordId, f64)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Cand(f64, bool, u32);
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        let metric = self.config.metric;
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        if k == 0 {
            return out;
        }
        let ball_min_dist = |n: &MNode<D>| (metric.distance(&n.center, query) - n.radius).max(0.0);
        let mut heap: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        heap.push(Reverse(Cand(ball_min_dist(self.arena.get(root)), false, root.0)));
        while let Some(Reverse(Cand(dist, is_record, id))) = heap.pop() {
            if is_record {
                out.push((id, dist));
                if out.len() == k {
                    break;
                }
                continue;
            }
            let node = self.arena.get(NodeId(id));
            if node.is_leaf() {
                for e in &node.entries {
                    heap.push(Reverse(Cand(metric.distance(query, &e.point), true, e.id)));
                }
            } else {
                for &c in &node.children {
                    heap.push(Reverse(Cand(ball_min_dist(self.arena.get(c)), false, c.0)));
                }
            }
        }
        out
    }

    /// All record ids within `eps` of `query` under the tree metric.
    pub fn range_query(&self, query: &Point<D>, eps: f64) -> Vec<RecordId> {
        let metric = self.config.metric;
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = self.arena.get(id);
            if metric.distance(&node.center, query) > node.radius + eps {
                continue;
            }
            if node.is_leaf() {
                out.extend(
                    node.entries
                        .iter()
                        .filter(|e| metric.distance(query, &e.point) <= eps)
                        .map(|e| e.id),
                );
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        out
    }
}

impl<const D: usize> JoinIndex<D> for MTree<D> {
    fn root(&self) -> Option<NodeId> {
        self.root
    }
    fn is_leaf(&self, n: NodeId) -> bool {
        self.arena.get(n).is_leaf()
    }
    fn children(&self, n: NodeId) -> &[NodeId] {
        &self.arena.get(n).children
    }
    fn leaf_entries(&self, n: NodeId) -> &[LeafEntry<D>] {
        &self.arena.get(n).entries
    }
    fn leaf_soa(&self, n: NodeId) -> SoaView<'_, D> {
        self.arena.get(n).entries.soa()
    }
    fn node_mbr(&self, n: NodeId) -> Mbr<D> {
        // The L∞ box circumscribing the ball: |x_i - c_i| <= d(x, c) <= r
        // for every Lp metric, so this box always covers the ball.
        let node = self.arena.get(n);
        let mut lo = node.center;
        let mut hi = node.center;
        for i in 0..D {
            lo[i] -= node.radius;
            hi[i] += node.radius;
        }
        Mbr::new(lo, hi)
    }
    fn max_diameter(&self, n: NodeId, _metric: Metric) -> f64 {
        // Ball diameter under the tree's own metric; the `metric` argument
        // must agree with the tree metric for the bound to be valid, which
        // the join layer guarantees by construction.
        2.0 * self.arena.get(n).radius
    }
    fn pair_diameter(&self, a: NodeId, b: NodeId, _metric: Metric) -> f64 {
        // Diameter of the union of the two balls: the cross bound
        // `d + r_a + r_b` alone is NOT enough — when one ball lies inside
        // the other's radius it can be smaller than an intra-ball
        // distance, so the individual diameters must be folded in.
        let (na, nb) = (self.arena.get(a), self.arena.get(b));
        let cross = self.config.metric.distance(&na.center, &nb.center) + na.radius + nb.radius;
        cross.max(2.0 * na.radius).max(2.0 * nb.radius)
    }
    fn min_dist(&self, a: NodeId, b: NodeId, _metric: Metric) -> f64 {
        let (na, nb) = (self.arena.get(a), self.arena.get(b));
        (self.config.metric.distance(&na.center, &nb.center) - na.radius - nb.radius).max(0.0)
    }
    fn num_records(&self) -> usize {
        self.num_records
    }
    fn height(&self) -> usize {
        self.root.map_or(0, |r| self.arena.get(r).level as usize + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_mtree;

    fn ring_points(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                let r = 0.3 + 0.1 * ((i * 7) % 5) as f64 / 5.0;
                Point::new([0.5 + r * t.cos(), 0.5 + r * t.sin()])
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let tree = MTree::<2>::new(MTreeConfig::default());
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        assert!(tree.range_query(&Point::new([0.0, 0.0]), 1.0).is_empty());
        validate_mtree(&tree).unwrap();
    }

    #[test]
    fn insert_many_preserves_invariants() {
        let pts = ring_points(400);
        let tree = MTree::from_points(&pts, MTreeConfig::with_max_fanout(8));
        assert_eq!(tree.len(), 400);
        assert!(tree.height() >= 2);
        validate_mtree(&tree).unwrap();
    }

    #[test]
    fn range_query_matches_scan_euclidean() {
        let pts = ring_points(300);
        let tree = MTree::from_points(&pts, MTreeConfig::with_max_fanout(10));
        let q = Point::new([0.5, 0.8]);
        let eps = 0.12;
        let mut got = tree.range_query(&q, eps);
        got.sort_unstable();
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.euclidean(p) <= eps)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn range_query_matches_scan_manhattan() {
        let pts = ring_points(300);
        let cfg = MTreeConfig::with_max_fanout(10).with_metric(Metric::Manhattan);
        let tree = MTree::from_points(&pts, cfg);
        validate_mtree(&tree).unwrap();
        let q = Point::new([0.2, 0.5]);
        let eps = 0.2;
        let mut got = tree.range_query(&q, eps);
        got.sort_unstable();
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| Metric::Manhattan.distance(&q, p) <= eps)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn knn_matches_sorted_scan() {
        let pts = ring_points(300);
        let tree = MTree::from_points(&pts, MTreeConfig::with_max_fanout(8));
        let q = Point::new([0.4, 0.55]);
        for k in [1usize, 5, 17] {
            let got = tree.knn(&q, k);
            let mut dists: Vec<f64> = pts.iter().map(|p| q.euclidean(p)).collect();
            dists.sort_by(f64::total_cmp);
            assert_eq!(got.len(), k);
            for (i, (_, d)) in got.iter().enumerate() {
                assert!((d - dists[i]).abs() < 1e-12, "rank {i}");
            }
        }
        assert!(tree.knn(&q, 0).is_empty());
        assert_eq!(tree.knn(&q, 10_000).len(), 300, "k larger than n");
    }

    #[test]
    fn knn_under_manhattan_metric() {
        let pts = ring_points(150);
        let cfg = MTreeConfig::with_max_fanout(6).with_metric(Metric::Manhattan);
        let tree = MTree::from_points(&pts, cfg);
        let q = Point::new([0.7, 0.3]);
        let got = tree.knn(&q, 3);
        let mut dists: Vec<f64> = pts.iter().map(|p| Metric::Manhattan.distance(&q, p)).collect();
        dists.sort_by(f64::total_cmp);
        for (i, (_, d)) in got.iter().enumerate() {
            assert!((d - dists[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn node_mbr_covers_subtree_points() {
        let pts = ring_points(200);
        let tree = MTree::from_points(&pts, MTreeConfig::with_max_fanout(6));
        let root = tree.root_id().unwrap();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let mbr = tree.node_mbr(id);
            let mut entries = Vec::new();
            tree.collect_entries(id, &mut entries);
            for e in &entries {
                assert!(mbr.contains_point(&e.point), "node box must cover records");
            }
            stack.extend_from_slice(tree.children(id));
        }
    }

    #[test]
    fn pair_diameter_bounds_intra_ball_distances() {
        // Regression: a tiny ball near a big ball's center used to yield
        // pair_diameter < the big ball's own diameter, letting the joins
        // over-group. The union diameter must dominate both balls.
        let big: Vec<Point<2>> = (0..8)
            .map(|i| {
                let t = i as f64 / 8.0 * std::f64::consts::TAU;
                Point::new([0.5 + 0.06 * t.cos(), 0.5 + 0.06 * t.sin()])
            })
            .collect();
        let mut pts = big;
        pts.push(Point::new([0.5, 0.5]));
        pts.push(Point::new([0.5001, 0.5]));
        let tree = MTree::from_points(&pts, MTreeConfig::with_max_fanout(4));
        let root = tree.root_id().unwrap();
        let children = tree.children(root).to_vec();
        for &a in &children {
            for &b in &children {
                if a == b {
                    continue;
                }
                let pd = tree.pair_diameter(a, b, Metric::Euclidean);
                assert!(pd >= tree.max_diameter(a, Metric::Euclidean));
                assert!(pd >= tree.max_diameter(b, Metric::Euclidean));
                // And it really bounds every pair below the two nodes.
                let mut ea = Vec::new();
                let mut eb = Vec::new();
                tree.collect_entries(a, &mut ea);
                tree.collect_entries(b, &mut eb);
                for x in ea.iter().chain(&eb) {
                    for y in ea.iter().chain(&eb) {
                        assert!(x.point.euclidean(&y.point) <= pd + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn duplicates_and_degenerate_input() {
        let pts = vec![Point::new([0.3, 0.3]); 60];
        let tree = MTree::from_points(&pts, MTreeConfig::with_max_fanout(6));
        assert_eq!(tree.len(), 60);
        validate_mtree(&tree).unwrap();
        assert_eq!(tree.range_query(&Point::new([0.3, 0.3]), 0.0).len(), 60);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::validate::validate_mtree;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        /// Insertion preserves invariants for all metrics.
        #[test]
        fn insertion_valid_all_metrics(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 1..250),
            which in 0usize..3,
            fanout in 4usize..12,
        ) {
            let metric = [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev][which];
            let cfg = MTreeConfig::with_max_fanout(fanout).with_metric(metric);
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = MTree::from_points(&points, cfg);
            prop_assert_eq!(tree.len(), points.len());
            prop_assert!(validate_mtree(&tree).is_ok());
        }

        /// Range queries agree with a linear scan under the tree metric.
        #[test]
        fn range_query_matches_scan(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 1..150),
            q in prop::array::uniform2(0.0f64..1.0),
            eps in 0.0f64..0.4,
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = MTree::from_points(&points, MTreeConfig::with_max_fanout(6));
            let q = Point::new(q);
            let mut got = tree.range_query(&q, eps);
            got.sort_unstable();
            let mut want: Vec<u32> = points.iter().enumerate()
                .filter(|(_, p)| q.euclidean(p) <= eps)
                .map(|(i, _)| i as u32)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
