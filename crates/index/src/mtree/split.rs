//! M-tree node splitting: pivot promotion and partitioning.
//!
//! Promotion uses the `mM_RAD` policy of the M-tree paper: among all
//! candidate pivot pairs, choose the one minimizing the larger of the two
//! covering radii after partitioning. Partitioning assigns each item to
//! its nearer pivot (generalized hyperplane), then rebalances to honour
//! the minimum fanout.

use crate::arena::NodeId;
use crate::traits::LeafEntry;
use csj_geom::{Metric, Point};

/// Result of splitting a node's contents around two promoted pivots.
pub struct MSplit<T, const D: usize> {
    /// Pivot of the first group.
    pub left_pivot: Point<D>,
    /// Covering radius of the first group.
    pub left_radius: f64,
    /// Items of the first group.
    pub left: Vec<T>,
    /// Pivot of the second group.
    pub right_pivot: Point<D>,
    /// Covering radius of the second group.
    pub right_radius: f64,
    /// Items of the second group.
    pub right: Vec<T>,
}

/// A child node viewed as a split item: assigning child `b` to pivot `p`
/// costs `d(p, b.center) + b.radius` (the radius needed to include the
/// child's whole ball).
#[derive(Clone, Copy, Debug)]
pub struct Ball<const D: usize> {
    /// Child node id.
    pub id: NodeId,
    /// Child pivot.
    pub center: Point<D>,
    /// Child covering radius.
    pub radius: f64,
}

/// Splits leaf entries. Cost of assigning a record to a pivot is its
/// distance to the pivot.
pub fn split_leaf<const D: usize>(
    entries: Vec<LeafEntry<D>>,
    metric: Metric,
    min_fanout: usize,
) -> MSplit<LeafEntry<D>, D> {
    split_generic(entries, metric, min_fanout, |e| e.point, |_| 0.0)
}

/// Splits internal entries (child balls).
pub fn split_internal<const D: usize>(
    children: Vec<Ball<D>>,
    metric: Metric,
    min_fanout: usize,
) -> MSplit<Ball<D>, D> {
    split_generic(children, metric, min_fanout, |b| b.center, |b| b.radius)
}

/// mM_RAD promotion + hyperplane partition + min-fanout rebalance.
///
/// `anchor` extracts the item's representative point; `slack` the extra
/// radius the item carries (0 for records, the child radius for balls).
fn split_generic<T: Clone, const D: usize>(
    items: Vec<T>,
    metric: Metric,
    min_fanout: usize,
    anchor: fn(&T) -> Point<D>,
    slack: fn(&T) -> f64,
) -> MSplit<T, D> {
    let n = items.len();
    debug_assert!(n >= 2 * min_fanout, "cannot split {n} items with min fanout {min_fanout}");

    // Distance matrix between anchors (n <= max_fanout + 1, so tiny).
    let mut dist = vec![0.0_f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = metric.distance(&anchor(&items[i]), &anchor(&items[j]));
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    let slacks: Vec<f64> = items.iter().map(slack).collect();

    // mM_RAD: evaluate every pivot pair by the max covering radius of the
    // hyperplane partition it induces.
    let mut best_pair = (0, 1);
    let mut best_score = f64::INFINITY;
    for a in 0..n {
        for b in (a + 1)..n {
            let mut ra = 0.0_f64;
            let mut rb = 0.0_f64;
            for k in 0..n {
                let da = dist[a * n + k] + slacks[k];
                let db = dist[b * n + k] + slacks[k];
                if da <= db {
                    ra = ra.max(da);
                } else {
                    rb = rb.max(db);
                }
            }
            let score = ra.max(rb);
            if score < best_score {
                best_score = score;
                best_pair = (a, b);
            }
        }
    }
    let (a, b) = best_pair;

    // Partition by nearer pivot; remember assignment costs for rebalance.
    let mut left_idx: Vec<usize> = Vec::new();
    let mut right_idx: Vec<usize> = Vec::new();
    for k in 0..n {
        let da = dist[a * n + k] + slacks[k];
        let db = dist[b * n + k] + slacks[k];
        if da <= db {
            left_idx.push(k);
        } else {
            right_idx.push(k);
        }
    }

    // Rebalance: move the cheapest boundary items into the underfull side.
    let move_cost = |k: usize, to_a: bool| {
        if to_a {
            dist[a * n + k] + slacks[k]
        } else {
            dist[b * n + k] + slacks[k]
        }
    };
    while left_idx.len() < min_fanout {
        let (pos, _) = right_idx
            .iter()
            .enumerate()
            .min_by(|(_, &x), (_, &y)| move_cost(x, true).total_cmp(&move_cost(y, true)))
            // csj-lint: allow(panic-safety) — left + right together hold
            // ≥ 2·min_fanout entries, so the donor side is non-empty.
            .expect("right side cannot be empty while left is underfull");
        left_idx.push(right_idx.swap_remove(pos));
    }
    while right_idx.len() < min_fanout {
        let (pos, _) = left_idx
            .iter()
            .enumerate()
            .min_by(|(_, &x), (_, &y)| move_cost(x, false).total_cmp(&move_cost(y, false)))
            // csj-lint: allow(panic-safety) — symmetric to the loop above.
            .expect("left side cannot be empty while right is underfull");
        right_idx.push(left_idx.swap_remove(pos));
    }

    let radius_of = |idx: &[usize], pivot: usize| {
        idx.iter().map(|&k| dist[pivot * n + k] + slacks[k]).fold(0.0_f64, f64::max)
    };
    let left_radius = radius_of(&left_idx, a);
    let right_radius = radius_of(&right_idx, b);

    let left: Vec<T> = left_idx.iter().map(|&k| items[k].clone()).collect();
    let right: Vec<T> = right_idx.iter().map(|&k| items[k].clone()).collect();
    MSplit {
        left_pivot: anchor(&items[a]),
        left_radius,
        left,
        right_pivot: anchor(&items[b]),
        right_radius,
        right,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(pts: &[[f64; 2]]) -> Vec<LeafEntry<2>> {
        pts.iter().enumerate().map(|(i, p)| LeafEntry::new(i as u32, Point::new(*p))).collect()
    }

    fn check_coverage(s: &MSplit<LeafEntry<2>, 2>, metric: Metric) {
        for e in &s.left {
            assert!(metric.distance(&s.left_pivot, &e.point) <= s.left_radius + 1e-9);
        }
        for e in &s.right {
            assert!(metric.distance(&s.right_pivot, &e.point) <= s.right_radius + 1e-9);
        }
    }

    #[test]
    fn splits_two_clusters_cleanly() {
        let mut pts = Vec::new();
        for i in 0..6 {
            pts.push([i as f64 * 0.01, 0.0]);
            pts.push([10.0 + i as f64 * 0.01, 0.0]);
        }
        let s = split_leaf(entries(&pts), Metric::Euclidean, 3);
        assert_eq!(s.left.len() + s.right.len(), 12);
        assert_eq!(s.left.len(), 6);
        assert_eq!(s.right.len(), 6);
        check_coverage(&s, Metric::Euclidean);
        // Each cluster's radius is tiny compared to the separation.
        assert!(s.left_radius < 1.0 && s.right_radius < 1.0);
    }

    #[test]
    fn rebalance_fixes_skewed_partition() {
        // 1 far outlier + 9 clustered: hyperplane alone would give 1/9,
        // min fanout 4 forces 4/6 or better.
        let mut pts = vec![[50.0, 50.0]];
        for i in 0..9 {
            pts.push([i as f64 * 0.01, 0.0]);
        }
        let s = split_leaf(entries(&pts), Metric::Euclidean, 4);
        assert!(s.left.len() >= 4 && s.right.len() >= 4);
        assert_eq!(s.left.len() + s.right.len(), 10);
        check_coverage(&s, Metric::Euclidean);
    }

    #[test]
    fn internal_split_covers_child_balls() {
        let balls: Vec<Ball<2>> = (0..8)
            .map(|i| Ball { id: NodeId(i), center: Point::new([i as f64, 0.0]), radius: 0.4 })
            .collect();
        let s = split_internal(balls, Metric::Euclidean, 3);
        assert_eq!(s.left.len() + s.right.len(), 8);
        for b in &s.left {
            let d = Metric::Euclidean.distance(&s.left_pivot, &b.center);
            assert!(d + b.radius <= s.left_radius + 1e-9, "ball inclusion");
        }
        for b in &s.right {
            let d = Metric::Euclidean.distance(&s.right_pivot, &b.center);
            assert!(d + b.radius <= s.right_radius + 1e-9, "ball inclusion");
        }
    }

    #[test]
    fn identical_points_split_validly() {
        let pts = vec![[2.0, 2.0]; 10];
        let s = split_leaf(entries(&pts), Metric::Euclidean, 4);
        assert!(s.left.len() >= 4 && s.right.len() >= 4);
        assert_eq!(s.left_radius, 0.0);
        assert_eq!(s.right_radius, 0.0);
    }
}
