//! An LRU buffer pool over page ids, with pinning and hit/miss
//! accounting.
//!
//! Experiment 3 of the paper reports that "there is no significant
//! difference in the number of disk page and cache accesses between the
//! algorithms, regardless of the page and cache sizes". To reproduce that
//! claim we replay each join's node-access log (one tree node ≈ one page)
//! through this pool at several capacities and compare miss counts.
//!
//! The out-of-core engine uses the same pool *live*: every node read is
//! admitted through [`BufferPool::try_access`], pages the traversal
//! currently holds are **pinned** (eviction skips them), and the page id
//! reported as evicted tells the paged store which frame to write back
//! if dirty. When every frame is pinned the pool reports
//! [`StorageError::AllPagesPinned`] instead of silently growing — the
//! invariant that resident data never exceeds `capacity` pages is what
//! makes "memory bounded by the buffer pool" true rather than aspirational.

use std::collections::HashMap;

use crate::error::StorageError;
use crate::page::PageId;

/// Hit/miss counters of a [`BufferPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Accesses served from the pool.
    pub hits: u64,
    /// Accesses that required a (simulated) physical read.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl BufferStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of accesses that hit, in `[0, 1]`; 0 for no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Outcome of admitting a page via [`BufferPool::try_access`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    /// `true` when the page was already resident.
    pub hit: bool,
    /// The page evicted to make room, if any — the caller's cue to
    /// write that frame back if it is dirty.
    pub evicted: Option<PageId>,
}

/// One frame of the slab LRU list.
#[derive(Clone, Copy, Debug)]
struct Slot {
    page: PageId,
    prev: usize,
    next: usize,
    pins: u32,
}

/// A fixed-capacity LRU cache of page ids, with pin counts.
///
/// Constant-time access via an intrusive doubly-linked list over a slab,
/// so multi-million-access replay logs are cheap to process. Pinned
/// pages are skipped by eviction (the traversal is holding a reference
/// into them); a fully pinned pool refuses admission instead of
/// evicting.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    stats: BufferStats,
    slots: Vec<Slot>,
    index: HashMap<PageId, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    pinned: usize,
}

const NIL: usize = usize::MAX;

impl BufferPool {
    /// A pool holding at most `capacity` pages. Panics if zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        BufferPool {
            capacity,
            stats: BufferStats::default(),
            slots: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            pinned: 0,
        }
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached pages.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of currently pinned pages (pages with pin count > 0).
    pub fn pinned(&self) -> usize {
        self.pinned
    }

    /// `true` if `page` is resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.index.contains_key(&page)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Records an access to `page`, returning `true` on a hit. On a miss
    /// the page is brought in, evicting the least-recently-used page if
    /// the pool is full.
    ///
    /// # Panics
    /// Panics when the pool is full and every page is pinned. Pin-aware
    /// callers use [`BufferPool::try_access`]; this convenience wrapper
    /// exists for replay workloads that never pin.
    pub fn access(&mut self, page: PageId) -> bool {
        match self.try_access(page) {
            Ok(adm) => adm.hit,
            Err(_) => unreachable!("access() on a fully pinned pool; use try_access()"),
        }
    }

    /// Records an access to `page`. On a miss the page is admitted,
    /// evicting the least-recently-used *unpinned* page if the pool is
    /// full; the evicted id is reported so the caller can write the
    /// frame back.
    ///
    /// # Errors
    /// Returns [`StorageError::AllPagesPinned`] when the pool is full
    /// and no frame is evictable; the access is not recorded and the
    /// pool is unchanged.
    pub fn try_access(&mut self, page: PageId) -> Result<Admission, StorageError> {
        if let Some(&slot) = self.index.get(&page) {
            self.stats.hits += 1;
            self.move_to_front(slot);
            return Ok(Admission { hit: true, evicted: None });
        }
        let mut evicted = None;
        if self.index.len() == self.capacity {
            let victim = self
                .evictable_victim()
                .ok_or(StorageError::AllPagesPinned { capacity: self.capacity })?;
            evicted = Some(self.evict_slot(victim));
        }
        self.stats.misses += 1;
        let slot = self.slots.len();
        self.slots.push(Slot { page, prev: NIL, next: self.head, pins: 0 });
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
        self.index.insert(page, slot);
        Ok(Admission { hit: false, evicted })
    }

    /// Pins a resident page (incrementing its pin count), returning
    /// `false` if the page is not resident. Pinned pages are never
    /// evicted; every `pin` must be paired with an
    /// [`BufferPool::unpin`].
    pub fn pin(&mut self, page: PageId) -> bool {
        let Some(&slot) = self.index.get(&page) else { return false };
        if self.slots[slot].pins == 0 {
            self.pinned += 1;
        }
        self.slots[slot].pins += 1;
        true
    }

    /// Releases one pin on `page`, returning `false` if the page is not
    /// resident or not pinned.
    pub fn unpin(&mut self, page: PageId) -> bool {
        let Some(&slot) = self.index.get(&page) else { return false };
        if self.slots[slot].pins == 0 {
            return false;
        }
        self.slots[slot].pins -= 1;
        if self.slots[slot].pins == 0 {
            self.pinned -= 1;
        }
        true
    }

    /// The least-recently-used unpinned slot, or `None` if every
    /// resident page is pinned.
    fn evictable_victim(&self) -> Option<usize> {
        if self.pinned == self.index.len() {
            return None;
        }
        let mut cur = self.tail;
        while cur != NIL {
            if self.slots[cur].pins == 0 {
                return Some(cur);
            }
            cur = self.slots[cur].prev;
        }
        None
    }

    fn move_to_front(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        let Slot { prev, next, .. } = self.slots[slot];
        // Unlink.
        if prev != NIL {
            self.slots[prev].next = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        }
        if self.tail == slot {
            self.tail = prev;
        }
        // Relink at head.
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
    }

    /// Removes `victim` (any position in the list), returning its page.
    fn evict_slot(&mut self, victim: usize) -> PageId {
        let Slot { page, prev, next, pins } = self.slots[victim];
        debug_assert_eq!(pins, 0, "evicting a pinned page");
        self.index.remove(&page);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.stats.evictions += 1;
        // Recycle the slot by swapping with the last slab entry.
        let last = self.slots.len() - 1;
        if victim != last {
            self.slots.swap(victim, last);
            let Slot { page: moved_page, prev: mprev, next: mnext, .. } = self.slots[victim];
            self.index.insert(moved_page, victim);
            if mprev != NIL {
                self.slots[mprev].next = victim;
            }
            if mnext != NIL {
                self.slots[mnext].prev = victim;
            }
            if self.head == last {
                self.head = victim;
            }
            if self.tail == last {
                self.tail = victim;
            }
        }
        self.slots.pop();
        page
    }

    /// Replays a sequence of page accesses, returning the final stats.
    pub fn replay(&mut self, accesses: impl IntoIterator<Item = PageId>) -> BufferStats {
        for p in accesses {
            self.access(p);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageId {
        PageId(i)
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut pool = BufferPool::new(4);
        assert!(!pool.access(p(1)));
        assert!(pool.access(p(1)));
        assert_eq!(pool.stats(), BufferStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn lru_eviction_order() {
        let mut pool = BufferPool::new(2);
        pool.access(p(1));
        pool.access(p(2));
        pool.access(p(3)); // evicts 1
        assert!(!pool.access(p(1)), "1 was evicted");
        // Accessing 1 evicted 2 (LRU after the miss on 3 put 3 at front).
        assert!(!pool.access(p(2)));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn touching_refreshes_recency() {
        let mut pool = BufferPool::new(2);
        pool.access(p(1));
        pool.access(p(2));
        pool.access(p(1)); // 1 now MRU, 2 is LRU
        pool.access(p(3)); // evicts 2
        assert!(pool.access(p(1)), "1 must have survived");
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn capacity_one() {
        let mut pool = BufferPool::new(1);
        assert!(!pool.access(p(1)));
        assert!(pool.access(p(1)));
        assert!(!pool.access(p(2)));
        assert!(!pool.access(p(1)));
        assert_eq!(pool.stats().evictions, 2);
    }

    #[test]
    fn replay_and_hit_rate() {
        let mut pool = BufferPool::new(8);
        let log: Vec<PageId> = (0..100).map(|i| p(i % 4)).collect();
        let stats = pool.replay(log);
        assert_eq!(stats.misses, 4, "working set fits: only cold misses");
        assert_eq!(stats.hits, 96);
        assert!((stats.hit_rate() - 0.96).abs() < 1e-12);
    }

    #[test]
    fn sequential_scan_thrashes_small_pool() {
        let mut pool = BufferPool::new(4);
        // Cyclic scan over 8 pages with LRU: every access misses.
        for _ in 0..3 {
            for i in 0..8 {
                pool.access(p(i));
            }
        }
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 24);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = BufferPool::new(0);
    }

    #[test]
    fn pinned_page_survives_eviction_pressure() {
        let mut pool = BufferPool::new(2);
        pool.access(p(1));
        assert!(pool.pin(p(1)));
        pool.access(p(2)); // 1 pinned, 2 unpinned; 1 is the LRU
                           // A third page must evict 2 (the unpinned one), not 1.
        let adm = pool.try_access(p(3)).unwrap();
        assert_eq!(adm, Admission { hit: false, evicted: Some(p(2)) });
        assert!(pool.contains(p(1)), "pinned page never evicted");
        // Even repeated pressure: 1 stays while 3 and 4 churn.
        let adm = pool.try_access(p(4)).unwrap();
        assert_eq!(adm.evicted, Some(p(3)));
        assert!(pool.contains(p(1)));
        assert_eq!(pool.pinned(), 1);
    }

    #[test]
    fn all_pages_pinned_is_an_error_not_an_eviction() {
        let mut pool = BufferPool::new(2);
        pool.access(p(1));
        pool.access(p(2));
        assert!(pool.pin(p(1)));
        assert!(pool.pin(p(2)));
        let err = pool.try_access(p(3)).unwrap_err();
        assert_eq!(err, StorageError::AllPagesPinned { capacity: 2 });
        assert!(!err.is_transient(), "retrying cannot release a pin");
        // The failed admission left the pool untouched.
        assert_eq!(pool.len(), 2);
        assert!(pool.contains(p(1)) && pool.contains(p(2)));
        // Releasing one pin makes the same admission succeed.
        assert!(pool.unpin(p(2)));
        let adm = pool.try_access(p(3)).unwrap();
        assert_eq!(adm, Admission { hit: false, evicted: Some(p(2)) });
    }

    #[test]
    fn pin_counts_nest() {
        let mut pool = BufferPool::new(1);
        pool.access(p(7));
        assert!(pool.pin(p(7)));
        assert!(pool.pin(p(7)), "second pin on the same page");
        assert_eq!(pool.pinned(), 1, "pinned() counts pages, not pins");
        assert!(pool.unpin(p(7)));
        // Still pinned once: eviction still refused.
        assert!(pool.try_access(p(8)).is_err());
        assert!(pool.unpin(p(7)));
        assert!(!pool.unpin(p(7)), "pin count exhausted");
        assert!(pool.try_access(p(8)).is_ok(), "fully unpinned page is evictable");
    }

    #[test]
    fn pinning_absent_pages_is_refused() {
        let mut pool = BufferPool::new(2);
        assert!(!pool.pin(p(9)), "cannot pin what is not resident");
        assert!(!pool.unpin(p(9)));
        pool.access(p(1));
        assert_eq!(pool.pinned(), 0);
    }

    #[test]
    fn eviction_skips_pinned_lru_for_next_unpinned() {
        let mut pool = BufferPool::new(3);
        pool.access(p(1));
        pool.access(p(2));
        pool.access(p(3));
        // LRU order (old→new): 1, 2, 3. Pin the two oldest.
        assert!(pool.pin(p(1)));
        assert!(pool.pin(p(2)));
        let adm = pool.try_access(p(4)).unwrap();
        assert_eq!(adm.evicted, Some(p(3)), "skipped pinned 1 and 2");
        assert!(pool.contains(p(1)) && pool.contains(p(2)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    /// Reference LRU with pins: a VecDeque scanned linearly.
    struct NaiveLru {
        cap: usize,
        deque: VecDeque<(PageId, u32)>, // front = MRU
    }

    impl NaiveLru {
        fn access(&mut self, page: PageId) -> Result<bool, ()> {
            if let Some(pos) = self.deque.iter().position(|&(x, _)| x == page) {
                let entry = self.deque.remove(pos).ok_or(())?;
                self.deque.push_front(entry);
                Ok(true)
            } else {
                if self.deque.len() == self.cap {
                    // Evict the rearmost unpinned entry.
                    let victim = self.deque.iter().rposition(|&(_, pins)| pins == 0).ok_or(())?;
                    self.deque.remove(victim);
                }
                self.deque.push_front((page, 0));
                Ok(false)
            }
        }

        fn pin(&mut self, page: PageId) -> bool {
            match self.deque.iter_mut().find(|(x, _)| *x == page) {
                Some((_, pins)) => {
                    *pins += 1;
                    true
                }
                None => false,
            }
        }

        fn unpin(&mut self, page: PageId) -> bool {
            match self.deque.iter_mut().find(|(x, _)| *x == page) {
                Some((_, pins)) if *pins > 0 => {
                    *pins -= 1;
                    true
                }
                _ => false,
            }
        }
    }

    proptest! {
        /// The slab LRU behaves exactly like the naive reference on
        /// arbitrary access sequences and capacities.
        #[test]
        fn matches_naive_lru(
            accesses in prop::collection::vec(0u64..20, 1..500),
            cap in 1usize..12,
        ) {
            let mut pool = BufferPool::new(cap);
            let mut naive = NaiveLru { cap, deque: VecDeque::new() };
            for a in accesses {
                let got = pool.access(PageId(a));
                let want = naive.access(PageId(a)).unwrap();
                prop_assert_eq!(got, want, "divergence on page {}", a);
                prop_assert_eq!(pool.len(), naive.deque.len());
            }
        }

        /// With interleaved pin/unpin/access operations, the slab LRU
        /// and the naive reference agree on hits, residency, eviction
        /// victims and pin-exhaustion errors.
        #[test]
        fn matches_naive_lru_with_pins(
            ops in prop::collection::vec((0u8..4, 0u64..12), 1..400),
            cap in 1usize..8,
        ) {
            let mut pool = BufferPool::new(cap);
            let mut naive = NaiveLru { cap, deque: VecDeque::new() };
            for (op, page) in ops {
                let page = PageId(page);
                match op {
                    0 | 1 => {
                        let got = pool.try_access(page);
                        let want = naive.access(page);
                        match (got, want) {
                            (Ok(adm), Ok(hit)) => prop_assert_eq!(adm.hit, hit),
                            (Err(e), Err(())) => prop_assert_eq!(
                                e, StorageError::AllPagesPinned { capacity: cap }
                            ),
                            (got, want) => prop_assert!(
                                false, "divergence on {:?}: {:?} vs {:?}", page, got, want
                            ),
                        }
                    }
                    2 => prop_assert_eq!(pool.pin(page), naive.pin(page)),
                    _ => prop_assert_eq!(pool.unpin(page), naive.unpin(page)),
                }
                prop_assert_eq!(pool.len(), naive.deque.len());
                prop_assert_eq!(
                    pool.pinned(),
                    naive.deque.iter().filter(|&&(_, pins)| pins > 0).count()
                );
            }
        }
    }
}
