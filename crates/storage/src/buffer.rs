//! An LRU buffer pool over page ids, with hit/miss accounting.
//!
//! Experiment 3 of the paper reports that "there is no significant
//! difference in the number of disk page and cache accesses between the
//! algorithms, regardless of the page and cache sizes". To reproduce that
//! claim we replay each join's node-access log (one tree node ≈ one page)
//! through this pool at several capacities and compare miss counts.

use std::collections::HashMap;

use crate::page::PageId;

/// Hit/miss counters of a [`BufferPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Accesses served from the pool.
    pub hits: u64,
    /// Accesses that required a (simulated) physical read.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl BufferStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of accesses that hit, in `[0, 1]`; 0 for no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-capacity LRU cache of page ids.
///
/// Constant-time access via an intrusive doubly-linked list over a slab,
/// so multi-million-access replay logs are cheap to process.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    stats: BufferStats,
    // Slab-based LRU list. `slots[i]` holds (page, prev, next).
    slots: Vec<(PageId, usize, usize)>,
    index: HashMap<PageId, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

const NIL: usize = usize::MAX;

impl BufferPool {
    /// A pool holding at most `capacity` pages. Panics if zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        BufferPool {
            capacity,
            stats: BufferStats::default(),
            slots: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            head: NIL,
            tail: NIL,
        }
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached pages.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Records an access to `page`, returning `true` on a hit. On a miss
    /// the page is brought in, evicting the least-recently-used page if
    /// the pool is full.
    pub fn access(&mut self, page: PageId) -> bool {
        if let Some(&slot) = self.index.get(&page) {
            self.stats.hits += 1;
            self.move_to_front(slot);
            true
        } else {
            self.stats.misses += 1;
            if self.index.len() == self.capacity {
                self.evict_lru();
            }
            let slot = self.slots.len();
            self.slots.push((page, NIL, self.head));
            if self.head != NIL {
                self.slots[self.head].1 = slot;
            }
            self.head = slot;
            if self.tail == NIL {
                self.tail = slot;
            }
            self.index.insert(page, slot);
            false
        }
    }

    fn move_to_front(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        let (_, prev, next) = self.slots[slot];
        // Unlink.
        if prev != NIL {
            self.slots[prev].2 = next;
        }
        if next != NIL {
            self.slots[next].1 = prev;
        }
        if self.tail == slot {
            self.tail = prev;
        }
        // Relink at head.
        self.slots[slot].1 = NIL;
        self.slots[slot].2 = self.head;
        if self.head != NIL {
            self.slots[self.head].1 = slot;
        }
        self.head = slot;
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "evict on empty pool");
        let (page, prev, _) = self.slots[victim];
        self.index.remove(&page);
        self.tail = prev;
        if prev != NIL {
            self.slots[prev].2 = NIL;
        } else {
            self.head = NIL;
        }
        self.stats.evictions += 1;
        // Recycle the slot by swapping with the last slab entry.
        let last = self.slots.len() - 1;
        if victim != last {
            self.slots.swap(victim, last);
            let (moved_page, mprev, mnext) = self.slots[victim];
            self.index.insert(moved_page, victim);
            if mprev != NIL {
                self.slots[mprev].2 = victim;
            }
            if mnext != NIL {
                self.slots[mnext].1 = victim;
            }
            if self.head == last {
                self.head = victim;
            }
            if self.tail == last {
                self.tail = victim;
            }
        }
        self.slots.pop();
    }

    /// Replays a sequence of page accesses, returning the final stats.
    pub fn replay(&mut self, accesses: impl IntoIterator<Item = PageId>) -> BufferStats {
        for p in accesses {
            self.access(p);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageId {
        PageId(i)
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut pool = BufferPool::new(4);
        assert!(!pool.access(p(1)));
        assert!(pool.access(p(1)));
        assert_eq!(pool.stats(), BufferStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn lru_eviction_order() {
        let mut pool = BufferPool::new(2);
        pool.access(p(1));
        pool.access(p(2));
        pool.access(p(3)); // evicts 1
        assert!(!pool.access(p(1)), "1 was evicted");
        // Accessing 1 evicted 2 (LRU after the miss on 3 put 3 at front).
        assert!(!pool.access(p(2)));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn touching_refreshes_recency() {
        let mut pool = BufferPool::new(2);
        pool.access(p(1));
        pool.access(p(2));
        pool.access(p(1)); // 1 now MRU, 2 is LRU
        pool.access(p(3)); // evicts 2
        assert!(pool.access(p(1)), "1 must have survived");
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn capacity_one() {
        let mut pool = BufferPool::new(1);
        assert!(!pool.access(p(1)));
        assert!(pool.access(p(1)));
        assert!(!pool.access(p(2)));
        assert!(!pool.access(p(1)));
        assert_eq!(pool.stats().evictions, 2);
    }

    #[test]
    fn replay_and_hit_rate() {
        let mut pool = BufferPool::new(8);
        let log: Vec<PageId> = (0..100).map(|i| p(i % 4)).collect();
        let stats = pool.replay(log);
        assert_eq!(stats.misses, 4, "working set fits: only cold misses");
        assert_eq!(stats.hits, 96);
        assert!((stats.hit_rate() - 0.96).abs() < 1e-12);
    }

    #[test]
    fn sequential_scan_thrashes_small_pool() {
        let mut pool = BufferPool::new(4);
        // Cyclic scan over 8 pages with LRU: every access misses.
        for _ in 0..3 {
            for i in 0..8 {
                pool.access(p(i));
            }
        }
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 24);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = BufferPool::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    /// Reference LRU: a VecDeque scanned linearly.
    struct NaiveLru {
        cap: usize,
        deque: VecDeque<PageId>, // front = MRU
    }

    impl NaiveLru {
        fn access(&mut self, page: PageId) -> bool {
            if let Some(pos) = self.deque.iter().position(|&x| x == page) {
                self.deque.remove(pos);
                self.deque.push_front(page);
                true
            } else {
                if self.deque.len() == self.cap {
                    self.deque.pop_back();
                }
                self.deque.push_front(page);
                false
            }
        }
    }

    proptest! {
        /// The slab LRU behaves exactly like the naive reference on
        /// arbitrary access sequences and capacities.
        #[test]
        fn matches_naive_lru(
            accesses in prop::collection::vec(0u64..20, 1..500),
            cap in 1usize..12,
        ) {
            let mut pool = BufferPool::new(cap);
            let mut naive = NaiveLru { cap, deque: VecDeque::new() };
            for a in accesses {
                let got = pool.access(PageId(a));
                let want = naive.access(PageId(a));
                prop_assert_eq!(got, want, "divergence on page {}", a);
                prop_assert_eq!(pool.len(), naive.deque.len());
            }
        }
    }
}
