//! Typed storage errors.
//!
//! Every fallible storage entry point — page reads and writes, output
//! sinks, file persistence — reports a [`StorageError`] instead of
//! panicking, so callers (the join engine, the CLI) can degrade
//! gracefully: retry transient faults, finish the current task, or map
//! the failure to a distinct exit code.

use std::fmt;

/// Which physical operation an error occurred on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoOp {
    /// A page (or blob) read.
    Read,
    /// A page (or blob) write.
    Write,
    /// A flush of buffered output.
    Flush,
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoOp::Read => write!(f, "read"),
            IoOp::Write => write!(f, "write"),
            IoOp::Flush => write!(f, "flush"),
        }
    }
}

/// Errors raised by the storage layer.
///
/// The type is `Clone + PartialEq` (operating-system errors are captured
/// as text) so faults can be recorded at the point of failure and
/// re-raised at a task boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// An operating-system I/O failure, with the failing operation and
    /// the OS error text.
    Io {
        /// The failing operation.
        op: IoOp,
        /// OS error description (and, where known, the path involved).
        detail: String,
    },
    /// A fault injected by a [`crate::fault::FaultPolicy`] (testing and
    /// resilience drills only; never produced in normal operation).
    FaultInjected {
        /// The operation the fault was injected into.
        op: IoOp,
        /// 1-based sequence number of the faulted operation.
        seq: u64,
    },
    /// A transient failure persisted across every permitted retry.
    RetriesExhausted {
        /// The operation that kept failing.
        op: IoOp,
        /// Total attempts made (first try + retries).
        attempts: u32,
        /// The error observed on the final attempt.
        cause: Box<StorageError>,
    },
    /// A page id beyond the allocated region of the disk.
    PageOutOfBounds {
        /// Requested page id.
        page: u64,
        /// Number of allocated pages.
        pages: u64,
    },
    /// An empty group row was handed to the output writer (the join
    /// algorithms never emit one; this indicates a caller bug upstream
    /// of the writer, reported instead of panicking).
    EmptyGroupRow,
    /// Every frame of the buffer pool is pinned, so no page can be
    /// evicted to admit a new one. Deterministic: retrying cannot help;
    /// the caller must release a pin or use a larger pool.
    AllPagesPinned {
        /// Pool capacity in pages (all of them pinned).
        capacity: usize,
    },
    /// A page-sized read returned fewer bytes than a full page even
    /// after absorbing partial reads — the backing file is shorter than
    /// the page table says it should be (truncation or corruption).
    ShortRead {
        /// The page being read.
        page: u64,
        /// Bytes actually obtained.
        got: usize,
        /// Bytes required (one page).
        want: usize,
    },
}

impl StorageError {
    /// Wraps an OS error with its operation.
    pub fn io(op: IoOp, err: &std::io::Error) -> Self {
        StorageError::Io { op, detail: err.to_string() }
    }

    /// Wraps an OS error with its operation and the path involved.
    pub fn io_at(op: IoOp, path: &std::path::Path, err: &std::io::Error) -> Self {
        StorageError::Io { op, detail: format!("{}: {err}", path.display()) }
    }

    /// `true` for failures worth retrying (transient faults), `false`
    /// for deterministic ones (bad arguments, out-of-bounds pages).
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::Io { .. } | StorageError::FaultInjected { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, detail } => write!(f, "{op} failed: {detail}"),
            StorageError::FaultInjected { op, seq } => {
                write!(f, "injected fault on {op} #{seq}")
            }
            StorageError::RetriesExhausted { op, attempts, cause } => {
                write!(f, "{op} still failing after {attempts} attempts: {cause}")
            }
            StorageError::PageOutOfBounds { page, pages } => {
                write!(f, "page {page} out of bounds (disk has {pages} pages)")
            }
            StorageError::EmptyGroupRow => write!(f, "empty group row"),
            StorageError::AllPagesPinned { capacity } => {
                write!(f, "all {capacity} buffer-pool pages are pinned; nothing can be evicted")
            }
            StorageError::ShortRead { page, got, want } => {
                write!(f, "short read of page {page}: got {got} of {want} bytes")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_operation() {
        let e = StorageError::FaultInjected { op: IoOp::Read, seq: 3 };
        assert!(e.to_string().contains("read"));
        let e = StorageError::RetriesExhausted {
            op: IoOp::Write,
            attempts: 4,
            cause: Box::new(StorageError::FaultInjected { op: IoOp::Write, seq: 8 }),
        };
        let text = e.to_string();
        assert!(text.contains("4 attempts") && text.contains("write"), "{text}");
    }

    #[test]
    fn transience_classification() {
        assert!(StorageError::FaultInjected { op: IoOp::Read, seq: 1 }.is_transient());
        assert!(!StorageError::PageOutOfBounds { page: 9, pages: 2 }.is_transient());
        assert!(!StorageError::EmptyGroupRow.is_transient());
        assert!(
            !StorageError::AllPagesPinned { capacity: 2 }.is_transient(),
            "pin exhaustion is a capacity-planning error, not a fault"
        );
        assert!(!StorageError::ShortRead { page: 1, got: 100, want: 8192 }.is_transient());
    }
}
