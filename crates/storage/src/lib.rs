//! Storage substrate for compact similarity joins.
//!
//! The paper measures two storage-facing quantities:
//!
//! * **Output size** — "the size in bytes of the resulting output text
//!   file", where "each data point is zero-padded to ensure it is
//!   represented by the same fixed number of bits", links are written as
//!   `0001 0002` lines and groups as `0001 0002 0003...` lines (§VI).
//!   [`writer`] reproduces that format byte-for-byte, over counting,
//!   in-memory or real-file sinks.
//! * **I/O behaviour** — Experiment 3 compares page / cache accesses and
//!   splits runtime into computation vs disk-write time. [`page`],
//!   [`buffer`] and [`pager`] provide a paged-storage simulation (one tree
//!   node ≈ one page) with an LRU buffer pool and hit/miss counters, and
//!   [`costmodel`] turns byte/page counts into deterministic,
//!   machine-independent time estimates.

//!
//! Out-of-core joins graduate this simulation to a real device: the
//! [`disk::Disk`] trait abstracts a page store, implemented by the
//! counting [`SimulatedDisk`] and by [`disk::FileDisk`], a real page
//! file using direct I/O where the platform permits it. The same
//! [`BufferPool`] then runs *live* — pin counts keep in-use pages
//! resident, eviction reports which frame to write back, and a fully
//! pinned pool refuses admission ([`StorageError::AllPagesPinned`])
//! rather than exceed its memory budget.
//!
//! Robustness (see README `## Robustness`): every fallible entry point
//! returns a typed [`StorageError`]; [`fault`] provides deterministic
//! fault injection ([`FaultPolicy`]) — including short reads and torn
//! writes against real files — and [`pager::RetryPager`] bounded
//! retry-with-backoff over any [`disk::Disk`].

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod buffer;
pub mod costmodel;
pub mod disk;
pub mod error;
pub mod fault;
pub mod page;
pub mod pager;
pub mod writer;

pub use buffer::{Admission, BufferPool, BufferStats};
pub use costmodel::CostModel;
pub use disk::{Disk, FileDisk};
pub use error::{IoOp, StorageError};
pub use fault::{FaultInjector, FaultPolicy};
pub use page::{Page, PageId, PAGE_SIZE};
pub use pager::{RetryPager, RetryPolicy, SimulatedDisk};
pub use writer::{CountingSink, FaultySink, FileSink, OutputSink, OutputWriter, VecSink};
