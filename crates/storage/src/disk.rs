//! The physical page-device abstraction: simulated or a real file.
//!
//! [`Disk`] is the contract the buffer pool, the retrying pager and the
//! paged index store are written against. Two implementations exist:
//!
//! * [`crate::SimulatedDisk`] — the in-memory page store used by the
//!   Experiment-3 replay harness and by deterministic tests;
//! * [`FileDisk`] — a real page file: page-aligned positional reads and
//!   writes through a page-aligned buffer (`O_DIRECT` where the
//!   platform and filesystem accept it, buffered I/O otherwise), with
//!   `fsync` on [`Disk::sync`] so a checkpoint survives a crash.
//!
//! Both run every operation through the same [`FaultInjector`] gates as
//! the simulation, so the PR-1/PR-5 resilience story — deterministic
//! fault drills absorbed by bounded retry — holds on real files too.
//! `FileDisk` additionally absorbs the faults a real kernel serves up
//! on its own: `EINTR` restarts the syscall, and partial reads/writes
//! resume where they stopped instead of failing the page.

use std::fs::File;
use std::path::{Path, PathBuf};

use crate::error::{IoOp, StorageError};
use crate::fault::{FaultInjector, FaultPolicy};
use crate::page::{Page, PageId, PAGE_SIZE};

/// A device storing fixed-size pages addressed by [`PageId`].
///
/// Reads and writes are fallible and *counted*; allocation grows the
/// device; [`Disk::sync`] makes previous writes durable. Implementations
/// gate every operation through a [`FaultInjector`] so resilience tests
/// can drive the full read/retry/recover path on any backend.
pub trait Disk {
    /// Number of allocated pages.
    fn num_pages(&self) -> u64;

    /// Allocates a fresh zeroed page, returning its id.
    ///
    /// # Errors
    /// Returns [`StorageError::Io`] when growing the backing store
    /// fails (real files only).
    fn alloc(&mut self) -> Result<PageId, StorageError>;

    /// Allocates zeroed pages until `id` is addressable.
    ///
    /// # Errors
    /// Returns [`StorageError::Io`] when growing the backing store
    /// fails (real files only).
    fn alloc_through(&mut self, id: PageId) -> Result<(), StorageError>;

    /// Physically reads a page (counted, fault-checked).
    ///
    /// # Errors
    /// Returns [`StorageError::FaultInjected`] for injected faults,
    /// [`StorageError::PageOutOfBounds`] for an invalid id,
    /// [`StorageError::ShortRead`] when the backing store is truncated
    /// and [`StorageError::Io`] for OS failures.
    fn read(&mut self, id: PageId) -> Result<Page, StorageError>;

    /// Physically writes a page (counted, fault-checked).
    ///
    /// # Errors
    /// Returns [`StorageError::FaultInjected`] for injected faults,
    /// [`StorageError::PageOutOfBounds`] for an invalid id and
    /// [`StorageError::Io`] for OS failures.
    fn write(&mut self, page: &Page) -> Result<(), StorageError>;

    /// Forces previous writes to durable storage (fsync on real files;
    /// a no-op on the simulation).
    ///
    /// # Errors
    /// Returns [`StorageError::Io`] when the flush fails.
    fn sync(&mut self) -> Result<(), StorageError>;

    /// Physical page read attempts so far (including faulted ones).
    fn reads(&self) -> u64;

    /// Physical page write attempts so far (including faulted ones).
    fn writes(&self) -> u64;

    /// Faults injected so far (0 on a fault-free device).
    fn faults_injected(&self) -> u64;
}

/// `O_DIRECT` wants the user buffer aligned to the logical block size;
/// 4096 covers every common device and matches the page size evenly.
const DIRECT_IO_ALIGN: usize = 4096;

/// A heap buffer of one page, aligned for direct I/O.
///
/// `Vec<u8>` guarantees only byte alignment, which `O_DIRECT` rejects;
/// this buffer is allocated at [`DIRECT_IO_ALIGN`] so the same read and
/// write paths serve both buffered and direct file handles.
struct AlignedBuf {
    ptr: std::ptr::NonNull<u8>,
    layout: std::alloc::Layout,
}

// SAFETY: AlignedBuf exclusively owns its heap allocation (no aliasing,
// no interior mutability), so moving it to another thread is sound.
unsafe impl Send for AlignedBuf {}

impl AlignedBuf {
    fn new_zeroed() -> Self {
        let layout = std::alloc::Layout::from_size_align(PAGE_SIZE, DIRECT_IO_ALIGN)
            // csj-lint: allow(panic-safety) — PAGE_SIZE and DIRECT_IO_ALIGN
            // are in-crate constants; a bad layout is a compile-time-shaped
            // bug, not a runtime condition to recover from.
            .expect("page layout is valid");
        // SAFETY: `layout` has non-zero size (PAGE_SIZE > 0).
        let raw = unsafe { std::alloc::alloc_zeroed(layout) };
        let Some(ptr) = std::ptr::NonNull::new(raw) else {
            std::alloc::handle_alloc_error(layout);
        };
        AlignedBuf { ptr, layout }
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr` points to a live allocation of PAGE_SIZE bytes,
        // initialized at construction and only ever written as bytes.
        // csj-lint: allow(unsafe-bounds) — struct invariant: `ptr` is a
        // live `alloc_zeroed(PAGE_SIZE)` allocation owned by this buffer
        // (freed only in Drop); the length is not derivable from any
        // dominating guard the value-range analysis can see.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), PAGE_SIZE) }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as in `as_slice`, plus `&mut self` guarantees
        // exclusive access for the lifetime of the returned slice.
        // csj-lint: allow(unsafe-bounds) — struct invariant, as in
        // `as_slice`: the PAGE_SIZE length is an allocation fact, not a
        // guard-provable one.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), PAGE_SIZE) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        // SAFETY: `ptr` was allocated with exactly this layout and is
        // freed exactly once (Drop).
        unsafe { std::alloc::dealloc(self.ptr.as_ptr(), self.layout) };
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf({} bytes @ {:?})", PAGE_SIZE, self.ptr)
    }
}

/// Linux `O_DIRECT` flag value (architecture-dependent).
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "x86")))]
const O_DIRECT: i32 = 0o40000;
#[cfg(all(target_os = "linux", any(target_arch = "aarch64", target_arch = "arm")))]
const O_DIRECT: i32 = 0o200000;

/// A real on-disk page file.
///
/// Pages live at offset `id · PAGE_SIZE`; the file length is always a
/// whole number of pages. Opening first attempts an `O_DIRECT` handle
/// (Linux; falls back silently where the filesystem refuses, e.g.
/// tmpfs), and all transfers go through an aligned one-page buffer so
/// the direct path and the buffered path share the same code.
#[derive(Debug)]
pub struct FileDisk {
    file: File,
    path: PathBuf,
    pages: u64,
    direct: bool,
    faults: FaultInjector,
    scratch: AlignedBuf,
    reads: u64,
    writes: u64,
}

impl FileDisk {
    /// Creates (or truncates) a page file at `path`.
    ///
    /// # Errors
    /// Returns [`StorageError::Io`] when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        Self::with_faults(path, FaultPolicy::none())
    }

    /// Creates (or truncates) a page file whose operations fail per
    /// `policy`.
    ///
    /// # Errors
    /// Returns [`StorageError::Io`] when the file cannot be created.
    pub fn with_faults(path: impl AsRef<Path>, policy: FaultPolicy) -> Result<Self, StorageError> {
        let path = path.as_ref();
        // Short-read injection truncates a syscall to an arbitrary
        // (misaligned) length, which a direct-I/O handle rejects with
        // EINVAL before the kernel even tries — the drill only makes
        // sense on a buffered handle, so force one.
        let force_buffered = policy.short_read_prefix.is_some();
        let (file, direct) = open_page_file(path, true, force_buffered)
            .map_err(|e| StorageError::io_at(IoOp::Write, path, &e))?;
        Ok(FileDisk {
            file,
            path: path.to_path_buf(),
            pages: 0,
            direct,
            faults: FaultInjector::new(policy),
            scratch: AlignedBuf::new_zeroed(),
            reads: 0,
            writes: 0,
        })
    }

    /// Opens an existing page file, recovering the page count from the
    /// file length.
    ///
    /// # Errors
    /// Returns [`StorageError::Io`] when the file cannot be opened or
    /// its length is not a whole number of pages (torn allocation).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let path = path.as_ref();
        let (file, direct) = open_page_file(path, false, false)
            .map_err(|e| StorageError::io_at(IoOp::Read, path, &e))?;
        let len = file.metadata().map_err(|e| StorageError::io_at(IoOp::Read, path, &e))?.len();
        if !len.is_multiple_of(PAGE_SIZE as u64) {
            return Err(StorageError::Io {
                op: IoOp::Read,
                detail: format!(
                    "{}: length {len} is not a whole number of {PAGE_SIZE}-byte pages",
                    path.display()
                ),
            });
        }
        Ok(FileDisk {
            file,
            path: path.to_path_buf(),
            pages: len / PAGE_SIZE as u64,
            direct,
            faults: FaultInjector::none(),
            scratch: AlignedBuf::new_zeroed(),
            reads: 0,
            writes: 0,
        })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `true` when the handle was opened `O_DIRECT` (page cache
    /// bypassed); `false` on filesystems that refused it.
    pub fn is_direct(&self) -> bool {
        self.direct
    }

    fn check_bounds(&self, id: PageId) -> Result<u64, StorageError> {
        if id.0 >= self.pages {
            return Err(StorageError::PageOutOfBounds { page: id.0, pages: self.pages });
        }
        Ok(id.0 * PAGE_SIZE as u64)
    }

    /// Fills `self.scratch` from the file at `offset`, restarting on
    /// `EINTR` and resuming after partial reads. An injected short read
    /// truncates the *first* syscall only — the resume loop absorbs it,
    /// which is exactly what it does for a real partial read.
    fn read_page_at(&mut self, offset: u64, id: PageId) -> Result<(), StorageError> {
        let mut filled = 0usize;
        let mut injected_cap = self.faults.short_read_len(PAGE_SIZE);
        while filled < PAGE_SIZE {
            let window = &mut self.scratch.as_mut_slice()[filled..];
            let cap = match injected_cap.take() {
                Some(c) => c.clamp(1, window.len()),
                None => window.len(),
            };
            match read_at(&mut self.file, &mut window[..cap], offset + filled as u64) {
                Ok(0) => {
                    return Err(StorageError::ShortRead {
                        page: id.0,
                        got: filled,
                        want: PAGE_SIZE,
                    })
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(StorageError::io_at(IoOp::Read, &self.path, &e)),
            }
        }
        Ok(())
    }

    /// Writes `self.scratch` to the file at `offset`, restarting on
    /// `EINTR` and resuming after partial writes.
    fn write_page_at(&mut self, offset: u64) -> Result<(), StorageError> {
        let mut written = 0usize;
        while written < PAGE_SIZE {
            match write_at(
                &mut self.file,
                &self.scratch.as_slice()[written..],
                offset + written as u64,
            ) {
                Ok(0) => {
                    return Err(StorageError::Io {
                        op: IoOp::Write,
                        detail: format!("{}: write returned 0 bytes", self.path.display()),
                    })
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(StorageError::io_at(IoOp::Write, &self.path, &e)),
            }
        }
        Ok(())
    }
}

impl Disk for FileDisk {
    fn num_pages(&self) -> u64 {
        self.pages
    }

    fn alloc(&mut self) -> Result<PageId, StorageError> {
        let id = PageId(self.pages);
        self.alloc_through(id)?;
        Ok(id)
    }

    fn alloc_through(&mut self, id: PageId) -> Result<(), StorageError> {
        if id.0 >= self.pages {
            self.pages = id.0 + 1;
            // set_len extends sparsely with zeros — a fresh page reads
            // back zeroed without any physical write.
            self.file
                .set_len(self.pages * PAGE_SIZE as u64)
                .map_err(|e| StorageError::io_at(IoOp::Write, &self.path, &e))?;
        }
        Ok(())
    }

    fn read(&mut self, id: PageId) -> Result<Page, StorageError> {
        self.reads += 1;
        self.faults.before_read()?;
        let offset = self.check_bounds(id)?;
        self.read_page_at(offset, id)?;
        Ok(Page::with_data(id, self.scratch.as_slice().to_vec()))
    }

    fn write(&mut self, page: &Page) -> Result<(), StorageError> {
        self.writes += 1;
        self.faults.before_write()?;
        let offset = self.check_bounds(page.id)?;
        let n = page.data.len().min(PAGE_SIZE);
        let scratch = self.scratch.as_mut_slice();
        scratch[..n].copy_from_slice(&page.data[..n]);
        scratch[n..].fill(0);
        self.write_page_at(offset)
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_all().map_err(|e| StorageError::io_at(IoOp::Flush, &self.path, &e))
    }

    fn reads(&self) -> u64 {
        self.reads
    }

    fn writes(&self) -> u64 {
        self.writes
    }

    fn faults_injected(&self) -> u64 {
        self.faults.faults_injected()
    }
}

/// Opens `path` read-write, preferring an `O_DIRECT` handle on Linux
/// and falling back to a buffered one where the filesystem refuses
/// (tmpfs, some network mounts) or the caller demands buffering
/// (`force_buffered`, used by short-read fault drills whose misaligned
/// syscalls direct I/O would reject). Returns the handle and whether
/// the direct flag stuck.
fn open_page_file(
    path: &Path,
    truncate: bool,
    force_buffered: bool,
) -> std::io::Result<(File, bool)> {
    let mut opts = std::fs::OpenOptions::new();
    opts.read(true).write(true).create(truncate).truncate(truncate);
    #[cfg(all(
        target_os = "linux",
        any(
            target_arch = "x86_64",
            target_arch = "x86",
            target_arch = "aarch64",
            target_arch = "arm"
        )
    ))]
    if !force_buffered {
        use std::os::unix::fs::OpenOptionsExt;
        let mut direct_opts = std::fs::OpenOptions::new();
        direct_opts.read(true).write(true).create(truncate).truncate(truncate);
        direct_opts.custom_flags(O_DIRECT);
        if let Ok(file) = direct_opts.open(path) {
            return Ok((file, true));
        }
    }
    #[cfg(not(all(
        target_os = "linux",
        any(
            target_arch = "x86_64",
            target_arch = "x86",
            target_arch = "aarch64",
            target_arch = "arm"
        )
    )))]
    let _ = force_buffered;
    opts.open(path).map(|f| (f, false))
}

#[cfg(unix)]
fn read_at(file: &mut File, buf: &mut [u8], offset: u64) -> std::io::Result<usize> {
    std::os::unix::fs::FileExt::read_at(&*file, buf, offset)
}

#[cfg(unix)]
fn write_at(file: &mut File, buf: &[u8], offset: u64) -> std::io::Result<usize> {
    std::os::unix::fs::FileExt::write_at(&*file, buf, offset)
}

#[cfg(not(unix))]
fn read_at(file: &mut File, buf: &mut [u8], offset: u64) -> std::io::Result<usize> {
    use std::io::{Read, Seek, SeekFrom};
    file.seek(SeekFrom::Start(offset))?;
    file.read(buf)
}

#[cfg(not(unix))]
fn write_at(file: &mut File, buf: &[u8], offset: u64) -> std::io::Result<usize> {
    use std::io::{Seek, SeekFrom, Write};
    file.seek(SeekFrom::Start(offset))?;
    file.write(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("csj_disk_{tag}_{}.pages", std::process::id()))
    }

    fn fill(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn file_disk_roundtrip_and_reopen() {
        let path = temp_path("roundtrip");
        {
            let mut disk = FileDisk::create(&path).unwrap();
            for b in 0..5u8 {
                let id = disk.alloc().unwrap();
                disk.write(&Page::with_data(id, fill(b))).unwrap();
            }
            disk.sync().unwrap();
            assert_eq!(disk.num_pages(), 5);
            assert_eq!(disk.writes(), 5);
        }
        let mut disk = FileDisk::open(&path).unwrap();
        assert_eq!(disk.num_pages(), 5, "page count recovered from file length");
        for b in (0..5u8).rev() {
            let page = disk.read(PageId(b as u64)).unwrap();
            assert_eq!(page.data, fill(b), "page {b}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fresh_pages_read_back_zeroed() {
        let path = temp_path("zeroed");
        let mut disk = FileDisk::create(&path).unwrap();
        disk.alloc_through(PageId(7)).unwrap();
        assert_eq!(disk.num_pages(), 8);
        assert_eq!(disk.read(PageId(7)).unwrap().data, vec![0u8; PAGE_SIZE]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let path = temp_path("oob");
        let mut disk = FileDisk::create(&path).unwrap();
        disk.alloc().unwrap();
        let err = disk.read(PageId(3)).unwrap_err();
        assert_eq!(err, StorageError::PageOutOfBounds { page: 3, pages: 1 });
        let err = disk.write(&Page::zeroed(PageId(9))).unwrap_err();
        assert_eq!(err, StorageError::PageOutOfBounds { page: 9, pages: 1 });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_reports_short_read() {
        let path = temp_path("short");
        let mut disk = FileDisk::create(&path).unwrap();
        let id = disk.alloc().unwrap();
        disk.write(&Page::with_data(id, fill(0xAA))).unwrap();
        // Truncate behind the disk's back: the page table still says
        // one page, but only half of it exists.
        disk.file.set_len(PAGE_SIZE as u64 / 2).unwrap();
        let err = disk.read(id).unwrap_err();
        assert!(
            matches!(err, StorageError::ShortRead { page: 0, want, .. } if want == PAGE_SIZE),
            "unexpected error {err:?}"
        );
        assert!(!err.is_transient(), "truncation is not retryable");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_short_reads_are_absorbed_by_the_resume_loop() {
        let path = temp_path("injected_short");
        let mut disk = FileDisk::with_faults(&path, FaultPolicy::short_read(100)).unwrap();
        let id = disk.alloc().unwrap();
        disk.write(&Page::with_data(id, fill(0x5C))).unwrap();
        // Every read's first syscall returns only 100 bytes; the loop
        // must resume and still produce the full page.
        let page = disk.read(id).unwrap();
        assert_eq!(page.data, fill(0x5C));
        assert!(disk.faults_injected() >= 1, "the short read was injected and counted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simulated_and_file_disks_agree_through_the_trait() {
        fn exercise<D: Disk>(disk: &mut D) -> Vec<Vec<u8>> {
            let a = disk.alloc().unwrap();
            let b = disk.alloc().unwrap();
            disk.write(&Page::with_data(a, fill(1))).unwrap();
            disk.write(&Page::with_data(b, fill(2))).unwrap();
            disk.write(&Page::with_data(a, fill(3))).unwrap(); // overwrite
            disk.sync().unwrap();
            vec![disk.read(a).unwrap().data, disk.read(b).unwrap().data]
        }
        let mut sim = crate::SimulatedDisk::new();
        let path = temp_path("agree");
        let mut file = FileDisk::create(&path).unwrap();
        assert_eq!(exercise(&mut sim), exercise(&mut file));
        assert_eq!(Disk::num_pages(&sim), file.num_pages());
        std::fs::remove_file(&path).ok();
    }
}
