//! A simulated disk: a flat page store with access counters.

use crate::page::{Page, PageId, PAGE_SIZE};

/// An in-memory stand-in for a disk file, counting physical reads and
/// writes. The buffer pool sits on top of this.
#[derive(Debug, Default)]
pub struct SimulatedDisk {
    pages: Vec<Vec<u8>>,
    /// Number of physical page reads performed.
    pub reads: u64,
    /// Number of physical page writes performed.
    pub writes: u64,
}

impl SimulatedDisk {
    /// An empty disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh zeroed page, returning its id.
    pub fn alloc(&mut self) -> PageId {
        let id = PageId(self.pages.len() as u64);
        self.pages.push(vec![0; PAGE_SIZE]);
        id
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Physically reads a page (counted).
    pub fn read(&mut self, id: PageId) -> Page {
        self.reads += 1;
        Page { id, data: self.pages[id.0 as usize].clone() }
    }

    /// Physically writes a page (counted).
    pub fn write(&mut self, page: &Page) {
        self.writes += 1;
        let slot = &mut self.pages[page.id.0 as usize];
        slot.clear();
        slot.extend_from_slice(&page.data);
        slot.resize(PAGE_SIZE, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_sequential_ids() {
        let mut d = SimulatedDisk::new();
        assert_eq!(d.alloc(), PageId(0));
        assert_eq!(d.alloc(), PageId(1));
        assert_eq!(d.num_pages(), 2);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = SimulatedDisk::new();
        let id = d.alloc();
        let mut page = Page::zeroed(id);
        page.data[0] = 0xAB;
        page.data[PAGE_SIZE - 1] = 0xCD;
        d.write(&page);
        let back = d.read(id);
        assert_eq!(back, page);
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut d = SimulatedDisk::new();
        let id = d.alloc();
        for _ in 0..5 {
            let _ = d.read(id);
        }
        assert_eq!(d.reads, 5);
        assert_eq!(d.writes, 0);
    }
}
