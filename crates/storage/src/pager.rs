//! A simulated disk with fault injection, and a retrying pager on top.
//!
//! [`SimulatedDisk`] is a flat page store with access counters; its
//! reads and writes are fallible, driven by an optional
//! [`FaultPolicy`]. [`RetryPager`] wraps the disk with bounded
//! retry-with-backoff, so transient faults (the kind a real device
//! reports sporadically) are absorbed and *counted* rather than
//! propagated, while persistent failures surface as
//! [`StorageError::RetriesExhausted`].

use std::time::Duration;

use crate::disk::Disk;
use crate::error::{IoOp, StorageError};
use crate::fault::{FaultInjector, FaultPolicy};
use crate::page::{Page, PageId, PAGE_SIZE};

/// An in-memory stand-in for a disk file, counting physical reads and
/// writes. The buffer pool sits on top of this.
#[derive(Debug, Default)]
pub struct SimulatedDisk {
    pages: Vec<Vec<u8>>,
    faults: FaultInjector,
    /// Number of physical page read attempts (including faulted ones).
    pub reads: u64,
    /// Number of physical page write attempts (including faulted ones).
    pub writes: u64,
}

impl SimulatedDisk {
    /// An empty, fault-free disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty disk whose operations fail per `policy`.
    pub fn with_faults(policy: FaultPolicy) -> Self {
        SimulatedDisk { faults: FaultInjector::new(policy), ..Self::default() }
    }

    /// Allocates a fresh zeroed page, returning its id.
    pub fn alloc(&mut self) -> PageId {
        let id = PageId(self.pages.len() as u64);
        self.pages.push(vec![0; PAGE_SIZE]);
        id
    }

    /// Allocates zeroed pages until `id` is addressable.
    pub fn alloc_through(&mut self, id: PageId) {
        while self.pages.len() <= id.0 as usize {
            self.pages.push(vec![0; PAGE_SIZE]);
        }
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Faults injected so far (0 on a fault-free disk).
    pub fn faults_injected(&self) -> u64 {
        self.faults.faults_injected()
    }

    /// Physically reads a page (counted, fault-checked).
    ///
    /// # Errors
    /// Returns [`StorageError::FaultInjected`] when the injector fails
    /// this read and [`StorageError::PageOutOfBounds`] for an invalid
    /// page id.
    pub fn read(&mut self, id: PageId) -> Result<Page, StorageError> {
        self.reads += 1;
        self.faults.before_read()?;
        let data = self
            .pages
            .get(id.0 as usize)
            .ok_or(StorageError::PageOutOfBounds { page: id.0, pages: self.pages.len() as u64 })?;
        Ok(Page { id, data: data.clone() })
    }

    /// Physically writes a page (counted, fault-checked).
    ///
    /// # Errors
    /// Returns [`StorageError::FaultInjected`] when the injector fails
    /// this write and [`StorageError::PageOutOfBounds`] for an invalid
    /// page id.
    pub fn write(&mut self, page: &Page) -> Result<(), StorageError> {
        self.writes += 1;
        self.faults.before_write()?;
        let slot = self
            .pages
            .get_mut(page.id.0 as usize)
            .ok_or(StorageError::PageOutOfBounds { page: page.id.0, pages: 0 })?;
        slot.clear();
        slot.extend_from_slice(&page.data);
        slot.resize(PAGE_SIZE, 0);
        Ok(())
    }
}

/// The simulation behind the shared device contract: the trait methods
/// delegate to the inherent ones (which existing direct callers keep
/// using), with the infallible allocators wrapped in `Ok` and `sync` a
/// no-op — RAM is as durable as a simulation gets.
impl Disk for SimulatedDisk {
    fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    fn alloc(&mut self) -> Result<PageId, StorageError> {
        Ok(SimulatedDisk::alloc(self))
    }

    fn alloc_through(&mut self, id: PageId) -> Result<(), StorageError> {
        SimulatedDisk::alloc_through(self, id);
        Ok(())
    }

    fn read(&mut self, id: PageId) -> Result<Page, StorageError> {
        SimulatedDisk::read(self, id)
    }

    fn write(&mut self, page: &Page) -> Result<(), StorageError> {
        SimulatedDisk::write(self, page)
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    fn reads(&self) -> u64 {
        self.reads
    }

    fn writes(&self) -> u64 {
        self.writes
    }

    fn faults_injected(&self) -> u64 {
        SimulatedDisk::faults_injected(self)
    }
}

/// How persistently to retry transient storage faults.
///
/// The sleep before retry `k` is `base_backoff · 2^(k−1)` capped at
/// `max_backoff`, plus a *deterministic* jitter in `[0, base_backoff]`
/// derived by hashing `jitter_seed`, the retry index and a caller salt.
/// Jitter de-synchronizes retry storms (many workers hammering the same
/// device back in lockstep) without sacrificing reproducibility: the
/// same seed and salt always yield the same schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try + retries), at least 1.
    pub max_attempts: u32,
    /// Base of the exponential backoff; `ZERO` disables sleeping (and
    /// jitter) entirely.
    pub base_backoff: Duration,
    /// Upper bound on the exponential part of any single sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter hash.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(10),
            jitter_seed: 0,
        }
    }
}

/// One round of the splitmix64 mixer: a full-period bijection on `u64`
/// whose output passes statistical tests — plenty for spreading retry
/// wake-ups, with no state to carry around.
fn splitmix64(index: u64) -> u64 {
    let mut z = index.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and no sleeping
    /// between them (deterministic tests).
    pub fn no_backoff(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// Fail-fast: a single attempt, no retries.
    pub fn none() -> Self {
        Self::no_backoff(1)
    }

    /// Replaces the jitter seed (builder style).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The sleep before retry `retry` (1-based): exponential in the
    /// retry index, capped at [`RetryPolicy::max_backoff`], plus
    /// deterministic jitter in `[0, base_backoff]` keyed by
    /// `jitter_seed`, `salt` and the retry index. Pure — callers (and
    /// tests) can inspect the whole schedule without sleeping.
    pub fn backoff_for(&self, retry: u32, salt: u64) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exponent = retry.saturating_sub(1).min(16);
        let exponential = self.base_backoff.saturating_mul(1u32 << exponent);
        let capped = exponential.min(self.max_backoff.max(self.base_backoff));
        let span_nanos = u64::try_from(self.base_backoff.as_nanos()).unwrap_or(u64::MAX);
        let hash = splitmix64(self.jitter_seed ^ salt ^ (u64::from(retry) << 48));
        capped + Duration::from_nanos(hash % span_nanos.saturating_add(1))
    }
}

/// A pager that absorbs transient disk faults with bounded
/// retry-with-backoff, keeping a retry counter for the join statistics.
///
/// Generic over the [`Disk`] backend; the default keeps the historical
/// `RetryPager` (over [`SimulatedDisk`]) spelling working, while the
/// out-of-core engine instantiates `RetryPager<FileDisk>`.
#[derive(Debug, Default)]
pub struct RetryPager<D: Disk = SimulatedDisk> {
    disk: D,
    policy: RetryPolicy,
    retries: u64,
}

impl<D: Disk> RetryPager<D> {
    /// Wraps `disk` with `policy`.
    pub fn new(disk: D, policy: RetryPolicy) -> Self {
        RetryPager { disk, policy, retries: 0 }
    }

    /// Retries performed so far (attempts beyond the first, successful
    /// or not).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The wrapped disk.
    pub fn disk(&self) -> &D {
        &self.disk
    }

    /// The wrapped disk, mutably (e.g. to allocate pages).
    pub fn disk_mut(&mut self) -> &mut D {
        &mut self.disk
    }

    /// Consumes the pager, returning the wrapped disk.
    pub fn into_disk(self) -> D {
        self.disk
    }

    fn with_retries<T>(
        &mut self,
        op: IoOp,
        mut attempt: impl FnMut(&mut D) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let max = self.policy.max_attempts.max(1);
        let mut last = None;
        for k in 0..max {
            if k > 0 {
                self.retries += 1;
                // Salted by the cumulative retry count so consecutive
                // faulted operations spread apart instead of pulsing.
                let sleep = self.policy.backoff_for(k, self.retries);
                if !sleep.is_zero() {
                    std::thread::sleep(sleep);
                }
            }
            match attempt(&mut self.disk) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e), // deterministic: retrying is useless
            }
        }
        Err(StorageError::RetriesExhausted {
            op,
            attempts: max,
            cause: Box::new(last.unwrap_or(StorageError::EmptyGroupRow)),
        })
    }

    /// Reads a page, retrying transient faults per the policy.
    ///
    /// # Errors
    /// Returns [`StorageError::RetriesExhausted`] once transient faults
    /// outlast the retry policy, or the underlying error for
    /// non-retryable failures.
    pub fn read(&mut self, id: PageId) -> Result<Page, StorageError> {
        self.with_retries(IoOp::Read, |disk| disk.read(id))
    }

    /// Writes a page, retrying transient faults per the policy.
    ///
    /// # Errors
    /// Returns [`StorageError::RetriesExhausted`] once transient faults
    /// outlast the retry policy, or the underlying error for
    /// non-retryable failures.
    pub fn write(&mut self, page: &Page) -> Result<(), StorageError> {
        self.with_retries(IoOp::Write, |disk| disk.write(page))
    }

    /// Flushes the disk to durable storage, retrying transient faults.
    ///
    /// # Errors
    /// Returns [`StorageError::RetriesExhausted`] once transient faults
    /// outlast the retry policy, or the underlying error for
    /// non-retryable failures.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.with_retries(IoOp::Flush, Disk::sync)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_sequential_ids() {
        let mut d = SimulatedDisk::new();
        assert_eq!(d.alloc(), PageId(0));
        assert_eq!(d.alloc(), PageId(1));
        assert_eq!(d.num_pages(), 2);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = SimulatedDisk::new();
        let id = d.alloc();
        let mut page = Page::zeroed(id);
        page.data[0] = 0xAB;
        page.data[PAGE_SIZE - 1] = 0xCD;
        d.write(&page).unwrap();
        let back = d.read(id).unwrap();
        assert_eq!(back, page);
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut d = SimulatedDisk::new();
        let id = d.alloc();
        for _ in 0..5 {
            let _ = d.read(id).unwrap();
        }
        assert_eq!(d.reads, 5);
        assert_eq!(d.writes, 0);
    }

    #[test]
    fn out_of_bounds_read_is_an_error_not_a_panic() {
        let mut d = SimulatedDisk::new();
        let err = d.read(PageId(7)).unwrap_err();
        assert_eq!(err, StorageError::PageOutOfBounds { page: 7, pages: 0 });
    }

    #[test]
    fn faulty_disk_fails_every_third_read() {
        let mut d = SimulatedDisk::with_faults(FaultPolicy::fail_every_read(3));
        let id = d.alloc();
        let results: Vec<bool> = (0..6).map(|_| d.read(id).is_ok()).collect();
        assert_eq!(results, [true, true, false, true, true, false]);
        assert_eq!(d.faults_injected(), 2);
    }

    #[test]
    fn pager_absorbs_periodic_faults() {
        let disk = SimulatedDisk::with_faults(FaultPolicy::fail_every(3));
        let mut pager = RetryPager::new(disk, RetryPolicy::no_backoff(3));
        pager.disk_mut().alloc();
        for _ in 0..30 {
            pager.read(PageId(0)).expect("retry should absorb every 3rd-attempt fault");
        }
        assert!(pager.retries() > 0, "faults were hit and retried");
        assert!(pager.disk().faults_injected() >= 10);
    }

    #[test]
    fn pager_exhausts_retries_on_persistent_fault() {
        // fail_every(1): every attempt fails, so retries cannot save us.
        let disk = SimulatedDisk::with_faults(FaultPolicy::fail_every(1));
        let mut pager = RetryPager::new(disk, RetryPolicy::no_backoff(4));
        pager.disk_mut().alloc();
        let err = pager.read(PageId(0)).unwrap_err();
        match err {
            StorageError::RetriesExhausted { op: IoOp::Read, attempts: 4, cause } => {
                assert!(matches!(*cause, StorageError::FaultInjected { .. }));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(pager.retries(), 3, "three retries after the first attempt");
    }

    #[test]
    fn pager_does_not_retry_deterministic_errors() {
        let mut pager = RetryPager::new(SimulatedDisk::new(), RetryPolicy::no_backoff(5));
        let err = pager.read(PageId(42)).unwrap_err();
        assert!(matches!(err, StorageError::PageOutOfBounds { .. }));
        assert_eq!(pager.retries(), 0, "out-of-bounds is not transient");
    }

    #[test]
    fn backoff_schedule_is_exponential_capped_and_jittered() {
        let base = Duration::from_micros(100);
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: base,
            max_backoff: Duration::from_micros(400),
            jitter_seed: 7,
        };
        for retry in 1..8 {
            let exponential = base * (1 << (retry - 1)).min(4);
            let capped = exponential.min(Duration::from_micros(400));
            let sleep = policy.backoff_for(retry, 0);
            assert!(
                sleep >= capped && sleep <= capped + base,
                "retry {retry}: {sleep:?} outside [{capped:?}, {:?}]",
                capped + base
            );
        }
        // The exponential part saturates at max_backoff.
        assert!(policy.backoff_for(30, 0) <= Duration::from_micros(400) + base);
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_salt_sensitive() {
        let policy = RetryPolicy::default().with_jitter_seed(42);
        assert_eq!(policy.backoff_for(2, 9), policy.backoff_for(2, 9), "pure function");
        let distinct: std::collections::BTreeSet<Duration> =
            (0..32).map(|salt| policy.backoff_for(2, salt)).collect();
        assert!(distinct.len() > 16, "salts must spread wake-ups, got {}", distinct.len());
    }

    #[test]
    fn zero_base_means_zero_sleep() {
        let policy = RetryPolicy::no_backoff(5);
        for retry in 1..5 {
            assert_eq!(policy.backoff_for(retry, retry as u64), Duration::ZERO);
        }
    }

    /// Satellite: the PR-1/PR-5 resilience story on a *real* file — a
    /// periodically faulting `FileDisk` behind the retrying pager
    /// round-trips every page, with the faults counted, absorbed and
    /// invisible in the data read back.
    #[test]
    fn pager_fault_roundtrip_over_a_temp_file() {
        use crate::disk::FileDisk;
        let path = std::env::temp_dir()
            .join(format!("csj_pager_fault_roundtrip_{}.pages", std::process::id()));
        let disk = FileDisk::with_faults(&path, FaultPolicy::fail_every(3)).unwrap();
        let mut pager = RetryPager::new(disk, RetryPolicy::no_backoff(3));
        let n = 12u64;
        for i in 0..n {
            let id = pager.disk_mut().alloc().unwrap();
            assert_eq!(id, PageId(i));
            let mut page = Page::zeroed(id);
            page.data[0] = i as u8;
            page.data[PAGE_SIZE - 1] = !(i as u8);
            pager.write(&page).expect("retries absorb every 3rd-attempt fault");
        }
        pager.sync().expect("fsync with retry");
        for i in (0..n).rev() {
            let page = pager.read(PageId(i)).expect("read with retry");
            assert_eq!(page.data[0], i as u8);
            assert_eq!(page.data[PAGE_SIZE - 1], !(i as u8));
        }
        assert!(pager.retries() > 0, "faults were hit and retried");
        assert!(pager.disk().faults_injected() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fail_once_recovers_with_a_single_retry() {
        let disk = SimulatedDisk::with_faults(FaultPolicy::fail_once());
        let mut pager = RetryPager::new(disk, RetryPolicy::no_backoff(2));
        pager.disk_mut().alloc();
        let mut page = Page::zeroed(PageId(0));
        page.data[0] = 7;
        pager.write(&page).expect("one retry suffices");
        assert_eq!(pager.retries(), 1);
        assert_eq!(pager.read(PageId(0)).unwrap().data[0], 7);
    }
}
