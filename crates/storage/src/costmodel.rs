//! Deterministic I/O cost model.
//!
//! The paper ran on 2008 hardware and measured wall-clock time including
//! all disk accesses. Wall-clock on today's machines compresses the I/O
//! component (NVMe vs spinning disk), so alongside real timings the
//! experiment harness reports model-based times: bytes written and pages
//! read are converted to milliseconds with a fixed, documented cost per
//! operation. This keeps the Figure 8 compute-vs-write split reproducible
//! on any machine.

/// Cost coefficients for simulated I/O.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Milliseconds per random page read (seek + rotate + transfer).
    pub page_read_ms: f64,
    /// Milliseconds per page of sequential output written.
    pub page_write_ms: f64,
    /// Page size in bytes used to convert byte counts to pages.
    pub page_size: usize,
}

impl CostModel {
    /// Circa-2008 desktop HDD: ~8 ms random read, ~60 MB/s sequential
    /// write (8 KiB page ≈ 0.13 ms).
    pub fn hdd_2008() -> Self {
        CostModel { page_read_ms: 8.0, page_write_ms: 0.13, page_size: crate::page::PAGE_SIZE }
    }

    /// A modern NVMe SSD: ~0.08 ms random read, ~2 GB/s sequential write.
    pub fn nvme() -> Self {
        CostModel { page_read_ms: 0.08, page_write_ms: 0.004, page_size: crate::page::PAGE_SIZE }
    }

    /// Estimated milliseconds to write `bytes` of sequential output.
    pub fn write_time_ms(&self, bytes: u64) -> f64 {
        let pages = bytes.div_ceil(self.page_size as u64);
        pages as f64 * self.page_write_ms
    }

    /// Estimated milliseconds for `misses` random page reads.
    pub fn read_time_ms(&self, misses: u64) -> f64 {
        misses as f64 * self.page_read_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_time_rounds_up_to_pages() {
        let m = CostModel { page_read_ms: 1.0, page_write_ms: 2.0, page_size: 100 };
        assert_eq!(m.write_time_ms(0), 0.0);
        assert_eq!(m.write_time_ms(1), 2.0);
        assert_eq!(m.write_time_ms(100), 2.0);
        assert_eq!(m.write_time_ms(101), 4.0);
    }

    #[test]
    fn read_time_linear_in_misses() {
        let m = CostModel::hdd_2008();
        assert_eq!(m.read_time_ms(0), 0.0);
        assert!((m.read_time_ms(100) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn hdd_slower_than_nvme() {
        let bytes = 10_000_000;
        assert!(
            CostModel::hdd_2008().write_time_ms(bytes) > CostModel::nvme().write_time_ms(bytes)
        );
        assert!(CostModel::hdd_2008().read_time_ms(50) > CostModel::nvme().read_time_ms(50));
    }
}
