//! Join-output writers in the paper's text format.
//!
//! §VI: "Output size is measured by the size in bytes of the resulting
//! output text file. Each data point is zero-padded to ensure it is
//! represented by the same fixed number of bits. A link is written as a
//! single line in the output file containing the two data points, e.g.
//! `0001 0002`, while a cluster is written as the line
//! `0001 0002 0003...`."
//!
//! [`OutputWriter`] reproduces exactly that: fixed-width zero-padded
//! record ids, space-separated, newline-terminated lines. The sink is
//! pluggable so experiments can count bytes without materializing output
//! ([`CountingSink`]), keep it for inspection ([`VecSink`]) or write a
//! real file ([`FileSink`]). All writes are fallible: a full disk or an
//! injected fault surfaces as a [`StorageError`] instead of a panic, so
//! a join can stop cleanly at a row boundary.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::error::{IoOp, StorageError};
use crate::fault::{FaultInjector, FaultPolicy};

/// Where formatted output bytes go.
pub trait OutputSink {
    /// Consumes a chunk of formatted output.
    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), StorageError>;
    /// Total bytes consumed so far.
    fn bytes_written(&self) -> u64;
    /// Flushes buffered state (no-op for in-memory sinks).
    fn flush(&mut self) -> Result<(), StorageError> {
        Ok(())
    }
}

/// Discards output, keeping only the byte count. The default for
/// experiments: output size is measured without disk traffic.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    bytes: u64,
}

impl CountingSink {
    /// A fresh counting sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl OutputSink for CountingSink {
    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.bytes += bytes.len() as u64;
        Ok(())
    }
    fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

/// Buffers output in memory (tests, small runs).
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    buf: Vec<u8>,
}

impl VecSink {
    /// A fresh in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated output bytes.
    pub fn contents(&self) -> &[u8] {
        &self.buf
    }

    /// The accumulated output as UTF-8 (the format is pure ASCII).
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf).unwrap_or("<non-ascii output>")
    }
}

impl OutputSink for VecSink {
    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.buf.extend_from_slice(bytes);
        Ok(())
    }
    fn bytes_written(&self) -> u64 {
        self.buf.len() as u64
    }
}

/// Writes output to a real file through a buffered writer.
#[derive(Debug)]
pub struct FileSink {
    writer: BufWriter<File>,
    bytes: u64,
}

impl FileSink {
    /// Creates (truncates) `path` for writing.
    ///
    /// # Errors
    /// Returns [`StorageError::Io`] when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let path = path.as_ref();
        let file = File::create(path).map_err(|e| StorageError::io_at(IoOp::Write, path, &e))?;
        Ok(FileSink { writer: BufWriter::new(file), bytes: 0 })
    }
}

impl OutputSink for FileSink {
    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.writer.write_all(bytes).map_err(|e| StorageError::io(IoOp::Write, &e))?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }
    fn bytes_written(&self) -> u64 {
        self.bytes
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        self.writer.flush().map_err(|e| StorageError::io(IoOp::Flush, &e))
    }
}

/// A sink decorator that injects faults per a [`FaultPolicy`] before
/// delegating — lets tests drive the engine's error path on output
/// writes without a real failing device.
#[derive(Debug)]
pub struct FaultySink<S> {
    inner: S,
    faults: FaultInjector,
}

impl<S: OutputSink> FaultySink<S> {
    /// Wraps `inner`, failing writes per `policy`.
    pub fn new(inner: S, policy: FaultPolicy) -> Self {
        FaultySink { inner, faults: FaultInjector::new(policy) }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.faults_injected()
    }
}

impl<S: OutputSink> OutputSink for FaultySink<S> {
    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.faults.before_write()?;
        self.inner.write_bytes(bytes)
    }
    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        self.inner.flush()
    }
}

/// Formats links and groups in the paper's fixed-width text format.
#[derive(Debug)]
pub struct OutputWriter<S> {
    sink: S,
    width: usize,
    links: u64,
    groups: u64,
    scratch: Vec<u8>,
}

impl<S: OutputSink> OutputWriter<S> {
    /// Creates a writer whose ids are zero-padded to `width` digits.
    ///
    /// Use [`OutputWriter::id_width_for`] to derive the width from the
    /// dataset size, as the paper does ("the same fixed number of bits").
    pub fn new(sink: S, width: usize) -> Self {
        assert!((1..=20).contains(&width), "id width out of range");
        OutputWriter { sink, width, links: 0, groups: 0, scratch: Vec::with_capacity(256) }
    }

    /// The minimal width that fits every id of a dataset with `n` records.
    pub fn id_width_for(n: usize) -> usize {
        let mut width = 1;
        let mut bound = 10usize;
        while n > bound {
            width += 1;
            bound = bound.saturating_mul(10);
        }
        width
    }

    /// Writes one link line: two padded ids separated by a space.
    ///
    /// # Errors
    /// Returns [`StorageError`] when the sink rejects the write.
    pub fn write_link(&mut self, a: u32, b: u32) -> Result<(), StorageError> {
        self.scratch.clear();
        Self::push_padded(&mut self.scratch, a, self.width);
        self.scratch.push(b' ');
        Self::push_padded(&mut self.scratch, b, self.width);
        self.scratch.push(b'\n');
        self.sink.write_bytes(&self.scratch)?;
        self.links += 1;
        Ok(())
    }

    /// Writes one group line: every member id, space separated.
    ///
    /// An empty group is reported as [`StorageError::EmptyGroupRow`] —
    /// the join algorithms never emit one.
    ///
    /// # Errors
    /// Returns [`StorageError::EmptyGroupRow`] for an empty group and
    /// any sink error otherwise.
    pub fn write_group(&mut self, ids: &[u32]) -> Result<(), StorageError> {
        if ids.is_empty() {
            return Err(StorageError::EmptyGroupRow);
        }
        self.scratch.clear();
        Self::push_padded(&mut self.scratch, ids[0], self.width);
        for &id in &ids[1..] {
            self.scratch.push(b' ');
            Self::push_padded(&mut self.scratch, id, self.width);
        }
        self.scratch.push(b'\n');
        self.sink.write_bytes(&self.scratch)?;
        self.groups += 1;
        Ok(())
    }

    fn push_padded(buf: &mut Vec<u8>, value: u32, width: usize) {
        let mut digits = [0u8; 10];
        let mut v = value;
        let mut n = 0;
        loop {
            digits[n] = b'0' + (v % 10) as u8;
            v /= 10;
            n += 1;
            if v == 0 {
                break;
            }
        }
        // Pad (ids wider than `width` are written unpadded rather than
        // truncated, preserving correctness over formatting).
        for _ in n..width {
            buf.push(b'0');
        }
        for i in (0..n).rev() {
            buf.push(digits[i]);
        }
    }

    /// Number of link lines written.
    pub fn links_written(&self) -> u64 {
        self.links
    }

    /// Number of group lines written.
    pub fn groups_written(&self) -> u64 {
        self.groups
    }

    /// Total output bytes so far.
    pub fn bytes_written(&self) -> u64 {
        self.sink.bytes_written()
    }

    /// Flushes and returns the sink.
    ///
    /// # Errors
    /// Returns [`StorageError`] when the final flush fails.
    pub fn finish(mut self) -> Result<S, StorageError> {
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Borrow the sink (e.g. to inspect a [`VecSink`]).
    pub fn sink(&self) -> &S {
        &self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_format_matches_paper_example() {
        let mut w = OutputWriter::new(VecSink::new(), 4);
        w.write_link(1, 2).unwrap();
        assert_eq!(w.sink().as_str(), "0001 0002\n");
        assert_eq!(w.links_written(), 1);
        assert_eq!(w.bytes_written(), 10);
    }

    #[test]
    fn group_format_matches_paper_example() {
        let mut w = OutputWriter::new(VecSink::new(), 4);
        w.write_group(&[1, 2, 3]).unwrap();
        assert_eq!(w.sink().as_str(), "0001 0002 0003\n");
        assert_eq!(w.groups_written(), 1);
        assert_eq!(w.bytes_written(), 15);
    }

    #[test]
    fn fixed_width_padding() {
        let mut w = OutputWriter::new(VecSink::new(), 6);
        w.write_link(0, 123456).unwrap();
        assert_eq!(w.sink().as_str(), "000000 123456\n");
        // Wider-than-width ids are not truncated.
        let mut w = OutputWriter::new(VecSink::new(), 2);
        w.write_link(12345, 7).unwrap();
        assert_eq!(w.sink().as_str(), "12345 07\n");
    }

    #[test]
    fn byte_counts_are_deterministic() {
        // A link line is 2*width + 2 bytes; a k-group is k*width + k.
        let width = 5;
        let mut w = OutputWriter::new(CountingSink::new(), width);
        w.write_link(1, 2).unwrap();
        assert_eq!(w.bytes_written(), (2 * width + 2) as u64);
        let before = w.bytes_written();
        w.write_group(&[1, 2, 3, 4, 5, 6, 7]).unwrap();
        assert_eq!(w.bytes_written() - before, (7 * width + 7) as u64);
    }

    #[test]
    fn id_width_for_sizes() {
        assert_eq!(OutputWriter::<CountingSink>::id_width_for(0), 1);
        assert_eq!(OutputWriter::<CountingSink>::id_width_for(9), 1);
        assert_eq!(OutputWriter::<CountingSink>::id_width_for(10), 1);
        assert_eq!(OutputWriter::<CountingSink>::id_width_for(11), 2);
        assert_eq!(OutputWriter::<CountingSink>::id_width_for(27_000), 5);
        assert_eq!(OutputWriter::<CountingSink>::id_width_for(1_500_000), 7);
    }

    #[test]
    fn empty_group_is_a_typed_error() {
        let mut w = OutputWriter::new(CountingSink::new(), 4);
        assert_eq!(w.write_group(&[]).unwrap_err(), StorageError::EmptyGroupRow);
        assert_eq!(w.groups_written(), 0, "nothing was written");
    }

    #[test]
    fn file_sink_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("csj_writer_test.txt");
        {
            let mut w = OutputWriter::new(FileSink::create(&path).unwrap(), 3);
            w.write_link(7, 42).unwrap();
            w.write_group(&[1, 2, 3]).unwrap();
            let sink = w.finish().unwrap();
            assert_eq!(sink.bytes_written(), 8 + 12);
        }
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "007 042\n001 002 003\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn counting_matches_vec_sink() {
        let mut count = OutputWriter::new(CountingSink::new(), 4);
        let mut vec = OutputWriter::new(VecSink::new(), 4);
        for i in 0..50u32 {
            count.write_link(i, i * 7 % 97).unwrap();
            vec.write_link(i, i * 7 % 97).unwrap();
            if i % 5 == 0 {
                let g = [i, i + 1, i + 2];
                count.write_group(&g).unwrap();
                vec.write_group(&g).unwrap();
            }
        }
        assert_eq!(count.bytes_written(), vec.bytes_written());
    }

    #[test]
    fn faulty_sink_surfaces_write_errors() {
        let mut w =
            OutputWriter::new(FaultySink::new(VecSink::new(), FaultPolicy::fail_every(2)), 3);
        w.write_link(1, 2).unwrap();
        let err = w.write_link(3, 4).unwrap_err();
        assert!(matches!(err, StorageError::FaultInjected { op: IoOp::Write, .. }));
        assert_eq!(w.links_written(), 1, "failed row not counted");
        assert_eq!(w.sink().inner().as_str(), "001 002\n", "failed row not written");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every emitted line parses back to the written ids (round-trip).
        #[test]
        fn lines_roundtrip(
            links in prop::collection::vec((0u32..100_000, 0u32..100_000), 0..50),
            groups in prop::collection::vec(prop::collection::vec(0u32..100_000, 1..20), 0..20),
            width in 1usize..8,
        ) {
            let mut w = OutputWriter::new(VecSink::new(), width);
            for &(a, b) in &links {
                w.write_link(a, b).unwrap();
            }
            for g in &groups {
                w.write_group(g).unwrap();
            }
            let text = w.sink().as_str().to_string();
            let lines: Vec<&str> = text.lines().collect();
            prop_assert_eq!(lines.len(), links.len() + groups.len());
            for (line, &(a, b)) in lines.iter().zip(&links) {
                let ids: Vec<u32> = line.split(' ').map(|t| t.parse().unwrap()).collect();
                prop_assert_eq!(ids, vec![a, b]);
            }
            for (line, g) in lines[links.len()..].iter().zip(&groups) {
                let ids: Vec<u32> = line.split(' ').map(|t| t.parse().unwrap()).collect();
                prop_assert_eq!(&ids, g);
            }
        }
    }
}
