//! Pages: the unit of simulated disk transfer.

/// Default page size in bytes (8 KiB, a common DBMS default).
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page on the simulated disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A fixed-size page of bytes.
///
/// The simulation mostly moves page *ids* around (the interesting
/// quantities are access counts), but pages carry real bytes so that
/// end-to-end tests can verify data survives eviction and reload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Page {
    /// This page's id.
    pub id: PageId,
    /// Page contents.
    pub data: Vec<u8>,
}

impl Page {
    /// A zero-filled page.
    pub fn zeroed(id: PageId) -> Self {
        Page { id, data: vec![0; PAGE_SIZE] }
    }

    /// A page with the given contents, zero-padded to [`PAGE_SIZE`].
    ///
    /// Contents longer than a page are a logic error in the caller's
    /// encoder: silently truncating them would corrupt the tail of the
    /// record on disk, so debug builds panic instead. (Release builds
    /// still clamp — a torn page is strictly better than an
    /// out-of-contract page length downstream.)
    pub fn with_data(id: PageId, mut data: Vec<u8>) -> Self {
        debug_assert!(
            data.len() <= PAGE_SIZE,
            "page payload ({} bytes) exceeds PAGE_SIZE ({PAGE_SIZE}) — encoder must split \
             or reject before reaching the page layer",
            data.len(),
        );
        data.resize(PAGE_SIZE, 0);
        Page { id, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page() {
        let p = Page::zeroed(PageId(3));
        assert_eq!(p.id, PageId(3));
        assert_eq!(p.data.len(), PAGE_SIZE);
        assert!(p.data.iter().all(|&b| b == 0));
    }

    #[test]
    fn with_data_pads() {
        let p = Page::with_data(PageId(0), vec![1, 2, 3]);
        assert_eq!(p.data.len(), PAGE_SIZE);
        assert_eq!(&p.data[..3], &[1, 2, 3]);
        assert!(p.data[3..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "exceeds PAGE_SIZE")]
    fn with_data_rejects_oversized_payloads() {
        let big = vec![9u8; PAGE_SIZE + 100];
        let _ = Page::with_data(PageId(1), big);
    }

    #[test]
    fn page_id_display() {
        assert_eq!(PageId(42).to_string(), "p42");
    }
}
