//! Pages: the unit of simulated disk transfer.

/// Default page size in bytes (8 KiB, a common DBMS default).
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page on the simulated disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A fixed-size page of bytes.
///
/// The simulation mostly moves page *ids* around (the interesting
/// quantities are access counts), but pages carry real bytes so that
/// end-to-end tests can verify data survives eviction and reload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Page {
    /// This page's id.
    pub id: PageId,
    /// Page contents.
    pub data: Vec<u8>,
}

impl Page {
    /// A zero-filled page.
    pub fn zeroed(id: PageId) -> Self {
        Page { id, data: vec![0; PAGE_SIZE] }
    }

    /// A page with the given contents, padded/truncated to [`PAGE_SIZE`].
    pub fn with_data(id: PageId, mut data: Vec<u8>) -> Self {
        data.resize(PAGE_SIZE, 0);
        Page { id, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page() {
        let p = Page::zeroed(PageId(3));
        assert_eq!(p.id, PageId(3));
        assert_eq!(p.data.len(), PAGE_SIZE);
        assert!(p.data.iter().all(|&b| b == 0));
    }

    #[test]
    fn with_data_pads_and_truncates() {
        let p = Page::with_data(PageId(0), vec![1, 2, 3]);
        assert_eq!(p.data.len(), PAGE_SIZE);
        assert_eq!(&p.data[..3], &[1, 2, 3]);
        let big = vec![9u8; PAGE_SIZE + 100];
        let p = Page::with_data(PageId(1), big);
        assert_eq!(p.data.len(), PAGE_SIZE);
        assert!(p.data.iter().all(|&b| b == 9));
    }

    #[test]
    fn page_id_display() {
        assert_eq!(PageId(42).to_string(), "p42");
    }
}
