//! Storage fault injection.
//!
//! Resilience has to be *tested*: a [`FaultPolicy`] describes a
//! deterministic failure pattern (fail every Nth read or write,
//! fail-once-then-succeed, tear a file write short), and a
//! [`FaultInjector`] applies it to a stream of operations. The simulated
//! disk, the retrying pager and the persistence helpers all accept an
//! injector, so the whole read/retry/recover path can be driven from
//! tests without touching a real device.

use std::path::Path;

use crate::error::{IoOp, StorageError};

/// A deterministic storage failure pattern.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Fail every Nth read attempt (the Nth, 2Nth, … reads).
    pub fail_every_read: Option<u64>,
    /// Fail every Nth write attempt.
    pub fail_every_write: Option<u64>,
    /// Fail the first operation, then succeed forever.
    pub fail_once: bool,
    /// Torn write: file writes persist only the first `n` bytes and
    /// report success, simulating a crash mid-write. Detected later by
    /// the reader's checksum, not by the writer.
    pub torn_write_prefix: Option<usize>,
    /// Short read: the first syscall of every page read returns only
    /// `n` bytes, simulating a kernel partial read. A correct reader
    /// resumes where it stopped, so this knob exercises the resume
    /// loop rather than an error path.
    pub short_read_prefix: Option<usize>,
}

impl FaultPolicy {
    /// No faults: every operation succeeds.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fails every Nth operation, reads and writes alike.
    pub fn fail_every(n: u64) -> Self {
        assert!(n > 0, "fault period must be positive");
        FaultPolicy { fail_every_read: Some(n), fail_every_write: Some(n), ..Self::default() }
    }

    /// Fails every Nth read attempt only.
    pub fn fail_every_read(n: u64) -> Self {
        assert!(n > 0, "fault period must be positive");
        FaultPolicy { fail_every_read: Some(n), ..Self::default() }
    }

    /// Fails every Nth write attempt only.
    pub fn fail_every_write(n: u64) -> Self {
        assert!(n > 0, "fault period must be positive");
        FaultPolicy { fail_every_write: Some(n), ..Self::default() }
    }

    /// Fails the first operation, then succeeds forever.
    pub fn fail_once() -> Self {
        FaultPolicy { fail_once: true, ..Self::default() }
    }

    /// Tears file writes to their first `prefix_bytes` bytes.
    pub fn torn_write(prefix_bytes: usize) -> Self {
        FaultPolicy { torn_write_prefix: Some(prefix_bytes), ..Self::default() }
    }

    /// Truncates the first syscall of every page read to `prefix_bytes`.
    pub fn short_read(prefix_bytes: usize) -> Self {
        FaultPolicy { short_read_prefix: Some(prefix_bytes), ..Self::default() }
    }
}

/// Applies a [`FaultPolicy`] to a sequence of operations, counting what
/// it injected.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    policy: FaultPolicy,
    reads: u64,
    writes: u64,
    once_spent: bool,
    injected: u64,
}

impl FaultInjector {
    /// An injector applying `policy`.
    pub fn new(policy: FaultPolicy) -> Self {
        FaultInjector { policy, ..Self::default() }
    }

    /// An injector that never faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// The policy this injector applies.
    pub fn policy(&self) -> FaultPolicy {
        self.policy
    }

    /// Total faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected
    }

    fn fail_once_fires(&mut self) -> bool {
        if self.policy.fail_once && !self.once_spent {
            self.once_spent = true;
            return true;
        }
        false
    }

    /// Gate for a read attempt: `Err` when the policy says this one fails.
    ///
    /// # Errors
    /// Returns [`StorageError::FaultInjected`] when the policy fails this
    /// read.
    pub fn before_read(&mut self) -> Result<(), StorageError> {
        self.reads += 1;
        let nth = self.policy.fail_every_read.is_some_and(|n| self.reads.is_multiple_of(n));
        if nth || self.fail_once_fires() {
            self.injected += 1;
            return Err(StorageError::FaultInjected { op: IoOp::Read, seq: self.reads });
        }
        Ok(())
    }

    /// Gate for a write attempt: `Err` when the policy says this one fails.
    ///
    /// # Errors
    /// Returns [`StorageError::FaultInjected`] when the policy fails this
    /// write.
    pub fn before_write(&mut self) -> Result<(), StorageError> {
        self.writes += 1;
        let nth = self.policy.fail_every_write.is_some_and(|n| self.writes.is_multiple_of(n));
        if nth || self.fail_once_fires() {
            self.injected += 1;
            return Err(StorageError::FaultInjected { op: IoOp::Write, seq: self.writes });
        }
        Ok(())
    }

    /// For a file write of `full_len` bytes: how many bytes actually
    /// reach the medium under the torn-write policy (`None` = all).
    pub fn torn_len(&mut self, full_len: usize) -> Option<usize> {
        let prefix = self.policy.torn_write_prefix?;
        if prefix >= full_len {
            return None;
        }
        self.injected += 1;
        Some(prefix)
    }

    /// For a page read of `full_len` bytes: how many bytes the first
    /// syscall delivers under the short-read policy (`None` = all).
    pub fn short_read_len(&mut self, full_len: usize) -> Option<usize> {
        let prefix = self.policy.short_read_prefix?;
        if prefix >= full_len {
            return None;
        }
        self.injected += 1;
        Some(prefix)
    }
}

/// Writes `bytes` to `path` through the injector.
///
/// The healthy path is atomic (temp file + rename) so readers never see
/// a half-written file. Injected outcomes:
///
/// * fail-every-write / fail-once → the write reports an error and the
///   destination is untouched (caller may retry);
/// * torn write → only a prefix lands **at the destination** and the
///   call reports *success* — the realistic crash-mid-write scenario,
///   detectable only by the reader's checksum.
///
/// # Errors
/// Returns [`StorageError::FaultInjected`] for injected write
/// failures and [`StorageError::Io`] for real I/O errors; torn writes
/// report `Ok`.
pub fn write_file_with_faults(
    path: impl AsRef<Path>,
    bytes: &[u8],
    injector: &mut FaultInjector,
) -> Result<(), StorageError> {
    let path = path.as_ref();
    injector.before_write()?;
    if let Some(prefix) = injector.torn_len(bytes.len()) {
        // Torn write: bypass the atomic dance on purpose — the file is
        // silently truncated, as after a crash mid-write.
        std::fs::write(path, &bytes[..prefix])
            .map_err(|e| StorageError::io_at(IoOp::Write, path, &e))?;
        return Ok(());
    }
    write_file_atomic(path, bytes)
}

/// Atomically writes `bytes` to `path` (temp file in the same directory,
/// then rename), so a crash leaves either the old file or the new one,
/// never a torn mixture.
///
/// # Errors
/// Returns [`StorageError::Io`] when creating, writing, flushing or
/// renaming the temp file fails.
pub fn write_file_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), StorageError> {
    let path = path.as_ref();
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let tmp = match dir {
        Some(d) => d.join(format!(
            ".{}.tmp",
            path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
        )),
        None => std::path::PathBuf::from(format!(".{}.tmp", path.display())),
    };
    std::fs::write(&tmp, bytes).map_err(|e| StorageError::io_at(IoOp::Write, &tmp, &e))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        StorageError::io_at(IoOp::Write, path, &e)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_policy_never_faults() {
        let mut inj = FaultInjector::none();
        for _ in 0..100 {
            assert!(inj.before_read().is_ok());
            assert!(inj.before_write().is_ok());
        }
        assert_eq!(inj.faults_injected(), 0);
    }

    #[test]
    fn fail_every_third_read() {
        let mut inj = FaultInjector::new(FaultPolicy::fail_every_read(3));
        let outcomes: Vec<bool> = (0..9).map(|_| inj.before_read().is_ok()).collect();
        assert_eq!(outcomes, [true, true, false, true, true, false, true, true, false]);
        assert!(inj.before_write().is_ok(), "write side unaffected");
        assert_eq!(inj.faults_injected(), 3);
    }

    #[test]
    fn fail_once_then_succeed() {
        let mut inj = FaultInjector::new(FaultPolicy::fail_once());
        assert!(inj.before_read().is_err());
        for _ in 0..20 {
            assert!(inj.before_read().is_ok());
            assert!(inj.before_write().is_ok());
        }
        assert_eq!(inj.faults_injected(), 1);
    }

    #[test]
    fn atomic_write_roundtrip() {
        let path = std::env::temp_dir().join("csj_fault_atomic_test.bin");
        write_file_atomic(&path, b"hello").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        write_file_atomic(&path, b"replaced").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"replaced");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_write_truncates_but_reports_success() {
        let path = std::env::temp_dir().join("csj_fault_torn_test.bin");
        let mut inj = FaultInjector::new(FaultPolicy::torn_write(4));
        write_file_with_faults(&path, b"0123456789", &mut inj).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"0123", "only the prefix landed");
        assert_eq!(inj.faults_injected(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_write_leaves_destination_untouched() {
        let path = std::env::temp_dir().join("csj_fault_failed_write_test.bin");
        write_file_atomic(&path, b"original").unwrap();
        let mut inj = FaultInjector::new(FaultPolicy::fail_once());
        let err = write_file_with_faults(&path, b"poison", &mut inj).unwrap_err();
        assert!(matches!(err, StorageError::FaultInjected { op: IoOp::Write, .. }));
        assert_eq!(std::fs::read(&path).unwrap(), b"original");
        std::fs::remove_file(&path).ok();
    }
}
