//! Batched leaf-probe distance kernels with runtime SIMD dispatch.
//!
//! The join hot path compares every point of one leaf against every point
//! of another (or the same) leaf. Done pair-at-a-time through
//! [`Metric::distance`] this is a chain of dependent scalar ops; done over
//! a struct-of-arrays leaf layout ([`SoaView`]) it becomes `D` contiguous
//! streaming loads per probe row, fed either to an explicit `std::arch`
//! SIMD sweep (AVX2 on x86-64, NEON on aarch64) or to the chunked-scalar
//! fallback the autovectorizer already handles well.
//!
//! Which sweep runs is decided once per process by [`KernelPath::detect`]:
//! runtime CPU-feature detection (`is_x86_feature_detected!`), overridable
//! with the `CSJ_KERNEL` environment variable (`auto` | `scalar` | `simd`)
//! or per-kernel with [`DistKernel::with_path`]. Hosts without AVX2/NEON
//! fall back to scalar silently — the fallback is the specification.
//!
//! Every path preserves the scalar semantics *exactly*:
//!
//! * hits are reported in the same `(i ascending, j ascending)` order the
//!   nested scalar loops use (CSJ's windowed grouping is order-sensitive);
//! * the Euclidean accumulation runs over dimensions in the same order as
//!   [`Point::sq_euclidean`], with separate multiply and add (never FMA —
//!   fusing changes rounding), so every per-pair value is bit-identical to
//!   the scalar computation;
//! * the ε² threshold compare is ordered and non-signaling
//!   (`_CMP_LE_OQ` / `vcleq_f64`), matching scalar `<=` on NaN;
//! * non-Euclidean metrics fall back to the scalar predicate per pair, so
//!   batching never changes which pairs qualify.
//!
//! The SIMD sweeps process rows in blocks of [`SWEEP_BLOCK`], collecting
//! qualifying row indices into a stack ring that is drained to the caller
//! after each wide sweep — candidate generation is batched, emission order
//! is untouched, and the hot loop contains no callback.

use crate::{Metric, Point, SoaView};
use std::sync::OnceLock;

/// Chunk width for the chunked-scalar path. Eight 64-bit lanes fill a
/// 512-bit vector and give the autovectorizer two 256-bit ops per step on
/// AVX2-class hardware; the value is a tuning knob, not a correctness one.
pub const LANES: usize = 8;

/// Rows per wide sweep in the explicit SIMD paths. Each sweep collects its
/// qualifying row indices into a `[u32; SWEEP_BLOCK]` stack ring before
/// they are drained to the hit callback, so the vector loop never calls
/// out. Leaves are smaller than this in practice (fanout ≈ 170), so a
/// probe row is normally a single sweep.
pub const SWEEP_BLOCK: usize = 256;

/// Which distance-sweep implementation a [`DistKernel`] drives.
///
/// `Scalar` is always available and is the semantic reference; the SIMD
/// variants are selected only after runtime CPU-feature detection and
/// produce bit-identical hits (proptest-locked in this module).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPath {
    /// Chunked-scalar sweep ([`LANES`]-wide accumulator blocks).
    Scalar,
    /// 4×f64 `std::arch::x86_64` AVX2 sweep.
    Avx2,
    /// 2×f64 `std::arch::aarch64` NEON sweep.
    Neon,
}

impl KernelPath {
    /// Whether this path can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            KernelPath::Scalar => true,
            KernelPath::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelPath::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }

    /// This path if the CPU supports it, otherwise [`KernelPath::Scalar`].
    pub fn clamp(self) -> KernelPath {
        if self.available() {
            self
        } else {
            KernelPath::Scalar
        }
    }

    /// The widest SIMD path the current CPU supports (ignoring the
    /// `CSJ_KERNEL` override), or `Scalar` when there is none.
    pub fn native() -> KernelPath {
        if KernelPath::Avx2.available() {
            KernelPath::Avx2
        } else if KernelPath::Neon.available() {
            KernelPath::Neon
        } else {
            KernelPath::Scalar
        }
    }

    /// The process-wide default path: [`KernelPath::native`] unless the
    /// `CSJ_KERNEL` environment variable pins it.
    ///
    /// `CSJ_KERNEL=scalar` forces the chunked-scalar sweep everywhere;
    /// `CSJ_KERNEL=simd` or `auto` (and any unrecognized value) selects
    /// the native path, which is scalar on hosts without AVX2/NEON. The
    /// decision is made once and cached for the life of the process.
    pub fn detect() -> KernelPath {
        static DETECTED: OnceLock<KernelPath> = OnceLock::new();
        *DETECTED.get_or_init(|| match std::env::var("CSJ_KERNEL") {
            Ok(v) if v.eq_ignore_ascii_case("scalar") => KernelPath::Scalar,
            _ => KernelPath::native(),
        })
    }

    /// Stable lowercase name for reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Avx2 => "avx2",
            KernelPath::Neon => "neon",
        }
    }

    /// Whether this is an explicit-SIMD path.
    pub fn is_simd(self) -> bool {
        !matches!(self, KernelPath::Scalar)
    }
}

/// A reusable ε-threshold distance kernel over leaf point storage.
///
/// Construct once per join (or per task) and call
/// [`DistKernel::self_join`] / [`DistKernel::cross_join`] per leaf probe
/// with the leaf's [`SoaView`]. The AoS entry points
/// ([`DistKernel::self_join_points`] / [`DistKernel::cross_join_points`])
/// remain for callers holding plain `[Point<D>]` slices; they always run
/// the chunked-scalar sweep and are the guaranteed-bit-identical baseline.
#[derive(Clone, Copy, Debug)]
pub struct DistKernel {
    metric: Metric,
    eps: f64,
    eps_sq: f64,
    path: KernelPath,
}

impl DistKernel {
    /// A kernel for the given metric and range ε, on the process default
    /// sweep path ([`KernelPath::detect`]).
    pub fn new(metric: Metric, eps: f64) -> Self {
        DistKernel::with_path(metric, eps, KernelPath::detect())
    }

    /// A kernel pinned to a specific sweep path. Paths the CPU cannot run
    /// are clamped to [`KernelPath::Scalar`], so forcing `Avx2` on a
    /// non-AVX2 host degrades cleanly instead of faulting.
    pub fn with_path(metric: Metric, eps: f64, path: KernelPath) -> Self {
        DistKernel { metric, eps, eps_sq: eps * eps, path: path.clamp() }
    }

    /// The join range ε.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The metric distances are measured in.
    #[inline]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The sweep path this kernel drives (post-clamp).
    #[inline]
    pub fn path(&self) -> KernelPath {
        self.path
    }

    /// All pairs `(i, j)` with `i < j` and row `i` within ε of row `j`,
    /// reported through `on_hit` in `(i asc, j asc)` order.
    ///
    /// `comparisons` is advanced by the number of distance predicate
    /// evaluations (one per pair; whole probe rows are counted up front,
    /// so after an `Err` the count may run ahead by less than one row).
    ///
    /// # Errors
    ///
    /// The kernel itself cannot fail; the only `Err` is one returned by
    /// `on_hit`, which stops the scan and is propagated unchanged.
    pub fn self_join<const D: usize, E>(
        &self,
        pts: SoaView<'_, D>,
        comparisons: &mut u64,
        mut on_hit: impl FnMut(usize, usize) -> Result<(), E>,
    ) -> Result<(), E> {
        let n = pts.len();
        if !matches!(self.metric, Metric::Euclidean) {
            for i in 0..n {
                *comparisons += (n - i - 1) as u64;
                let p = pts.point(i);
                for j in (i + 1)..n {
                    if self.metric.within(&p, &pts.point(j), self.eps) {
                        on_hit(i, j)?;
                    }
                }
            }
            return Ok(());
        }
        for i in 0..n {
            *comparisons += (n - i - 1) as u64;
            let probe = pts.coords(i);
            self.probe_soa(&probe, pts.dims(), i + 1, |j| on_hit(i, j))?;
        }
        Ok(())
    }

    /// All pairs `(i, j)` with `left` row `i` within ε of `right` row `j`,
    /// reported through `on_hit` in `(i asc, j asc)` order. Counting as in
    /// [`DistKernel::self_join`].
    ///
    /// # Errors
    ///
    /// The kernel itself cannot fail; the only `Err` is one returned by
    /// `on_hit`, which stops the scan and is propagated unchanged.
    pub fn cross_join<const D: usize, E>(
        &self,
        left: SoaView<'_, D>,
        right: SoaView<'_, D>,
        comparisons: &mut u64,
        mut on_hit: impl FnMut(usize, usize) -> Result<(), E>,
    ) -> Result<(), E> {
        let (nl, nr) = (left.len(), right.len());
        if !matches!(self.metric, Metric::Euclidean) {
            for i in 0..nl {
                *comparisons += nr as u64;
                let p = left.point(i);
                for j in 0..nr {
                    if self.metric.within(&p, &right.point(j), self.eps) {
                        on_hit(i, j)?;
                    }
                }
            }
            return Ok(());
        }
        for i in 0..nl {
            *comparisons += nr as u64;
            let probe = left.coords(i);
            self.probe_soa(&probe, right.dims(), 0, |j| on_hit(i, j))?;
        }
        Ok(())
    }

    /// AoS variant of [`DistKernel::self_join`] over a contiguous
    /// `[Point<D>]` slice. Always runs the chunked-scalar sweep.
    ///
    /// # Errors
    ///
    /// The kernel itself cannot fail; the only `Err` is one returned by
    /// `on_hit`, which stops the scan and is propagated unchanged.
    pub fn self_join_points<const D: usize, E>(
        &self,
        pts: &[Point<D>],
        comparisons: &mut u64,
        mut on_hit: impl FnMut(usize, usize) -> Result<(), E>,
    ) -> Result<(), E> {
        for i in 0..pts.len() {
            *comparisons += (pts.len() - i - 1) as u64;
            self.probe_row(&pts[i], &pts[i + 1..], |off| on_hit(i, i + 1 + off))?;
        }
        Ok(())
    }

    /// AoS variant of [`DistKernel::cross_join`] over contiguous
    /// `[Point<D>]` slices. Always runs the chunked-scalar sweep.
    ///
    /// # Errors
    ///
    /// The kernel itself cannot fail; the only `Err` is one returned by
    /// `on_hit`, which stops the scan and is propagated unchanged.
    pub fn cross_join_points<const D: usize, E>(
        &self,
        left: &[Point<D>],
        right: &[Point<D>],
        comparisons: &mut u64,
        mut on_hit: impl FnMut(usize, usize) -> Result<(), E>,
    ) -> Result<(), E> {
        for (i, p) in left.iter().enumerate() {
            *comparisons += right.len() as u64;
            self.probe_row(p, right, |j| on_hit(i, j))?;
        }
        Ok(())
    }

    /// One probe against slab rows `[start, len)`, dispatching on the
    /// kernel path. Hit indices are absolute row numbers, ascending.
    #[inline]
    fn probe_soa<const D: usize, E>(
        &self,
        probe: &[f64; D],
        dims: &[&[f64]; D],
        start: usize,
        mut on_hit: impl FnMut(usize) -> Result<(), E>,
    ) -> Result<(), E> {
        match self.path {
            KernelPath::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                return self.probe_soa_avx2(probe, dims, start, on_hit);
            }
            KernelPath::Neon => {
                #[cfg(target_arch = "aarch64")]
                return self.probe_soa_neon(probe, dims, start, on_hit);
            }
            KernelPath::Scalar => {}
        }
        self.probe_soa_scalar(probe, dims, start, &mut on_hit)
    }

    /// Chunked-scalar sweep over slab rows `[start, len)` — the reference
    /// semantics every SIMD sweep must reproduce bit-for-bit.
    fn probe_soa_scalar<const D: usize, E>(
        &self,
        probe: &[f64; D],
        dims: &[&[f64]; D],
        start: usize,
        on_hit: &mut impl FnMut(usize) -> Result<(), E>,
    ) -> Result<(), E> {
        let n = dims.first().map_or(start, |s| s.len());
        let mut j = start;
        while j + LANES <= n {
            // Branch-free distance block: dimensions outer, lanes inner,
            // so each step is LANES independent accumulations. The
            // per-pair dimension order matches `Point::sq_euclidean`,
            // keeping every value bit-identical to the scalar path.
            let mut acc = [0.0f64; LANES];
            for (l, slot) in acc.iter_mut().enumerate() {
                let mut sq = 0.0;
                for d in 0..D {
                    let delta = dims[d][j + l] - probe[d];
                    sq += delta * delta;
                }
                *slot = sq;
            }
            // Branch-free any-hit reduction first: in sparse regions most
            // chunks have no qualifying pair, and the whole block retires
            // on one predictable branch.
            let mut any = false;
            for &sq in &acc {
                any |= sq <= self.eps_sq;
            }
            if any {
                for (l, &sq) in acc.iter().enumerate() {
                    if sq <= self.eps_sq {
                        on_hit(j + l)?;
                    }
                }
            }
            j += LANES;
        }
        while j < n {
            let mut sq = 0.0;
            for d in 0..D {
                let delta = dims[d][j] - probe[d];
                sq += delta * delta;
            }
            if sq <= self.eps_sq {
                on_hit(j)?;
            }
            j += 1;
        }
        Ok(())
    }

    /// AVX2 sweep: blocks of [`SWEEP_BLOCK`] rows, hits collected into a
    /// stack ring by the vector loop and drained here in ascending order.
    #[cfg(target_arch = "x86_64")]
    fn probe_soa_avx2<const D: usize, E>(
        &self,
        probe: &[f64; D],
        dims: &[&[f64]; D],
        start: usize,
        mut on_hit: impl FnMut(usize) -> Result<(), E>,
    ) -> Result<(), E> {
        let n = dims.first().map_or(start, |s| s.len());
        debug_assert!(n <= u32::MAX as usize, "slab rows must fit the u32 hit ring");
        let mut hits = [0u32; SWEEP_BLOCK];
        let mut lo = start;
        while lo < n {
            let hi = (lo + SWEEP_BLOCK).min(n);
            // SAFETY: `KernelPath::Avx2` is only reachable post-clamp, i.e.
            // after `is_x86_feature_detected!("avx2")` confirmed the CPU
            // executes AVX2; `lo..hi` is in bounds for every slab (all
            // slabs have length `n`, checked by `SoaView`).
            let count = unsafe { x86::sweep_avx2(probe, dims, lo, hi, self.eps_sq, &mut hits) };
            for &j in &hits[..count] {
                on_hit(j as usize)?;
            }
            lo = hi;
        }
        Ok(())
    }

    /// NEON sweep: same block/ring structure as the AVX2 path.
    #[cfg(target_arch = "aarch64")]
    fn probe_soa_neon<const D: usize, E>(
        &self,
        probe: &[f64; D],
        dims: &[&[f64]; D],
        start: usize,
        mut on_hit: impl FnMut(usize) -> Result<(), E>,
    ) -> Result<(), E> {
        let n = dims.first().map_or(start, |s| s.len());
        debug_assert!(n <= u32::MAX as usize, "slab rows must fit the u32 hit ring");
        let mut hits = [0u32; SWEEP_BLOCK];
        let mut lo = start;
        while lo < n {
            let hi = (lo + SWEEP_BLOCK).min(n);
            // SAFETY: `KernelPath::Neon` is only reachable post-clamp, i.e.
            // after `is_aarch64_feature_detected!("neon")` confirmed NEON;
            // `lo..hi` is in bounds for every slab (all slabs have length
            // `n`, checked by `SoaView`).
            let count = unsafe { neon::sweep_neon(probe, dims, lo, hi, self.eps_sq, &mut hits) };
            for &j in &hits[..count] {
                on_hit(j as usize)?;
            }
            lo = hi;
        }
        Ok(())
    }

    /// One probe point against a contiguous AoS row; hit offsets are
    /// relative to `row` and ascending. Chunked-scalar only.
    #[inline]
    fn probe_row<const D: usize, E>(
        &self,
        p: &Point<D>,
        row: &[Point<D>],
        mut on_hit: impl FnMut(usize) -> Result<(), E>,
    ) -> Result<(), E> {
        if !matches!(self.metric, Metric::Euclidean) {
            for (j, q) in row.iter().enumerate() {
                if self.metric.within(p, q, self.eps) {
                    on_hit(j)?;
                }
            }
            return Ok(());
        }
        let mut chunks = row.chunks_exact(LANES);
        let mut base = 0usize;
        for chunk in chunks.by_ref() {
            // csj-lint: allow(panic-safety) — chunks_exact(LANES)
            // guarantees the slice length; the conversion is infallible.
            let block: &[Point<D>; LANES] = chunk.try_into().expect("chunk has LANES points");
            let mut acc = [0.0f64; LANES];
            for (l, slot) in acc.iter_mut().enumerate() {
                let mut sq = 0.0;
                for d in 0..D {
                    let delta = block[l][d] - p[d];
                    sq += delta * delta;
                }
                *slot = sq;
            }
            let mut any = false;
            for &sq in &acc {
                any |= sq <= self.eps_sq;
            }
            if any {
                for (l, &sq) in acc.iter().enumerate() {
                    if sq <= self.eps_sq {
                        on_hit(base + l)?;
                    }
                }
            }
            base += LANES;
        }
        for (l, q) in chunks.remainder().iter().enumerate() {
            if p.sq_euclidean(q) <= self.eps_sq {
                on_hit(base + l)?;
            }
        }
        Ok(())
    }
}

/// Explicit AVX2 sweep. Kept in its own module so every `unsafe` surface
/// is in one place and compiled only on x86-64.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::SWEEP_BLOCK;
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_cmp_pd, _mm256_loadu_pd, _mm256_movemask_pd, _mm256_mul_pd,
        _mm256_set1_pd, _mm256_setzero_pd, _mm256_sub_pd, _CMP_LE_OQ,
    };

    /// Sweeps `probe` against slab rows `[lo, hi)`, writing qualifying row
    /// indices into `out` in ascending order; returns how many were
    /// written (at most `hi - lo`, which the caller bounds by
    /// [`SWEEP_BLOCK`]).
    ///
    /// Bit-identity with the scalar sweep: `vsub`/`vmul`/`vadd` are the
    /// IEEE-754 operations the scalar loop performs, in the same dimension
    /// order, with no FMA contraction; `_CMP_LE_OQ` is ordered `<=`
    /// (false on NaN) exactly like the scalar compare; `movemask` +
    /// `trailing_zeros` walks qualifying lanes in ascending order.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (callers establish this via runtime
    /// feature detection), `hi - lo` must not exceed `SWEEP_BLOCK`, and
    /// every slab in `dims` must have length ≥ `hi`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sweep_avx2<const D: usize>(
        probe: &[f64; D],
        dims: &[&[f64]; D],
        lo: usize,
        hi: usize,
        eps_sq: f64,
        out: &mut [u32; SWEEP_BLOCK],
    ) -> usize {
        debug_assert!(hi - lo <= SWEEP_BLOCK);
        let mut count = 0usize;
        let thr = _mm256_set1_pd(eps_sq);
        let mut j = lo;
        while j + 4 <= hi {
            let mut acc = _mm256_setzero_pd();
            for d in 0..D {
                debug_assert!(j + 4 <= dims[d].len());
                // SAFETY: `j + 4 <= hi <= dims[d].len()` (caller contract),
                // so the 4-wide unaligned load stays inside the slab.
                let v = unsafe { _mm256_loadu_pd(dims[d].as_ptr().add(j)) };
                let delta = _mm256_sub_pd(v, _mm256_set1_pd(probe[d]));
                // Separate mul + add: an FMA here would change rounding
                // and break bit-identity with the scalar sweep.
                acc = _mm256_add_pd(acc, _mm256_mul_pd(delta, delta));
            }
            let mut m = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(acc, thr)) as u32;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                out[count] = (j + lane) as u32;
                count += 1;
                m &= m - 1;
            }
            j += 4;
        }
        while j < hi {
            let mut sq = 0.0;
            for d in 0..D {
                let delta = dims[d][j] - probe[d];
                sq += delta * delta;
            }
            if sq <= eps_sq {
                out[count] = j as u32;
                count += 1;
            }
            j += 1;
        }
        count
    }
}

/// Explicit NEON sweep (aarch64). Structured identically to the AVX2
/// module: 2×f64 lanes instead of 4.
#[cfg(target_arch = "aarch64")]
mod neon {
    use super::SWEEP_BLOCK;
    use std::arch::aarch64::{
        vaddq_f64, vcleq_f64, vdupq_n_f64, vgetq_lane_u64, vld1q_f64, vmulq_f64, vsubq_f64,
    };

    /// Sweeps `probe` against slab rows `[lo, hi)`, writing qualifying row
    /// indices into `out` in ascending order; returns how many were
    /// written. Bit-identity argument as in `sweep_avx2`: IEEE-754
    /// sub/mul/add in dimension order, no FMA, `vcleq_f64` is ordered
    /// `<=` (false on NaN), lanes checked low-to-high.
    ///
    /// # Safety
    ///
    /// The CPU must support NEON (callers establish this via runtime
    /// feature detection), `hi - lo` must not exceed `SWEEP_BLOCK`, and
    /// every slab in `dims` must have length ≥ `hi`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn sweep_neon<const D: usize>(
        probe: &[f64; D],
        dims: &[&[f64]; D],
        lo: usize,
        hi: usize,
        eps_sq: f64,
        out: &mut [u32; SWEEP_BLOCK],
    ) -> usize {
        debug_assert!(hi - lo <= SWEEP_BLOCK);
        let mut count = 0usize;
        let thr = vdupq_n_f64(eps_sq);
        let mut j = lo;
        while j + 2 <= hi {
            let mut acc = vdupq_n_f64(0.0);
            for d in 0..D {
                debug_assert!(j + 2 <= dims[d].len());
                // SAFETY: `j + 2 <= hi <= dims[d].len()` (caller contract),
                // so the 2-wide load stays inside the slab.
                let v = unsafe { vld1q_f64(dims[d].as_ptr().add(j)) };
                let delta = vsubq_f64(v, vdupq_n_f64(probe[d]));
                // Separate mul + add: an FMA here would change rounding
                // and break bit-identity with the scalar sweep.
                acc = vaddq_f64(acc, vmulq_f64(delta, delta));
            }
            let le = vcleq_f64(acc, thr);
            if vgetq_lane_u64::<0>(le) != 0 {
                out[count] = j as u32;
                count += 1;
            }
            if vgetq_lane_u64::<1>(le) != 0 {
                out[count] = (j + 1) as u32;
                count += 1;
            }
            j += 2;
        }
        while j < hi {
            let mut sq = 0.0;
            for d in 0..D {
                let delta = dims[d][j] - probe[d];
                sq += delta * delta;
            }
            if sq <= eps_sq {
                out[count] = j as u32;
                count += 1;
            }
            j += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SoaBuffer;

    /// Infallible-callback error type for tests.
    type Never = std::convert::Infallible;

    /// Every path worth exercising on this host: scalar always, plus the
    /// native SIMD path when the CPU has one (clamping makes this safe to
    /// list unconditionally).
    fn paths_under_test() -> Vec<KernelPath> {
        let mut paths = vec![KernelPath::Scalar];
        if KernelPath::native().is_simd() {
            paths.push(KernelPath::native());
        }
        paths
    }

    fn scatter(n: usize, seed: u64) -> Vec<Point<3>> {
        (0..n)
            .map(|i| {
                let h = |k: u64| {
                    let mut x =
                        (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed + k);
                    x ^= x >> 29;
                    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    x ^= x >> 32;
                    (x % 100_000) as f64 / 100_000.0
                };
                Point::new([h(1), h(2), h(3)])
            })
            .collect()
    }

    fn scalar_self(m: Metric, pts: &[Point<3>], eps: f64) -> (Vec<(usize, usize)>, u64) {
        let mut hits = Vec::new();
        let mut comps = 0u64;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                comps += 1;
                if m.within(&pts[i], &pts[j], eps) {
                    hits.push((i, j));
                }
            }
        }
        (hits, comps)
    }

    fn scalar_cross(
        m: Metric,
        a: &[Point<3>],
        b: &[Point<3>],
        eps: f64,
    ) -> (Vec<(usize, usize)>, u64) {
        let mut hits = Vec::new();
        let mut comps = 0u64;
        for (i, x) in a.iter().enumerate() {
            for (j, y) in b.iter().enumerate() {
                comps += 1;
                if m.within(x, y, eps) {
                    hits.push((i, j));
                }
            }
        }
        (hits, comps)
    }

    fn run_self(kernel: &DistKernel, pts: &[Point<3>]) -> (Vec<(usize, usize)>, u64) {
        let buf = SoaBuffer::from_points(pts);
        let mut hits = Vec::new();
        let mut comps = 0u64;
        kernel
            .self_join(buf.view(), &mut comps, |i, j| -> Result<(), Never> {
                hits.push((i, j));
                Ok(())
            })
            .unwrap();
        (hits, comps)
    }

    fn run_cross(
        kernel: &DistKernel,
        a: &[Point<3>],
        b: &[Point<3>],
    ) -> (Vec<(usize, usize)>, u64) {
        let (ba, bb) = (SoaBuffer::from_points(a), SoaBuffer::from_points(b));
        let mut hits = Vec::new();
        let mut comps = 0u64;
        kernel
            .cross_join(ba.view(), bb.view(), &mut comps, |i, j| -> Result<(), Never> {
                hits.push((i, j));
                Ok(())
            })
            .unwrap();
        (hits, comps)
    }

    #[test]
    fn self_join_matches_scalar_all_metrics_sizes_and_paths() {
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev, Metric::Minkowski(3.0)] {
            // Sizes straddle both the scalar chunk (LANES = 8) and the
            // widest SIMD lane count (4 on AVX2, 2 on NEON).
            for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 61] {
                let pts = scatter(n, 7);
                let eps = 0.35;
                let (want, want_comps) = scalar_self(m, &pts, eps);
                for path in paths_under_test() {
                    let kernel = DistKernel::with_path(m, eps, path);
                    let (hits, comps) = run_self(&kernel, &pts);
                    assert_eq!(hits, want, "{m:?} n={n} {}: hit set/order", path.name());
                    assert_eq!(comps, want_comps, "{m:?} n={n} {}: comparisons", path.name());
                }
            }
        }
    }

    #[test]
    fn cross_join_matches_scalar() {
        for m in [Metric::Euclidean, Metric::Manhattan] {
            let a = scatter(23, 1);
            let b = scatter(40, 2);
            let eps = 0.4;
            let (want, want_comps) = scalar_cross(m, &a, &b, eps);
            for path in paths_under_test() {
                let kernel = DistKernel::with_path(m, eps, path);
                let (hits, comps) = run_cross(&kernel, &a, &b);
                assert_eq!(hits, want, "{m:?} {}", path.name());
                assert_eq!(comps, want_comps, "{m:?} {}", path.name());
            }
        }
    }

    #[test]
    fn points_entry_points_match_soa() {
        let pts = scatter(45, 9);
        let kernel = DistKernel::new(Metric::Euclidean, 0.3);
        let (soa_hits, soa_comps) = run_self(&kernel, &pts);
        let mut aos_hits = Vec::new();
        let mut aos_comps = 0u64;
        kernel
            .self_join_points(&pts, &mut aos_comps, |i, j| -> Result<(), Never> {
                aos_hits.push((i, j));
                Ok(())
            })
            .unwrap();
        assert_eq!(aos_hits, soa_hits);
        assert_eq!(aos_comps, soa_comps);

        let b = scatter(17, 11);
        let (want, want_comps) = run_cross(&kernel, &pts, &b);
        let mut hits = Vec::new();
        let mut comps = 0u64;
        kernel
            .cross_join_points(&pts, &b, &mut comps, |i, j| -> Result<(), Never> {
                hits.push((i, j));
                Ok(())
            })
            .unwrap();
        assert_eq!(hits, want);
        assert_eq!(comps, want_comps);
    }

    #[test]
    fn boundary_pairs_agree_with_within() {
        // Points at distance exactly eps (axis-aligned) must be hits, in
        // both the vector body and the remainder tail, on every path.
        let eps = 0.125; // exactly representable
        let pts: Vec<Point<3>> = (0..19).map(|i| Point::new([i as f64 * eps, 0.0, 0.0])).collect();
        let want: Vec<(usize, usize)> = (0..18).map(|i| (i, i + 1)).collect();
        for path in paths_under_test() {
            let kernel = DistKernel::with_path(Metric::Euclidean, eps, path);
            let (hits, _) = run_self(&kernel, &pts);
            assert_eq!(hits, want, "{}: adjacent pairs sit exactly at eps", path.name());
        }
    }

    #[test]
    fn subnormal_coordinates_agree_across_paths() {
        // Deltas down in the subnormal range: squaring flushes to zero on
        // both paths identically (IEEE-754 semantics, no FTZ/DAZ in Rust).
        let tiny = f64::MIN_POSITIVE; // smallest normal
        let sub = f64::MIN_POSITIVE / 8.0; // subnormal
        let pts: Vec<Point<3>> =
            (0..13).map(|i| Point::new([i as f64 * sub, (i % 3) as f64 * tiny, 0.0])).collect();
        for eps in [0.0, sub, tiny, 2.0 * tiny] {
            let (want, _) = scalar_self(Metric::Euclidean, &pts, eps);
            for path in paths_under_test() {
                let kernel = DistKernel::with_path(Metric::Euclidean, eps, path);
                let (hits, _) = run_self(&kernel, &pts);
                assert_eq!(hits, want, "eps={eps:e} {}", path.name());
            }
        }
    }

    #[test]
    fn errors_propagate_and_stop_the_scan() {
        let pts = scatter(40, 3);
        for path in paths_under_test() {
            let kernel = DistKernel::with_path(Metric::Euclidean, 0.9, path);
            let buf = SoaBuffer::from_points(&pts);
            let mut seen = 0usize;
            let res = kernel.self_join(buf.view(), &mut 0, |_, _| {
                seen += 1;
                if seen == 5 {
                    Err("stop")
                } else {
                    Ok(())
                }
            });
            assert_eq!(res, Err("stop"), "{}", path.name());
            assert_eq!(seen, 5, "{}: no hits delivered after the error", path.name());
        }
    }

    #[test]
    fn empty_views() {
        let kernel = DistKernel::new(Metric::Euclidean, 1.0);
        let empty = SoaBuffer::<3>::new();
        let some = SoaBuffer::from_points(&scatter(5, 4));
        let mut comps = 0u64;
        kernel
            .cross_join(empty.view(), some.view(), &mut comps, |_, _| -> Result<(), Never> {
                panic!("no pairs")
            })
            .unwrap();
        kernel
            .cross_join(some.view(), empty.view(), &mut comps, |_, _| -> Result<(), Never> {
                panic!("no pairs")
            })
            .unwrap();
        assert_eq!(comps, 0);
    }

    #[test]
    fn dispatch_clamps_to_available_paths() {
        assert!(KernelPath::Scalar.available(), "scalar is always available");
        assert_eq!(KernelPath::Scalar.clamp(), KernelPath::Scalar);
        // Forcing a SIMD path never yields an unsupported kernel.
        for want in [KernelPath::Avx2, KernelPath::Neon] {
            let k = DistKernel::with_path(Metric::Euclidean, 0.5, want);
            assert!(k.path() == want || k.path() == KernelPath::Scalar);
            assert!(k.path().available());
        }
        // detect() is stable across calls (cached).
        assert_eq!(KernelPath::detect(), KernelPath::detect());
        assert!(!KernelPath::Scalar.is_simd());
        assert_eq!(KernelPath::Avx2.name(), "avx2");
        assert_eq!(KernelPath::Neon.name(), "neon");
        assert_eq!(KernelPath::Scalar.name(), "scalar");
    }

    /// A sweep block larger than SWEEP_BLOCK rows forces the hit ring to
    /// drain more than once per probe row; order must survive.
    #[test]
    fn multi_block_rows_preserve_order() {
        let n = SWEEP_BLOCK * 2 + 13;
        // All points coincident: every pair hits, so the ring fills.
        let pts: Vec<Point<3>> = (0..n).map(|_| Point::new([0.5, 0.5, 0.5])).collect();
        let (want, want_comps) = scalar_self(Metric::Euclidean, &pts, 0.1);
        for path in paths_under_test() {
            let kernel = DistKernel::with_path(Metric::Euclidean, 0.1, path);
            let (hits, comps) = run_self(&kernel, &pts);
            assert_eq!(hits, want, "{}", path.name());
            assert_eq!(comps, want_comps, "{}", path.name());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::SoaBuffer;
    use proptest::prelude::*;

    type Never = std::convert::Infallible;

    fn arb_point() -> impl Strategy<Value = Point<3>> {
        prop::array::uniform3(-1.0f64..1.0).prop_map(Point::new)
    }

    fn hits_on(path: KernelPath, pts: &[Point<3>], eps: f64) -> (Vec<(usize, usize)>, u64) {
        let kernel = DistKernel::with_path(Metric::Euclidean, eps, path);
        let buf = SoaBuffer::from_points(pts);
        let mut hits = Vec::new();
        let mut comps = 0u64;
        kernel
            .self_join(buf.view(), &mut comps, |i, j| -> Result<(), Never> {
                hits.push((i, j));
                Ok(())
            })
            .unwrap();
        (hits, comps)
    }

    proptest! {
        /// The SIMD path (clamped to scalar on hosts without one) is
        /// bit-identical to the scalar path on arbitrary inputs: same
        /// hits, same order, same comparison count.
        #[test]
        fn simd_bit_identical_to_scalar(
            pts in prop::collection::vec(arb_point(), 0..70),
            eps in 0.0f64..0.8,
        ) {
            let scalar = hits_on(KernelPath::Scalar, &pts, eps);
            let simd = hits_on(KernelPath::native(), &pts, eps);
            prop_assert_eq!(&scalar, &simd);
        }

        /// Lane-boundary sizes (0, 1, LANES-1, LANES, LANES+1, and the
        /// AVX2/NEON widths around 4 and 2) agree across paths.
        #[test]
        fn lane_boundary_sizes_agree(
            pick in 0usize..10,
            seed in 0u64..1000,
            eps in 0.05f64..0.9,
        ) {
            let sizes = [0, 1, 2, 3, 4, 5, LANES - 1, LANES, LANES + 1, 3 * LANES + 1];
            let n = sizes[pick];
            let pts: Vec<Point<3>> = (0..n)
                .map(|i| {
                    let h = |k: u64| {
                        let mut x = (i as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(seed + k);
                        x ^= x >> 29;
                        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        x ^= x >> 32;
                        (x % 1000) as f64 / 1000.0
                    };
                    Point::new([h(1), h(2), h(3)])
                })
                .collect();
            let scalar = hits_on(KernelPath::Scalar, &pts, eps);
            let simd = hits_on(KernelPath::native(), &pts, eps);
            prop_assert_eq!(&scalar, &simd);
        }

        /// Points placed exactly at distance ε (boundary inclusion) and a
        /// hair inside/outside agree across paths — the ordered `<=`
        /// compare must not differ between scalar and SIMD.
        #[test]
        fn boundary_epsilon_agrees(
            k in 1usize..30,
            flip in 0usize..3,
        ) {
            let eps = 0.125 * k as f64; // exactly representable spacing
            let nudged = match flip {
                0 => eps,
                1 => eps * (1.0 - f64::EPSILON),
                _ => eps * (1.0 + f64::EPSILON),
            };
            let pts: Vec<Point<3>> =
                (0..12).map(|i| Point::new([i as f64 * nudged, 0.0, 0.0])).collect();
            let scalar = hits_on(KernelPath::Scalar, &pts, eps);
            let simd = hits_on(KernelPath::native(), &pts, eps);
            prop_assert_eq!(&scalar, &simd);
        }

        /// Subnormal coordinates (squares flush to zero) agree across
        /// paths: SIMD must not apply FTZ/DAZ semantics.
        #[test]
        fn subnormals_agree(
            scale in 1u64..64,
            eps_pick in 0usize..3,
        ) {
            let sub = f64::MIN_POSITIVE / scale as f64;
            let eps = [0.0, sub, f64::MIN_POSITIVE][eps_pick];
            let pts: Vec<Point<3>> =
                (0..11).map(|i| Point::new([i as f64 * sub, 0.0, 0.0])).collect();
            let scalar = hits_on(KernelPath::Scalar, &pts, eps);
            let simd = hits_on(KernelPath::native(), &pts, eps);
            prop_assert_eq!(&scalar, &simd);
        }
    }
}
