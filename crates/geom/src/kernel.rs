//! Batched leaf-probe distance kernels.
//!
//! The join hot path compares every point of one leaf against every point
//! of another (or the same) leaf. Done pair-at-a-time through
//! [`Metric::distance`] this is a chain of dependent scalar ops; done over
//! contiguous [`Point`] slices in fixed-width chunks it becomes a handful
//! of independent per-lane accumulations the autovectorizer turns into
//! SIMD, with the threshold compared against ε² so no `sqrt` survives in
//! the loop (cf. GPU self-join kernels, which batch for the same reason).
//!
//! [`DistKernel`] preserves the scalar semantics *exactly*:
//!
//! * hits are reported in the same `(i ascending, j ascending)` order the
//!   nested scalar loops use (CSJ's windowed grouping is order-sensitive);
//! * the Euclidean accumulation runs over dimensions in the same order as
//!   [`Point::sq_euclidean`], so every comparison is bit-identical to
//!   [`Metric::within`];
//! * non-Euclidean metrics fall back to the scalar predicate per pair, so
//!   batching never changes which pairs qualify.

use crate::{Metric, Point};

/// Chunk width for the batched Euclidean path. Eight 64-bit lanes fill a
/// 512-bit vector and give the autovectorizer two 256-bit ops per step on
/// AVX2-class hardware; the value is a tuning knob, not a correctness one.
pub const LANES: usize = 8;

/// A reusable ε-threshold distance kernel over contiguous point slices.
///
/// Construct once per join (or per task) and call
/// [`DistKernel::self_join`] / [`DistKernel::cross_join`] per leaf probe.
#[derive(Clone, Copy, Debug)]
pub struct DistKernel {
    metric: Metric,
    eps: f64,
    eps_sq: f64,
}

impl DistKernel {
    /// A kernel for the given metric and range ε.
    pub fn new(metric: Metric, eps: f64) -> Self {
        DistKernel { metric, eps, eps_sq: eps * eps }
    }

    /// The join range ε.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The metric distances are measured in.
    #[inline]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// All pairs `(i, j)` with `i < j` and `pts[i]` within ε of `pts[j]`,
    /// reported through `on_hit` in `(i asc, j asc)` order.
    ///
    /// `comparisons` is advanced by the number of distance predicate
    /// evaluations (one per pair; whole probe rows are counted up front,
    /// so after an `Err` the count may run ahead by less than one row).
    ///
    /// # Errors
    ///
    /// The kernel itself cannot fail; the only `Err` is one returned by
    /// `on_hit`, which stops the scan and is propagated unchanged.
    pub fn self_join<const D: usize, E>(
        &self,
        pts: &[Point<D>],
        comparisons: &mut u64,
        mut on_hit: impl FnMut(usize, usize) -> Result<(), E>,
    ) -> Result<(), E> {
        for i in 0..pts.len() {
            *comparisons += (pts.len() - i - 1) as u64;
            self.probe_row(&pts[i], &pts[i + 1..], |off| on_hit(i, i + 1 + off))?;
        }
        Ok(())
    }

    /// All pairs `(i, j)` with `left[i]` within ε of `right[j]`, reported
    /// through `on_hit` in `(i asc, j asc)` order. Counting as in
    /// [`DistKernel::self_join`].
    ///
    /// # Errors
    ///
    /// The kernel itself cannot fail; the only `Err` is one returned by
    /// `on_hit`, which stops the scan and is propagated unchanged.
    pub fn cross_join<const D: usize, E>(
        &self,
        left: &[Point<D>],
        right: &[Point<D>],
        comparisons: &mut u64,
        mut on_hit: impl FnMut(usize, usize) -> Result<(), E>,
    ) -> Result<(), E> {
        for (i, p) in left.iter().enumerate() {
            *comparisons += right.len() as u64;
            self.probe_row(p, right, |j| on_hit(i, j))?;
        }
        Ok(())
    }

    /// One probe point against a contiguous row; hit offsets are relative
    /// to `row` and ascending.
    #[inline]
    fn probe_row<const D: usize, E>(
        &self,
        p: &Point<D>,
        row: &[Point<D>],
        mut on_hit: impl FnMut(usize) -> Result<(), E>,
    ) -> Result<(), E> {
        if !matches!(self.metric, Metric::Euclidean) {
            for (j, q) in row.iter().enumerate() {
                if self.metric.within(p, q, self.eps) {
                    on_hit(j)?;
                }
            }
            return Ok(());
        }
        let mut chunks = row.chunks_exact(LANES);
        let mut base = 0usize;
        for chunk in chunks.by_ref() {
            // csj-lint: allow(panic-safety) — chunks_exact(LANES)
            // guarantees the slice length; the conversion is infallible.
            let block: &[Point<D>; LANES] = chunk.try_into().expect("chunk has LANES points");
            // Branch-free distance block: dimensions outer, lanes inner,
            // so each step is LANES independent fused accumulations. The
            // per-pair dimension order matches `Point::sq_euclidean`,
            // keeping every value bit-identical to the scalar path.
            let mut acc = [0.0f64; LANES];
            for (l, slot) in acc.iter_mut().enumerate() {
                let mut sq = 0.0;
                for d in 0..D {
                    let delta = block[l][d] - p[d];
                    sq += delta * delta;
                }
                *slot = sq;
            }
            // Branch-free any-hit reduction first: in sparse regions most
            // chunks have no qualifying pair, and the whole block retires
            // on one predictable branch.
            let mut any = false;
            for &sq in &acc {
                any |= sq <= self.eps_sq;
            }
            if any {
                for (l, &sq) in acc.iter().enumerate() {
                    if sq <= self.eps_sq {
                        on_hit(base + l)?;
                    }
                }
            }
            base += LANES;
        }
        for (l, q) in chunks.remainder().iter().enumerate() {
            if p.sq_euclidean(q) <= self.eps_sq {
                on_hit(base + l)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Infallible-callback error type for tests.
    type Never = std::convert::Infallible;

    fn scatter(n: usize, seed: u64) -> Vec<Point<3>> {
        (0..n)
            .map(|i| {
                let h = |k: u64| {
                    let mut x =
                        (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed + k);
                    x ^= x >> 29;
                    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    x ^= x >> 32;
                    (x % 100_000) as f64 / 100_000.0
                };
                Point::new([h(1), h(2), h(3)])
            })
            .collect()
    }

    fn scalar_self(m: Metric, pts: &[Point<3>], eps: f64) -> (Vec<(usize, usize)>, u64) {
        let mut hits = Vec::new();
        let mut comps = 0u64;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                comps += 1;
                if m.within(&pts[i], &pts[j], eps) {
                    hits.push((i, j));
                }
            }
        }
        (hits, comps)
    }

    fn scalar_cross(
        m: Metric,
        a: &[Point<3>],
        b: &[Point<3>],
        eps: f64,
    ) -> (Vec<(usize, usize)>, u64) {
        let mut hits = Vec::new();
        let mut comps = 0u64;
        for (i, x) in a.iter().enumerate() {
            for (j, y) in b.iter().enumerate() {
                comps += 1;
                if m.within(x, y, eps) {
                    hits.push((i, j));
                }
            }
        }
        (hits, comps)
    }

    #[test]
    fn self_join_matches_scalar_all_metrics_and_sizes() {
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev, Metric::Minkowski(3.0)] {
            // Sizes straddle the LANES boundary (remainder 0, 1, LANES-1).
            for n in [0usize, 1, 7, 8, 9, 16, 61] {
                let pts = scatter(n, 7);
                let eps = 0.35;
                let kernel = DistKernel::new(m, eps);
                let mut hits = Vec::new();
                let mut comps = 0u64;
                kernel
                    .self_join(&pts, &mut comps, |i, j| -> Result<(), Never> {
                        hits.push((i, j));
                        Ok(())
                    })
                    .unwrap();
                let (want, want_comps) = scalar_self(m, &pts, eps);
                assert_eq!(hits, want, "{m:?} n={n}: hit set and order must match scalar");
                assert_eq!(comps, want_comps, "{m:?} n={n}: comparison count");
            }
        }
    }

    #[test]
    fn cross_join_matches_scalar() {
        for m in [Metric::Euclidean, Metric::Manhattan] {
            let a = scatter(23, 1);
            let b = scatter(40, 2);
            let eps = 0.4;
            let kernel = DistKernel::new(m, eps);
            let mut hits = Vec::new();
            let mut comps = 0u64;
            kernel
                .cross_join(&a, &b, &mut comps, |i, j| -> Result<(), Never> {
                    hits.push((i, j));
                    Ok(())
                })
                .unwrap();
            let (want, want_comps) = scalar_cross(m, &a, &b, eps);
            assert_eq!(hits, want, "{m:?}");
            assert_eq!(comps, want_comps, "{m:?}");
        }
    }

    #[test]
    fn boundary_pairs_agree_with_within() {
        // Points at distance exactly eps (axis-aligned) must be hits, in
        // both the chunked body and the remainder tail.
        let eps = 0.125; // exactly representable
        let pts: Vec<Point<3>> = (0..19).map(|i| Point::new([i as f64 * eps, 0.0, 0.0])).collect();
        let kernel = DistKernel::new(Metric::Euclidean, eps);
        let mut hits = Vec::new();
        let mut comps = 0u64;
        kernel
            .self_join(&pts, &mut comps, |i, j| -> Result<(), Never> {
                hits.push((i, j));
                Ok(())
            })
            .unwrap();
        let want: Vec<(usize, usize)> = (0..18).map(|i| (i, i + 1)).collect();
        assert_eq!(hits, want, "adjacent pairs sit exactly at eps");
    }

    #[test]
    fn errors_propagate_and_stop_the_scan() {
        let pts = scatter(40, 3);
        let kernel = DistKernel::new(Metric::Euclidean, 0.9);
        let mut seen = 0usize;
        let res = kernel.self_join(&pts, &mut 0, |_, _| {
            seen += 1;
            if seen == 5 {
                Err("stop")
            } else {
                Ok(())
            }
        });
        assert_eq!(res, Err("stop"));
        assert_eq!(seen, 5, "no hits delivered after the error");
    }

    #[test]
    fn empty_slices() {
        let kernel = DistKernel::new(Metric::Euclidean, 1.0);
        let empty: Vec<Point<3>> = Vec::new();
        let some = scatter(5, 4);
        let mut comps = 0u64;
        kernel
            .cross_join(&empty, &some, &mut comps, |_, _| -> Result<(), Never> {
                panic!("no pairs")
            })
            .unwrap();
        kernel
            .cross_join(&some, &empty, &mut comps, |_, _| -> Result<(), Never> {
                panic!("no pairs")
            })
            .unwrap();
        assert_eq!(comps, 0);
    }
}
