//! Exact diameters of point sets.
//!
//! Used by the verification machinery (`csj-core::verify`) to check the
//! paper's Correctness theorem: every group emitted by a compact join must
//! have true point-set diameter `<= ε`. The brute-force routine is the
//! ground truth; the 2-D rotating-calipers routine makes verification of
//! large groups cheap in the common 2-D case.

use crate::{Metric, Point};

/// Exact diameter (max pairwise distance) by brute force: `O(n²)`.
///
/// Returns 0.0 for sets with fewer than two points.
pub fn diameter_brute<const D: usize>(points: &[Point<D>], metric: Metric) -> f64 {
    let mut best = 0.0_f64;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            best = best.max(metric.distance(&points[i], &points[j]));
        }
    }
    best
}

/// Exact Euclidean diameter of a 2-D point set in `O(n log n)` via convex
/// hull + rotating calipers.
pub fn diameter_2d(points: &[Point<2>]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let hull = convex_hull(points);
    if hull.len() < 2 {
        return 0.0;
    }
    if hull.len() == 2 {
        return hull[0].euclidean(&hull[1]);
    }
    rotating_calipers(&hull)
}

/// Andrew's monotone-chain convex hull; returns hull vertices in
/// counter-clockwise order without the closing repeat. Collinear points on
/// hull edges are dropped.
pub fn convex_hull(points: &[Point<2>]) -> Vec<Point<2>> {
    let mut pts: Vec<Point<2>> = points.to_vec();
    pts.sort_by(|a, b| a[0].total_cmp(&b[0]).then(a[1].total_cmp(&b[1])));
    // FLOAT-EQ: exact duplicate collapse after a total_cmp sort — any
    // epsilon here would merge distinct hull vertices and shrink the
    // reported diameter.
    pts.dedup_by(|a, b| a[0] == b[0] && a[1] == b[1]);
    let n = pts.len();
    if n < 3 {
        return pts;
    }
    let cross = |o: &Point<2>, a: &Point<2>, b: &Point<2>| {
        (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])
    };
    let mut hull: Vec<Point<2>> = Vec::with_capacity(2 * n);
    // Lower hull.
    for p in &pts {
        while hull.len() >= 2 && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(*p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for p in pts.iter().rev() {
        while hull.len() >= lower_len
            && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }
    hull.pop(); // last point repeats the first
    hull
}

/// Rotating calipers over a convex polygon in CCW order.
fn rotating_calipers(hull: &[Point<2>]) -> f64 {
    let n = hull.len();
    let area2 = |a: &Point<2>, b: &Point<2>, c: &Point<2>| {
        ((b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])).abs()
    };
    let mut best = 0.0_f64;
    let mut j = 1;
    for i in 0..n {
        let ni = (i + 1) % n;
        // Advance j while the triangle area keeps growing: j is then the
        // farthest vertex from edge (i, ni).
        while area2(&hull[i], &hull[ni], &hull[(j + 1) % n]) > area2(&hull[i], &hull[ni], &hull[j])
        {
            j = (j + 1) % n;
        }
        best = best.max(hull[i].euclidean(&hull[j]));
        best = best.max(hull[ni].euclidean(&hull[j]));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_trivial_sets() {
        assert_eq!(diameter_brute::<2>(&[], Metric::Euclidean), 0.0);
        assert_eq!(diameter_brute(&[Point::new([1.0, 1.0])], Metric::Euclidean), 0.0);
        let two = [Point::new([0.0, 0.0]), Point::new([3.0, 4.0])];
        assert_eq!(diameter_brute(&two, Metric::Euclidean), 5.0);
        assert_eq!(diameter_brute(&two, Metric::Manhattan), 7.0);
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = [
            Point::new([0.0, 0.0]),
            Point::new([1.0, 0.0]),
            Point::new([1.0, 1.0]),
            Point::new([0.0, 1.0]),
            Point::new([0.5, 0.5]),
            Point::new([0.25, 0.75]),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!((diameter_2d(&pts) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn hull_collinear_points() {
        let pts = [
            Point::new([0.0, 0.0]),
            Point::new([1.0, 1.0]),
            Point::new([2.0, 2.0]),
            Point::new([3.0, 3.0]),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 2, "collinear set hull degenerates to a segment");
        assert!((diameter_2d(&pts) - 18.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn hull_duplicates() {
        let pts = [Point::new([0.0, 0.0]), Point::new([0.0, 0.0]), Point::new([1.0, 0.0])];
        assert_eq!(convex_hull(&pts).len(), 2);
        assert_eq!(diameter_2d(&pts), 1.0);
    }

    #[test]
    fn calipers_matches_brute_on_circle() {
        let pts: Vec<Point<2>> = (0..100)
            .map(|i| {
                let t = i as f64 / 100.0 * std::f64::consts::TAU;
                Point::new([t.cos(), t.sin()])
            })
            .collect();
        let fast = diameter_2d(&pts);
        let brute = diameter_brute(&pts, Metric::Euclidean);
        assert!((fast - brute).abs() < 1e-12);
        assert!((fast - 2.0).abs() < 1e-3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Rotating calipers agrees with brute force on arbitrary sets.
        #[test]
        fn calipers_equals_brute(
            pts in prop::collection::vec(prop::array::uniform2(-100.0f64..100.0).prop_map(Point::new), 0..80)
        ) {
            let fast = diameter_2d(&pts);
            let brute = diameter_brute(&pts, Metric::Euclidean);
            prop_assert!((fast - brute).abs() < 1e-9, "fast={fast} brute={brute}");
        }

        /// Hull vertices are a subset of the input and contain the extremes.
        #[test]
        fn hull_subset_and_extremes(
            pts in prop::collection::vec(prop::array::uniform2(-100.0f64..100.0).prop_map(Point::new), 1..60)
        ) {
            let hull = convex_hull(&pts);
            for h in &hull {
                prop_assert!(pts.iter().any(|p| p == h));
            }
            let min_x = pts.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
            let max_x = pts.iter().map(|p| p[0]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(hull.iter().any(|h| h[0] == min_x));
            prop_assert!(hull.iter().any(|h| h[0] == max_x));
        }
    }
}
