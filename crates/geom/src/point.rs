//! `D`-dimensional points.

use std::ops::{Add, Div, Index, IndexMut, Mul, Sub};

/// A point in `D`-dimensional Euclidean space.
///
/// A thin, `Copy` wrapper over `[f64; D]`. Arithmetic is componentwise and
/// allocation-free. Coordinates are ordinary `f64`s; the library treats NaN
/// coordinates as a caller bug (constructors in `csj-data` never produce
/// them, and tree insertion debug-asserts against them).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point<const D: usize>(pub [f64; D]);

impl<const D: usize> Point<D> {
    /// The origin (all coordinates zero).
    pub const ORIGIN: Self = Point([0.0; D]);

    /// Creates a point from its coordinate array.
    #[inline]
    pub const fn new(coords: [f64; D]) -> Self {
        Point(coords)
    }

    /// Returns the coordinate array.
    #[inline]
    pub const fn coords(&self) -> [f64; D] {
        self.0
    }

    /// Returns the dimensionality `D`.
    #[inline]
    pub const fn dim(&self) -> usize {
        D
    }

    /// `true` if every coordinate is finite (not NaN / ±∞).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|c| c.is_finite())
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Cheaper than [`Self::euclidean`] (no square root); preferred in hot
    /// loops where the comparison threshold can be squared instead.
    #[inline]
    pub fn sq_euclidean(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.0[i] - other.0[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean (`L2`) distance to `other`.
    #[inline]
    pub fn euclidean(&self, other: &Self) -> f64 {
        self.sq_euclidean(other).sqrt()
    }

    /// Componentwise minimum of two points.
    #[inline]
    // Indexed lockstep over `[f64; D]` pairs: clearer than zip chains
    // for these numeric kernels.
    #[allow(clippy::needless_range_loop)]
    pub fn min(&self, other: &Self) -> Self {
        let mut out = self.0;
        for i in 0..D {
            out[i] = out[i].min(other.0[i]);
        }
        Point(out)
    }

    /// Componentwise maximum of two points.
    #[inline]
    // Indexed lockstep over `[f64; D]` pairs: clearer than zip chains
    // for these numeric kernels.
    #[allow(clippy::needless_range_loop)]
    pub fn max(&self, other: &Self) -> Self {
        let mut out = self.0;
        for i in 0..D {
            out[i] = out[i].max(other.0[i]);
        }
        Point(out)
    }

    /// The midpoint of the segment from `self` to `other`.
    #[inline]
    // Indexed lockstep over `[f64; D]` pairs: clearer than zip chains
    // for these numeric kernels.
    #[allow(clippy::needless_range_loop)]
    pub fn midpoint(&self, other: &Self) -> Self {
        let mut out = self.0;
        for i in 0..D {
            out[i] = 0.5 * (out[i] + other.0[i]);
        }
        Point(out)
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    // Indexed lockstep over `[f64; D]` pairs: clearer than zip chains
    // for these numeric kernels.
    #[allow(clippy::needless_range_loop)]
    pub fn lerp(&self, other: &Self, t: f64) -> Self {
        let mut out = self.0;
        for i in 0..D {
            out[i] += t * (other.0[i] - out[i]);
        }
        Point(out)
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::ORIGIN
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(coords: [f64; D]) -> Self {
        Point(coords)
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Self;
    #[inline]
    // Indexed lockstep over `[f64; D]` pairs: clearer than zip chains
    // for these numeric kernels.
    #[allow(clippy::needless_range_loop)]
    fn add(self, rhs: Self) -> Self {
        let mut out = self.0;
        for i in 0..D {
            out[i] += rhs.0[i];
        }
        Point(out)
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Self;
    #[inline]
    // Indexed lockstep over `[f64; D]` pairs: clearer than zip chains
    // for these numeric kernels.
    #[allow(clippy::needless_range_loop)]
    fn sub(self, rhs: Self) -> Self {
        let mut out = self.0;
        for i in 0..D {
            out[i] -= rhs.0[i];
        }
        Point(out)
    }
}

impl<const D: usize> Mul<f64> for Point<D> {
    type Output = Self;
    #[inline]
    fn mul(self, s: f64) -> Self {
        let mut out = self.0;
        for c in out.iter_mut() {
            *c *= s;
        }
        Point(out)
    }
}

impl<const D: usize> Div<f64> for Point<D> {
    type Output = Self;
    #[inline]
    fn div(self, s: f64) -> Self {
        let mut out = self.0;
        for c in out.iter_mut() {
            *c /= s;
        }
        Point(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let p = Point::new([1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p[0], 1.0);
        assert_eq!(p[2], 3.0);
        assert_eq!(p.coords(), [1.0, 2.0, 3.0]);
        let q: Point<3> = [1.0, 2.0, 3.0].into();
        assert_eq!(p, q);
    }

    #[test]
    fn origin_is_zero() {
        let o = Point::<4>::ORIGIN;
        assert_eq!(o.coords(), [0.0; 4]);
        assert_eq!(Point::<4>::default(), o);
    }

    #[test]
    fn euclidean_distance_345() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 4.0]);
        assert_eq!(a.sq_euclidean(&b), 25.0);
        assert_eq!(a.euclidean(&b), 5.0);
        assert_eq!(b.euclidean(&a), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new([1.5, -2.5, 0.25]);
        assert_eq!(a.euclidean(&a), 0.0);
    }

    #[test]
    fn componentwise_min_max() {
        let a = Point::new([1.0, 5.0]);
        let b = Point::new([3.0, 2.0]);
        assert_eq!(a.min(&b).coords(), [1.0, 2.0]);
        assert_eq!(a.max(&b).coords(), [3.0, 5.0]);
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([2.0, 4.0]);
        assert_eq!(a.midpoint(&b).coords(), [1.0, 2.0]);
        assert_eq!(a.lerp(&b, 0.25).coords(), [0.5, 1.0]);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point::new([1.0, 2.0]);
        let b = Point::new([3.0, 5.0]);
        assert_eq!((a + b).coords(), [4.0, 7.0]);
        assert_eq!((b - a).coords(), [2.0, 3.0]);
        assert_eq!((a * 2.0).coords(), [2.0, 4.0]);
        assert_eq!((b / 2.0).coords(), [1.5, 2.5]);
    }

    #[test]
    fn finite_detection() {
        assert!(Point::new([1.0, 2.0]).is_finite());
        assert!(!Point::new([f64::NAN, 0.0]).is_finite());
        assert!(!Point::new([0.0, f64::INFINITY]).is_finite());
    }

    #[test]
    fn index_mut() {
        let mut p = Point::new([0.0, 0.0]);
        p[1] = 7.0;
        assert_eq!(p.coords(), [0.0, 7.0]);
    }
}
