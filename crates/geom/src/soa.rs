//! Struct-of-arrays views over leaf point storage.
//!
//! The tree leaves keep one contiguous `f64` slab per dimension (see
//! `csj-index`'s `LeafStore`); [`SoaView`] is the borrowed, `Copy` window
//! the distance kernels consume. Laying coordinates out per-dimension
//! turns a leaf probe into `D` contiguous streaming loads — exactly the
//! shape wide SIMD lanes want — instead of a strided gather over
//! `[Point<D>]` records.

use crate::Point;

/// A borrowed struct-of-arrays view of `len` points: one `&[f64]` slab per
/// dimension, all of equal length.
///
/// Row `i` of the view is the point `(dims[0][i], …, dims[D-1][i])`.
#[derive(Clone, Copy, Debug)]
pub struct SoaView<'a, const D: usize> {
    dims: [&'a [f64]; D],
}

impl<'a, const D: usize> SoaView<'a, D> {
    /// A view over the given per-dimension slabs.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) when the slabs disagree on length.
    #[inline]
    pub fn new(dims: [&'a [f64]; D]) -> Self {
        if D > 0 {
            debug_assert!(
                dims.iter().all(|s| s.len() == dims[0].len()),
                "SoA slabs must have equal length"
            );
        }
        SoaView { dims }
    }

    /// The empty view (zero points).
    #[inline]
    pub fn empty() -> Self {
        SoaView { dims: [&[]; D] }
    }

    /// Number of points in the view.
    #[inline]
    pub fn len(&self) -> usize {
        if D == 0 {
            0
        } else {
            self.dims[0].len()
        }
    }

    /// Whether the view holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The per-dimension slabs.
    #[inline]
    pub fn dims(&self) -> &[&'a [f64]; D] {
        &self.dims
    }

    /// The coordinates of row `i` as a plain array (a `D`-element gather).
    #[inline]
    pub fn coords(&self, i: usize) -> [f64; D] {
        std::array::from_fn(|d| self.dims[d][i])
    }

    /// Row `i` materialized as a [`Point`].
    #[inline]
    pub fn point(&self, i: usize) -> Point<D> {
        Point::new(self.coords(i))
    }
}

/// Owned per-dimension coordinate slabs.
///
/// This is the storage half of the SoA pair: tree leaf stores embed one of
/// these and hand [`SoaBuffer::view`] to the kernels. Mutations mirror the
/// `Vec` operations leaf stores need (`push` / `swap_remove` / `clear`),
/// keeping every slab in lock-step.
#[derive(Clone, Debug, PartialEq)]
pub struct SoaBuffer<const D: usize> {
    dims: [Vec<f64>; D],
    len: usize,
}

impl<const D: usize> Default for SoaBuffer<D> {
    fn default() -> Self {
        SoaBuffer::new()
    }
}

impl<const D: usize> SoaBuffer<D> {
    /// An empty buffer.
    pub fn new() -> Self {
        SoaBuffer { dims: std::array::from_fn(|_| Vec::new()), len: 0 }
    }

    /// An empty buffer with room for `n` points per dimension.
    pub fn with_capacity(n: usize) -> Self {
        SoaBuffer { dims: std::array::from_fn(|_| Vec::with_capacity(n)), len: 0 }
    }

    /// Slabs populated from an existing point slice.
    pub fn from_points(pts: &[Point<D>]) -> Self {
        let mut buf = SoaBuffer::with_capacity(pts.len());
        for p in pts {
            buf.push(p);
        }
        buf
    }

    /// Number of points stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one point (one scalar per slab).
    #[inline]
    pub fn push(&mut self, p: &Point<D>) {
        for (d, slab) in self.dims.iter_mut().enumerate() {
            slab.push(p[d]);
        }
        self.len += 1;
    }

    /// Removes row `i` by swapping in the last row, mirroring
    /// `Vec::swap_remove` on every slab. Returns the removed point.
    pub fn swap_remove(&mut self, i: usize) -> Point<D> {
        let p = Point::new(std::array::from_fn(|d| self.dims[d].swap_remove(i)));
        self.len -= 1;
        p
    }

    /// Drops all rows, keeping the slab allocations.
    pub fn clear(&mut self) {
        for slab in self.dims.iter_mut() {
            slab.clear();
        }
        self.len = 0;
    }

    /// The borrowed view the kernels consume.
    #[inline]
    pub fn view(&self) -> SoaView<'_, D> {
        SoaView { dims: std::array::from_fn(|d| self.dims[d].as_slice()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_rows() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [5.0, 6.0, 7.0];
        let v: SoaView<'_, 2> = SoaView::new([&xs, &ys]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.point(1), Point::new([1.0, 6.0]));
        assert_eq!(v.coords(2), [2.0, 7.0]);
    }

    #[test]
    fn empty_view() {
        let v: SoaView<'_, 3> = SoaView::empty();
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
    }

    #[test]
    fn buffer_mirrors_vec_ops() {
        let pts = [Point::new([1.0, 2.0]), Point::new([3.0, 4.0]), Point::new([5.0, 6.0])];
        let mut buf = SoaBuffer::<2>::from_points(&pts);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.view().point(2), pts[2]);

        // swap_remove(0) moves the last row into slot 0 on every slab.
        assert_eq!(buf.swap_remove(0), pts[0]);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.view().point(0), pts[2]);
        assert_eq!(buf.view().point(1), pts[1]);

        buf.push(&Point::new([7.0, 8.0]));
        assert_eq!(buf.view().point(2), Point::new([7.0, 8.0]));

        buf.clear();
        assert!(buf.is_empty());
        assert!(buf.view().is_empty());
    }
}
