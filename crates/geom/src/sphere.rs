//! Bounding spheres (balls).
//!
//! Two consumers: the M-tree, whose covering shapes are metric balls, and
//! the §V-A discussion of group shapes — a ball of diameter ε is the
//! largest shape in which all point pairs mutually satisfy the range, so we
//! implement ball-shaped groups as an ablation against the paper's MBR
//! groups (`csj-core::group`).

use crate::{Metric, Point};

/// A ball `{x : d(center, x) <= radius}` under some metric.
///
/// The metric is *not* stored; the operations that need one take it as an
/// argument, mirroring [`crate::Mbr`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sphere<const D: usize> {
    /// Ball center.
    pub center: Point<D>,
    /// Ball radius (non-negative).
    pub radius: f64,
}

impl<const D: usize> Sphere<D> {
    /// Creates a ball; debug-asserts a non-negative radius.
    #[inline]
    pub fn new(center: Point<D>, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "negative sphere radius");
        Sphere { center, radius }
    }

    /// The degenerate ball around a single point.
    #[inline]
    pub fn from_point(p: &Point<D>) -> Self {
        Sphere { center: *p, radius: 0.0 }
    }

    /// `true` if `p` lies inside the ball (boundary inclusive) under `metric`.
    #[inline]
    pub fn contains_point(&self, p: &Point<D>, metric: Metric) -> bool {
        metric.distance(&self.center, p) <= self.radius
    }

    /// Diameter of the ball: `2 * radius`. By the triangle inequality this
    /// upper-bounds the distance between any two contained points under the
    /// same metric the ball was built with.
    #[inline]
    pub fn diameter(&self) -> f64 {
        2.0 * self.radius
    }

    /// Lower bound on the distance between points of two balls:
    /// `max(0, d(c1,c2) - r1 - r2)`.
    #[inline]
    pub fn min_dist(&self, other: &Sphere<D>, metric: Metric) -> f64 {
        (metric.distance(&self.center, &other.center) - self.radius - other.radius).max(0.0)
    }

    /// Upper bound on the distance between points of two balls:
    /// `d(c1,c2) + r1 + r2`.
    #[inline]
    pub fn max_dist(&self, other: &Sphere<D>, metric: Metric) -> f64 {
        metric.distance(&self.center, &other.center) + self.radius + other.radius
    }

    /// Grows the ball (in place) so it covers `p`, moving the center as
    /// little as possible (the Ritter update step): the new ball is the
    /// smallest ball containing the old ball and `p`.
    pub fn expand_to_point(&mut self, p: &Point<D>, metric: Metric) {
        let d = metric.distance(&self.center, p);
        if d <= self.radius {
            return;
        }
        let new_radius = 0.5 * (d + self.radius);
        // Shift the center toward p along the segment (exact for L2;
        // conservative-in-spirit for other metrics where we simply keep a
        // valid covering ball by re-checking the radius).
        let t = if d > 0.0 { (new_radius - self.radius) / d } else { 0.0 };
        let new_center = self.center.lerp(p, t);
        // Under non-Euclidean metrics lerp may not preserve exact coverage;
        // enforce it by measuring.
        let r_cover_old = metric.distance(&new_center, &self.center) + self.radius;
        let r_cover_p = metric.distance(&new_center, p);
        self.center = new_center;
        self.radius = new_radius.max(r_cover_old).max(r_cover_p);
    }

    /// Ritter's approximate smallest enclosing ball of a point set.
    ///
    /// Guaranteed to cover all points; radius within a small constant
    /// factor (~1.1x for L2) of optimal. Returns `None` on an empty slice.
    pub fn ritter(points: &[Point<D>], metric: Metric) -> Option<Self> {
        let first = points.first()?;
        // Pick the point farthest from an arbitrary start, then the point
        // farthest from that: a diametral-ish pair.
        let a = points
            .iter()
            .max_by(|x, y| metric.distance(first, x).total_cmp(&metric.distance(first, y)))?;
        let b =
            points.iter().max_by(|x, y| metric.distance(a, x).total_cmp(&metric.distance(a, y)))?;
        let mut ball = Sphere::new(a.midpoint(b), 0.5 * metric.distance(a, b));
        for p in points {
            ball.expand_to_point(p, metric);
        }
        Some(ball)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_diameter() {
        let s = Sphere::new(Point::new([0.0, 0.0]), 1.0);
        assert!(s.contains_point(&Point::new([1.0, 0.0]), Metric::Euclidean));
        assert!(!s.contains_point(&Point::new([1.1, 0.0]), Metric::Euclidean));
        assert_eq!(s.diameter(), 2.0);
    }

    #[test]
    fn ball_pair_bounds() {
        let a = Sphere::new(Point::new([0.0, 0.0]), 1.0);
        let b = Sphere::new(Point::new([5.0, 0.0]), 1.5);
        assert_eq!(a.min_dist(&b, Metric::Euclidean), 2.5);
        assert_eq!(a.max_dist(&b, Metric::Euclidean), 7.5);
        // Overlapping balls: min dist clamps to zero.
        let c = Sphere::new(Point::new([1.0, 0.0]), 1.0);
        assert_eq!(a.min_dist(&c, Metric::Euclidean), 0.0);
    }

    #[test]
    fn expand_noop_when_inside() {
        let mut s = Sphere::new(Point::new([0.0, 0.0]), 2.0);
        let before = s;
        s.expand_to_point(&Point::new([1.0, 1.0]), Metric::Euclidean);
        assert_eq!(s, before);
    }

    #[test]
    fn expand_covers_old_ball_and_new_point() {
        let mut s = Sphere::new(Point::new([0.0, 0.0]), 1.0);
        let p = Point::new([5.0, 0.0]);
        s.expand_to_point(&p, Metric::Euclidean);
        assert!(s.contains_point(&p, Metric::Euclidean));
        // Old extreme point (-1, 0) must still be covered.
        assert!(s.contains_point(&Point::new([-1.0, 0.0]), Metric::Euclidean));
        // Optimal new ball: center (2, 0), radius 3.
        assert!((s.radius - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ritter_covers_all_points() {
        let pts: Vec<Point<2>> = (0..50)
            .map(|i| {
                let t = i as f64 * 0.37;
                Point::new([t.sin() * 3.0, t.cos() * 2.0])
            })
            .collect();
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            let ball = Sphere::ritter(&pts, metric).unwrap();
            for p in &pts {
                assert!(
                    metric.distance(&ball.center, p) <= ball.radius + 1e-9,
                    "{metric:?} fails to cover {p:?}"
                );
            }
        }
    }

    #[test]
    fn ritter_empty_and_singleton() {
        assert!(Sphere::<2>::ritter(&[], Metric::Euclidean).is_none());
        let one = [Point::new([3.0, 4.0])];
        let b = Sphere::ritter(&one, Metric::Euclidean).unwrap();
        assert_eq!(b.center, one[0]);
        assert_eq!(b.radius, 0.0);
    }

    #[test]
    fn ritter_near_optimal_on_antipodal_pair() {
        let pts = [Point::new([0.0, 0.0]), Point::new([10.0, 0.0])];
        let b = Sphere::ritter(&pts, Metric::Euclidean).unwrap();
        assert!((b.radius - 5.0).abs() < 1e-9);
        assert!((b.center.coords()[0] - 5.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_points() -> impl Strategy<Value = Vec<Point<3>>> {
        prop::collection::vec(prop::array::uniform3(-10.0f64..10.0).prop_map(Point::new), 1..60)
    }

    proptest! {
        /// Ritter's ball always covers every input point, for all metrics.
        #[test]
        fn ritter_coverage(pts in arb_points()) {
            for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
                let ball = Sphere::ritter(&pts, metric).unwrap();
                for p in &pts {
                    prop_assert!(metric.distance(&ball.center, p) <= ball.radius + 1e-9);
                }
            }
        }

        /// The ball diameter upper-bounds every pairwise distance —
        /// exactly the property group shapes need (§V-A).
        #[test]
        fn diameter_bounds_pairs(pts in arb_points()) {
            let metric = Metric::Euclidean;
            let ball = Sphere::ritter(&pts, metric).unwrap();
            for a in &pts {
                for b in &pts {
                    prop_assert!(metric.distance(a, b) <= ball.diameter() + 1e-9);
                }
            }
        }

        /// Sequential expansion (the CSJ group-update path) preserves
        /// coverage of every point seen so far.
        #[test]
        fn sequential_expansion_coverage(pts in arb_points()) {
            let metric = Metric::Euclidean;
            let mut ball = Sphere::from_point(&pts[0]);
            for (i, p) in pts.iter().enumerate() {
                ball.expand_to_point(p, metric);
                for q in &pts[..=i] {
                    prop_assert!(metric.distance(&ball.center, q) <= ball.radius + 1e-6);
                }
            }
        }
    }
}
